#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "tensor/check.h"
#include "tensor/rng.h"

namespace dlner::eval {
namespace {

bool Overlaps(const text::Span& a, const text::Span& b) {
  return a.start < b.end && b.start < a.end;
}

bool SameBoundaries(const text::Span& a, const text::Span& b) {
  return a.start == b.start && a.end == b.end;
}

}  // namespace

double Prf::precision() const {
  return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}

double Prf::recall() const {
  return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}

double Prf::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

void ExactMatchEvaluator::Add(const std::vector<text::Span>& gold,
                              const std::vector<text::Span>& predicted) {
  if (obs::MetricsEnabled()) {
    // Scoring volume, counted where scoring happens so every caller
    // (parallel Evaluate shards, benches, tests) is covered.
    static obs::Counter* pairs =
        obs::Metrics::Get().counter("eval.pairs_scored");
    pairs->Add(1);
  }
  // Greedy one-to-one matching on exact (start, end, type) equality.
  std::vector<bool> gold_used(gold.size(), false);
  for (const text::Span& p : predicted) {
    bool matched = false;
    for (size_t g = 0; g < gold.size(); ++g) {
      if (!gold_used[g] && gold[g] == p) {
        gold_used[g] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      per_type_[p.type].tp++;
    } else {
      per_type_[p.type].fp++;
    }
  }
  for (size_t g = 0; g < gold.size(); ++g) {
    if (!gold_used[g]) per_type_[gold[g].type].fn++;
  }
}

void ExactMatchEvaluator::Merge(const ExactMatchEvaluator& other) {
  for (const auto& [type, prf] : other.per_type_) {
    Prf& mine = per_type_[type];
    mine.tp += prf.tp;
    mine.fp += prf.fp;
    mine.fn += prf.fn;
  }
}

ExactResult ExactMatchEvaluator::Result() const {
  ExactResult result;
  result.per_type = per_type_;
  double macro_sum = 0.0;
  for (const auto& [type, prf] : per_type_) {
    result.micro.tp += prf.tp;
    result.micro.fp += prf.fp;
    result.micro.fn += prf.fn;
    macro_sum += prf.f1();
  }
  result.macro_f1 =
      per_type_.empty() ? 0.0 : macro_sum / static_cast<double>(
                                                per_type_.size());
  return result;
}

void RelaxedMatchEvaluator::Add(const std::vector<text::Span>& gold,
                                const std::vector<text::Span>& predicted) {
  // TYPE dimension: a prediction is correct when it overlaps an unused gold
  // span of the same type.
  std::vector<bool> used(gold.size(), false);
  for (const text::Span& p : predicted) {
    bool matched = false;
    for (size_t g = 0; g < gold.size(); ++g) {
      if (!used[g] && gold[g].type == p.type && Overlaps(gold[g], p)) {
        used[g] = true;
        matched = true;
        break;
      }
    }
    matched ? void(type_.tp++) : void(type_.fp++);
  }
  for (size_t g = 0; g < gold.size(); ++g) {
    if (!used[g]) type_.fn++;
  }

  // TEXT dimension: exact boundaries, type ignored.
  std::fill(used.begin(), used.end(), false);
  for (const text::Span& p : predicted) {
    bool matched = false;
    for (size_t g = 0; g < gold.size(); ++g) {
      if (!used[g] && SameBoundaries(gold[g], p)) {
        used[g] = true;
        matched = true;
        break;
      }
    }
    matched ? void(text_.tp++) : void(text_.fp++);
  }
  for (size_t g = 0; g < gold.size(); ++g) {
    if (!used[g]) text_.fn++;
  }
}

RelaxedResult RelaxedMatchEvaluator::Result() const {
  RelaxedResult result;
  result.type = type_;
  result.text = text_;
  // MUC pooled score: correct slots over both dimensions.
  Prf pooled;
  pooled.tp = type_.tp + text_.tp;
  pooled.fp = type_.fp + text_.fp;
  pooled.fn = type_.fn + text_.fn;
  result.muc_f1 = pooled.f1();
  return result;
}

ExactResult EvaluateExact(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted) {
  DLNER_CHECK_EQ(gold.size(), predicted.size());
  ExactMatchEvaluator ev;
  for (size_t i = 0; i < gold.size(); ++i) ev.Add(gold[i], predicted[i]);
  return ev.Result();
}

RelaxedResult EvaluateRelaxed(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted) {
  DLNER_CHECK_EQ(gold.size(), predicted.size());
  RelaxedMatchEvaluator ev;
  for (size_t i = 0; i < gold.size(); ++i) ev.Add(gold[i], predicted[i]);
  return ev.Result();
}

Interval BootstrapMicroF1(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted, int resamples,
    uint64_t seed) {
  DLNER_CHECK_EQ(gold.size(), predicted.size());
  DLNER_CHECK_GT(resamples, 0);
  const int n = static_cast<int>(gold.size());
  Rng rng(seed);
  std::vector<double> f1s;
  f1s.reserve(resamples);
  for (int r = 0; r < resamples; ++r) {
    ExactMatchEvaluator ev;
    for (int i = 0; i < n; ++i) {
      const int idx = rng.UniformInt(0, n - 1);
      ev.Add(gold[idx], predicted[idx]);
    }
    f1s.push_back(ev.Result().micro.f1());
  }
  std::sort(f1s.begin(), f1s.end());
  const int lo_idx = static_cast<int>(0.025 * (resamples - 1));
  const int hi_idx = static_cast<int>(0.975 * (resamples - 1));
  return {f1s[lo_idx], f1s[hi_idx]};
}

double ApproximateRandomizationPValue(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& system_a,
    const std::vector<std::vector<text::Span>>& system_b, int trials,
    uint64_t seed) {
  DLNER_CHECK_EQ(gold.size(), system_a.size());
  DLNER_CHECK_EQ(gold.size(), system_b.size());
  DLNER_CHECK_GT(trials, 0);
  const int n = static_cast<int>(gold.size());

  auto diff = [&](const std::vector<bool>& swap) {
    ExactMatchEvaluator ev_a, ev_b;
    for (int i = 0; i < n; ++i) {
      const auto& pa = swap[i] ? system_b[i] : system_a[i];
      const auto& pb = swap[i] ? system_a[i] : system_b[i];
      ev_a.Add(gold[i], pa);
      ev_b.Add(gold[i], pb);
    }
    return std::abs(ev_a.Result().micro.f1() - ev_b.Result().micro.f1());
  };

  const double observed = diff(std::vector<bool>(n, false));
  Rng rng(seed);
  int at_least_as_extreme = 0;
  std::vector<bool> swap(n);
  for (int t = 0; t < trials; ++t) {
    for (int i = 0; i < n; ++i) swap[i] = rng.Bernoulli(0.5);
    if (diff(swap) >= observed - 1e-12) ++at_least_as_extreme;
  }
  // +1 smoothing keeps the p-value strictly positive (standard practice).
  return (at_least_as_extreme + 1.0) / (trials + 1.0);
}

}  // namespace dlner::eval
