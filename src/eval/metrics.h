// NER evaluation metrics (survey Section 2.3).
//
// Exact-match evaluation (Section 2.3.1): an entity counts as correct only
// when both its boundaries and its type match the gold annotation;
// precision/recall/F are reported micro-averaged, macro-averaged, and per
// type.
//
// Relaxed-match evaluation (Section 2.3.2, MUC-style): the TYPE dimension
// credits a prediction whose type matches a gold entity it overlaps; the
// TEXT dimension credits exact boundaries regardless of type; the combined
// MUC F-score pools both dimensions.
#ifndef DLNER_EVAL_METRICS_H_
#define DLNER_EVAL_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "text/types.h"

namespace dlner::eval {

/// Precision/recall/F1 triple with raw counts.
struct Prf {
  int tp = 0;
  int fp = 0;
  int fn = 0;

  double precision() const;
  double recall() const;
  double f1() const;
};

/// Exact-match evaluation result.
struct ExactResult {
  Prf micro;
  double macro_f1 = 0.0;
  std::map<std::string, Prf> per_type;
};

/// Accumulates exact-match statistics over (gold, predicted) span pairs.
class ExactMatchEvaluator {
 public:
  void Add(const std::vector<text::Span>& gold,
           const std::vector<text::Span>& predicted);

  /// Folds another evaluator's counts into this one. Counts are additive,
  /// so merging per-shard evaluators in a fixed order yields exactly the
  /// result of a single sequential pass (used by the parallel Evaluate).
  void Merge(const ExactMatchEvaluator& other);

  ExactResult Result() const;

 private:
  std::map<std::string, Prf> per_type_;
};

/// Relaxed (MUC-style) evaluation result.
struct RelaxedResult {
  Prf type;      // type dimension: correct type + any overlap
  Prf text;      // text dimension: exact boundaries, any type
  double muc_f1 = 0.0;  // pooled over both dimensions
};

/// Accumulates MUC-style relaxed-match statistics.
class RelaxedMatchEvaluator {
 public:
  void Add(const std::vector<text::Span>& gold,
           const std::vector<text::Span>& predicted);
  RelaxedResult Result() const;

 private:
  Prf type_;
  Prf text_;
};

/// Convenience: exact-match evaluation of parallel per-sentence span lists.
ExactResult EvaluateExact(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted);

/// Convenience: relaxed evaluation of parallel per-sentence span lists.
RelaxedResult EvaluateRelaxed(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted);

/// Percentile bootstrap confidence interval for micro-F1 over sentence
/// resamples.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval BootstrapMicroF1(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted, int resamples,
    uint64_t seed);

/// Paired significance test between two systems evaluated on the same gold
/// data: approximate randomization over per-sentence prediction swaps
/// (the standard NLP comparison protocol). Returns the two-sided p-value
/// for the observed micro-F1 difference |F1(a) - F1(b)|.
double ApproximateRandomizationPValue(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& system_a,
    const std::vector<std::vector<text::Span>>& system_b, int trials,
    uint64_t seed);

}  // namespace dlner::eval

#endif  // DLNER_EVAL_METRICS_H_
