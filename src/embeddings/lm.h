// Neural language models for contextualized embeddings (survey Sections
// 3.3.4 and 3.2.3).
//
// CharLm reproduces the contextual string embeddings of Akbik et al.
// (Fig. 4): independent forward and backward character-level LSTM language
// models trained on unlabeled text; a word's embedding concatenates the
// forward hidden state at its last character with the backward hidden state
// at its first character. Tokenization-independent and vocabulary-free.
//
// TokenLm is an ELMo-style token-level bidirectional LM (Peters et al.,
// TagLM): forward and backward word-level LSTM LMs whose hidden states are
// concatenated per token.
//
// Both are pre-trained once and used frozen, matching the survey's
// "pre-trained language model embeddings" usage pattern.
#ifndef DLNER_EMBEDDINGS_LM_H_
#define DLNER_EMBEDDINGS_LM_H_

#include <memory>
#include <string>
#include <vector>

#include "embeddings/features.h"
#include "tensor/optim.h"
#include "tensor/rnn.h"
#include "text/vocab.h"

namespace dlner::embeddings {

/// Character-level bidirectional language model (contextual string
/// embeddings).
class CharLm : public Module {
 public:
  struct Config {
    int char_dim = 16;
    int hidden_dim = 24;
    int epochs = 2;
    double lr = 0.005;   // Adam
    uint64_t seed = 1;
    int max_chars = 160;  // training sentences truncated to this many chars
  };

  explicit CharLm(const Config& config);

  /// Trains both directions on unlabeled sentences; returns the final
  /// average per-character negative log likelihood.
  Float Train(const std::vector<std::vector<std::string>>& sentences);

  /// Average per-character NLL on held-out sentences (perplexity probe).
  Float Evaluate(const std::vector<std::vector<std::string>>& sentences);

  /// Contextual embeddings [T, 2*hidden] for a tokenized sentence.
  /// Value-only (the LM is frozen at extraction time).
  Tensor Extract(const std::vector<std::string>& tokens) const;

  int dim() const { return 2 * config_.hidden_dim; }
  std::vector<Var> Parameters() const override;

  /// Binary serialization: config + character vocabulary + parameters.
  /// A loaded CharLm extracts bit-identical embeddings.
  void Save(std::ostream& os) const;

  /// Restores a CharLm written by Save(); null on malformed input.
  static std::unique_ptr<CharLm> Load(std::istream& is);

 private:
  // (Re)creates embedding/cells/output layers sized to char_vocab_.
  void BuildModules();

  // Builds the char-id sequence of a sentence joined with spaces, plus the
  // [start, end] char index of each token.
  std::vector<int> CharIds(const std::vector<std::string>& tokens,
                           std::vector<std::pair<int, int>>* word_bounds) const;
  Float SentenceLoss(const std::vector<int>& ids, bool backward_dir,
                     Var* loss) const;

  Config config_;
  Rng rng_;
  text::Vocabulary char_vocab_;  // fixed printable-ASCII inventory
  std::unique_ptr<Embedding> char_embedding_;
  std::unique_ptr<LstmCell> fwd_;
  std::unique_ptr<LstmCell> bwd_;
  std::unique_ptr<Linear> fwd_out_;
  std::unique_ptr<Linear> bwd_out_;
};

/// Token-level bidirectional language model (TagLM/ELMo-style embeddings).
class TokenLm : public Module {
 public:
  struct Config {
    int word_dim = 24;
    int hidden_dim = 24;
    int epochs = 2;
    double lr = 0.005;  // Adam
    int min_count = 2;
    uint64_t seed = 1;
  };

  explicit TokenLm(const Config& config);

  /// Builds the vocabulary and trains both directions; returns the final
  /// average per-token NLL.
  Float Train(const std::vector<std::vector<std::string>>& sentences);

  /// Contextual embeddings [T, 2*hidden]; value-only.
  Tensor Extract(const std::vector<std::string>& tokens) const;

  int dim() const { return 2 * config_.hidden_dim; }
  std::vector<Var> Parameters() const override;
  const text::Vocabulary& vocab() const { return vocab_; }

  /// Binary serialization: config + token vocabulary + parameters. Only a
  /// trained TokenLm can be saved; a loaded one extracts bit-identically.
  void Save(std::ostream& os) const;

  /// Restores a TokenLm written by Save(); null on malformed input.
  static std::unique_ptr<TokenLm> Load(std::istream& is);

 private:
  // (Re)creates embedding/cells/output layers sized to vocab_.
  void BuildModules();

  Config config_;
  Rng rng_;
  text::Vocabulary vocab_;
  std::unique_ptr<Embedding> word_embedding_;
  std::unique_ptr<LstmCell> fwd_;
  std::unique_ptr<LstmCell> bwd_;
  std::unique_ptr<Linear> fwd_out_;
  std::unique_ptr<Linear> bwd_out_;
  bool trained_ = false;
};

/// Frozen contextual-string-embedding feature backed by a trained CharLm.
class CharLmFeature : public TokenFeature {
 public:
  explicit CharLmFeature(const CharLm* lm) : lm_(lm) {
    DLNER_CHECK(lm_ != nullptr);
  }
  Var Forward(const std::vector<std::string>& tokens,
              bool) const override {
    return Constant(lm_->Extract(tokens));
  }
  int dim() const override { return lm_->dim(); }
  std::vector<Var> Parameters() const override { return {}; }

 private:
  const CharLm* lm_;  // not owned
};

/// Frozen token-LM embedding feature backed by a trained TokenLm.
class TokenLmFeature : public TokenFeature {
 public:
  explicit TokenLmFeature(const TokenLm* lm) : lm_(lm) {
    DLNER_CHECK(lm_ != nullptr);
  }
  Var Forward(const std::vector<std::string>& tokens,
              bool) const override {
    return Constant(lm_->Extract(tokens));
  }
  int dim() const override { return lm_->dim(); }
  std::vector<Var> Parameters() const override { return {}; }

 private:
  const TokenLm* lm_;  // not owned
};

}  // namespace dlner::embeddings

#endif  // DLNER_EMBEDDINGS_LM_H_
