#include "embeddings/features.h"

#include <cctype>

namespace dlner::embeddings {

// ---------------------------------------------------------------------------
// WordEmbeddingFeature.
// ---------------------------------------------------------------------------

WordEmbeddingFeature::WordEmbeddingFeature(const text::Vocabulary* vocab,
                                           int dim, Rng* rng,
                                           Float unk_dropout,
                                           const std::string& name)
    : vocab_(vocab),
      rng_(rng),
      unk_dropout_(unk_dropout),
      embedding_(std::make_unique<Embedding>(vocab->size(), dim, rng, name)) {
  DLNER_CHECK(vocab_ != nullptr);
  DLNER_CHECK_GE(unk_dropout_, 0.0);
  DLNER_CHECK_LT(unk_dropout_, 1.0);
}

Var WordEmbeddingFeature::Forward(const std::vector<std::string>& tokens,
                                  bool training) const {
  std::vector<int> ids = vocab_->Encode(tokens);
  if (training && unk_dropout_ > 0.0) {
    for (int& id : ids) {
      if (rng_->Bernoulli(unk_dropout_)) id = text::Vocabulary::kUnkId;
    }
  }
  return embedding_->Lookup(ids);
}

// ---------------------------------------------------------------------------
// WordShapeFeature.
// ---------------------------------------------------------------------------

std::vector<Float> WordShapeFeature::ShapeOf(const std::string& word) {
  int upper = 0, lower = 0, digit = 0, punct = 0;
  for (char ch : word) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isupper(c)) {
      ++upper;
    } else if (std::islower(c)) {
      ++lower;
    } else if (std::isdigit(c)) {
      ++digit;
    } else {
      ++punct;
    }
  }
  const int len = static_cast<int>(word.size());
  const bool init_cap =
      !word.empty() && std::isupper(static_cast<unsigned char>(word[0]));
  std::vector<Float> f(kDim, 0.0);
  f[0] = (len > 0 && upper == len) ? 1.0 : 0.0;        // ALLCAPS
  f[1] = init_cap ? 1.0 : 0.0;                         // Initial cap
  f[2] = (upper > 0 && !init_cap) ? 1.0 : 0.0;         // has inner cap
  f[3] = (len > 0 && lower == len) ? 1.0 : 0.0;        // all lower
  f[4] = digit > 0 ? 1.0 : 0.0;                        // has digit
  f[5] = (len > 0 && digit == len) ? 1.0 : 0.0;        // all digit
  f[6] = punct > 0 ? 1.0 : 0.0;                        // has punct/symbol
  f[7] = std::min(len, 10) / 10.0;                     // scaled length
  return f;
}

Var WordShapeFeature::Forward(const std::vector<std::string>& tokens,
                              bool /*training*/) const {
  Tensor out({static_cast<int>(tokens.size()), kDim});
  for (int t = 0; t < static_cast<int>(tokens.size()); ++t) {
    const std::vector<Float> f = ShapeOf(tokens[t]);
    for (int j = 0; j < kDim; ++j) out.at(t, j) = f[j];
  }
  return Constant(std::move(out));
}

// ---------------------------------------------------------------------------
// GazetteerFeature.
// ---------------------------------------------------------------------------

GazetteerFeature::GazetteerFeature(const data::Gazetteer* gazetteer)
    : gazetteer_(gazetteer) {
  DLNER_CHECK(gazetteer_ != nullptr);
}

int GazetteerFeature::dim() const {
  return static_cast<int>(gazetteer_->types().size());
}

Var GazetteerFeature::Forward(const std::vector<std::string>& tokens,
                              bool /*training*/) const {
  const auto feats = gazetteer_->MatchFeatures(tokens);
  Tensor out({static_cast<int>(tokens.size()), dim()});
  for (int t = 0; t < static_cast<int>(tokens.size()); ++t) {
    for (int j = 0; j < dim(); ++j) out.at(t, j) = feats[t][j];
  }
  return Constant(std::move(out));
}

// ---------------------------------------------------------------------------
// ComposedRepresentation.
// ---------------------------------------------------------------------------

ComposedRepresentation::ComposedRepresentation(
    std::vector<std::unique_ptr<TokenFeature>> features, Float dropout,
    Rng* rng)
    : features_(std::move(features)), dropout_(dropout), rng_(rng), dim_(0) {
  DLNER_CHECK(!features_.empty());
  for (const auto& f : features_) dim_ += f->dim();
}

Var ComposedRepresentation::Forward(const std::vector<std::string>& tokens,
                                    bool training) const {
  DLNER_CHECK(!tokens.empty());
  std::vector<Var> parts;
  parts.reserve(features_.size());
  for (const auto& f : features_) parts.push_back(f->Forward(tokens, training));
  Var out = parts.size() == 1 ? parts[0] : ConcatCols(parts);
  return Dropout(out, dropout_, rng_, training);
}

std::vector<Var> ComposedRepresentation::Parameters() const {
  std::vector<Var> all;
  for (const auto& f : features_) {
    for (const Var& p : f->Parameters()) all.push_back(p);
  }
  return all;
}

}  // namespace dlner::embeddings
