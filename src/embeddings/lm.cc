#include "embeddings/lm.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace dlner::embeddings {
namespace {

// Deserialization sanity caps: any saved LM exceeding them is corrupt.
// Kept tight (real LM dims are tens) so a corrupt header that slips past
// the range check still cannot request a large LSTM allocation.
constexpr int kMaxLmDim = 1024;
constexpr uint32_t kMaxVocabBlock = 1u << 26;  // 64 MB of vocab text

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

void WriteVocab(std::ostream& os, const text::Vocabulary& vocab) {
  std::ostringstream block;
  vocab.Save(block);
  WriteLenString(os, block.str());
}

bool ReadVocab(std::istream& is, text::Vocabulary* vocab) {
  std::string data;
  if (!ReadLenString(is, &data, kMaxVocabBlock)) return false;
  std::istringstream block(data);
  return text::Vocabulary::Load(block, vocab);
}

}  // namespace

// ---------------------------------------------------------------------------
// CharLm.
// ---------------------------------------------------------------------------

CharLm::CharLm(const Config& config) : config_(config), rng_(config.seed) {
  // Fixed printable-ASCII inventory so extraction never needs retraining.
  for (int c = 32; c < 127; ++c) {
    char_vocab_.Add(std::string(1, static_cast<char>(c)));
  }
  char_vocab_.Freeze();
  BuildModules();
}

void CharLm::BuildModules() {
  char_embedding_ = std::make_unique<Embedding>(
      char_vocab_.size(), config_.char_dim, &rng_, "charlm.emb");
  fwd_ = std::make_unique<LstmCell>(config_.char_dim, config_.hidden_dim,
                                    &rng_, "charlm.fwd");
  bwd_ = std::make_unique<LstmCell>(config_.char_dim, config_.hidden_dim,
                                    &rng_, "charlm.bwd");
  fwd_out_ = std::make_unique<Linear>(config_.hidden_dim, char_vocab_.size(),
                                      &rng_, "charlm.fwd_out");
  bwd_out_ = std::make_unique<Linear>(config_.hidden_dim, char_vocab_.size(),
                                      &rng_, "charlm.bwd_out");
}

void CharLm::Save(std::ostream& os) const {
  WritePod(os, config_.char_dim);
  WritePod(os, config_.hidden_dim);
  WritePod(os, config_.epochs);
  WritePod(os, config_.lr);
  WritePod(os, config_.seed);
  WritePod(os, config_.max_chars);
  WriteVocab(os, char_vocab_);
  SaveParameters(os, Parameters());
}

std::unique_ptr<CharLm> CharLm::Load(std::istream& is) {
  Config config;
  if (!ReadPod(is, &config.char_dim)) return nullptr;
  if (!ReadPod(is, &config.hidden_dim)) return nullptr;
  if (!ReadPod(is, &config.epochs)) return nullptr;
  if (!ReadPod(is, &config.lr)) return nullptr;
  if (!ReadPod(is, &config.seed)) return nullptr;
  if (!ReadPod(is, &config.max_chars)) return nullptr;
  if (config.char_dim <= 0 || config.char_dim > kMaxLmDim ||
      config.hidden_dim <= 0 || config.hidden_dim > kMaxLmDim) {
    return nullptr;
  }
  auto lm = std::make_unique<CharLm>(config);
  text::Vocabulary vocab;
  if (!ReadVocab(is, &vocab)) return nullptr;
  lm->char_vocab_ = std::move(vocab);
  lm->BuildModules();  // resize to the loaded inventory
  if (!LoadParameters(is, lm->Parameters())) return nullptr;
  return lm;
}

std::vector<Var> CharLm::Parameters() const {
  return JoinParameters({char_embedding_.get(), fwd_.get(), bwd_.get(),
                         fwd_out_.get(), bwd_out_.get()});
}

std::vector<int> CharLm::CharIds(
    const std::vector<std::string>& tokens,
    std::vector<std::pair<int, int>>* word_bounds) const {
  std::vector<int> ids;
  if (word_bounds != nullptr) word_bounds->clear();
  for (size_t w = 0; w < tokens.size(); ++w) {
    if (w > 0) ids.push_back(char_vocab_.Id(" "));
    const int start = static_cast<int>(ids.size());
    for (char c : tokens[w]) ids.push_back(char_vocab_.Id(std::string(1, c)));
    int end = static_cast<int>(ids.size()) - 1;
    if (end < start) end = start > 0 ? start - 1 : 0;  // empty token guard
    if (word_bounds != nullptr) word_bounds->push_back({start, end});
  }
  if (ids.empty()) ids.push_back(char_vocab_.Id(" "));
  return ids;
}

Float CharLm::SentenceLoss(const std::vector<int>& ids, bool backward_dir,
                           Var* loss) const {
  const int n = static_cast<int>(ids.size());
  if (n < 2) {
    *loss = Constant(Tensor({1}));
    return 0.0;
  }
  const LstmCell& cell = backward_dir ? *bwd_ : *fwd_;
  const Linear& out = backward_dir ? *bwd_out_ : *fwd_out_;
  RnnState state = cell.InitialState();
  std::vector<Var> terms;
  terms.reserve(n - 1);
  for (int step = 0; step < n - 1; ++step) {
    const int cur = backward_dir ? ids[n - 1 - step] : ids[step];
    const int next = backward_dir ? ids[n - 2 - step] : ids[step + 1];
    state = cell.Step(char_embedding_->LookupOne(cur), state);
    Var logits = out.ApplyVec(state.h);
    terms.push_back(CrossEntropyWithLogits(logits, next));
  }
  *loss = Scale(Sum(ConcatVecs(terms)), 1.0 / static_cast<int>(terms.size()));
  return (*loss)->value[0];
}

Float CharLm::Train(const std::vector<std::vector<std::string>>& sentences) {
  auto opt = std::make_unique<Adam>(Parameters(), config_.lr);
  Float last_nll = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Float total = 0.0;
    int count = 0;
    for (const auto& sent : sentences) {
      std::vector<int> ids = CharIds(sent, nullptr);
      if (static_cast<int>(ids.size()) > config_.max_chars) {
        ids.resize(config_.max_chars);
      }
      for (bool dir : {false, true}) {
        Var loss;
        const Float nll = SentenceLoss(ids, dir, &loss);
        if (loss->value.size() == 1 && loss->requires_grad) {
          opt->ZeroGrad();
          Backward(loss);
          opt->ClipGradNorm(5.0);
          opt->Step();
        }
        total += nll;
        ++count;
      }
    }
    last_nll = count > 0 ? total / count : 0.0;
  }
  return last_nll;
}

Float CharLm::Evaluate(const std::vector<std::vector<std::string>>& sentences) {
  Float total = 0.0;
  int count = 0;
  for (const auto& sent : sentences) {
    std::vector<int> ids = CharIds(sent, nullptr);
    for (bool dir : {false, true}) {
      Var loss;
      total += SentenceLoss(ids, dir, &loss);
      ++count;
    }
  }
  return count > 0 ? total / count : 0.0;
}

Tensor CharLm::Extract(const std::vector<std::string>& tokens) const {
  DLNER_CHECK(!tokens.empty());
  std::vector<std::pair<int, int>> bounds;
  const std::vector<int> ids = CharIds(tokens, &bounds);
  const int n = static_cast<int>(ids.size());
  const int h = config_.hidden_dim;

  // Hidden states after consuming each character, both directions.
  std::vector<Tensor> fwd_h(n), bwd_h(n);
  RnnState fs = fwd_->InitialState();
  for (int t = 0; t < n; ++t) {
    fs = fwd_->Step(char_embedding_->LookupOne(ids[t]), fs);
    fwd_h[t] = fs.h->value;
  }
  RnnState bs = bwd_->InitialState();
  for (int t = n - 1; t >= 0; --t) {
    bs = bwd_->Step(char_embedding_->LookupOne(ids[t]), bs);
    bwd_h[t] = bs.h->value;
  }

  Tensor out({static_cast<int>(tokens.size()), 2 * h});
  for (size_t w = 0; w < tokens.size(); ++w) {
    const auto [start, end] = bounds[w];
    for (int j = 0; j < h; ++j) {
      out.at(static_cast<int>(w), j) = fwd_h[end][j];
      out.at(static_cast<int>(w), h + j) = bwd_h[start][j];
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// TokenLm.
// ---------------------------------------------------------------------------

TokenLm::TokenLm(const Config& config) : config_(config), rng_(config.seed) {}

std::vector<Var> TokenLm::Parameters() const {
  if (!trained_ && word_embedding_ == nullptr) return {};
  return JoinParameters({word_embedding_.get(), fwd_.get(), bwd_.get(),
                         fwd_out_.get(), bwd_out_.get()});
}

void TokenLm::BuildModules() {
  word_embedding_ = std::make_unique<Embedding>(
      vocab_.size(), config_.word_dim, &rng_, "tokenlm.emb");
  fwd_ = std::make_unique<LstmCell>(config_.word_dim, config_.hidden_dim,
                                    &rng_, "tokenlm.fwd");
  bwd_ = std::make_unique<LstmCell>(config_.word_dim, config_.hidden_dim,
                                    &rng_, "tokenlm.bwd");
  fwd_out_ = std::make_unique<Linear>(config_.hidden_dim, vocab_.size(), &rng_,
                                      "tokenlm.fwd_out");
  bwd_out_ = std::make_unique<Linear>(config_.hidden_dim, vocab_.size(), &rng_,
                                      "tokenlm.bwd_out");
}

void TokenLm::Save(std::ostream& os) const {
  DLNER_CHECK_MSG(trained_, "cannot save an untrained TokenLm");
  WritePod(os, config_.word_dim);
  WritePod(os, config_.hidden_dim);
  WritePod(os, config_.epochs);
  WritePod(os, config_.lr);
  WritePod(os, config_.min_count);
  WritePod(os, config_.seed);
  WriteVocab(os, vocab_);
  SaveParameters(os, Parameters());
}

std::unique_ptr<TokenLm> TokenLm::Load(std::istream& is) {
  Config config;
  if (!ReadPod(is, &config.word_dim)) return nullptr;
  if (!ReadPod(is, &config.hidden_dim)) return nullptr;
  if (!ReadPod(is, &config.epochs)) return nullptr;
  if (!ReadPod(is, &config.lr)) return nullptr;
  if (!ReadPod(is, &config.min_count)) return nullptr;
  if (!ReadPod(is, &config.seed)) return nullptr;
  if (config.word_dim <= 0 || config.word_dim > kMaxLmDim ||
      config.hidden_dim <= 0 || config.hidden_dim > kMaxLmDim) {
    return nullptr;
  }
  auto lm = std::make_unique<TokenLm>(config);
  if (!ReadVocab(is, &lm->vocab_)) return nullptr;
  lm->BuildModules();
  lm->trained_ = true;
  if (!LoadParameters(is, lm->Parameters())) return nullptr;
  return lm;
}

Float TokenLm::Train(const std::vector<std::vector<std::string>>& sentences) {
  for (const auto& sent : sentences) {
    for (const std::string& w : sent) vocab_.Add(w);
  }
  vocab_.Freeze(config_.min_count);
  BuildModules();
  trained_ = true;

  auto opt = std::make_unique<Adam>(Parameters(), config_.lr);
  Float last_nll = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Float total = 0.0;
    int count = 0;
    for (const auto& sent : sentences) {
      const std::vector<int> ids = vocab_.Encode(sent);
      const int n = static_cast<int>(ids.size());
      if (n < 2) continue;
      for (bool backward_dir : {false, true}) {
        const LstmCell& cell = backward_dir ? *bwd_ : *fwd_;
        const Linear& out = backward_dir ? *bwd_out_ : *fwd_out_;
        RnnState state = cell.InitialState();
        std::vector<Var> terms;
        for (int step = 0; step < n - 1; ++step) {
          const int cur = backward_dir ? ids[n - 1 - step] : ids[step];
          const int next = backward_dir ? ids[n - 2 - step] : ids[step + 1];
          state = cell.Step(word_embedding_->LookupOne(cur), state);
          terms.push_back(
              CrossEntropyWithLogits(out.ApplyVec(state.h), next));
        }
        Var loss =
            Scale(Sum(ConcatVecs(terms)), 1.0 / static_cast<int>(terms.size()));
        opt->ZeroGrad();
        Backward(loss);
        opt->ClipGradNorm(5.0);
        opt->Step();
        total += loss->value[0];
        ++count;
      }
    }
    last_nll = count > 0 ? total / count : 0.0;
  }
  return last_nll;
}

Tensor TokenLm::Extract(const std::vector<std::string>& tokens) const {
  DLNER_CHECK(trained_);
  DLNER_CHECK(!tokens.empty());
  const std::vector<int> ids = vocab_.Encode(tokens);
  const int n = static_cast<int>(ids.size());
  const int h = config_.hidden_dim;
  Tensor out({n, 2 * h});

  RnnState fs = fwd_->InitialState();
  for (int t = 0; t < n; ++t) {
    fs = fwd_->Step(word_embedding_->LookupOne(ids[t]), fs);
    for (int j = 0; j < h; ++j) out.at(t, j) = fs.h->value[j];
  }
  RnnState bs = bwd_->InitialState();
  for (int t = n - 1; t >= 0; --t) {
    bs = bwd_->Step(word_embedding_->LookupOne(ids[t]), bs);
    for (int j = 0; j < h; ++j) out.at(t, h + j) = bs.h->value[j];
  }
  return out;
}

}  // namespace dlner::embeddings
