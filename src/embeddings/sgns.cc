#include "embeddings/sgns.h"

#include <algorithm>
#include <cmath>

#include "tensor/rng.h"
#include "text/types.h"

namespace dlner::embeddings {
namespace {

Float FastSigmoid(Float x) {
  if (x > 12.0) return 1.0;
  if (x < -12.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

// Unigram^0.75 sampler via cumulative weights + binary search.
class NegativeSampler {
 public:
  NegativeSampler(const std::vector<double>& counts) {
    cumulative_.resize(counts.size());
    double acc = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
      acc += std::pow(counts[i], 0.75);
      cumulative_[i] = acc;
    }
  }

  int Sample(Rng* rng) const {
    const double r = rng->Uniform() * cumulative_.back();
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), r);
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

SkipGramModel SkipGramModel::Train(
    const std::vector<std::vector<std::string>>& sentences,
    const Config& config) {
  SkipGramModel model;
  model.dim_ = config.dim;

  // Vocabulary.
  for (const auto& sent : sentences) {
    for (const std::string& w : sent) model.vocab_.Add(w);
  }
  model.vocab_.Freeze(config.min_count);
  const int v = model.vocab_.size();

  Rng rng(config.seed);
  model.in_vectors_.assign(v, std::vector<Float>(config.dim));
  model.out_vectors_.assign(v, std::vector<Float>(config.dim, 0.0));
  for (auto& row : model.in_vectors_) {
    for (Float& x : row) x = rng.Uniform(-0.5, 0.5) / config.dim;
  }

  std::vector<double> counts(v, 0.0);
  // Skip UNK (id 0) as a negative target: give it zero mass unless it is
  // the only entry.
  for (const auto& sent : sentences) {
    for (const std::string& w : sent) {
      const int id = model.vocab_.Id(w);
      if (id != text::Vocabulary::kUnkId) counts[id] += 1.0;
    }
  }
  if (v == 1) counts[0] = 1.0;
  NegativeSampler sampler(counts);

  // Pre-encode sentences once.
  std::vector<std::vector<int>> encoded;
  encoded.reserve(sentences.size());
  for (const auto& sent : sentences) encoded.push_back(model.vocab_.Encode(sent));

  const long long total_steps =
      static_cast<long long>(config.epochs) * sentences.size();
  long long step = 0;
  std::vector<Float> grad_in(config.dim);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& ids : encoded) {
      const double progress =
          total_steps > 0 ? static_cast<double>(step) / total_steps : 0.0;
      const Float lr = config.lr * (1.0 - 0.9 * progress);
      ++step;
      const int n = static_cast<int>(ids.size());
      for (int i = 0; i < n; ++i) {
        const int center = ids[i];
        if (center == text::Vocabulary::kUnkId) continue;
        const int win = rng.UniformInt(1, config.window);
        for (int off = -win; off <= win; ++off) {
          if (off == 0) continue;
          const int j = i + off;
          if (j < 0 || j >= n) continue;
          const int context = ids[j];
          if (context == text::Vocabulary::kUnkId) continue;

          std::vector<Float>& vin = model.in_vectors_[center];
          std::fill(grad_in.begin(), grad_in.end(), 0.0);
          // One positive and `negatives` negative targets.
          for (int k = 0; k <= config.negatives; ++k) {
            int target;
            Float label;
            if (k == 0) {
              target = context;
              label = 1.0;
            } else {
              target = sampler.Sample(&rng);
              if (target == context) continue;
              label = 0.0;
            }
            std::vector<Float>& vout = model.out_vectors_[target];
            Float dot = 0.0;
            for (int d = 0; d < config.dim; ++d) dot += vin[d] * vout[d];
            const Float g = (FastSigmoid(dot) - label) * lr;
            for (int d = 0; d < config.dim; ++d) {
              grad_in[d] += g * vout[d];
              vout[d] -= g * vin[d];
            }
          }
          for (int d = 0; d < config.dim; ++d) vin[d] -= grad_in[d];
        }
      }
    }
  }
  return model;
}

bool SkipGramModel::HasWord(const std::string& word) const {
  return vocab_.Contains(word);
}

const std::vector<Float>& SkipGramModel::VectorOf(
    const std::string& word) const {
  const int id = vocab_.Id(word);
  DLNER_CHECK_MSG(id != text::Vocabulary::kUnkId || word == "<unk>",
                  "word not in SGNS vocabulary: " << word);
  return in_vectors_[id];
}

int SkipGramModel::CopyInto(const text::Vocabulary& vocab,
                            Embedding* embedding) const {
  DLNER_CHECK(embedding != nullptr);
  DLNER_CHECK_EQ(embedding->dim(), dim_);
  DLNER_CHECK_EQ(embedding->vocab_size(), vocab.size());
  int copied = 0;
  for (int id = 1; id < vocab.size(); ++id) {
    const std::string& word = vocab.TokenOf(id);
    if (!HasWord(word)) continue;
    embedding->SetRow(id, VectorOf(word));
    ++copied;
  }
  return copied;
}

Float SkipGramModel::Similarity(const std::string& a,
                                const std::string& b) const {
  const std::vector<Float>& va = VectorOf(a);
  const std::vector<Float>& vb = VectorOf(b);
  Float dot = 0.0, na = 0.0, nb = 0.0;
  for (int d = 0; d < dim_; ++d) {
    dot += va[d] * vb[d];
    na += va[d] * va[d];
    nb += vb[d] * vb[d];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace dlner::embeddings
