// Distributed representations for input (survey Section 3.2).
//
// A TokenFeature maps a token sequence to a [T, d] feature matrix. The
// ComposedRepresentation concatenates several features per token — exactly
// the hybrid-representation recipe of the Table 3 systems (word embedding
// + char-CNN/RNN + word shape + gazetteer + LM embeddings).
#ifndef DLNER_EMBEDDINGS_FEATURES_H_
#define DLNER_EMBEDDINGS_FEATURES_H_

#include <memory>
#include <string>
#include <vector>

#include "data/gazetteer.h"
#include "tensor/nn.h"
#include "text/vocab.h"

namespace dlner::embeddings {

/// Per-token feature extractor producing a [T, dim] matrix.
class TokenFeature : public Module {
 public:
  /// Const so a shared model can run concurrent forward passes; the rng is
  /// only touched when `training` is true.
  virtual Var Forward(const std::vector<std::string>& tokens,
                      bool training) const = 0;
  virtual int dim() const = 0;
};

/// Trainable word-embedding lookup (survey Section 3.2.1). The table can be
/// initialized from pre-trained vectors (see SkipGramModel::CopyInto) and
/// optionally frozen.
class WordEmbeddingFeature : public TokenFeature {
 public:
  /// `unk_dropout` is word-level dropout (Lample et al.): during training
  /// each token is replaced by UNK with this probability, forcing the model
  /// to rely on character/context signals — the standard recipe for making
  /// character representations pay off on unseen entities.
  WordEmbeddingFeature(const text::Vocabulary* vocab, int dim, Rng* rng,
                       Float unk_dropout = 0.0,
                       const std::string& name = "word_emb");

  Var Forward(const std::vector<std::string>& tokens,
              bool training) const override;
  int dim() const override { return embedding_->dim(); }
  std::vector<Var> Parameters() const override {
    return embedding_->Parameters();
  }
  Embedding* embedding() { return embedding_.get(); }
  const Embedding& embedding() const { return *embedding_; }
  const text::Vocabulary& vocab() const { return *vocab_; }

 private:
  const text::Vocabulary* vocab_;  // not owned
  Rng* rng_;                       // not owned
  Float unk_dropout_;
  std::unique_ptr<Embedding> embedding_;
};

/// Hand-crafted word-shape features (capitalization pattern, digits,
/// punctuation, length) — the survey's Section 3.2.3 hybrid add-ons
/// (Strubell et al., Chiu & Nichols). Parameter-free and deterministic.
class WordShapeFeature : public TokenFeature {
 public:
  static constexpr int kDim = 8;

  Var Forward(const std::vector<std::string>& tokens,
              bool training) const override;
  int dim() const override { return kDim; }
  std::vector<Var> Parameters() const override { return {}; }

  /// Shape vector of a single word (exposed for tests).
  static std::vector<Float> ShapeOf(const std::string& word);
};

/// Gazetteer type-membership indicators (survey Section 3.2.3; Huang et
/// al.'s gazetteer features). Parameter-free; dimension = #gazetteer types.
class GazetteerFeature : public TokenFeature {
 public:
  explicit GazetteerFeature(const data::Gazetteer* gazetteer);

  Var Forward(const std::vector<std::string>& tokens,
              bool training) const override;
  int dim() const override;
  std::vector<Var> Parameters() const override { return {}; }
  const data::Gazetteer& gazetteer() const { return *gazetteer_; }

 private:
  const data::Gazetteer* gazetteer_;  // not owned
};

/// Concatenation of component features with optional input dropout — the
/// "distributed representations for input" stage of Fig. 2.
class ComposedRepresentation : public TokenFeature {
 public:
  ComposedRepresentation(std::vector<std::unique_ptr<TokenFeature>> features,
                         Float dropout, Rng* rng);

  Var Forward(const std::vector<std::string>& tokens,
              bool training) const override;
  int dim() const override { return dim_; }
  std::vector<Var> Parameters() const override;

  int feature_count() const { return static_cast<int>(features_.size()); }
  const std::vector<std::unique_ptr<TokenFeature>>& features() const {
    return features_;
  }

 private:
  std::vector<std::unique_ptr<TokenFeature>> features_;
  Float dropout_;
  Rng* rng_;  // not owned
  int dim_;
};

}  // namespace dlner::embeddings

#endif  // DLNER_EMBEDDINGS_FEATURES_H_
