// Skip-gram with negative sampling (word2vec SGNS, Mikolov et al.),
// the pre-trained word-embedding substrate of survey Section 3.2.1
// (the role Google Word2Vec / GloVe / SENNA play for the Table 3 systems).
//
// Trained with hand-rolled SGD updates (the standard word2vec trick) rather
// than the autograd tape: each (center, context) pair touches only two rows,
// so the closed-form logistic gradient is orders of magnitude faster.
#ifndef DLNER_EMBEDDINGS_SGNS_H_
#define DLNER_EMBEDDINGS_SGNS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/nn.h"
#include "text/vocab.h"

namespace dlner::embeddings {

class SkipGramModel {
 public:
  struct Config {
    int dim = 32;
    int window = 3;       // max context offset (sampled uniformly per center)
    int negatives = 5;    // negative samples per positive pair
    int epochs = 3;
    double lr = 0.05;     // linearly decayed to lr/10
    int min_count = 2;    // vocabulary frequency cutoff
    uint64_t seed = 1;
  };

  /// Trains embeddings on unlabeled sentences.
  static SkipGramModel Train(
      const std::vector<std::vector<std::string>>& sentences,
      const Config& config);

  bool HasWord(const std::string& word) const;
  /// Input vector of a word; word must be in the model's vocabulary.
  const std::vector<Float>& VectorOf(const std::string& word) const;
  int dim() const { return dim_; }
  int vocab_size() const { return vocab_.size(); }

  /// Copies trained vectors into the rows of `embedding` whose ids map to
  /// words of `vocab` that this model knows. Returns the number of rows
  /// initialized. This is the "use pre-trained embeddings as input" step.
  int CopyInto(const text::Vocabulary& vocab, Embedding* embedding) const;

  /// Cosine similarity between two in-vocabulary words (analysis helper).
  Float Similarity(const std::string& a, const std::string& b) const;

 private:
  SkipGramModel() = default;

  text::Vocabulary vocab_;
  int dim_ = 0;
  std::vector<std::vector<Float>> in_vectors_;
  std::vector<std::vector<Float>> out_vectors_;
};

}  // namespace dlner::embeddings

#endif  // DLNER_EMBEDDINGS_SGNS_H_
