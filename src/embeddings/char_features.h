// Character-level word representations (survey Section 3.2.2, Fig. 3).
//
// CharCnnFeature follows Ma & Hovy / Chiu & Nichols: per word, embed its
// characters, convolve with window 3, and max-pool over character positions
// (Fig. 3a). CharRnnFeature follows Lample et al.: run a char-level BiLSTM
// and concatenate the two final states (Fig. 3b). Both handle out-of-
// vocabulary words by construction.
#ifndef DLNER_EMBEDDINGS_CHAR_FEATURES_H_
#define DLNER_EMBEDDINGS_CHAR_FEATURES_H_

#include <memory>
#include <string>
#include <vector>

#include "embeddings/features.h"
#include "tensor/rnn.h"

namespace dlner::embeddings {

/// CNN-over-characters word representation (Fig. 3a).
class CharCnnFeature : public TokenFeature {
 public:
  CharCnnFeature(const text::Vocabulary* char_vocab, int char_dim,
                 int num_filters, Rng* rng,
                 const std::string& name = "char_cnn");

  Var Forward(const std::vector<std::string>& tokens,
              bool training) const override;
  int dim() const override { return num_filters_; }
  std::vector<Var> Parameters() const override;

 private:
  const text::Vocabulary* char_vocab_;  // not owned
  int num_filters_;
  std::unique_ptr<Embedding> char_embedding_;
  std::unique_ptr<Conv1d> conv_;
};

/// BiLSTM-over-characters word representation (Fig. 3b).
class CharRnnFeature : public TokenFeature {
 public:
  CharRnnFeature(const text::Vocabulary* char_vocab, int char_dim,
                 int hidden_dim, Rng* rng,
                 const std::string& name = "char_rnn");

  Var Forward(const std::vector<std::string>& tokens,
              bool training) const override;
  int dim() const override { return 2 * hidden_dim_; }
  std::vector<Var> Parameters() const override;

 private:
  const text::Vocabulary* char_vocab_;  // not owned
  int hidden_dim_;
  std::unique_ptr<Embedding> char_embedding_;
  std::unique_ptr<LstmCell> forward_;
  std::unique_ptr<LstmCell> backward_;
};

}  // namespace dlner::embeddings

#endif  // DLNER_EMBEDDINGS_CHAR_FEATURES_H_
