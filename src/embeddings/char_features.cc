#include "embeddings/char_features.h"

namespace dlner::embeddings {

CharCnnFeature::CharCnnFeature(const text::Vocabulary* char_vocab,
                               int char_dim, int num_filters, Rng* rng,
                               const std::string& name)
    : char_vocab_(char_vocab),
      num_filters_(num_filters),
      char_embedding_(std::make_unique<Embedding>(char_vocab->size(), char_dim,
                                                  rng, name + ".emb")),
      conv_(std::make_unique<Conv1d>(char_dim, num_filters, /*width=*/3,
                                     /*dilation=*/1, rng, name + ".conv")) {
  DLNER_CHECK(char_vocab_ != nullptr);
}

Var CharCnnFeature::Forward(const std::vector<std::string>& tokens,
                            bool /*training*/) const {
  std::vector<Var> rows;
  rows.reserve(tokens.size());
  for (const std::string& word : tokens) {
    std::vector<int> ids = char_vocab_->EncodeChars(word);
    if (ids.empty()) ids.push_back(text::Vocabulary::kUnkId);
    Var chars = char_embedding_->Lookup(ids);          // [L, char_dim]
    Var conv = Relu(conv_->Apply(chars));              // [L, filters]
    rows.push_back(MaxOverRows(conv));                 // [filters]
  }
  return StackRows(rows);
}

std::vector<Var> CharCnnFeature::Parameters() const {
  return JoinParameters({char_embedding_.get(), conv_.get()});
}

CharRnnFeature::CharRnnFeature(const text::Vocabulary* char_vocab,
                               int char_dim, int hidden_dim, Rng* rng,
                               const std::string& name)
    : char_vocab_(char_vocab),
      hidden_dim_(hidden_dim),
      char_embedding_(std::make_unique<Embedding>(char_vocab->size(), char_dim,
                                                  rng, name + ".emb")),
      forward_(std::make_unique<LstmCell>(char_dim, hidden_dim, rng,
                                          name + ".fwd")),
      backward_(std::make_unique<LstmCell>(char_dim, hidden_dim, rng,
                                           name + ".bwd")) {
  DLNER_CHECK(char_vocab_ != nullptr);
}

Var CharRnnFeature::Forward(const std::vector<std::string>& tokens,
                            bool /*training*/) const {
  std::vector<Var> rows;
  rows.reserve(tokens.size());
  for (const std::string& word : tokens) {
    std::vector<int> ids = char_vocab_->EncodeChars(word);
    if (ids.empty()) ids.push_back(text::Vocabulary::kUnkId);
    Var chars = char_embedding_->Lookup(ids);  // [L, char_dim]
    auto [fwd_out, fwd_state] = RunRnnWithState(*forward_, chars, false);
    auto [bwd_out, bwd_state] = RunRnnWithState(*backward_, chars, true);
    rows.push_back(ConcatVecs({fwd_state.h, bwd_state.h}));
  }
  return StackRows(rows);
}

std::vector<Var> CharRnnFeature::Parameters() const {
  return JoinParameters(
      {char_embedding_.get(), forward_.get(), backward_.get()});
}

}  // namespace dlner::embeddings
