#include "text/conll.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace dlner::text {

void WriteConll(std::ostream& os, const Corpus& corpus, const TagSet& tags) {
  for (const Sentence& s : corpus.sentences) {
    const std::vector<int> ids = tags.SpansToTagIds(s.spans, s.size());
    for (int t = 0; t < s.size(); ++t) {
      os << s.tokens[t] << ' ' << tags.TagOf(ids[t]) << '\n';
    }
    os << '\n';
  }
}

bool ReadConll(std::istream& is, Corpus* corpus) {
  corpus->sentences.clear();
  corpus->doc_starts.clear();
  std::vector<std::string> tokens;
  std::vector<std::string> tags;

  auto flush = [&]() {
    if (tokens.empty()) return;
    Sentence s;
    s.tokens = tokens;
    s.spans = SpansFromStringTags(tags);
    corpus->sentences.push_back(std::move(s));
    tokens.clear();
    tags.clear();
  };

  bool saw_docstart = false;
  std::string line;
  while (std::getline(is, line)) {
    // Windows line endings: strip the trailing '\r' before the blank-line
    // check, otherwise "\r\n" sentence breaks never flush and every tag
    // carries a '\r' suffix.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      flush();
      continue;
    }
    // CoNLL rows carry the token first and the NER tag in the LAST column
    // (CoNLL-2003 is "token POS chunk tag"); intermediate columns are
    // ignored, so plain 2-column files parse unchanged.
    std::istringstream fields(line);
    std::string field, token, tag;
    int n_fields = 0;
    while (fields >> field) {
      if (n_fields == 0) token = field;
      tag = field;
      ++n_fields;
    }
    // CoNLL-2003 marks document boundaries with a "-DOCSTART- -X- -X- O"
    // sentinel row (sometimes bare "-DOCSTART- O"). It is a marker, not a
    // token: record the boundary and drop the row, otherwise every
    // document contributes a one-token "-DOCSTART-" sentence that pollutes
    // the training vocabulary and the tag statistics.
    if (token == "-DOCSTART-") {
      flush();
      saw_docstart = true;
      const int next = static_cast<int>(corpus->sentences.size());
      if (corpus->doc_starts.empty() || corpus->doc_starts.back() != next) {
        corpus->doc_starts.push_back(next);
      }
      continue;
    }
    if (n_fields < 2) return false;
    tokens.push_back(token);
    tags.push_back(tag);
  }
  flush();
  // A trailing -DOCSTART- with no sentences after it marks no document.
  if (!corpus->doc_starts.empty() &&
      corpus->doc_starts.back() >= static_cast<int>(corpus->sentences.size())) {
    corpus->doc_starts.pop_back();
  }
  // Content before the first sentinel forms an implicit leading document.
  if (saw_docstart && !corpus->doc_starts.empty() &&
      corpus->doc_starts.front() != 0 && !corpus->sentences.empty()) {
    corpus->doc_starts.insert(corpus->doc_starts.begin(), 0);
  }
  return true;
}

bool WriteConllFile(const std::string& path, const Corpus& corpus,
                    const TagSet& tags) {
  std::ofstream os(path);
  if (!os) return false;
  WriteConll(os, corpus, tags);
  return static_cast<bool>(os);
}

bool ReadConllFile(const std::string& path, Corpus* corpus) {
  std::ifstream is(path);
  if (!is) return false;
  return ReadConll(is, corpus);
}

}  // namespace dlner::text
