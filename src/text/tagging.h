// Tagging schemes (IO, BIO, BIOES) and span <-> tag-sequence conversion.
//
// The survey (Fig. 2 and Section 3.1) frames NER as sequence labeling with
// positional tag prefixes; the choice of scheme is one of the design knobs
// compared by the Table 3 systems. TagIdsToSpans is deliberately robust to
// invalid model outputs (stray I-, unterminated B-), following conlleval
// conventions, so that softmax decoders without transition constraints can
// still be evaluated.
#ifndef DLNER_TEXT_TAGGING_H_
#define DLNER_TEXT_TAGGING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "text/types.h"

namespace dlner::text {

/// Positional tagging scheme.
enum class TagScheme {
  kIo,     // I-X / O
  kBio,    // B-X I-X / O
  kBioes,  // B-X I-X E-X S-X / O
};

/// Parses a scheme name ("io", "bio", "bioes").
TagScheme TagSchemeFromString(const std::string& name);
/// Scheme name string.
std::string TagSchemeToString(TagScheme scheme);

/// A closed tag inventory for a fixed entity-type set under one scheme.
/// Tag id 0 is always "O".
class TagSet {
 public:
  TagSet(std::vector<std::string> entity_types, TagScheme scheme);

  int size() const { return static_cast<int>(tags_.size()); }
  int outside_id() const { return 0; }
  TagScheme scheme() const { return scheme_; }
  const std::vector<std::string>& entity_types() const {
    return entity_types_;
  }

  const std::string& TagOf(int id) const;
  /// Id of a tag string; aborts on unknown tags.
  int IdOf(const std::string& tag) const;
  /// True if the tag string belongs to this set.
  bool Contains(const std::string& tag) const;

  /// Encodes flat gold spans as a tag-id sequence of length `num_tokens`.
  /// Spans must be valid, flat, and typed within entity_types().
  std::vector<int> SpansToTagIds(const std::vector<Span>& spans,
                                 int num_tokens) const;

  /// Decodes a tag-id sequence into spans, repairing invalid sequences
  /// leniently (a stray I-X starts a new span; an unterminated entity is
  /// closed at the sequence end).
  std::vector<Span> TagIdsToSpans(const std::vector<int>& tag_ids) const;

  /// Transition validity under the scheme (for constrained Viterbi).
  bool IsValidTransition(int from, int to) const;
  /// Whether a sequence may start with this tag.
  bool IsValidStart(int id) const;
  /// Whether a sequence may end with this tag.
  bool IsValidEnd(int id) const;

 private:
  // Positional role of a tag.
  enum class Role { kOutside, kBegin, kInside, kEnd, kSingle };
  Role RoleOf(int id) const { return roles_[id]; }
  // Entity-type index of a tag (-1 for O).
  int TypeOf(int id) const { return type_index_[id]; }

  std::vector<std::string> entity_types_;
  TagScheme scheme_;
  std::vector<std::string> tags_;
  std::vector<Role> roles_;
  std::vector<int> type_index_;
  std::unordered_map<std::string, int> tag_ids_;
};

/// Decodes string tags with B-/I-/E-/S-/O prefixes into spans without
/// needing a TagSet (used by the CoNLL reader).
std::vector<Span> SpansFromStringTags(const std::vector<std::string>& tags);

}  // namespace dlner::text

#endif  // DLNER_TEXT_TAGGING_H_
