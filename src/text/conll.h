// CoNLL-2003-style column format I/O: one "token tag" pair per line, blank
// line between sentences (the interchange format of Table 1's corpora).
#ifndef DLNER_TEXT_CONLL_H_
#define DLNER_TEXT_CONLL_H_

#include <iosfwd>
#include <string>

#include "text/tagging.h"
#include "text/types.h"

namespace dlner::text {

/// Writes a corpus in CoNLL format using the given tag set/scheme.
void WriteConll(std::ostream& os, const Corpus& corpus, const TagSet& tags);

/// Reads a CoNLL-format stream. Tag strings may use any mix of
/// B-/I-/E-/S-/O prefixes; spans are recovered leniently. Returns false on
/// malformed lines (missing tag column).
bool ReadConll(std::istream& is, Corpus* corpus);

/// File convenience wrappers; return false on I/O failure.
bool WriteConllFile(const std::string& path, const Corpus& corpus,
                    const TagSet& tags);
bool ReadConllFile(const std::string& path, Corpus* corpus);

}  // namespace dlner::text

#endif  // DLNER_TEXT_CONLL_H_
