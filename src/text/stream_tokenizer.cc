#include "text/stream_tokenizer.h"

namespace dlner::text {
namespace {

inline bool IsDelim(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
         c == '\f';
}

inline bool IsSentenceEnd(const std::string& token) {
  return token == "." || token == "!" || token == "?";
}

}  // namespace

StreamTokenizer::StreamTokenizer(const StreamTokenizerOptions& opts)
    : opts_(opts) {
  if (opts_.max_sentence_tokens < 1) opts_.max_sentence_tokens = 1;
}

void StreamTokenizer::Feed(std::string_view chunk) {
  for (char c : chunk) {
    if (IsDelim(c)) {
      EndToken();
      if (c == '\n' && !current_.empty()) EndSentence();
    } else {
      partial_.push_back(c);
    }
  }
}

void StreamTokenizer::Flush() {
  EndToken();
  if (!current_.empty()) EndSentence();
}

std::vector<std::string> StreamTokenizer::NextSentence() {
  std::vector<std::string> s = std::move(ready_.front());
  ready_.pop_front();
  return s;
}

void StreamTokenizer::EndToken() {
  if (partial_.empty()) return;
  current_.push_back(std::move(partial_));
  partial_.clear();
  if (IsSentenceEnd(current_.back()) ||
      static_cast<int>(current_.size()) >= opts_.max_sentence_tokens) {
    EndSentence();
  }
}

void StreamTokenizer::EndSentence() {
  ready_.push_back(std::move(current_));
  current_.clear();
}

}  // namespace dlner::text
