// Incremental tokenizer + sentence segmenter for streaming input.
//
// StreamTokenizer consumes a byte stream in arbitrary chunks and emits
// whitespace-delimited tokens grouped into sentences. Its output is a pure
// function of the concatenated byte stream: feeding the same bytes in chunks
// of 1 byte, 4 KiB, or all at once yields identical sentences. That property
// is what the streaming tagger's chunk-boundary invariance tests rely on.
//
// Rules (deliberately simple and deterministic):
//   - ASCII whitespace (' ', '\t', '\r', '\n', '\v', '\f') ends the current
//     token. All other bytes — including NUL and arbitrary non-UTF-8 bytes —
//     are token bytes.
//   - '\n' ends the current sentence (if any tokens are pending).
//   - A completed token that is exactly ".", "!", or "?" ends the sentence.
//   - A sentence reaching `max_sentence_tokens` tokens is force-broken so
//     downstream batching sees bounded sentence lengths.
//
// UTF-8 safety falls out of the byte rules: every delimiter is a single
// ASCII byte, and ASCII bytes never occur inside a multi-byte UTF-8
// sequence, so a multi-byte character split across Feed() calls simply stays
// buffered in the partial token until a delimiter (or Flush) arrives. A
// token is never split at a chunk boundary.
#ifndef DLNER_TEXT_STREAM_TOKENIZER_H_
#define DLNER_TEXT_STREAM_TOKENIZER_H_

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace dlner::text {

struct StreamTokenizerOptions {
  /// Force a sentence break once this many tokens accumulate. Matches the
  /// serving layer's default per-request token cap.
  int max_sentence_tokens = 512;
};

class StreamTokenizer {
 public:
  StreamTokenizer() = default;
  explicit StreamTokenizer(const StreamTokenizerOptions& opts);

  /// Consumes the next chunk of the byte stream. Completed sentences become
  /// available via NextSentence(). `chunk` may split tokens, UTF-8
  /// sequences, or sentences anywhere; bytes are buffered as needed.
  void Feed(std::string_view chunk);

  /// Ends the stream: the pending partial token (if any) is completed and
  /// the pending sentence (if any) is emitted. The tokenizer is then ready
  /// for a fresh stream.
  void Flush();

  /// True when at least one completed sentence is queued.
  bool HasSentence() const { return !ready_.empty(); }

  /// Pops the oldest completed sentence. Precondition: HasSentence().
  std::vector<std::string> NextSentence();

  /// Tokens buffered in the not-yet-complete sentence (diagnostics only).
  int PendingTokens() const {
    return static_cast<int>(current_.size()) + (partial_.empty() ? 0 : 1);
  }

 private:
  void EndToken();
  void EndSentence();

  StreamTokenizerOptions opts_;
  std::string partial_;                       // bytes of the unfinished token
  std::vector<std::string> current_;          // tokens of unfinished sentence
  std::deque<std::vector<std::string>> ready_;  // completed sentences
};

}  // namespace dlner::text

#endif  // DLNER_TEXT_STREAM_TOKENIZER_H_
