#include "text/tagging.h"

#include <algorithm>

#include "tensor/check.h"

namespace dlner::text {

TagScheme TagSchemeFromString(const std::string& name) {
  if (name == "io") return TagScheme::kIo;
  if (name == "bio") return TagScheme::kBio;
  if (name == "bioes") return TagScheme::kBioes;
  DLNER_CHECK_MSG(false, "unknown tag scheme: " << name);
}

std::string TagSchemeToString(TagScheme scheme) {
  switch (scheme) {
    case TagScheme::kIo:
      return "io";
    case TagScheme::kBio:
      return "bio";
    case TagScheme::kBioes:
      return "bioes";
  }
  DLNER_CHECK(false);
}

TagSet::TagSet(std::vector<std::string> entity_types, TagScheme scheme)
    : entity_types_(std::move(entity_types)), scheme_(scheme) {
  DLNER_CHECK(!entity_types_.empty());
  tags_.push_back("O");
  roles_.push_back(Role::kOutside);
  type_index_.push_back(-1);

  auto add = [this](const std::string& prefix, Role role, int type_idx) {
    tags_.push_back(prefix + "-" + entity_types_[type_idx]);
    roles_.push_back(role);
    type_index_.push_back(type_idx);
  };
  for (int t = 0; t < static_cast<int>(entity_types_.size()); ++t) {
    switch (scheme_) {
      case TagScheme::kIo:
        add("I", Role::kInside, t);
        break;
      case TagScheme::kBio:
        add("B", Role::kBegin, t);
        add("I", Role::kInside, t);
        break;
      case TagScheme::kBioes:
        add("B", Role::kBegin, t);
        add("I", Role::kInside, t);
        add("E", Role::kEnd, t);
        add("S", Role::kSingle, t);
        break;
    }
  }
  for (int i = 0; i < size(); ++i) tag_ids_[tags_[i]] = i;
}

const std::string& TagSet::TagOf(int id) const {
  DLNER_CHECK_GE(id, 0);
  DLNER_CHECK_LT(id, size());
  return tags_[id];
}

int TagSet::IdOf(const std::string& tag) const {
  auto it = tag_ids_.find(tag);
  DLNER_CHECK_MSG(it != tag_ids_.end(), "unknown tag: " << tag);
  return it->second;
}

bool TagSet::Contains(const std::string& tag) const {
  return tag_ids_.count(tag) > 0;
}

std::vector<int> TagSet::SpansToTagIds(const std::vector<Span>& spans,
                                       int num_tokens) const {
  DLNER_CHECK(SpansAreValid(spans, num_tokens));
  std::vector<Span> sorted = spans;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    DLNER_CHECK_MSG(sorted[i].start >= sorted[i - 1].end,
                    "SpansToTagIds requires flat (non-overlapping) spans");
  }

  std::vector<int> out(num_tokens, outside_id());
  for (const Span& sp : sorted) {
    const int len = sp.end - sp.start;
    switch (scheme_) {
      case TagScheme::kIo:
        for (int t = sp.start; t < sp.end; ++t) out[t] = IdOf("I-" + sp.type);
        break;
      case TagScheme::kBio:
        out[sp.start] = IdOf("B-" + sp.type);
        for (int t = sp.start + 1; t < sp.end; ++t) {
          out[t] = IdOf("I-" + sp.type);
        }
        break;
      case TagScheme::kBioes:
        if (len == 1) {
          out[sp.start] = IdOf("S-" + sp.type);
        } else {
          out[sp.start] = IdOf("B-" + sp.type);
          for (int t = sp.start + 1; t < sp.end - 1; ++t) {
            out[t] = IdOf("I-" + sp.type);
          }
          out[sp.end - 1] = IdOf("E-" + sp.type);
        }
        break;
    }
  }
  return out;
}

std::vector<Span> TagSet::TagIdsToSpans(const std::vector<int>& tag_ids) const {
  std::vector<Span> spans;
  int cur_start = -1;
  int cur_type = -1;

  auto close = [&](int end) {
    if (cur_start >= 0) {
      spans.push_back({cur_start, end, entity_types_[cur_type]});
      cur_start = -1;
      cur_type = -1;
    }
  };

  for (int t = 0; t < static_cast<int>(tag_ids.size()); ++t) {
    const int id = tag_ids[t];
    DLNER_CHECK_GE(id, 0);
    DLNER_CHECK_LT(id, size());
    const Role role = RoleOf(id);
    const int type = TypeOf(id);
    switch (role) {
      case Role::kOutside:
        close(t);
        break;
      case Role::kBegin:
        close(t);
        cur_start = t;
        cur_type = type;
        break;
      case Role::kSingle:
        close(t);
        spans.push_back({t, t + 1, entity_types_[type]});
        break;
      case Role::kInside:
        if (cur_start >= 0 && cur_type == type) {
          // continue
        } else {
          close(t);
          cur_start = t;  // lenient: stray I- starts a span
          cur_type = type;
        }
        break;
      case Role::kEnd:
        if (cur_start >= 0 && cur_type == type) {
          close(t + 1);
        } else {
          close(t);  // lenient: stray E- is a singleton
          spans.push_back({t, t + 1, entity_types_[type]});
        }
        break;
    }
  }
  close(static_cast<int>(tag_ids.size()));
  return spans;
}

bool TagSet::IsValidTransition(int from, int to) const {
  const Role fr = RoleOf(from);
  const Role tr = RoleOf(to);
  const int ft = TypeOf(from);
  const int tt = TypeOf(to);
  switch (scheme_) {
    case TagScheme::kIo:
      return true;  // any IO sequence is well-formed
    case TagScheme::kBio:
      // I-X must follow B-X or I-X of the same type.
      if (tr == Role::kInside) {
        return (fr == Role::kBegin || fr == Role::kInside) && ft == tt;
      }
      return true;
    case TagScheme::kBioes: {
      const bool from_open = (fr == Role::kBegin || fr == Role::kInside);
      const bool to_cont = (tr == Role::kInside || tr == Role::kEnd);
      if (from_open) return to_cont && ft == tt;  // must continue same entity
      return !to_cont;  // closed state can only start fresh (O, B, S)
    }
  }
  DLNER_CHECK(false);
}

bool TagSet::IsValidStart(int id) const {
  const Role r = RoleOf(id);
  if (scheme_ == TagScheme::kBioes || scheme_ == TagScheme::kBio) {
    return r == Role::kOutside || r == Role::kBegin || r == Role::kSingle;
  }
  return true;
}

bool TagSet::IsValidEnd(int id) const {
  const Role r = RoleOf(id);
  if (scheme_ == TagScheme::kBioes) {
    return r == Role::kOutside || r == Role::kEnd || r == Role::kSingle;
  }
  return true;
}

std::vector<Span> SpansFromStringTags(const std::vector<std::string>& tags) {
  std::vector<Span> spans;
  int cur_start = -1;
  std::string cur_type;

  auto close = [&](int end) {
    if (cur_start >= 0) {
      spans.push_back({cur_start, end, cur_type});
      cur_start = -1;
      cur_type.clear();
    }
  };

  for (int t = 0; t < static_cast<int>(tags.size()); ++t) {
    const std::string& tag = tags[t];
    if (tag == "O" || tag.size() < 3 || tag[1] != '-') {
      close(t);
      continue;
    }
    const char prefix = tag[0];
    const std::string type = tag.substr(2);
    switch (prefix) {
      case 'B':
        close(t);
        cur_start = t;
        cur_type = type;
        break;
      case 'S':
        close(t);
        spans.push_back({t, t + 1, type});
        break;
      case 'I':
        if (cur_start >= 0 && cur_type == type) break;
        close(t);
        cur_start = t;
        cur_type = type;
        break;
      case 'E':
        if (cur_start >= 0 && cur_type == type) {
          close(t + 1);
        } else {
          close(t);
          spans.push_back({t, t + 1, type});
        }
        break;
      default:
        close(t);
        break;
    }
  }
  close(static_cast<int>(tags.size()));
  return spans;
}

}  // namespace dlner::text
