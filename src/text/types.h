// Core text types: entity spans, annotated sentences, corpora.
//
// These mirror the survey's task formulation (Section 2.1): given a token
// sequence, NER outputs a list of (start, end, type) tuples. Spans use
// half-open [start, end) token indexes. Nested annotations are represented
// simply by overlapping spans in the same list.
#ifndef DLNER_TEXT_TYPES_H_
#define DLNER_TEXT_TYPES_H_

#include <string>
#include <vector>

namespace dlner::text {

/// One entity mention: tokens [start, end) with an entity type label.
struct Span {
  int start = 0;
  int end = 0;  // exclusive
  std::string type;

  friend bool operator==(const Span& a, const Span& b) {
    return a.start == b.start && a.end == b.end && a.type == b.type;
  }
  friend bool operator<(const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    return a.type < b.type;
  }
};

/// A tokenized sentence with gold entity annotations.
struct Sentence {
  std::vector<std::string> tokens;
  std::vector<Span> spans;

  int size() const { return static_cast<int>(tokens.size()); }
};

/// A collection of annotated sentences.
struct Corpus {
  std::vector<Sentence> sentences;

  int size() const { return static_cast<int>(sentences.size()); }
  /// Total token count across sentences.
  int TokenCount() const;
  /// Total entity mention count across sentences.
  int EntityCount() const;
};

/// True when the span list is internally consistent for a sentence of
/// `num_tokens` tokens: indexes in range, start < end, types non-empty.
bool SpansAreValid(const std::vector<Span>& spans, int num_tokens);

/// True when no two spans in the list overlap (flat annotation).
bool SpansAreFlat(std::vector<Span> spans);

}  // namespace dlner::text

#endif  // DLNER_TEXT_TYPES_H_
