// Core text types: entity spans, annotated sentences, corpora.
//
// These mirror the survey's task formulation (Section 2.1): given a token
// sequence, NER outputs a list of (start, end, type) tuples. Spans use
// half-open [start, end) token indexes. Nested annotations are represented
// simply by overlapping spans in the same list.
#ifndef DLNER_TEXT_TYPES_H_
#define DLNER_TEXT_TYPES_H_

#include <string>
#include <utility>
#include <vector>

namespace dlner::text {

/// One entity mention: tokens [start, end) with an entity type label.
struct Span {
  int start = 0;
  int end = 0;  // exclusive
  std::string type;

  friend bool operator==(const Span& a, const Span& b) {
    return a.start == b.start && a.end == b.end && a.type == b.type;
  }
  friend bool operator<(const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    return a.type < b.type;
  }
};

/// A tokenized sentence with gold entity annotations.
struct Sentence {
  std::vector<std::string> tokens;
  std::vector<Span> spans;

  int size() const { return static_cast<int>(tokens.size()); }
};

/// A collection of annotated sentences, optionally grouped into documents.
struct Corpus {
  std::vector<Sentence> sentences;
  /// Sentence indexes that begin a new document (strictly increasing;
  /// 0 when present). Empty means the grouping is unknown — consumers that
  /// need documents treat the whole corpus as one. Populated by ReadConll
  /// from `-DOCSTART-` sentinels and by the document-level scenario
  /// generators (data/scenarios.h).
  std::vector<int> doc_starts;

  int size() const { return static_cast<int>(sentences.size()); }
  /// Total token count across sentences.
  int TokenCount() const;
  /// Total entity mention count across sentences.
  int EntityCount() const;
  /// Number of documents (1 for a non-empty corpus without boundaries).
  int DocCount() const;
  /// Sentence-index range [first, last) of document `doc`.
  std::pair<int, int> DocRange(int doc) const;
};

/// True when the span list is internally consistent for a sentence of
/// `num_tokens` tokens: indexes in range, start < end, types non-empty.
bool SpansAreValid(const std::vector<Span>& spans, int num_tokens);

/// True when no two spans in the list overlap (flat annotation).
bool SpansAreFlat(std::vector<Span> spans);

}  // namespace dlner::text

#endif  // DLNER_TEXT_TYPES_H_
