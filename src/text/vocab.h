// Token and character vocabularies with UNK handling and frequency cutoffs.
#ifndef DLNER_TEXT_VOCAB_H_
#define DLNER_TEXT_VOCAB_H_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/types.h"

namespace dlner::text {

/// Maps strings to dense integer ids. Id 0 is always the unknown token.
class Vocabulary {
 public:
  static constexpr int kUnkId = 0;
  static constexpr const char* kUnkToken = "<unk>";

  Vocabulary();

  /// Adds a token (or bumps its count) and returns its id. Must not be
  /// called after Freeze().
  int Add(const std::string& token);

  /// Id of a token; kUnkId if absent.
  int Id(const std::string& token) const;

  /// True if the token is in the vocabulary.
  bool Contains(const std::string& token) const;

  /// Token string for an id.
  const std::string& TokenOf(int id) const;

  /// Number of entries including UNK.
  int size() const { return static_cast<int>(tokens_.size()); }

  /// Occurrence count recorded while building (0 for UNK).
  int CountOf(int id) const;

  /// Drops tokens seen fewer than `min_count` times (their ids map to UNK)
  /// and forbids further Add() calls. Ids are re-assigned compactly.
  void Freeze(int min_count = 1);
  bool frozen() const { return frozen_; }

  /// Builds a frozen word vocabulary from a corpus.
  static Vocabulary FromCorpus(const Corpus& corpus, int min_count = 1);

  /// Builds a frozen character vocabulary from a corpus.
  static Vocabulary CharsFromCorpus(const Corpus& corpus);

  /// Ids for every token of a sentence (UNK for out-of-vocabulary).
  std::vector<int> Encode(const std::vector<std::string>& tokens) const;

  /// Ids for every character of a word.
  std::vector<int> EncodeChars(const std::string& word) const;

  /// Writes the vocabulary (frozen or not) to a stream in a line-oriented
  /// format; Load restores an equivalent frozen vocabulary with identical
  /// ids.
  void Save(std::ostream& os) const;
  static bool Load(std::istream& is, Vocabulary* vocab);

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<std::string> tokens_;
  std::vector<int> counts_;
  bool frozen_ = false;
};

}  // namespace dlner::text

#endif  // DLNER_TEXT_VOCAB_H_
