#include "text/vocab.h"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "tensor/check.h"

namespace dlner::text {

Vocabulary::Vocabulary() {
  tokens_.push_back(kUnkToken);
  counts_.push_back(0);
  index_[kUnkToken] = kUnkId;
}

int Vocabulary::Add(const std::string& token) {
  DLNER_CHECK_MSG(!frozen_, "Add() after Freeze()");
  auto it = index_.find(token);
  if (it != index_.end()) {
    ++counts_[it->second];
    return it->second;
  }
  const int id = static_cast<int>(tokens_.size());
  index_[token] = id;
  tokens_.push_back(token);
  counts_.push_back(1);
  return id;
}

int Vocabulary::Id(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnkId : it->second;
}

bool Vocabulary::Contains(const std::string& token) const {
  return index_.count(token) > 0;
}

const std::string& Vocabulary::TokenOf(int id) const {
  DLNER_CHECK_GE(id, 0);
  DLNER_CHECK_LT(id, size());
  return tokens_[id];
}

int Vocabulary::CountOf(int id) const {
  DLNER_CHECK_GE(id, 0);
  DLNER_CHECK_LT(id, size());
  return counts_[id];
}

void Vocabulary::Freeze(int min_count) {
  DLNER_CHECK(!frozen_);
  if (min_count > 1) {
    std::vector<std::string> kept_tokens = {kUnkToken};
    std::vector<int> kept_counts = {0};
    std::unordered_map<std::string, int> kept_index = {{kUnkToken, kUnkId}};
    for (int id = 1; id < size(); ++id) {
      if (counts_[id] >= min_count) {
        kept_index[tokens_[id]] = static_cast<int>(kept_tokens.size());
        kept_tokens.push_back(tokens_[id]);
        kept_counts.push_back(counts_[id]);
      }
    }
    tokens_ = std::move(kept_tokens);
    counts_ = std::move(kept_counts);
    index_ = std::move(kept_index);
  }
  frozen_ = true;
}

Vocabulary Vocabulary::FromCorpus(const Corpus& corpus, int min_count) {
  Vocabulary v;
  for (const Sentence& s : corpus.sentences) {
    for (const std::string& tok : s.tokens) v.Add(tok);
  }
  v.Freeze(min_count);
  return v;
}

Vocabulary Vocabulary::CharsFromCorpus(const Corpus& corpus) {
  Vocabulary v;
  for (const Sentence& s : corpus.sentences) {
    for (const std::string& tok : s.tokens) {
      for (char c : tok) v.Add(std::string(1, c));
    }
  }
  v.Freeze();
  return v;
}

std::vector<int> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(Id(t));
  return ids;
}

void Vocabulary::Save(std::ostream& os) const {
  os << size() << '\n';
  // Skip UNK (id 0): it is implicit in every vocabulary.
  for (int id = 1; id < size(); ++id) {
    os << counts_[id] << '\t' << tokens_[id] << '\n';
  }
}

bool Vocabulary::Load(std::istream& is, Vocabulary* vocab) {
  int n = 0;
  if (!(is >> n) || n < 1) return false;
  is.ignore();  // trailing newline
  Vocabulary loaded;
  for (int id = 1; id < n; ++id) {
    std::string line;
    if (!std::getline(is, line)) return false;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) return false;
    const int count = std::atoi(line.substr(0, tab).c_str());
    const std::string token = line.substr(tab + 1);
    if (token.empty()) return false;
    const int new_id = loaded.Add(token);
    if (new_id != id) return false;  // duplicates would shift ids
    loaded.counts_[new_id] = count;
  }
  loaded.Freeze();
  *vocab = std::move(loaded);
  return true;
}

std::vector<int> Vocabulary::EncodeChars(const std::string& word) const {
  std::vector<int> ids;
  ids.reserve(word.size());
  for (char c : word) ids.push_back(Id(std::string(1, c)));
  return ids;
}

}  // namespace dlner::text
