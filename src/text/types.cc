#include "text/types.h"

#include <algorithm>

namespace dlner::text {

int Corpus::TokenCount() const {
  int n = 0;
  for (const Sentence& s : sentences) n += s.size();
  return n;
}

int Corpus::EntityCount() const {
  int n = 0;
  for (const Sentence& s : sentences) n += static_cast<int>(s.spans.size());
  return n;
}

int Corpus::DocCount() const {
  if (!doc_starts.empty()) return static_cast<int>(doc_starts.size());
  return sentences.empty() ? 0 : 1;
}

std::pair<int, int> Corpus::DocRange(int doc) const {
  if (doc_starts.empty()) return {0, size()};
  const int first = doc_starts[doc];
  const int last = doc + 1 < static_cast<int>(doc_starts.size())
                       ? doc_starts[doc + 1]
                       : size();
  return {first, last};
}

bool SpansAreValid(const std::vector<Span>& spans, int num_tokens) {
  for (const Span& sp : spans) {
    if (sp.start < 0 || sp.end > num_tokens || sp.start >= sp.end) return false;
    if (sp.type.empty()) return false;
  }
  return true;
}

bool SpansAreFlat(std::vector<Span> spans) {
  std::sort(spans.begin(), spans.end());
  for (size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].start < spans[i - 1].end) return false;
  }
  return true;
}

}  // namespace dlner::text
