#include "serve/registry.h"

#include <utility>

#include "obs/obs.h"
#include "obs/trace.h"
#include "tensor/quant.h"

namespace dlner::serve {

bool ModelRegistry::Load(const std::string& name, const std::string& path) {
  obs::ScopedSpan span("serve/reload");
  std::shared_ptr<core::Pipeline> loaded = core::Pipeline::Load(path);
  if (loaded == nullptr) return false;
  if (quantized_) {
    const std::string sidecar = path + ".quant";
    quant::Calibration calib;
    if (!quant::ReadCalibrationFile(sidecar, &calib)) {
      obs::Log(obs::LogLevel::kError, "serve_quantized_load_failed",
               {{"model", name}, {"sidecar", sidecar}});
      return false;
    }
    loaded->model()->SetQuantCalibration(std::move(calib));
    loaded->model()->set_quantized_inference(true);
  }
  std::shared_ptr<const core::Pipeline> pipeline = std::move(loaded);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = models_[name];
  entry.pipeline = std::move(pipeline);
  ++entry.generation;
  return true;
}

ModelRegistry::Entry ModelRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? Entry{} : it->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

}  // namespace dlner::serve
