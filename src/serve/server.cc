#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "stream/entity_memory.h"

namespace dlner::serve {

// One client connection. The fd is shared between the reader thread and
// any queued requests still owed a response; it is shut down (not closed)
// to unblock reads, and closed only when the last reference drops, so a
// half-closed client still receives every response it is owed.
struct Server::Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  std::mutex write_mu;  // serializes response lines
  std::atomic<bool> dead{false};

  // Document state for "doc":true requests: the connection IS the document.
  // Lives on the connection (not the model entry), so a hot reload
  // mid-document swaps the model without touching accumulated entity
  // votes. Guarded by doc_mu; the single batcher thread executes batches
  // sequentially, so per-connection request order is preserved.
  std::mutex doc_mu;
  stream::EntityMemory doc_memory;
};

namespace {

// splitmix64: maps a request id to a well-mixed 64-bit value so the
// sampling decision is uniform over [0,1) yet deterministic per id.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Server::Server(ModelRegistry* registry, const ServeConfig& config)
    : registry_(registry),
      config_(config),
      metrics_always_(config.metrics_port >= 0),
      cache_(config.cache_capacity) {
  obs::Metrics& m = obs::Metrics::Get();
  lat_hist_ = m.histogram("serve.request.latency_us");
  stage_queue_hist_ = m.histogram("serve.stage.queue_wait_us");
  stage_batch_hist_ = m.histogram("serve.stage.batch_wait_us");
  stage_compute_hist_ = m.histogram("serve.stage.compute_us");
  stage_write_hist_ = m.histogram("serve.stage.write_us");
  const std::int64_t eus = config_.window_epoch_us;
  const int eps = config_.window_epochs;
  win_latency_ = m.windowed_histogram("serve.window.latency_us", eus, eps);
  win_stage_queue_ =
      m.windowed_histogram("serve.window.stage.queue_wait_us", eus, eps);
  win_stage_batch_ =
      m.windowed_histogram("serve.window.stage.batch_wait_us", eus, eps);
  win_stage_compute_ =
      m.windowed_histogram("serve.window.stage.compute_us", eus, eps);
  win_stage_write_ =
      m.windowed_histogram("serve.window.stage.write_us", eus, eps);
  win_batch_size_ = m.windowed_histogram("serve.window.batch.size", eus, eps);
  win_responses_ = m.windowed_counter("serve.window.responses", eus, eps);
  win_errors_ = m.windowed_counter("serve.window.errors", eus, eps);
  win_rejected_ = m.windowed_counter("serve.window.rejected", eus, eps);
  win_slo_ok_ = m.windowed_counter("serve.window.slo_ok", eus, eps);
  win_cache_hits_ = m.windowed_counter("serve.window.cache.hits", eus, eps);
  win_cache_misses_ =
      m.windowed_counter("serve.window.cache.misses", eus, eps);
}

Server::~Server() { Stop(); }

bool Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    obs::ForceLog(obs::LogLevel::kError, "serve_socket_failed",
                  {{"errno", std::strerror(errno)}});
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    obs::ForceLog(obs::LogLevel::kError, "serve_bad_host",
                  {{"host", config_.host}});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    obs::ForceLog(obs::LogLevel::kError, "serve_bind_failed",
                  {{"host", config_.host},
                   {"port", config_.port},
                   {"errno", std::strerror(errno)}});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // The serve.window.* instruments are registry-global; zero them so this
  // server's rolling window starts from its own traffic (sequential
  // in-process servers in tests and bench_serve would otherwise bleed into
  // each other inside one window length).
  for (obs::WindowedHistogram* wh :
       {win_latency_, win_stage_queue_, win_stage_batch_, win_stage_compute_,
        win_stage_write_, win_batch_size_}) {
    wh->Reset();
  }
  for (obs::WindowedCounter* wc :
       {win_responses_, win_errors_, win_rejected_, win_slo_ok_,
        win_cache_hits_, win_cache_misses_}) {
    wc->Reset();
  }

  if (config_.metrics_port >= 0 && !StartMetricsListener()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  started_.store(true);
  listener_ = std::thread([this] { AcceptLoop(); });
  batcher_ = std::thread([this] { BatchLoop(); });
  obs::Log(obs::LogLevel::kInfo, "serve_started",
           {{"host", config_.host}, {"port", port_}});
  return true;
}

bool Server::StartMetricsListener() {
  metrics_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (metrics_listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(metrics_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.metrics_port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(metrics_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(metrics_listen_fd_, 16) != 0) {
    obs::ForceLog(obs::LogLevel::kError, "serve_metrics_bind_failed",
                  {{"host", config_.host},
                   {"port", config_.metrics_port},
                   {"errno", std::strerror(errno)}});
    ::close(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(metrics_listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  metrics_port_ = ntohs(addr.sin_port);
  metrics_thread_ = std::thread([this] { MetricsLoop(); });
  obs::Log(obs::LogLevel::kInfo, "serve_metrics_listening",
           {{"host", config_.host}, {"port", metrics_port_}});
  return true;
}

void Server::MetricsLoop() {
  // Deliberately minimal HTTP: read whatever request head arrives, answer
  // one HTTP/1.0 response with the exposition, close. Prometheus and curl
  // are both happy with this, and there is no second protocol to fuzz.
  for (;;) {
    const int fd = ::accept(metrics_listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;
    }
    char discard[1024];
    (void)::recv(fd, discard, sizeof(discard), 0);
    const std::string body = ScrapeText();
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::string Server::ScrapeText() const {
  PublishMetrics();  // fold lifetime counters + derived gauges in first
  std::ostringstream os;
  obs::Metrics::Get().WritePrometheus(os);
  return os.str();
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listen socket gone
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(fd);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::shutdown(fd, SHUT_RDWR);
      return;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
  }
}

void Server::ConnLoop(std::shared_ptr<Conn> conn) {
  obs::ScopedSpan span("serve/conn");
  std::string buf;
  char chunk[4096];
  bool discarding = false;  // inside an oversized line, drop to next newline
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error: pending responses still drain
    buf.append(chunk, static_cast<std::size_t>(n));
    if (discarding) {
      const std::size_t pos = buf.find('\n');
      if (pos == std::string::npos) {
        buf.clear();
        continue;
      }
      buf.erase(0, pos + 1);
      discarding = false;
    }
    std::size_t pos;
    while ((pos = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > config_.max_line_bytes) {
        errors_.fetch_add(1);
        WriteLine(conn, ErrorResponse(false, 0, kTooLarge,
                                      "request line too long"));
        continue;
      }
      HandleLine(conn, line);
    }
    if (buf.size() > config_.max_line_bytes) {
      errors_.fetch_add(1);
      WriteLine(conn,
                ErrorResponse(false, 0, kTooLarge, "request line too long"));
      buf.clear();
      discarding = true;
    }
  }
}

bool Server::SampleTrace(std::uint64_t req_id) const {
  if (!obs::TracingEnabled()) return false;
  const double rate = config_.trace_sample_rate;
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Top 53 bits of the hash as a uniform double in [0,1).
  const double u =
      static_cast<double>(Mix64(req_id) >> 11) * 0x1.0p-53;
  return u < rate;
}

void Server::HandleLine(const std::shared_ptr<Conn>& conn,
                        const std::string& line) {
  obs::ScopedSpan span("serve/ingest");
  requests_.fetch_add(1);
  const std::uint64_t arrival_us = obs::NowMicros();

  Request req;
  std::string error;
  int code = 0;
  if (!ParseRequest(line, &req, &error, &code)) {
    errors_.fetch_add(1);
    if (CollectMetrics()) win_errors_->Add(1);
    WriteLine(conn, ErrorResponse(req.has_id, req.id, code, error));
    return;
  }
  if (req.kind == Request::Kind::kAdmin) {
    HandleAdmin(conn, req, arrival_us);
    return;
  }

  // Every accepted tagging request gets a process-unique 64-bit id; it
  // threads through the queue, batcher, and response so the request's
  // lifecycle reconstructs from its stage spans and slow-request log line.
  const std::uint64_t req_id = next_req_id_.fetch_add(1) + 1;
  const bool sampled = SampleTrace(req_id);
  const bool collect = CollectMetrics();
  if (collect) ModelWindow(req.model, "requests")->Add(1);

  const ModelRegistry::Entry entry = registry_->Get(req.model);
  if (entry.pipeline == nullptr) {
    errors_.fetch_add(1);
    if (collect) {
      win_errors_->Add(1);
      ModelWindow(req.model, "errors")->Add(1);
    }
    WriteLine(conn, ErrorResponse(req.has_id, req.id, kUnknownModel,
                                  "unknown model \"" + req.model + "\""));
    return;
  }
  if (static_cast<int>(req.tokens.size()) > config_.max_tokens) {
    errors_.fetch_add(1);
    if (collect) {
      win_errors_->Add(1);
      ModelWindow(req.model, "errors")->Add(1);
    }
    WriteLine(conn, ErrorResponse(req.has_id, req.id, kTooLarge,
                                  "too many tokens (max " +
                                      std::to_string(config_.max_tokens) +
                                      ")"));
    return;
  }
  if (req.tokens.empty()) {
    // Nothing to tag; answer inline (the plan requires non-empty
    // sentences, and the eager path short-circuits identically).
    Pending p{conn, std::move(req), arrival_us, req_id, sampled};
    StageTimes t;
    t.arrival_us = arrival_us;
    t.queue_end_us = t.batch_end_us = arrival_us;
    t.compute_start_us = t.compute_end_us = arrival_us;
    t.write_start_us = obs::NowMicros();
    responses_.fetch_add(1);
    WriteLine(conn, TagResponse(p.request, false, TagPayload({}, {})));
    t.write_end_us = obs::NowMicros();
    FinishTagRequest(p, p.request.model, /*cached=*/false, t);
    return;
  }

  // Document requests never consult the cache: their answer depends on the
  // connection's entity memory, not just (model, generation, tokens).
  if (!req.doc) {
    const std::string key =
        LruCache::Key(req.model, entry.generation, req.tokens);
    std::string payload;
    if (cache_.Get(key, &payload)) {
      cache_hits_.fetch_add(1);
      if (collect) win_cache_hits_->Add(1);
      responses_.fetch_add(1);
      Pending p{conn, std::move(req), arrival_us, req_id, sampled};
      StageTimes t;
      t.arrival_us = arrival_us;
      t.queue_end_us = t.batch_end_us = arrival_us;
      t.compute_start_us = t.compute_end_us = arrival_us;
      t.write_start_us = obs::NowMicros();
      WriteLine(conn, TagResponse(p.request, true, payload));
      t.write_end_us = obs::NowMicros();
      FinishTagRequest(p, p.request.model, /*cached=*/true, t);
      return;
    }
    cache_misses_.fetch_add(1);
    if (collect) win_cache_misses_->Add(1);
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_.load()) {
      rejected_.fetch_add(1);
      if (collect) win_rejected_->Add(1);
      WriteLine(conn, ErrorResponse(req.has_id, req.id, kShuttingDown,
                                    "server is shutting down"));
      return;
    }
    if (static_cast<int>(queue_.size()) >= config_.queue_capacity) {
      rejected_.fetch_add(1);
      if (collect) win_rejected_->Add(1);
      WriteLine(conn, ErrorResponse(req.has_id, req.id, kQueueFull,
                                    "admission queue full"));
      return;
    }
    queue_.push_back(Pending{conn, std::move(req), arrival_us, req_id,
                             sampled});
    const auto depth = static_cast<std::int64_t>(queue_.size());
    queue_depth_.store(depth, std::memory_order_relaxed);
    std::int64_t peak = queue_peak_.load();
    while (depth > peak && !queue_peak_.compare_exchange_weak(peak, depth)) {
    }
    if (collect) {
      obs::Metrics::Get()
          .gauge("serve.queue.depth")
          ->Set(static_cast<double>(depth));
    }
  }
  queue_cv_.notify_one();
}

obs::WindowedCounter* Server::ModelWindow(const std::string& model,
                                          const char* what) const {
  return obs::Metrics::Get().windowed_counter(
      "serve.window.model." + model + "." + what, config_.window_epoch_us,
      config_.window_epochs);
}

void Server::FinishTagRequest(const Pending& pending, const std::string& model,
                              bool cached, const StageTimes& t) {
  const auto stage = [](std::uint64_t from, std::uint64_t to) {
    return to >= from ? to - from : 0;
  };
  const std::uint64_t queue_wait = stage(t.arrival_us, t.queue_end_us);
  const std::uint64_t batch_wait = stage(t.queue_end_us, t.batch_end_us);
  const std::uint64_t compute = stage(t.compute_start_us, t.compute_end_us);
  const std::uint64_t write = stage(t.write_start_us, t.write_end_us);
  const std::uint64_t total = stage(t.arrival_us, t.write_end_us);

  if (CollectMetrics()) {
    lat_hist_->Observe(static_cast<double>(total));
    stage_queue_hist_->Observe(static_cast<double>(queue_wait));
    stage_batch_hist_->Observe(static_cast<double>(batch_wait));
    stage_compute_hist_->Observe(static_cast<double>(compute));
    stage_write_hist_->Observe(static_cast<double>(write));
    win_latency_->Observe(static_cast<double>(total));
    win_stage_queue_->Observe(static_cast<double>(queue_wait));
    win_stage_batch_->Observe(static_cast<double>(batch_wait));
    win_stage_compute_->Observe(static_cast<double>(compute));
    win_stage_write_->Observe(static_cast<double>(write));
    win_responses_->Add(1);
    if (config_.slo_us > 0 &&
        total <= static_cast<std::uint64_t>(config_.slo_us)) {
      win_slo_ok_->Add(1);
    }
  }

  if (pending.sampled && obs::TracingEnabled()) {
    obs::Tracer& tracer = obs::Tracer::Get();
    const std::string req = "\"req\":" + std::to_string(pending.req_id);
    tracer.Record("serve/request", t.arrival_us, t.write_end_us,
                  req + ",\"model\":" + JsonQuote(model) +
                      ",\"cached\":" + (cached ? "true" : "false") +
                      (pending.request.doc ? ",\"doc\":true" : ""));
    if (!cached) {
      tracer.Record("serve/stage/queue_wait", t.arrival_us, t.queue_end_us,
                    req);
      tracer.Record("serve/stage/batch_wait", t.queue_end_us, t.batch_end_us,
                    req);
      tracer.Record("serve/stage/compute", t.compute_start_us,
                    t.compute_end_us, req);
    }
    tracer.Record("serve/stage/write", t.write_start_us, t.write_end_us, req);
  }

  if (config_.slow_request_us > 0 &&
      total >= static_cast<std::uint64_t>(config_.slow_request_us)) {
    slow_requests_.fetch_add(1);
    obs::Log(obs::LogLevel::kWarn, "serve_slow_request",
             {{"req", static_cast<std::int64_t>(pending.req_id)},
              {"model", model},
              {"total_us", static_cast<std::int64_t>(total)},
              {"queue_wait_us", static_cast<std::int64_t>(queue_wait)},
              {"batch_wait_us", static_cast<std::int64_t>(batch_wait)},
              {"compute_us", static_cast<std::int64_t>(compute)},
              {"write_us", static_cast<std::int64_t>(write)},
              {"tokens", static_cast<std::int64_t>(
                             pending.request.tokens.size())},
              {"cached", cached},
              {"doc", pending.request.doc}});
  }
}

void Server::HandleAdmin(const std::shared_ptr<Conn>& conn, const Request& req,
                         std::uint64_t arrival_us) {
  (void)arrival_us;
  const std::string id_prefix =
      req.has_id ? "\"id\":" + std::to_string(req.id) + "," : "";
  if (req.cmd == "reload") {
    if (!registry_->Load(req.model, req.path)) {
      errors_.fetch_add(1);
      WriteLine(conn, ErrorResponse(req.has_id, req.id, kInternal,
                                    "cannot load checkpoint \"" + req.path +
                                        "\""));
      return;
    }
    reloads_.fetch_add(1);
    const ModelRegistry::Entry entry = registry_->Get(req.model);
    obs::Log(obs::LogLevel::kInfo, "serve_reloaded",
             {{"model", req.model},
              {"generation", static_cast<std::int64_t>(entry.generation)}});
    WriteLine(conn, "{" + id_prefix + "\"ok\":true,\"model\":" +
                        JsonQuote(req.model) + ",\"generation\":" +
                        std::to_string(entry.generation) + "}");
    return;
  }
  if (req.cmd == "models") {
    std::string out = "{" + id_prefix + "\"models\":[";
    bool first = true;
    for (const std::string& name : registry_->Names()) {
      if (!first) out.push_back(',');
      first = false;
      out += JsonQuote(name);
    }
    out += "]}";
    WriteLine(conn, out);
    return;
  }
  if (req.cmd == "stats") {
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = queue_.size();
    }
    // Lifetime counters (as before), then a rolling-window block: live
    // queue depth and cache hit/miss plus windowed latency percentiles and
    // SLO attainment, so an operator polling stats sees the current
    // minute, not the lifetime average.
    const std::uint64_t now_us = obs::NowMicros();
    const obs::HistogramSnapshot lat = win_latency_->Read(now_us);
    const std::int64_t win_responses = win_responses_->WindowTotal(now_us);
    const std::int64_t win_ok = win_slo_ok_->WindowTotal(now_us);
    const double attainment =
        win_responses > 0 ? static_cast<double>(win_ok) /
                                static_cast<double>(win_responses)
                          : 1.0;
    using obs::internal::JsonNumber;
    std::string window =
        "{\"window_s\":" + JsonNumber(win_latency_->window_seconds()) +
        ",\"responses\":" + std::to_string(win_responses) +
        ",\"errors\":" + std::to_string(win_errors_->WindowTotal(now_us)) +
        ",\"rejected\":" +
        std::to_string(win_rejected_->WindowTotal(now_us)) +
        ",\"cache_hits\":" +
        std::to_string(win_cache_hits_->WindowTotal(now_us)) +
        ",\"cache_misses\":" +
        std::to_string(win_cache_misses_->WindowTotal(now_us)) +
        ",\"p50_us\":" + JsonNumber(lat.Percentile(50)) +
        ",\"p99_us\":" + JsonNumber(lat.Percentile(99));
    if (config_.slo_us > 0) {
      window += ",\"slo_attainment\":" + JsonNumber(attainment);
    }
    window += "}";
    WriteLine(conn,
              "{" + id_prefix + "\"requests\":" +
                  std::to_string(requests_.load()) + ",\"responses\":" +
                  std::to_string(responses_.load()) + ",\"rejected\":" +
                  std::to_string(rejected_.load()) + ",\"errors\":" +
                  std::to_string(errors_.load()) + ",\"cache_hits\":" +
                  std::to_string(cache_hits_.load()) + ",\"cache_misses\":" +
                  std::to_string(cache_misses_.load()) + ",\"batches\":" +
                  std::to_string(batches_.load()) + ",\"queue_depth\":" +
                  std::to_string(depth) + ",\"window\":" + window + "}");
    return;
  }
  if (req.cmd == "metrics") {
    // The same exposition the --metrics-port scrape serves, carried as a
    // JSON string so it works over the NDJSON socket without a second
    // listener.
    WriteLine(conn,
              "{" + id_prefix + "\"metrics\":" + JsonQuote(ScrapeText()) +
                  "}");
    return;
  }
  // shutdown: acknowledge, then wake Wait() so the owning thread can run
  // the graceful Stop() (a connection thread must not join itself).
  WriteLine(conn, "{" + id_prefix + "\"ok\":true}");
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::BatchLoop() {
  for (;;) {
    std::vector<Pending> batch;
    bool deadline_flush = false;
    std::uint64_t collect_start_us = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      // From here until the batch is popped the head request is waiting on
      // batch formation (batch_wait); everything before was queue_wait
      // (head-of-line blocking behind the previous in-flight batch).
      collect_start_us = obs::NowMicros();
      const std::string model = queue_.front().request.model;
      const std::uint64_t deadline =
          queue_.front().arrival_us +
          static_cast<std::uint64_t>(config_.batch_delay_us);
      auto same_model_count = [&] {
        int count = 0;
        for (const Pending& p : queue_) {
          if (p.request.model == model) ++count;
        }
        return count;
      };
      while (!stopping_.load() && same_model_count() < config_.batch_max) {
        const std::uint64_t now = obs::NowMicros();
        if (now >= deadline) break;
        queue_cv_.wait_for(lock, std::chrono::microseconds(deadline - now));
      }
      deadline_flush = same_model_count() < config_.batch_max;
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int>(batch.size()) < config_.batch_max;) {
        if (it->request.model == model) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      const auto depth = static_cast<std::int64_t>(queue_.size());
      queue_depth_.store(depth, std::memory_order_relaxed);
      if (CollectMetrics()) {
        obs::Metrics::Get()
            .gauge("serve.queue.depth")
            ->Set(static_cast<double>(depth));
      }
    }
    (deadline_flush ? deadline_flushes_ : size_flushes_).fetch_add(1);
    ExecuteBatch(std::move(batch), collect_start_us, obs::NowMicros());
  }
}

void Server::ExecuteBatch(std::vector<Pending> batch,
                          std::uint64_t collect_start_us,
                          std::uint64_t collect_end_us) {
  const std::int64_t batch_id = batches_.fetch_add(1) + 1;
  obs::ScopedSpan span("serve/batch");
  span.Annotate("batch", batch_id);
  if (obs::TracingEnabled()) {
    std::string reqs = "[";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i > 0) reqs.push_back(',');
      reqs += std::to_string(batch[i].req_id);
    }
    reqs.push_back(']');
    span.Annotate("reqs", reqs);
  }
  if (CollectMetrics()) {
    obs::Metrics::Get()
        .histogram("serve.batch.size")
        ->Observe(static_cast<double>(batch.size()));
    win_batch_size_->Observe(static_cast<double>(batch.size()));
  }

  const std::string& model = batch.front().request.model;
  // Resolve the pipeline at execution time: requests queued before a hot
  // reload are served by the new model, and the shared_ptr keeps whichever
  // pipeline we picked alive for the whole batch.
  const ModelRegistry::Entry entry = registry_->Get(model);
  if (entry.pipeline == nullptr) {
    for (const Pending& p : batch) {
      errors_.fetch_add(1);
      if (CollectMetrics()) {
        win_errors_->Add(1);
        ModelWindow(model, "errors")->Add(1);
      }
      Respond(p, ErrorResponse(p.request.has_id, p.request.id, kUnknownModel,
                               "unknown model \"" + model + "\""));
    }
    return;
  }

  text::Corpus corpus;
  corpus.sentences.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    corpus.sentences[i].tokens = batch[i].request.tokens;
  }
  // The compiled-plan corpus path (packed ragged micro-batches, arena
  // buffers) — the same code `dlner tag --in` runs, so served responses
  // are bit-identical to the batch CLI. The batch id becomes the trace
  // context for the duration, so plan/batch and plan/quantized_batch spans
  // (on this thread and on ParallelFor helpers) carry "ctx":<batch id> and
  // attribute to this serve/batch span's request ids.
  const std::uint64_t compute_start_us = obs::NowMicros();
  std::vector<std::vector<text::Span>> spans;
  {
    obs::ScopedTraceContext trace_ctx(static_cast<std::uint64_t>(batch_id));
    spans = entry.pipeline->TagCorpus(corpus);
  }
  const std::uint64_t compute_end_us = obs::NowMicros();

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    StageTimes t;
    t.arrival_us = p.arrival_us;
    // A request that arrived while the batch was already forming waited in
    // no queue at all: clamp its queue_wait to zero and start batch_wait
    // at its own arrival.
    t.queue_end_us = std::clamp(collect_start_us, p.arrival_us,
                                collect_end_us);
    t.batch_end_us = collect_end_us;
    t.compute_start_us = compute_start_us;
    t.compute_end_us = compute_end_us;
    t.write_start_us = obs::NowMicros();
    if (p.request.doc) {
      // Fold this sentence through the connection's document state, in
      // batch (= per-connection arrival) order. Doc responses are not
      // cached: they are functions of connection state.
      std::lock_guard<std::mutex> lock(p.conn->doc_mu);
      p.conn->doc_memory.Apply(p.request.tokens, &spans[i]);
      p.conn->doc_memory.Observe(p.request.tokens, spans[i]);
    }
    const std::string payload = TagPayload(p.request.tokens, spans[i]);
    if (!p.request.doc) {
      cache_.Put(LruCache::Key(model, entry.generation, p.request.tokens),
                 payload);
    }
    responses_.fetch_add(1);
    WriteLine(p.conn, TagResponse(p.request, false, payload));
    t.write_end_us = obs::NowMicros();
    FinishTagRequest(p, model, /*cached=*/false, t);
  }
}

// Error-path responder (the tagging path runs FinishTagRequest instead,
// which also feeds the stage and window instruments).
void Server::Respond(const Pending& pending, const std::string& line) {
  if (CollectMetrics()) {
    lat_hist_->Observe(
        static_cast<double>(obs::NowMicros() - pending.arrival_us));
  }
  WriteLine(pending.conn, line);
}

void Server::WriteLine(const std::shared_ptr<Conn>& conn,
                       const std::string& line) {
  if (conn->dead.load()) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    // MSG_NOSIGNAL: a half-closed or gone client must surface as an error
    // return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(conn->fd, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      conn->dead.store(true);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::Wait(const std::atomic<bool>* interrupted) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  for (;;) {
    if (shutdown_requested_ || stopping_.load()) return;
    if (interrupted != nullptr && interrupted->load()) return;
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(200));
  }
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  if (!started_.load()) return;
  // 1. Refuse new connections and wake the listener out of accept(); the
  //    fd is closed only after the join so its number cannot be reused
  //    under a racing accept().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Drain the batcher: stopping_ is set, so readers now reject new
  //    requests with 503 while everything already admitted is answered.
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // 2b. Take down the metrics scrape listener (same shutdown-then-join
  //     discipline as the main listener).
  if (metrics_listen_fd_ >= 0) ::shutdown(metrics_listen_fd_, SHUT_RDWR);
  if (metrics_thread_.joinable()) metrics_thread_.join();
  if (metrics_listen_fd_ >= 0) {
    ::close(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
  }
  // 3. Unblock and join the connection readers.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const std::weak_ptr<Conn>& weak : conns_) {
      if (const std::shared_ptr<Conn> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  obs::Log(obs::LogLevel::kInfo, "serve_stopped",
           {{"responses", responses_.load()}});
}

void Server::PublishMetrics() const {
  obs::Metrics& m = obs::Metrics::Get();
  auto set = [&m](const char* name, std::int64_t v) {
    m.gauge(name)->Set(static_cast<double>(v));
  };
  set("serve.requests_total", requests_.load());
  set("serve.responses_total", responses_.load());
  set("serve.rejected_total", rejected_.load());
  set("serve.errors_total", errors_.load());
  set("serve.cache.hits", cache_hits_.load());
  set("serve.cache.misses", cache_misses_.load());
  set("serve.cache.size", static_cast<std::int64_t>(cache_.size()));
  set("serve.batches_total", batches_.load());
  set("serve.batch.deadline_flushes", deadline_flushes_.load());
  set("serve.batch.size_flushes", size_flushes_.load());
  set("serve.queue.peak_depth", queue_peak_.load());
  set("serve.reloads_total", reloads_.load());
  set("serve.slow_requests_total", slow_requests_.load());
  set("serve.queue.depth", queue_depth_.load(std::memory_order_relaxed));

  // Derived rolling-window gauges, recomputed at every publish/scrape.
  const std::uint64_t now_us = obs::NowMicros();
  const std::int64_t win_responses = win_responses_->WindowTotal(now_us);
  const std::int64_t hits = win_cache_hits_->WindowTotal(now_us);
  const std::int64_t misses = win_cache_misses_->WindowTotal(now_us);
  m.gauge("serve.window.cache_hit_rate")
      ->Set(hits + misses > 0
                ? static_cast<double>(hits) /
                      static_cast<double>(hits + misses)
                : 0.0);
  if (config_.slo_us > 0) {
    // Attainment: fraction of windowed responses at or under --slo-us (an
    // idle window counts as full attainment). Error budget remaining: with
    // target t the window may miss on (1 - t) of responses; the gauge is
    // the unconsumed fraction of that allowance — 1 untouched, 0
    // exhausted, negative blown.
    const std::int64_t win_ok = win_slo_ok_->WindowTotal(now_us);
    const double attainment =
        win_responses > 0 ? static_cast<double>(win_ok) /
                                static_cast<double>(win_responses)
                          : 1.0;
    m.gauge("serve.window.slo_attainment")->Set(attainment);
    const double budget = 1.0 - config_.slo_target;
    m.gauge("serve.window.error_budget_remaining")
        ->Set(budget > 0.0 ? (budget - (1.0 - attainment)) / budget
                           : (attainment >= 1.0 ? 1.0 : 0.0));
  }
  obs::PublishTraceMetrics();
}

}  // namespace dlner::serve
