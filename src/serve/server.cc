#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "stream/entity_memory.h"

namespace dlner::serve {

// One client connection. The fd is shared between the reader thread and
// any queued requests still owed a response; it is shut down (not closed)
// to unblock reads, and closed only when the last reference drops, so a
// half-closed client still receives every response it is owed.
struct Server::Conn {
  explicit Conn(int fd_in) : fd(fd_in) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  std::mutex write_mu;  // serializes response lines
  std::atomic<bool> dead{false};

  // Document state for "doc":true requests: the connection IS the document.
  // Lives on the connection (not the model entry), so a hot reload
  // mid-document swaps the model without touching accumulated entity
  // votes. Guarded by doc_mu; the single batcher thread executes batches
  // sequentially, so per-connection request order is preserved.
  std::mutex doc_mu;
  stream::EntityMemory doc_memory;
};

Server::Server(ModelRegistry* registry, const ServeConfig& config)
    : registry_(registry), config_(config), cache_(config.cache_capacity) {}

Server::~Server() { Stop(); }

bool Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    obs::ForceLog(obs::LogLevel::kError, "serve_socket_failed",
                  {{"errno", std::strerror(errno)}});
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    obs::ForceLog(obs::LogLevel::kError, "serve_bad_host",
                  {{"host", config_.host}});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    obs::ForceLog(obs::LogLevel::kError, "serve_bind_failed",
                  {{"host", config_.host},
                   {"port", config_.port},
                   {"errno", std::strerror(errno)}});
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  started_.store(true);
  listener_ = std::thread([this] { AcceptLoop(); });
  batcher_ = std::thread([this] { BatchLoop(); });
  obs::Log(obs::LogLevel::kInfo, "serve_started",
           {{"host", config_.host}, {"port", port_}});
  return true;
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listen socket gone
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(fd);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::shutdown(fd, SHUT_RDWR);
      return;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
  }
}

void Server::ConnLoop(std::shared_ptr<Conn> conn) {
  obs::ScopedSpan span("serve/conn");
  std::string buf;
  char chunk[4096];
  bool discarding = false;  // inside an oversized line, drop to next newline
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error: pending responses still drain
    buf.append(chunk, static_cast<std::size_t>(n));
    if (discarding) {
      const std::size_t pos = buf.find('\n');
      if (pos == std::string::npos) {
        buf.clear();
        continue;
      }
      buf.erase(0, pos + 1);
      discarding = false;
    }
    std::size_t pos;
    while ((pos = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > config_.max_line_bytes) {
        errors_.fetch_add(1);
        WriteLine(conn, ErrorResponse(false, 0, kTooLarge,
                                      "request line too long"));
        continue;
      }
      HandleLine(conn, line);
    }
    if (buf.size() > config_.max_line_bytes) {
      errors_.fetch_add(1);
      WriteLine(conn,
                ErrorResponse(false, 0, kTooLarge, "request line too long"));
      buf.clear();
      discarding = true;
    }
  }
}

void Server::HandleLine(const std::shared_ptr<Conn>& conn,
                        const std::string& line) {
  obs::ScopedSpan span("serve/request");
  requests_.fetch_add(1);
  const std::uint64_t arrival_us = obs::NowMicros();

  Request req;
  std::string error;
  int code = 0;
  if (!ParseRequest(line, &req, &error, &code)) {
    errors_.fetch_add(1);
    WriteLine(conn, ErrorResponse(req.has_id, req.id, code, error));
    return;
  }
  if (req.kind == Request::Kind::kAdmin) {
    HandleAdmin(conn, req, arrival_us);
    return;
  }

  const ModelRegistry::Entry entry = registry_->Get(req.model);
  if (entry.pipeline == nullptr) {
    errors_.fetch_add(1);
    WriteLine(conn, ErrorResponse(req.has_id, req.id, kUnknownModel,
                                  "unknown model \"" + req.model + "\""));
    return;
  }
  if (static_cast<int>(req.tokens.size()) > config_.max_tokens) {
    errors_.fetch_add(1);
    WriteLine(conn, ErrorResponse(req.has_id, req.id, kTooLarge,
                                  "too many tokens (max " +
                                      std::to_string(config_.max_tokens) +
                                      ")"));
    return;
  }
  if (req.tokens.empty()) {
    // Nothing to tag; answer inline (the plan requires non-empty
    // sentences, and the eager path short-circuits identically).
    responses_.fetch_add(1);
    WriteLine(conn, TagResponse(req, false, TagPayload({}, {})));
    return;
  }

  // Document requests never consult the cache: their answer depends on the
  // connection's entity memory, not just (model, generation, tokens).
  if (!req.doc) {
    const std::string key =
        LruCache::Key(req.model, entry.generation, req.tokens);
    std::string payload;
    if (cache_.Get(key, &payload)) {
      cache_hits_.fetch_add(1);
      responses_.fetch_add(1);
      if (obs::MetricsEnabled()) {
        obs::Metrics::Get()
            .histogram("serve.request.latency_us")
            ->Observe(static_cast<double>(obs::NowMicros() - arrival_us));
      }
      WriteLine(conn, TagResponse(req, true, payload));
      return;
    }
    cache_misses_.fetch_add(1);
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_.load()) {
      rejected_.fetch_add(1);
      WriteLine(conn, ErrorResponse(req.has_id, req.id, kShuttingDown,
                                    "server is shutting down"));
      return;
    }
    if (static_cast<int>(queue_.size()) >= config_.queue_capacity) {
      rejected_.fetch_add(1);
      WriteLine(conn, ErrorResponse(req.has_id, req.id, kQueueFull,
                                    "admission queue full"));
      return;
    }
    queue_.push_back(Pending{conn, std::move(req), arrival_us});
    const auto depth = static_cast<std::int64_t>(queue_.size());
    std::int64_t peak = queue_peak_.load();
    while (depth > peak && !queue_peak_.compare_exchange_weak(peak, depth)) {
    }
    if (obs::MetricsEnabled()) {
      obs::Metrics::Get()
          .gauge("serve.queue.depth")
          ->Set(static_cast<double>(depth));
    }
  }
  queue_cv_.notify_one();
}

void Server::HandleAdmin(const std::shared_ptr<Conn>& conn, const Request& req,
                         std::uint64_t arrival_us) {
  (void)arrival_us;
  const std::string id_prefix =
      req.has_id ? "\"id\":" + std::to_string(req.id) + "," : "";
  if (req.cmd == "reload") {
    if (!registry_->Load(req.model, req.path)) {
      errors_.fetch_add(1);
      WriteLine(conn, ErrorResponse(req.has_id, req.id, kInternal,
                                    "cannot load checkpoint \"" + req.path +
                                        "\""));
      return;
    }
    reloads_.fetch_add(1);
    const ModelRegistry::Entry entry = registry_->Get(req.model);
    obs::Log(obs::LogLevel::kInfo, "serve_reloaded",
             {{"model", req.model},
              {"generation", static_cast<std::int64_t>(entry.generation)}});
    WriteLine(conn, "{" + id_prefix + "\"ok\":true,\"model\":" +
                        JsonQuote(req.model) + ",\"generation\":" +
                        std::to_string(entry.generation) + "}");
    return;
  }
  if (req.cmd == "models") {
    std::string out = "{" + id_prefix + "\"models\":[";
    bool first = true;
    for (const std::string& name : registry_->Names()) {
      if (!first) out.push_back(',');
      first = false;
      out += JsonQuote(name);
    }
    out += "]}";
    WriteLine(conn, out);
    return;
  }
  if (req.cmd == "stats") {
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = queue_.size();
    }
    WriteLine(conn,
              "{" + id_prefix + "\"requests\":" +
                  std::to_string(requests_.load()) + ",\"responses\":" +
                  std::to_string(responses_.load()) + ",\"rejected\":" +
                  std::to_string(rejected_.load()) + ",\"errors\":" +
                  std::to_string(errors_.load()) + ",\"cache_hits\":" +
                  std::to_string(cache_hits_.load()) + ",\"cache_misses\":" +
                  std::to_string(cache_misses_.load()) + ",\"batches\":" +
                  std::to_string(batches_.load()) + ",\"queue_depth\":" +
                  std::to_string(depth) + "}");
    return;
  }
  // shutdown: acknowledge, then wake Wait() so the owning thread can run
  // the graceful Stop() (a connection thread must not join itself).
  WriteLine(conn, "{" + id_prefix + "\"ok\":true}");
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::BatchLoop() {
  for (;;) {
    std::vector<Pending> batch;
    bool deadline_flush = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      const std::string model = queue_.front().request.model;
      const std::uint64_t deadline =
          queue_.front().arrival_us +
          static_cast<std::uint64_t>(config_.batch_delay_us);
      auto same_model_count = [&] {
        int count = 0;
        for (const Pending& p : queue_) {
          if (p.request.model == model) ++count;
        }
        return count;
      };
      while (!stopping_.load() && same_model_count() < config_.batch_max) {
        const std::uint64_t now = obs::NowMicros();
        if (now >= deadline) break;
        queue_cv_.wait_for(lock, std::chrono::microseconds(deadline - now));
      }
      deadline_flush = same_model_count() < config_.batch_max;
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int>(batch.size()) < config_.batch_max;) {
        if (it->request.model == model) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (obs::MetricsEnabled()) {
        obs::Metrics::Get()
            .gauge("serve.queue.depth")
            ->Set(static_cast<double>(queue_.size()));
      }
    }
    (deadline_flush ? deadline_flushes_ : size_flushes_).fetch_add(1);
    ExecuteBatch(std::move(batch));
  }
}

void Server::ExecuteBatch(std::vector<Pending> batch) {
  obs::ScopedSpan span("serve/batch");
  batches_.fetch_add(1);
  if (obs::MetricsEnabled()) {
    obs::Metrics::Get()
        .histogram("serve.batch.size")
        ->Observe(static_cast<double>(batch.size()));
  }

  const std::string& model = batch.front().request.model;
  // Resolve the pipeline at execution time: requests queued before a hot
  // reload are served by the new model, and the shared_ptr keeps whichever
  // pipeline we picked alive for the whole batch.
  const ModelRegistry::Entry entry = registry_->Get(model);
  if (entry.pipeline == nullptr) {
    for (const Pending& p : batch) {
      errors_.fetch_add(1);
      Respond(p, ErrorResponse(p.request.has_id, p.request.id, kUnknownModel,
                               "unknown model \"" + model + "\""));
    }
    return;
  }

  text::Corpus corpus;
  corpus.sentences.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    corpus.sentences[i].tokens = batch[i].request.tokens;
  }
  // The compiled-plan corpus path (packed ragged micro-batches, arena
  // buffers) — the same code `dlner tag --in` runs, so served responses
  // are bit-identical to the batch CLI.
  std::vector<std::vector<text::Span>> spans =
      entry.pipeline->TagCorpus(corpus);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Pending& p = batch[i];
    if (p.request.doc) {
      // Fold this sentence through the connection's document state, in
      // batch (= per-connection arrival) order. Doc responses are not
      // cached: they are functions of connection state.
      std::lock_guard<std::mutex> lock(p.conn->doc_mu);
      p.conn->doc_memory.Apply(p.request.tokens, &spans[i]);
      p.conn->doc_memory.Observe(p.request.tokens, spans[i]);
    }
    const std::string payload = TagPayload(p.request.tokens, spans[i]);
    if (!p.request.doc) {
      cache_.Put(LruCache::Key(model, entry.generation, p.request.tokens),
                 payload);
    }
    responses_.fetch_add(1);
    Respond(p, TagResponse(p.request, false, payload));
  }
}

void Server::Respond(const Pending& pending, const std::string& line) {
  if (obs::MetricsEnabled()) {
    obs::Metrics::Get()
        .histogram("serve.request.latency_us")
        ->Observe(static_cast<double>(obs::NowMicros() - pending.arrival_us));
  }
  WriteLine(pending.conn, line);
}

void Server::WriteLine(const std::shared_ptr<Conn>& conn,
                       const std::string& line) {
  if (conn->dead.load()) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    // MSG_NOSIGNAL: a half-closed or gone client must surface as an error
    // return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(conn->fd, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      conn->dead.store(true);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void Server::Wait(const std::atomic<bool>* interrupted) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  for (;;) {
    if (shutdown_requested_ || stopping_.load()) return;
    if (interrupted != nullptr && interrupted->load()) return;
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(200));
  }
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  if (!started_.load()) return;
  // 1. Refuse new connections and wake the listener out of accept(); the
  //    fd is closed only after the join so its number cannot be reused
  //    under a racing accept().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Drain the batcher: stopping_ is set, so readers now reject new
  //    requests with 503 while everything already admitted is answered.
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // 3. Unblock and join the connection readers.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const std::weak_ptr<Conn>& weak : conns_) {
      if (const std::shared_ptr<Conn> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  obs::Log(obs::LogLevel::kInfo, "serve_stopped",
           {{"responses", responses_.load()}});
}

void Server::PublishMetrics() const {
  obs::Metrics& m = obs::Metrics::Get();
  auto set = [&m](const char* name, std::int64_t v) {
    m.gauge(name)->Set(static_cast<double>(v));
  };
  set("serve.requests_total", requests_.load());
  set("serve.responses_total", responses_.load());
  set("serve.rejected_total", rejected_.load());
  set("serve.errors_total", errors_.load());
  set("serve.cache.hits", cache_hits_.load());
  set("serve.cache.misses", cache_misses_.load());
  set("serve.cache.size", static_cast<std::int64_t>(cache_.size()));
  set("serve.batches_total", batches_.load());
  set("serve.batch.deadline_flushes", deadline_flushes_.load());
  set("serve.batch.size_flushes", size_flushes_.load());
  set("serve.queue.peak_depth", queue_peak_.load());
  set("serve.reloads_total", reloads_.load());
}

}  // namespace dlner::serve
