// Model registry for dlner_serve: named v2 checkpoints, hot-reloadable.
//
// Pipelines are held by shared_ptr and handed out by value, so a reload
// swaps the registry entry atomically while any batch already executing
// keeps the old pipeline alive until it finishes — hot reload never drops
// or corrupts in-flight requests. Every successful (re)load bumps the
// entry's generation, which the response cache folds into its key
// (serve/cache.h), so stale cached responses stop matching immediately.
#ifndef DLNER_SERVE_REGISTRY_H_
#define DLNER_SERVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace dlner::serve {

class ModelRegistry {
 public:
  struct Entry {
    std::shared_ptr<const core::Pipeline> pipeline;  // null when unknown
    std::uint64_t generation = 0;
  };

  /// Loads the checkpoint at `path` and installs it under `name`,
  /// replacing any existing model. The (slow) checkpoint read happens
  /// outside the registry lock; on a load failure the registry is
  /// unchanged — the previous model, if any, keeps serving.
  ///
  /// With quantized serving enabled (set_quantized), the load also reads
  /// the `<path>.quant` calibration sidecar and switches the model to the
  /// int8 planned path; a missing or corrupt sidecar FAILS the load rather
  /// than silently serving f32 under a quantized flag.
  bool Load(const std::string& name, const std::string& path);

  /// Makes every subsequent Load serve through the int8 quantized path.
  /// Set once at startup, before the initial loads (not thread-safe
  /// against concurrent Load).
  void set_quantized(bool quantized) { quantized_ = quantized; }
  bool quantized() const { return quantized_; }

  /// The current pipeline + generation for `name`; Entry{nullptr, 0} when
  /// unknown.
  Entry Get(const std::string& name) const;

  /// Registered model names, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  bool quantized_ = false;
  std::map<std::string, Entry> models_;
};

}  // namespace dlner::serve

#endif  // DLNER_SERVE_REGISTRY_H_
