// Long-lived tagging server: newline-delimited JSON over TCP with dynamic
// micro-batching (ROADMAP item 1; the survey frames NER as the front-line
// component of production NLP systems serving live traffic).
//
// Architecture:
//
//   accept loop ──> one reader thread per connection
//                     │  parse line (serve/protocol.h)
//                     │  cache hit?  ──────────────> respond immediately
//                     │  admin cmd?  ──────────────> handle inline
//                     ▼
//              bounded admission queue   (full -> 429 error response)
//                     │
//                     ▼
//               batcher thread: flush by deadline-or-size
//                     │  groups queued requests by model, up to batch_max
//                     │  or when the oldest has waited batch_delay_us
//                     ▼
//            Pipeline::TagCorpus  (compiled plan: packed ragged
//            micro-batches over arena-backed buffers, src/plan/)
//                     │
//                     ▼
//              per-request responses (+ LRU cache fill)
//
// Responses are byte-identical to `dlner tag` on the same model and input:
// the batcher routes through exactly the PredictCorpus path the CLI uses.
// Backpressure is explicit — a full admission queue rejects with a
// 429-coded error response instead of queueing unboundedly; a draining
// server rejects with 503. Hot reload (admin "reload", or
// ModelRegistry::Load from the embedding process) swaps the model without
// dropping in-flight requests (serve/registry.h).
//
// Observability (docs/OBSERVABILITY.md "Live serving observability"):
// every accepted request gets a 64-bit request id threaded through the
// admission queue, the batcher, TagCorpus, and the response write. Sampled
// requests (--trace-sample-rate over the request-id hash) record a
// serve/request span plus serve/stage/{queue_wait,batch_wait,compute,
// write} spans sharing the same "req" annotation; serve/batch spans carry
// the ids they served and set the batch id as the thread's trace context,
// so plan/batch spans nest attributably. Latency and stage histograms feed
// both lifetime instruments (serve.request.latency_us, serve.stage.*) and
// rolling serve.window.* instruments exported by the admin "metrics"
// command and the --metrics-port Prometheus scrape; requests over
// --slow-request-us emit a structured serve_slow_request log line with the
// stage breakdown. See docs/SERVING.md.
#ifndef DLNER_SERVE_SERVER_H_
#define DLNER_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace dlner::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see
  /// Server::port()).
  int port = 0;
  /// Admission-queue bound; a full queue rejects with a 429 error response.
  int queue_capacity = 256;
  /// Flush a micro-batch at this many queued requests for one model...
  int batch_max = 16;
  /// ...or once the oldest queued request has waited this long.
  std::int64_t batch_delay_us = 2000;
  /// LRU response-cache entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Request lines longer than this are rejected with a 413 error response
  /// (the rest of the oversized line is discarded; the connection
  /// survives).
  std::size_t max_line_bytes = 1 << 20;
  /// Requests with more tokens than this are rejected with 413.
  int max_tokens = 512;

  // --- Live observability (docs/OBSERVABILITY.md) -----------------------

  /// Fraction of requests whose lifecycle is recorded as trace spans while
  /// tracing is enabled. Sampling is deterministic per request id (a
  /// splitmix64 hash), so reruns sample the same ids. 1.0 = every request
  /// (the pre-sampling behavior); 0.0 = none.
  double trace_sample_rate = 1.0;
  /// Requests slower than this end-to-end emit a structured
  /// "serve_slow_request" warn-level log line with the per-stage
  /// breakdown, independent of trace sampling. 0 disables.
  std::int64_t slow_request_us = 0;
  /// End-to-end latency objective. When nonzero, every response also feeds
  /// the rolling SLO-attainment gauge (fraction of windowed responses at
  /// or under this latency) and the error-budget-remaining gauge derived
  /// from `slo_target`. 0 disables SLO accounting.
  std::int64_t slo_us = 0;
  /// Attainment objective for the error-budget gauge: with target t, the
  /// budget is (1 - t) of windowed responses; the gauge is the fraction of
  /// that budget not yet consumed by over-SLO responses (1 = untouched,
  /// 0 = exhausted, negative = blown).
  double slo_target = 0.99;
  /// TCP port for the plain-text Prometheus scrape endpoint (HTTP GET,
  /// exposition format 0.0.4). -1 disables; 0 asks for an ephemeral port
  /// (see Server::metrics_port()). While the endpoint is up, serve-side
  /// metric collection is always on, even without --metrics-out.
  int metrics_port = -1;
  /// Sliding-window shape for the serve.window.* instruments: a ring of
  /// `window_epochs` slots of `window_epoch_us` each (default 12 x 5 s =
  /// a one-minute rolling window).
  std::int64_t window_epoch_us = 5'000'000;
  int window_epochs = 12;
};

class Server {
 public:
  /// The registry is borrowed and must outlive the server. Models may be
  /// loaded into it before Start() and hot-reloaded at any time after.
  Server(ModelRegistry* registry, const ServeConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and launches the accept + batcher threads. Returns
  /// false (with the reason logged) when the socket cannot be bound.
  bool Start();

  /// The bound port (useful with ServeConfig::port == 0).
  int port() const { return port_; }

  /// The bound Prometheus scrape port, or 0 when ServeConfig::metrics_port
  /// is -1 (endpoint disabled).
  int metrics_port() const { return metrics_port_; }

  /// Blocks until Stop() is called or a client sends {"cmd":"shutdown"}.
  /// `interrupted`, when non-null, is polled so a signal handler can end
  /// the wait.
  void Wait(const std::atomic<bool>* interrupted = nullptr);

  /// Graceful stop: refuses new work (503), drains the admission queue so
  /// every accepted request is answered, then joins all threads.
  /// Idempotent.
  void Stop();

  /// Copies the server's internal counters into the obs metrics registry
  /// (serve.requests_total, serve.responses_total, serve.rejected_total,
  /// serve.errors_total, serve.cache.hits, serve.cache.misses,
  /// serve.batches_total, serve.queue.peak_depth, ...). Call before
  /// exporting metrics, like runtime::Runtime::PublishMetrics().
  void PublishMetrics() const;

  // Always-on lifetime counters (also the payload of the "stats" admin
  // command, so they work without --metrics-out).
  std::int64_t requests_total() const { return requests_.load(); }
  std::int64_t responses_total() const { return responses_.load(); }
  std::int64_t rejected_total() const { return rejected_.load(); }
  std::int64_t errors_total() const { return errors_.load(); }
  std::int64_t cache_hits() const { return cache_hits_.load(); }
  std::int64_t cache_misses() const { return cache_misses_.load(); }
  std::int64_t batches_total() const { return batches_.load(); }

 private:
  struct Conn;

  struct Pending {
    std::shared_ptr<Conn> conn;
    Request request;
    std::uint64_t arrival_us = 0;
    std::uint64_t req_id = 0;
    bool sampled = false;  // trace this request's lifecycle as spans
  };

  /// Stage boundary timestamps of one tagging request (obs::NowMicros()).
  /// queue_wait = queue_end - arrival (head-of-line time before the
  /// batcher started collecting this batch), batch_wait = batch_end -
  /// queue_end (deadline-or-size collection), compute = the TagCorpus
  /// call, write = doc fold + payload build + cache fill + socket write.
  /// Cache hits collapse everything but write onto the arrival instant.
  struct StageTimes {
    std::uint64_t arrival_us = 0;
    std::uint64_t queue_end_us = 0;
    std::uint64_t batch_end_us = 0;
    std::uint64_t compute_start_us = 0;
    std::uint64_t compute_end_us = 0;
    std::uint64_t write_start_us = 0;
    std::uint64_t write_end_us = 0;
  };

  void AcceptLoop();
  void ConnLoop(std::shared_ptr<Conn> conn);
  void HandleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  void HandleAdmin(const std::shared_ptr<Conn>& conn, const Request& req,
                   std::uint64_t arrival_us);
  void BatchLoop();
  void ExecuteBatch(std::vector<Pending> batch, std::uint64_t collect_start_us,
                    std::uint64_t collect_end_us);
  void Respond(const Pending& pending, const std::string& line);
  void WriteLine(const std::shared_ptr<Conn>& conn, const std::string& line);

  /// True while serve-side metric collection should run: always while the
  /// scrape endpoint is configured, otherwise only under --metrics-out.
  bool CollectMetrics() const {
    return metrics_always_ || obs::MetricsEnabled();
  }
  /// Deterministic per-request sampling decision (splitmix64 hash of the
  /// request id against config_.trace_sample_rate).
  bool SampleTrace(std::uint64_t req_id) const;
  /// Tail of every answered tagging request: windowed + lifetime metrics,
  /// per-model counters, SLO accounting, stage spans for sampled requests,
  /// and the slow-request log line.
  void FinishTagRequest(const Pending& pending, const std::string& model,
                        bool cached, const StageTimes& t);
  /// serve.window.model.<model>.<what> with the server's window shape.
  obs::WindowedCounter* ModelWindow(const std::string& model,
                                    const char* what) const;

  bool StartMetricsListener();
  void MetricsLoop();
  /// The Prometheus exposition the scrape endpoint and the admin
  /// "metrics" command serve (publishes derived gauges first).
  std::string ScrapeText() const;

  ModelRegistry* const registry_;
  const ServeConfig config_;
  const bool metrics_always_;
  LruCache cache_;

  int listen_fd_ = -1;
  int port_ = 0;
  int metrics_listen_fd_ = -1;
  int metrics_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::thread listener_;
  std::thread batcher_;
  std::thread metrics_thread_;
  std::mutex conn_mu_;  // guards conns_ and conn_threads_
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> responses_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::atomic<std::int64_t> cache_misses_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> deadline_flushes_{0};
  std::atomic<std::int64_t> size_flushes_{0};
  std::atomic<std::int64_t> queue_peak_{0};
  std::atomic<std::int64_t> reloads_{0};
  std::atomic<std::int64_t> queue_depth_{0};  // live admission-queue depth
  std::atomic<std::uint64_t> next_req_id_{0};
  std::atomic<std::int64_t> slow_requests_{0};

  // Cached instrument pointers (stable for the process lifetime). The
  // lifetime histograms keep their PR-7 names; the serve.window.* family
  // is this server's rolling view and is Reset() in Start() so sequential
  // in-process servers (tests, bench_serve) observe only their own
  // traffic.
  obs::Histogram* lat_hist_;
  obs::Histogram* stage_queue_hist_;
  obs::Histogram* stage_batch_hist_;
  obs::Histogram* stage_compute_hist_;
  obs::Histogram* stage_write_hist_;
  obs::WindowedHistogram* win_latency_;
  obs::WindowedHistogram* win_stage_queue_;
  obs::WindowedHistogram* win_stage_batch_;
  obs::WindowedHistogram* win_stage_compute_;
  obs::WindowedHistogram* win_stage_write_;
  obs::WindowedHistogram* win_batch_size_;
  obs::WindowedCounter* win_responses_;
  obs::WindowedCounter* win_errors_;
  obs::WindowedCounter* win_rejected_;
  obs::WindowedCounter* win_slo_ok_;
  obs::WindowedCounter* win_cache_hits_;
  obs::WindowedCounter* win_cache_misses_;
};

}  // namespace dlner::serve

#endif  // DLNER_SERVE_SERVER_H_
