// Long-lived tagging server: newline-delimited JSON over TCP with dynamic
// micro-batching (ROADMAP item 1; the survey frames NER as the front-line
// component of production NLP systems serving live traffic).
//
// Architecture:
//
//   accept loop ──> one reader thread per connection
//                     │  parse line (serve/protocol.h)
//                     │  cache hit?  ──────────────> respond immediately
//                     │  admin cmd?  ──────────────> handle inline
//                     ▼
//              bounded admission queue   (full -> 429 error response)
//                     │
//                     ▼
//               batcher thread: flush by deadline-or-size
//                     │  groups queued requests by model, up to batch_max
//                     │  or when the oldest has waited batch_delay_us
//                     ▼
//            Pipeline::TagCorpus  (compiled plan: packed ragged
//            micro-batches over arena-backed buffers, src/plan/)
//                     │
//                     ▼
//              per-request responses (+ LRU cache fill)
//
// Responses are byte-identical to `dlner tag` on the same model and input:
// the batcher routes through exactly the PredictCorpus path the CLI uses.
// Backpressure is explicit — a full admission queue rejects with a
// 429-coded error response instead of queueing unboundedly; a draining
// server rejects with 503. Hot reload (admin "reload", or
// ModelRegistry::Load from the embedding process) swaps the model without
// dropping in-flight requests (serve/registry.h).
//
// Observability: spans serve/request, serve/batch, serve/reload; always-on
// internal counters surfaced by PublishMetrics() as serve.* metrics plus —
// while obs::MetricsEnabled() — serve.request.latency_us and
// serve.batch.size histograms and serve.queue.depth gauges. See
// docs/SERVING.md.
#ifndef DLNER_SERVE_SERVER_H_
#define DLNER_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace dlner::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see
  /// Server::port()).
  int port = 0;
  /// Admission-queue bound; a full queue rejects with a 429 error response.
  int queue_capacity = 256;
  /// Flush a micro-batch at this many queued requests for one model...
  int batch_max = 16;
  /// ...or once the oldest queued request has waited this long.
  std::int64_t batch_delay_us = 2000;
  /// LRU response-cache entries; 0 disables caching.
  std::size_t cache_capacity = 4096;
  /// Request lines longer than this are rejected with a 413 error response
  /// (the rest of the oversized line is discarded; the connection
  /// survives).
  std::size_t max_line_bytes = 1 << 20;
  /// Requests with more tokens than this are rejected with 413.
  int max_tokens = 512;
};

class Server {
 public:
  /// The registry is borrowed and must outlive the server. Models may be
  /// loaded into it before Start() and hot-reloaded at any time after.
  Server(ModelRegistry* registry, const ServeConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and launches the accept + batcher threads. Returns
  /// false (with the reason logged) when the socket cannot be bound.
  bool Start();

  /// The bound port (useful with ServeConfig::port == 0).
  int port() const { return port_; }

  /// Blocks until Stop() is called or a client sends {"cmd":"shutdown"}.
  /// `interrupted`, when non-null, is polled so a signal handler can end
  /// the wait.
  void Wait(const std::atomic<bool>* interrupted = nullptr);

  /// Graceful stop: refuses new work (503), drains the admission queue so
  /// every accepted request is answered, then joins all threads.
  /// Idempotent.
  void Stop();

  /// Copies the server's internal counters into the obs metrics registry
  /// (serve.requests_total, serve.responses_total, serve.rejected_total,
  /// serve.errors_total, serve.cache.hits, serve.cache.misses,
  /// serve.batches_total, serve.queue.peak_depth, ...). Call before
  /// exporting metrics, like runtime::Runtime::PublishMetrics().
  void PublishMetrics() const;

  // Always-on lifetime counters (also the payload of the "stats" admin
  // command, so they work without --metrics-out).
  std::int64_t requests_total() const { return requests_.load(); }
  std::int64_t responses_total() const { return responses_.load(); }
  std::int64_t rejected_total() const { return rejected_.load(); }
  std::int64_t errors_total() const { return errors_.load(); }
  std::int64_t cache_hits() const { return cache_hits_.load(); }
  std::int64_t cache_misses() const { return cache_misses_.load(); }
  std::int64_t batches_total() const { return batches_.load(); }

 private:
  struct Conn;

  struct Pending {
    std::shared_ptr<Conn> conn;
    Request request;
    std::uint64_t arrival_us = 0;
  };

  void AcceptLoop();
  void ConnLoop(std::shared_ptr<Conn> conn);
  void HandleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  void HandleAdmin(const std::shared_ptr<Conn>& conn, const Request& req,
                   std::uint64_t arrival_us);
  void BatchLoop();
  void ExecuteBatch(std::vector<Pending> batch);
  void Respond(const Pending& pending, const std::string& line);
  void WriteLine(const std::shared_ptr<Conn>& conn, const std::string& line);

  ModelRegistry* const registry_;
  const ServeConfig config_;
  LruCache cache_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::thread listener_;
  std::thread batcher_;
  std::mutex conn_mu_;  // guards conns_ and conn_threads_
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> responses_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> errors_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::atomic<std::int64_t> cache_misses_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> deadline_flushes_{0};
  std::atomic<std::int64_t> size_flushes_{0};
  std::atomic<std::int64_t> queue_peak_{0};
  std::atomic<std::int64_t> reloads_{0};
};

}  // namespace dlner::serve

#endif  // DLNER_SERVE_SERVER_H_
