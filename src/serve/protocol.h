// Newline-delimited JSON request/response framing for dlner_serve.
//
// One request per line, one response per line, in any order (responses
// carry the request's id). The grammar is deliberately tiny — a flat JSON
// object whose values are strings, integers, booleans, or arrays of
// strings — and strict: unknown fields, nested objects, and malformed
// escapes are rejected with an error response rather than guessed at, the
// same posture the checked CLI flag parser takes (core/flags.h).
//
// Tagging request   {"id":7,"model":"default","text":"John visited Paris"}
//                   {"id":8,"tokens":["John","visited","Paris"]}
//                   {"id":9,"doc":true,"tokens":["Li","spoke","."]}
//
// "doc":true marks the request as part of the connection's current
// document: the response reflects (and updates) the per-connection
// entity-consistency memory (stream/entity_memory.h), and is echoed with a
// "doc":true marker. Document requests bypass the response cache — their
// answer depends on connection state, not just (model, tokens).
// Admin request     {"cmd":"reload","model":"default","path":"new.bin"}
//                   {"cmd":"models"} {"cmd":"stats"} {"cmd":"metrics"}
//                   {"cmd":"shutdown"}
//
// "stats" answers lifetime counters plus a rolling-window block (queue
// depth, cache hits/misses, windowed p50/p99, SLO attainment); "metrics"
// answers {"id":..,"metrics":"<...>"} where the value is the full
// Prometheus text exposition, JSON-escaped — the same bytes the
// --metrics-port HTTP scrape serves.
// Tagging response  {"id":7,"model":"default","cached":false,
//                    "tokens":[...],"spans":[{"start":1,"end":2,
//                    "type":"LOC"}]}
// Error response    {"id":7,"error":{"code":429,"message":"queue full"}}
//
// The "tokens"/"spans" fragment of a tagging response is produced by
// TagPayload and is exactly the string the LRU response cache stores, so a
// cache hit is bit-identical to the uncached response (only the "cached"
// flag and the echoed id differ).
#ifndef DLNER_SERVE_PROTOCOL_H_
#define DLNER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/types.h"

namespace dlner::serve {

// HTTP-flavored error codes used in error responses.
inline constexpr int kBadRequest = 400;    // malformed JSON / bad fields
inline constexpr int kUnknownModel = 404;  // model name not in the registry
inline constexpr int kTooLarge = 413;      // line or token count over limit
inline constexpr int kQueueFull = 429;     // admission queue at capacity
inline constexpr int kInternal = 500;      // server-side failure
inline constexpr int kShuttingDown = 503;  // server is draining

/// Parsed form of one request line.
struct Request {
  enum class Kind { kTag, kAdmin };
  Kind kind = Kind::kTag;
  bool has_id = false;
  std::int64_t id = 0;
  std::string model = "default";
  std::vector<std::string> tokens;  // kTag ("text" is whitespace-tokenized)
  /// kTag: part of the connection's current document (doc-context state).
  bool doc = false;
  std::string cmd;  // kAdmin: reload|models|stats|metrics|shutdown
  std::string path;                 // kAdmin reload: checkpoint to load
};

/// Parses one request line. On failure returns false and fills *error and
/// *code; *out still carries any id that could be extracted so the error
/// response can echo it.
bool ParseRequest(const std::string& line, Request* out, std::string* error,
                  int* code);

/// JSON string escaping for response construction (quotes, backslashes,
/// control characters).
std::string JsonQuote(const std::string& s);

/// The `"tokens":[...],"spans":[...]` fragment of a tagging response.
/// Deterministic function of (tokens, spans) — this is the cache value.
std::string TagPayload(const std::vector<std::string>& tokens,
                       const std::vector<text::Span>& spans);

/// Full tagging response line (no trailing newline).
std::string TagResponse(const Request& req, bool cached,
                        const std::string& payload);

/// Error response line; echoes the id when `has_id`.
std::string ErrorResponse(bool has_id, std::int64_t id, int code,
                          const std::string& message);

}  // namespace dlner::serve

#endif  // DLNER_SERVE_PROTOCOL_H_
