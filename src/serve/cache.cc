#include "serve/cache.h"

namespace dlner::serve {

std::string LruCache::Key(const std::string& model, std::uint64_t generation,
                          const std::vector<std::string>& tokens) {
  std::string key = model;
  key.push_back('\x1f');
  key += std::to_string(generation);
  for (const std::string& tok : tokens) {
    key.push_back('\x1f');
    key += tok;
  }
  return key;
}

bool LruCache::Get(const std::string& key, std::string* value) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  *value = it->second->second;
  return true;
}

void LruCache::Put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t LruCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace dlner::serve
