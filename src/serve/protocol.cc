#include "serve/protocol.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>

namespace dlner::serve {

namespace {

// One decoded JSON value of the restricted grammar (string, integer,
// boolean, null, or array of strings). Doubles are rejected where an
// integer is required; nested containers are rejected outright.
struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kStringArray };
  Kind kind = Kind::kNull;
  bool b = false;
  std::int64_t i = 0;
  double d = 0.0;
  std::string str;
  std::vector<std::string> arr;
};

// Recursive-descent parser over one line. Error messages name the problem,
// not the byte offset — lines are short and the caller echoes the message
// back to the client.
class LineParser {
 public:
  LineParser(const char* p, const char* end) : p_(p), end_(end) {}

  bool ParseObject(std::map<std::string, JsonValue>* out) {
    SkipWs();
    if (!Consume('{')) return Fail("expected '{'");
    SkipWs();
    if (Consume('}')) return AtEnd();
    for (;;) {
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      if (out->count(key) > 0) return Fail("duplicate field \"" + key + "\"");
      (*out)[key] = std::move(value);
      SkipWs();
      if (Consume(',')) {
        SkipWs();
        continue;
      }
      if (Consume('}')) return AtEnd();
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& error() const { return error_; }

 private:
  bool AtEnd() {
    SkipWs();
    if (p_ != end_) return Fail("trailing bytes after object");
    return true;
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' || *p_ == '\n')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* v) {
    SkipWs();
    if (p_ == end_) return Fail("unexpected end of line");
    switch (*p_) {
      case '"':
        v->kind = JsonValue::Kind::kString;
        return ParseString(&v->str);
      case '[':
        return ParseStringArray(v);
      case '{':
        return Fail("nested objects are not supported");
      case 't':
        if (ConsumeWord("true")) {
          v->kind = JsonValue::Kind::kBool;
          v->b = true;
          return true;
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          v->kind = JsonValue::Kind::kBool;
          v->b = false;
          return true;
        }
        return Fail("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          v->kind = JsonValue::Kind::kNull;
          return true;
        }
        return Fail("bad literal");
      default:
        return ParseNumber(v);
    }
  }

  bool ConsumeWord(const char* w) {
    const char* q = p_;
    while (*w != '\0') {
      if (q == end_ || *q != *w) return false;
      ++q;
      ++w;
    }
    p_ = q;
    return true;
  }

  bool ParseNumber(JsonValue* v) {
    const char* start = p_;
    bool is_int = true;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '+' || *p_ == '-')) {
      if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') is_int = false;
      ++p_;
    }
    const std::string text(start, p_);
    if (is_int) {
      std::int64_t i = 0;
      if (std::sscanf(text.c_str(), "%lld", reinterpret_cast<long long*>(&i)) !=
              1 ||
          std::to_string(i) != text) {
        return Fail("bad number \"" + text + "\"");
      }
      v->kind = JsonValue::Kind::kInt;
      v->i = i;
      return true;
    }
    double d = 0.0;
    if (std::sscanf(text.c_str(), "%lf", &d) != 1) {
      return Fail("bad number \"" + text + "\"");
    }
    v->kind = JsonValue::Kind::kDouble;
    v->d = d;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_++);
      if (c == '"') return true;
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (p_ == end_) break;
      const char esc = *p_++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            if (p_ == end_) return Fail("truncated \\u escape");
            const char h = *p_++;
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode the basic-plane code point; surrogate pairs are
          // rejected (tokens with astral-plane characters can be sent as
          // raw UTF-8 bytes instead).
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            return Fail("surrogate \\u escapes are not supported");
          }
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseStringArray(JsonValue* v) {
    v->kind = JsonValue::Kind::kStringArray;
    Consume('[');
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') {
        return Fail("arrays may only contain strings");
      }
      std::string s;
      if (!ParseString(&s)) return false;
      v->arr.push_back(std::move(s));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

bool SemanticFail(const std::string& message, std::string* error, int* code) {
  *error = message;
  *code = kBadRequest;
  return false;
}

}  // namespace

bool ParseRequest(const std::string& line, Request* out, std::string* error,
                  int* code) {
  std::map<std::string, JsonValue> fields;
  LineParser parser(line.data(), line.data() + line.size());
  if (!parser.ParseObject(&fields)) {
    *error = "malformed request: " + parser.error();
    *code = kBadRequest;
    return false;
  }

  // Extract the id first so even a semantically bad request can have its
  // error response correlated by the client.
  if (const auto it = fields.find("id"); it != fields.end()) {
    if (it->second.kind != JsonValue::Kind::kInt) {
      return SemanticFail("\"id\" must be an integer", error, code);
    }
    out->has_id = true;
    out->id = it->second.i;
    fields.erase(it);
  }

  if (const auto it = fields.find("model"); it != fields.end()) {
    if (it->second.kind != JsonValue::Kind::kString || it->second.str.empty()) {
      return SemanticFail("\"model\" must be a non-empty string", error, code);
    }
    out->model = it->second.str;
    fields.erase(it);
  }

  if (const auto it = fields.find("cmd"); it != fields.end()) {
    if (it->second.kind != JsonValue::Kind::kString) {
      return SemanticFail("\"cmd\" must be a string", error, code);
    }
    out->kind = Request::Kind::kAdmin;
    out->cmd = it->second.str;
    fields.erase(it);
    if (out->cmd == "reload") {
      const auto path = fields.find("path");
      if (path == fields.end() ||
          path->second.kind != JsonValue::Kind::kString ||
          path->second.str.empty()) {
        return SemanticFail("reload requires a \"path\" string", error, code);
      }
      out->path = path->second.str;
      fields.erase(path);
    } else if (out->cmd != "models" && out->cmd != "stats" &&
               out->cmd != "metrics" && out->cmd != "shutdown") {
      return SemanticFail("unknown cmd \"" + out->cmd + "\"", error, code);
    }
    if (!fields.empty()) {
      return SemanticFail("unknown field \"" + fields.begin()->first + "\"",
                          error, code);
    }
    return true;
  }

  out->kind = Request::Kind::kTag;
  const auto text = fields.find("text");
  const auto tokens = fields.find("tokens");
  if ((text != fields.end()) == (tokens != fields.end())) {
    return SemanticFail("exactly one of \"text\" or \"tokens\" is required",
                        error, code);
  }
  if (text != fields.end()) {
    if (text->second.kind != JsonValue::Kind::kString) {
      return SemanticFail("\"text\" must be a string", error, code);
    }
    // Same whitespace tokenization as Pipeline::TagText, so a served
    // request and `dlner tag --text` see identical token sequences.
    std::istringstream ss(text->second.str);
    std::string tok;
    while (ss >> tok) out->tokens.push_back(tok);
    fields.erase(text);
  } else {
    if (tokens->second.kind != JsonValue::Kind::kStringArray) {
      return SemanticFail("\"tokens\" must be an array of strings", error,
                          code);
    }
    for (const std::string& tok : tokens->second.arr) {
      if (tok.empty()) {
        return SemanticFail("\"tokens\" entries must be non-empty", error,
                            code);
      }
    }
    out->tokens = tokens->second.arr;
    fields.erase(tokens);
  }
  if (const auto doc = fields.find("doc"); doc != fields.end()) {
    if (doc->second.kind != JsonValue::Kind::kBool) {
      return SemanticFail("\"doc\" must be a boolean", error, code);
    }
    out->doc = doc->second.b;
    fields.erase(doc);
  }
  if (!fields.empty()) {
    return SemanticFail("unknown field \"" + fields.begin()->first + "\"",
                        error, code);
  }
  return true;
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string TagPayload(const std::vector<std::string>& tokens,
                       const std::vector<text::Span>& spans) {
  std::string out = "\"tokens\":[";
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += JsonQuote(tokens[i]);
  }
  out += "],\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"start\":" + std::to_string(spans[i].start) +
           ",\"end\":" + std::to_string(spans[i].end) +
           ",\"type\":" + JsonQuote(spans[i].type) + "}";
  }
  out += "]";
  return out;
}

std::string TagResponse(const Request& req, bool cached,
                        const std::string& payload) {
  std::string out = "{";
  if (req.has_id) out += "\"id\":" + std::to_string(req.id) + ",";
  out += "\"model\":" + JsonQuote(req.model) +
         ",\"cached\":" + (cached ? "true" : "false") +
         (req.doc ? ",\"doc\":true" : "") + "," + payload + "}";
  return out;
}

std::string ErrorResponse(bool has_id, std::int64_t id, int code,
                          const std::string& message) {
  std::string out = "{";
  if (has_id) out += "\"id\":" + std::to_string(id) + ",";
  out += "\"error\":{\"code\":" + std::to_string(code) +
         ",\"message\":" + JsonQuote(message) + "}}";
  return out;
}

}  // namespace dlner::serve
