// LRU response cache for dlner_serve, keyed on (model, generation,
// sentence).
//
// The value stored is the exact "tokens":[...],"spans":[...] payload
// fragment the server would otherwise recompute (protocol.h TagPayload),
// so a hit is bit-identical to the uncached response. The registry
// generation is part of the key: a hot reload bumps the model's generation
// and every stale entry simply stops matching — no invalidation race with
// batches already in flight — and falls out through normal LRU eviction.
#ifndef DLNER_SERVE_CACHE_H_
#define DLNER_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dlner::serve {

class LruCache {
 public:
  /// Capacity 0 disables the cache (Get always misses, Put is a no-op).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Cache key for a (model, generation, token sequence) triple. Tokens
  /// are joined with an unlikely-in-text separator so ["ab","c"] and
  /// ["a","bc"] never collide.
  static std::string Key(const std::string& model, std::uint64_t generation,
                         const std::vector<std::string>& tokens);

  /// On hit copies the payload into *value, promotes the entry to
  /// most-recently-used, and returns true.
  bool Get(const std::string& key, std::string* value);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when at capacity.
  void Put(const std::string& key, std::string value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::string>;  // key -> payload

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace dlner::serve

#endif  // DLNER_SERVE_CACHE_H_
