#include "data/dataset.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace dlner::data {

DataSplit SplitCorpus(const text::Corpus& corpus, double train_frac,
                      double dev_frac, uint64_t seed) {
  DLNER_CHECK_GT(train_frac, 0.0);
  DLNER_CHECK_GE(dev_frac, 0.0);
  DLNER_CHECK_LT(train_frac + dev_frac, 1.0);
  std::vector<int> order(corpus.sentences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  Rng rng(seed);
  rng.Shuffle(&order);

  const int n = corpus.size();
  const int n_train = static_cast<int>(n * train_frac);
  const int n_dev = static_cast<int>(n * dev_frac);
  DataSplit split;
  for (int i = 0; i < n; ++i) {
    const text::Sentence& s = corpus.sentences[order[i]];
    if (i < n_train) {
      split.train.sentences.push_back(s);
    } else if (i < n_train + n_dev) {
      split.dev.sentences.push_back(s);
    } else {
      split.test.sentences.push_back(s);
    }
  }
  return split;
}

DataSplit MakeOovSplit(Genre genre, int train_size, int test_size,
                       uint64_t seed, double test_oov) {
  GenOptions train_opts = DefaultOptionsFor(genre);
  train_opts.num_sentences = train_size;
  train_opts.seed = seed;

  GenOptions test_opts = train_opts;
  test_opts.num_sentences = test_size;
  test_opts.seed = seed + 1;
  test_opts.oov_entity_fraction = test_oov;

  GenOptions dev_opts = test_opts;
  dev_opts.num_sentences = test_size / 2 + 1;
  dev_opts.seed = seed + 2;

  DataSplit split;
  split.train = GenerateCorpus(genre, train_opts);
  split.dev = GenerateCorpus(genre, dev_opts);
  split.test = GenerateCorpus(genre, test_opts);
  return split;
}

CorpusStats ComputeStats(const text::Corpus& corpus) {
  CorpusStats stats;
  stats.sentences = corpus.size();
  stats.tokens = corpus.TokenCount();
  stats.entities = corpus.EntityCount();
  int entity_tokens = 0;
  int nested_sentences = 0;
  for (const text::Sentence& s : corpus.sentences) {
    for (const text::Span& sp : s.spans) {
      stats.per_type[sp.type]++;
      entity_tokens += sp.end - sp.start;
    }
    if (!text::SpansAreFlat(s.spans)) ++nested_sentences;
  }
  stats.num_types = static_cast<int>(stats.per_type.size());
  if (stats.tokens > 0) {
    stats.entity_density = static_cast<double>(entity_tokens) / stats.tokens;
  }
  if (stats.sentences > 0) {
    stats.avg_sentence_len =
        static_cast<double>(stats.tokens) / stats.sentences;
    stats.nested_fraction =
        static_cast<double>(nested_sentences) / stats.sentences;
  }
  return stats;
}

double OovEntityTokenRate(const text::Corpus& train,
                          const text::Corpus& test) {
  std::unordered_set<std::string> train_tokens;
  for (const text::Sentence& s : train.sentences) {
    for (const std::string& t : s.tokens) train_tokens.insert(t);
  }
  int entity_tokens = 0;
  int oov = 0;
  for (const text::Sentence& s : test.sentences) {
    for (const text::Span& sp : s.spans) {
      for (int t = sp.start; t < sp.end; ++t) {
        ++entity_tokens;
        if (train_tokens.count(s.tokens[t]) == 0) ++oov;
      }
    }
  }
  return entity_tokens == 0 ? 0.0
                            : static_cast<double>(oov) / entity_tokens;
}

const std::vector<DatasetSpec>& StandardDatasets() {
  static const auto& specs = *new std::vector<DatasetSpec>{
      {"conll-like", Genre::kNews, "CoNLL03 (Reuters news, 4 types)"},
      {"ontonotes-like", Genre::kOnto,
       "OntoNotes 5.0 (mixed genres, 18 types)"},
      {"wnut-like", Genre::kSocial,
       "W-NUT 17 (user-generated text, 6 types)"},
      {"fine-grained-like", Genre::kFineGrained,
       "FIGER/BBN (fine-grained hierarchies)"},
      {"nested-like", Genre::kNested, "GENIA/ACE (nested mentions)"},
      {"bio-like", Genre::kBio, "BC5CDR/GENETAG (biomedical)"},
  };
  return specs;
}

text::Corpus MakeDataset(const std::string& name, int num_sentences,
                         uint64_t seed) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    if (spec.name == name) {
      GenOptions opts = DefaultOptionsFor(spec.genre);
      opts.num_sentences = num_sentences;
      opts.seed = seed;
      return GenerateCorpus(spec.genre, opts);
    }
  }
  DLNER_CHECK_MSG(false, "unknown dataset name: " << name);
}

text::Corpus CorruptLabels(const text::Corpus& corpus, double rate,
                           const std::vector<std::string>& types,
                           uint64_t seed) {
  DLNER_CHECK_GE(rate, 0.0);
  DLNER_CHECK_LE(rate, 1.0);
  DLNER_CHECK(!types.empty());
  Rng rng(seed);
  text::Corpus out = corpus;
  for (text::Sentence& s : out.sentences) {
    std::vector<text::Span> kept;
    for (text::Span sp : s.spans) {
      if (!rng.Bernoulli(rate)) {
        kept.push_back(sp);
        continue;
      }
      const int op = rng.UniformInt(0, 2);
      if (op == 0) continue;  // drop the annotation entirely
      if (op == 1) {
        // Shift a boundary by one token where possible.
        if (rng.Bernoulli(0.5) && sp.end < s.size()) {
          ++sp.end;
        } else if (sp.start > 0) {
          --sp.start;
        } else if (sp.end < s.size()) {
          ++sp.end;
        }
        kept.push_back(sp);
        continue;
      }
      // op == 2: flip the type.
      std::string new_type = types[rng.UniformInt(
          0, static_cast<int>(types.size()) - 1)];
      if (new_type == sp.type && types.size() > 1) {
        new_type = types[(rng.UniformInt(0, static_cast<int>(types.size()) -
                                                1))];
      }
      sp.type = new_type;
      kept.push_back(sp);
    }
    // Boundary shifts can create overlaps; drop any span overlapping an
    // earlier kept span so downstream flat-tagging stays well-defined.
    std::sort(kept.begin(), kept.end());
    std::vector<text::Span> flat;
    for (const text::Span& sp : kept) {
      if (flat.empty() || sp.start >= flat.back().end) flat.push_back(sp);
    }
    s.spans = std::move(flat);
  }
  return out;
}

}  // namespace dlner::data
