#include "data/synthetic.h"

#include <cctype>
#include <sstream>

#include "data/banks.h"
#include "tensor/check.h"
#include "tensor/rng.h"

namespace dlner::data {
namespace {

using text::Corpus;
using text::Sentence;
using text::Span;

template <typename T>
const T& Leak(T* t) {
  return *t;
}

// One realized entity mention: surface tokens, its type label, and any
// nested inner mentions (spans relative to the surface start).
struct EntitySurface {
  std::vector<std::string> tokens;
  std::string type;
  std::vector<Span> inner;
};

void AppendWords(std::vector<std::string>* out, const std::string& phrase) {
  std::istringstream ss(phrase);
  std::string w;
  while (ss >> w) out->push_back(w);
}

// ---------------------------------------------------------------------------
// Templates. Placeholders in {braces} are entity or word-class slots; all
// other whitespace-separated tokens are literals.
// ---------------------------------------------------------------------------

const std::vector<std::string>& NewsTemplates() {
  static const auto& v = Leak(new std::vector<std::string>{
      "{PER} {v} the {adj} {n} at a {n} in {LOC} .",
      "{ORG} {v} a {adj} {n} with {ORG} on {day} .",
      "{PER} , a {n} from {LOC} , {v} {ORG} .",
      "{ORG} {v} {ORG} in the {MISC} {n} .",
      "The {MISC} {n} {v} after {PER} {v} in {LOC} .",
      "{LOC} officials {v} the {n} before the {MISC} .",
      "{PER} and {PER} {v} a {n} about the {adj} {n} .",
      "Shares of {ORG} {v} {adv} in {LOC} trading .",
      "{ORG} coach {PER} {v} the {n} in {LOC} .",
      "In {LOC} , {PER} {v} that the {n} was {adj} .",
      "{ORG} {v} its {adj} {n} for {LOC} .",
      "The {n} between {ORG} and {ORG} {v} {adv} .",
      "{PER} {v} to {LOC} for the {MISC} .",
      "{LOC} based {ORG} {v} a {adj} {n} .",
      "{PER} {v} {adv} about the {MISC} {n} in {LOC} .",
      "A {adj} {n} in {LOC} {v} {ORG} to {v} its {n} .",
      "{ORG} {v} the {n} , and {PER} {v} the {adj} {n} .",
      "{MISC} champion {PER} {v} the {LOC} {n} .",
      "{PER} {v} a {n} after the {adj} {n} in {LOC} .",
      "{ORG} chairman {PER} {v} the {adj} {n} on {day} ."});
  return v;
}

const std::vector<std::string>& OntoTemplates() {
  static const auto& v = Leak(new std::vector<std::string>{
      "{PERSON} {v} the {n} in {GPE} on {DATE} .",
      "{ORG} {v} a {MONEY} {n} , up {PERCENT} from last year .",
      "The {NORP} delegation {v} {FAC} at {TIME} .",
      "{PERSON} {v} {CARDINAL} {n} near the {LOCNAT} .",
      "Under the {LAW} , {ORG} must {v} its {n} by {DATE} .",
      "The {ORDINAL} {EVENT} {v} in {GPE} .",
      "{ORG} {v} the {PRODUCT} for {MONEY} .",
      "{PERSON} , who speaks {LANGUAGE} , {v} {GPE} on {DATE} .",
      "About {PERCENT} of the {n} {v} {QUANTITY} of {n} .",
      "Critics {v} {ART} , the {adj} {n} by {PERSON} .",
      "{NORP} voters {v} the {n} at {TIME} on {DATE} .",
      "{ORG} {v} {CARDINAL} {n} across the {LOCNAT} .",
      "The {n} at {FAC} {v} {QUANTITY} of {n} .",
      "{PERSON} {v} the {ORDINAL} {n} of the {EVENT} .",
      "{GPE} {v} the {LAW} after the {adj} {n} .",
      "The {PRODUCT} {v} {MONEY} in {adj} sales .",
      "{PERSON} {v} {LANGUAGE} lessons at {FAC} .",
      "{ORG} {v} a {adj} {n} worth {MONEY} on {DATE} ."});
  return v;
}

const std::vector<std::string>& SocialTemplates() {
  static const auto& v = Leak(new std::vector<std::string>{
      "omg just saw {person} at {location} !!",
      "{product} is honestly so {adj}",
      "cant believe {group} {v} again",
      "watching {creative-work} tonight , no spoilers",
      "{person} x {person} collab when ?",
      "{corporation} customer service is the worst",
      "yo {location} weather is wild rn",
      "{person} really {v} that , wow",
      "new {product} drop from {corporation} !!",
      "{group} show in {location} was insane",
      "ngl {creative-work} kinda {adj}",
      "why is {corporation} trending again",
      "{person} {v} my {n} , im done",
      "someone said {product} beats {product} , thoughts ?",
      "{location} trip w {person} was a whole vibe",
      "{group} dropped a {adj} {n} today"});
  return v;
}

const std::vector<std::string>& FineTemplates() {
  static const auto& v = Leak(new std::vector<std::string>{
      "{person.athlete} scored for {organization.sports_team} in "
      "{location.city} .",
      "{person.politician} of {location.country} {v} the {n} .",
      "{person.artist} painted {art.painting} in {location.city} .",
      "{person.scientist} at {organization.university} {v} a {adj} {n} .",
      "{person.author} wrote {art.book} about the {event.war} .",
      "{person.actor} stars in {art.film} .",
      "{organization.company} {v} the {product.software} platform .",
      "{organization.government} {v} the {n} after the {event.election} .",
      "{organization.band} played {art.song} at the {event.festival} .",
      "{organization.newspaper} {v} the {n} about {person.politician} .",
      "The {product.vehicle} {v} near {location.river} .",
      "Hikers {v} {location.mountain} on the {location.island} coast .",
      "{organization.company} sells the {product.device} and the "
      "{product.food} brand .",
      "{event.sports_event} fans {v} {person.athlete} in {location.city} .",
      "{person.artist} {v} {art.song} during the {event.festival} .",
      "{organization.university} {v} {person.scientist} for the {n} .",
      "{location.facility} hosted the {event.election} debate .",
      "{person.author} {v} {organization.newspaper} over {art.book} ."});
  return v;
}

const std::vector<std::string>& NestedTemplates() {
  static const auto& v = Leak(new std::vector<std::string>{
      "{NORG} {v} a {adj} {n} .",
      "{PER} , chairman of {NORG} , {v} the {n} .",
      "The {n} at {NFAC} {v} {adv} .",
      "{NORG} and {ORG} {v} a {n} in {LOC} .",
      "{PER} {v} {NFAC} before the {n} .",
      "{NORG} president {PER} {v} the {adj} {n} .",
      "Researchers at {NORG} {v} the {n} .",
      "{PER} {v} the {n} near {NFAC} .",
      "{ORG} {v} {NORG} for a {adj} {n} .",
      "The {NORG} board {v} {PER} on {day} .",
      // Flat sentences keep the nested fraction realistic (the survey cites
      // 30% of ACE sentences containing nested mentions, not 100%).
      "{PER} {v} the {adj} {n} in {LOC} .",
      "{ORG} {v} a {n} with {ORG} .",
      "{PER} and {PER} {v} the {n} .",
      "{LOC} officials {v} the {adj} {n} .",
      "{ORG} {v} {adv} after the {n} .",
      "{PER} {v} to {LOC} on {day} ."});
  return v;
}

const std::vector<std::string>& BioTemplates() {
  static const auto& v = Leak(new std::vector<std::string>{
      "Patients with {DISEASE} were treated with {CHEMICAL} .",
      "Mutation of {GENE} increases the risk of {DISEASE} .",
      "{CHEMICAL} inhibits {GENE} expression in {adj} cells .",
      "The {DISEASE} cohort received {num} mg of {CHEMICAL} daily .",
      "{GENE} and {GENE} regulate the response to {CHEMICAL} .",
      "Treatment with {CHEMICAL} reduced {DISEASE} symptoms .",
      "Loss of {GENE} is associated with {DISEASE} .",
      "{CHEMICAL} induced {DISEASE} in {num} of {num} subjects .",
      "Expression of {GENE} was elevated in {DISEASE} tissue .",
      "Combined {CHEMICAL} and {CHEMICAL} therapy targets {GENE} ."});
  return v;
}

// ---------------------------------------------------------------------------
// Generator.
// ---------------------------------------------------------------------------

class Generator {
 public:
  Generator(Genre genre, const GenOptions& opts)
      : genre_(genre), opts_(opts), rng_(opts.seed) {}

  Corpus Generate() {
    Corpus corpus;
    corpus.sentences.reserve(opts_.num_sentences);
    const std::vector<std::string>& templates = TemplatesFor(genre_);
    for (int i = 0; i < opts_.num_sentences; ++i) {
      const std::string& tmpl =
          templates[rng_.UniformInt(0, static_cast<int>(templates.size()) - 1)];
      Sentence s = Realize(tmpl);
      ApplyNoise(&s);
      corpus.sentences.push_back(std::move(s));
    }
    return corpus;
  }

 private:
  static const std::vector<std::string>& TemplatesFor(Genre genre) {
    switch (genre) {
      case Genre::kNews:
        return NewsTemplates();
      case Genre::kOnto:
        return OntoTemplates();
      case Genre::kSocial:
        return SocialTemplates();
      case Genre::kFineGrained:
        return FineTemplates();
      case Genre::kNested:
        return NestedTemplates();
      case Genre::kBio:
        return BioTemplates();
    }
    DLNER_CHECK(false);
  }

  const std::string& Pick(const std::vector<std::string>& v) {
    DLNER_CHECK(!v.empty());
    return v[rng_.UniformInt(0, static_cast<int>(v.size()) - 1)];
  }

  // Draws from the train portion, or the held-out portion with probability
  // opts_.oov_entity_fraction.
  const std::string& PickSplit(const banks::SplitBank& bank) {
    if (opts_.oov_entity_fraction > 0.0 &&
        rng_.Bernoulli(opts_.oov_entity_fraction)) {
      return Pick(bank.heldout);
    }
    return Pick(bank.train);
  }

  std::string Digits(int lo, int hi) {
    return std::to_string(rng_.UniformInt(lo, hi));
  }

  Sentence Realize(const std::string& tmpl) {
    Sentence s;
    std::istringstream ss(tmpl);
    std::string piece;
    while (ss >> piece) {
      if (piece.size() >= 2 && piece.front() == '{' && piece.back() == '}') {
        const std::string slot = piece.substr(1, piece.size() - 2);
        if (FillWordClass(slot, &s)) continue;
        EntitySurface ent = MakeEntity(slot);
        const int start = s.size();
        for (std::string& tok : ent.tokens) s.tokens.push_back(std::move(tok));
        const int end = s.size();
        s.spans.push_back({start, end, ent.type});
        for (const Span& inner : ent.inner) {
          s.spans.push_back(
              {start + inner.start, start + inner.end, inner.type});
        }
      } else {
        s.tokens.push_back(piece);
      }
    }
    return s;
  }

  // Handles non-entity slots; returns false if `slot` names an entity.
  bool FillWordClass(const std::string& slot, Sentence* s) {
    if (slot == "v") {
      s->tokens.push_back(Pick(banks::Verbs()));
    } else if (slot == "n") {
      s->tokens.push_back(Pick(banks::Nouns()));
    } else if (slot == "adj") {
      s->tokens.push_back(Pick(banks::Adjectives()));
    } else if (slot == "adv") {
      s->tokens.push_back(Pick(banks::Adverbs()));
    } else if (slot == "day") {
      s->tokens.push_back(Pick(banks::Weekdays()));
    } else if (slot == "num") {
      s->tokens.push_back(Digits(2, 90));
    } else {
      return false;
    }
    return true;
  }

  EntitySurface MakeEntity(const std::string& slot) {
    EntitySurface e;
    e.type = slot;  // overridden below where the slot name isn't the label

    // --- News / shared coarse types ---
    if (slot == "PER" || slot == "PERSON" || slot == "person" ||
        slot.rfind("person.", 0) == 0) {
      if (slot == "PERSON") e.type = "PERSON";
      if (rng_.Bernoulli(0.35)) {
        e.tokens.push_back(PickSplit(banks::FirstNames()));
      } else {
        e.tokens.push_back(PickSplit(banks::FirstNames()));
        e.tokens.push_back(PickSplit(banks::LastNames()));
      }
      return e;
    }
    if (slot == "LOC" || slot == "GPE" || slot == "location") {
      if (rng_.Bernoulli(0.65)) {
        e.tokens.push_back(PickSplit(banks::Cities()));
      } else {
        e.tokens.push_back(PickSplit(banks::Countries()));
      }
      return e;
    }
    if (slot == "ORG" || slot == "corporation") {
      // Kinds 1 and 3 deliberately reuse city and surname surfaces inside
      // ORG mentions ("Boston Rangers", "Mensah Holdings"), so the same
      // token is a LOC or part of a PER elsewhere — the contextual
      // disambiguation burden real corpora impose.
      const int kind = rng_.UniformInt(0, 3);
      if (kind == 0) {
        e.tokens.push_back(PickSplit(banks::OrgBases()));
        e.tokens.push_back(Pick(banks::OrgSuffixes()));
      } else if (kind == 1) {
        e.tokens.push_back(PickSplit(banks::Cities()));
        e.tokens.push_back(Pick(banks::TeamNames()));
      } else if (kind == 2) {
        e.tokens.push_back(PickSplit(banks::OrgBases()));
      } else {
        e.tokens.push_back(PickSplit(banks::LastNames()));
        e.tokens.push_back(Pick(banks::OrgSuffixes()));
      }
      return e;
    }
    if (slot == "MISC") {
      if (rng_.Bernoulli(0.6)) {
        e.tokens.push_back(PickSplit(banks::Nationalities()));
      } else {
        e.tokens.push_back(PickSplit(banks::Nationalities()));
        AppendWords(&e.tokens, Pick(banks::Events()));
      }
      return e;
    }

    // --- OntoNotes-like extras ---
    if (slot == "NORP") {
      e.tokens.push_back(PickSplit(banks::Nationalities()));
      return e;
    }
    if (slot == "FAC") {
      e.tokens.push_back(PickSplit(banks::Cities()));
      e.tokens.push_back(Pick(banks::Facilities()));
      return e;
    }
    if (slot == "LOCNAT") {
      e.type = "LOC";
      e.tokens.push_back(PickSplit(banks::OrgBases()));
      e.tokens.push_back(Pick(banks::NaturalPlaces()));
      return e;
    }
    if (slot == "PRODUCT" || slot == "product") {
      e.tokens.push_back(PickSplit(banks::Products()));
      if (rng_.Bernoulli(0.4)) e.tokens.push_back(Digits(2, 9));
      return e;
    }
    if (slot == "EVENT") {
      e.tokens.push_back(PickSplit(banks::Nationalities()));
      AppendWords(&e.tokens, Pick(banks::Events()));
      return e;
    }
    if (slot == "ART" || slot == "creative-work") {
      if (slot == "ART") e.type = "WORK_OF_ART";
      AppendWords(&e.tokens, Pick(banks::WorksOfArt()));
      return e;
    }
    if (slot == "LAW") {
      AppendWords(&e.tokens, Pick(banks::Laws()));
      return e;
    }
    if (slot == "LANGUAGE") {
      e.tokens.push_back(Pick(banks::Languages()));
      return e;
    }
    if (slot == "DATE") {
      const int kind = rng_.UniformInt(0, 2);
      if (kind == 0) {
        e.tokens.push_back(Pick(banks::Months()));
        e.tokens.push_back(Digits(1, 28));
      } else if (kind == 1) {
        e.tokens.push_back(Pick(banks::Months()));
        e.tokens.push_back(Digits(1, 28));
        e.tokens.push_back(",");
        e.tokens.push_back(Digits(1990, 2022));
      } else {
        e.tokens.push_back("last");
        e.tokens.push_back(Pick(banks::Weekdays()));
      }
      return e;
    }
    if (slot == "TIME") {
      e.tokens.push_back(Digits(1, 12));
      e.tokens.push_back(rng_.Bernoulli(0.5) ? "p.m." : "a.m.");
      return e;
    }
    if (slot == "PERCENT") {
      e.tokens.push_back(Digits(1, 99));
      e.tokens.push_back("%");
      return e;
    }
    if (slot == "MONEY") {
      e.tokens.push_back("$");
      e.tokens.push_back(Digits(1, 900));
      e.tokens.push_back(rng_.Bernoulli(0.5) ? "million" : "billion");
      return e;
    }
    if (slot == "QUANTITY") {
      e.tokens.push_back(Digits(2, 500));
      static const char* kUnits[] = {"kilograms", "miles", "tons", "liters"};
      e.tokens.push_back(kUnits[rng_.UniformInt(0, 3)]);
      return e;
    }
    if (slot == "ORDINAL") {
      e.tokens.push_back(Pick(banks::Ordinals()));
      return e;
    }
    if (slot == "CARDINAL") {
      if (rng_.Bernoulli(0.5)) {
        e.tokens.push_back(Pick(banks::NumberWords()));
      } else {
        e.tokens.push_back(Digits(2, 9000));
      }
      return e;
    }

    // --- Social extras ---
    if (slot == "group") {
      e.tokens.push_back("The");
      e.tokens.push_back(Pick(banks::TeamNames()));
      return e;
    }

    // --- Fine-grained: dispatch on the coarse prefix. ---
    if (slot.rfind("organization.", 0) == 0) {
      const std::string fine = slot.substr(13);
      if (fine == "company") {
        e.tokens.push_back(PickSplit(banks::OrgBases()));
        e.tokens.push_back(Pick(banks::OrgSuffixes()));
      } else if (fine == "sports_team") {
        e.tokens.push_back(PickSplit(banks::Cities()));
        e.tokens.push_back(Pick(banks::TeamNames()));
      } else if (fine == "government") {
        e.tokens.push_back(PickSplit(banks::Countries()));
        e.tokens.push_back("Parliament");
      } else if (fine == "university") {
        e.tokens.push_back(PickSplit(banks::Cities()));
        e.tokens.push_back("University");
      } else if (fine == "band") {
        e.tokens.push_back("The");
        e.tokens.push_back(Pick(banks::TeamNames()));
      } else if (fine == "newspaper") {
        e.tokens.push_back(PickSplit(banks::Cities()));
        e.tokens.push_back(rng_.Bernoulli(0.5) ? "Herald" : "Times");
      } else {
        DLNER_CHECK_MSG(false, "unknown fine org: " << slot);
      }
      return e;
    }
    if (slot.rfind("location.", 0) == 0) {
      const std::string fine = slot.substr(9);
      if (fine == "city") {
        e.tokens.push_back(PickSplit(banks::Cities()));
      } else if (fine == "country") {
        e.tokens.push_back(PickSplit(banks::Countries()));
      } else if (fine == "island") {
        e.tokens.push_back(PickSplit(banks::OrgBases()));
        e.tokens.push_back("Island");
      } else if (fine == "river") {
        e.tokens.push_back(PickSplit(banks::OrgBases()));
        e.tokens.push_back("River");
      } else if (fine == "mountain") {
        e.tokens.push_back("Mount");
        e.tokens.push_back(PickSplit(banks::LastNames()));
      } else if (fine == "facility") {
        e.tokens.push_back(PickSplit(banks::Cities()));
        e.tokens.push_back(Pick(banks::Facilities()));
      } else {
        DLNER_CHECK_MSG(false, "unknown fine loc: " << slot);
      }
      return e;
    }
    if (slot.rfind("product.", 0) == 0) {
      e.tokens.push_back(PickSplit(banks::Products()));
      const std::string fine = slot.substr(8);
      if (fine == "vehicle" || fine == "device") {
        e.tokens.push_back(Digits(2, 9));
      }
      return e;
    }
    if (slot.rfind("event.", 0) == 0) {
      const std::string fine = slot.substr(6);
      if (fine == "sports_event") {
        e.tokens.push_back(PickSplit(banks::Nationalities()));
        AppendWords(&e.tokens, Pick(banks::Events()));
      } else if (fine == "election") {
        e.tokens.push_back(Digits(1990, 2022));
        e.tokens.push_back(PickSplit(banks::Countries()));
        e.tokens.push_back("election");
      } else if (fine == "festival") {
        e.tokens.push_back(PickSplit(banks::Cities()));
        e.tokens.push_back("Festival");
      } else if (fine == "war") {
        e.tokens.push_back(PickSplit(banks::OrgBases()));
        e.tokens.push_back("War");
      } else {
        DLNER_CHECK_MSG(false, "unknown fine event: " << slot);
      }
      return e;
    }
    if (slot.rfind("art.", 0) == 0) {
      AppendWords(&e.tokens, Pick(banks::WorksOfArt()));
      return e;
    }

    // --- Nested surfaces (inner spans recorded). ---
    if (slot == "NORG") {
      e.type = "ORG";
      const int kind = rng_.UniformInt(0, 2);
      if (kind == 0) {
        // "University of <LOC>": inner LOC at token 2.
        e.tokens = {"University", "of", PickSplit(banks::Cities())};
        e.inner.push_back({2, 3, "LOC"});
      } else if (kind == 1) {
        // "<LOC> National Bank": inner LOC at token 0.
        e.tokens = {PickSplit(banks::Cities()), "National", "Bank"};
        e.inner.push_back({0, 1, "LOC"});
      } else {
        // "<PER> Institute": inner PER at token 0.
        e.tokens = {PickSplit(banks::LastNames()), "Institute"};
        e.inner.push_back({0, 1, "PER"});
      }
      return e;
    }
    if (slot == "NFAC") {
      e.type = "FAC";
      // "<LOC> <Facility>": inner LOC at token 0.
      e.tokens = {PickSplit(banks::Cities()), Pick(banks::Facilities())};
      e.inner.push_back({0, 1, "LOC"});
      return e;
    }

    // --- Bio surfaces. ---
    if (slot == "DISEASE") {
      e.type = "Disease";
      if (rng_.Bernoulli(0.4)) {
        e.tokens.push_back(Pick(banks::DiseaseModifiers()));
      }
      e.tokens.push_back(PickSplit(banks::LastNames()));
      e.tokens.push_back(Pick(banks::DiseaseHeads()));
      return e;
    }
    if (slot == "CHEMICAL") {
      e.type = "Chemical";
      e.tokens.push_back(Pick(banks::ChemSyllables()) +
                         Pick(banks::ChemSyllables()) +
                         Pick(banks::ChemSuffixes()));
      return e;
    }
    if (slot == "GENE") {
      e.type = "Gene";
      e.tokens.push_back(Pick(banks::GenePrefixes()) + Digits(1, 99));
      return e;
    }

    DLNER_CHECK_MSG(false, "unknown entity slot: " << slot);
  }

  void ApplyTypo(std::string* tok) {
    if (tok->size() < 3) return;
    const int op = rng_.UniformInt(0, 2);
    const int i = rng_.UniformInt(1, static_cast<int>(tok->size()) - 2);
    if (op == 0) {
      std::swap((*tok)[i], (*tok)[i + 1]);
    } else if (op == 1) {
      tok->erase(i, 1);
    } else {
      tok->insert(i, 1, (*tok)[i]);
    }
  }

  void ApplyNoise(Sentence* s) {
    // Token membership in any entity span.
    std::vector<bool> in_entity(s->size(), false);
    for (const Span& sp : s->spans) {
      for (int t = sp.start; t < sp.end; ++t) in_entity[t] = true;
    }
    for (int t = 0; t < s->size(); ++t) {
      std::string& tok = s->tokens[t];
      if (opts_.typo_prob > 0.0 && rng_.Bernoulli(opts_.typo_prob)) {
        ApplyTypo(&tok);
      }
      if (in_entity[t] && opts_.lowercase_prob > 0.0 &&
          rng_.Bernoulli(opts_.lowercase_prob)) {
        for (char& c : tok) c = static_cast<char>(std::tolower(c));
      }
    }
    if (opts_.hashtag_prob > 0.0) {
      for (const Span& sp : s->spans) {
        if (rng_.Bernoulli(opts_.hashtag_prob)) {
          s->tokens[sp.start] = "#" + s->tokens[sp.start];
        }
      }
    }
    if (opts_.slang_prob > 0.0 && rng_.Bernoulli(opts_.slang_prob)) {
      s->tokens.push_back(PickSplit(banks::Slang()));
    }
  }

  Genre genre_;
  GenOptions opts_;
  Rng rng_;
};

}  // namespace

Genre GenreFromString(const std::string& name) {
  if (name == "news") return Genre::kNews;
  if (name == "onto") return Genre::kOnto;
  if (name == "social") return Genre::kSocial;
  if (name == "fine") return Genre::kFineGrained;
  if (name == "nested") return Genre::kNested;
  if (name == "bio") return Genre::kBio;
  DLNER_CHECK_MSG(false, "unknown genre: " << name);
}

std::string GenreToString(Genre genre) {
  switch (genre) {
    case Genre::kNews:
      return "news";
    case Genre::kOnto:
      return "onto";
    case Genre::kSocial:
      return "social";
    case Genre::kFineGrained:
      return "fine";
    case Genre::kNested:
      return "nested";
    case Genre::kBio:
      return "bio";
  }
  DLNER_CHECK(false);
}

GenOptions DefaultOptionsFor(Genre genre) {
  GenOptions opts;
  if (genre == Genre::kSocial) {
    opts.typo_prob = 0.06;
    opts.lowercase_prob = 0.45;
    opts.hashtag_prob = 0.15;
    opts.slang_prob = 0.4;
  }
  return opts;
}

const std::vector<std::string>& EntityTypesFor(Genre genre) {
  static const auto& news = Leak(new std::vector<std::string>{
      "PER", "LOC", "ORG", "MISC"});
  static const auto& onto = Leak(new std::vector<std::string>{
      "PERSON", "NORP", "FAC", "ORG", "GPE", "LOC", "PRODUCT", "EVENT",
      "WORK_OF_ART", "LAW", "LANGUAGE", "DATE", "TIME", "PERCENT", "MONEY",
      "QUANTITY", "ORDINAL", "CARDINAL"});
  static const auto& social = Leak(new std::vector<std::string>{
      "person", "location", "corporation", "product", "creative-work",
      "group"});
  static const auto& fine = Leak(new std::vector<std::string>{
      "person.athlete", "person.politician", "person.artist",
      "person.scientist", "person.author", "person.actor",
      "organization.company", "organization.sports_team",
      "organization.government", "organization.university",
      "organization.band", "organization.newspaper", "location.city",
      "location.country", "location.island", "location.river",
      "location.mountain", "location.facility", "product.vehicle",
      "product.software", "product.device", "product.food",
      "event.sports_event", "event.election", "event.festival", "event.war",
      "art.book", "art.song", "art.film", "art.painting"});
  static const auto& nested = Leak(new std::vector<std::string>{
      "PER", "LOC", "ORG", "FAC"});
  static const auto& bio = Leak(new std::vector<std::string>{
      "Disease", "Chemical", "Gene"});
  switch (genre) {
    case Genre::kNews:
      return news;
    case Genre::kOnto:
      return onto;
    case Genre::kSocial:
      return social;
    case Genre::kFineGrained:
      return fine;
    case Genre::kNested:
      return nested;
    case Genre::kBio:
      return bio;
  }
  DLNER_CHECK(false);
}

text::Corpus GenerateCorpus(Genre genre, const GenOptions& opts) {
  Generator gen(genre, opts);
  return gen.Generate();
}

std::vector<std::vector<std::string>> GenerateUnlabeledText(Genre genre,
                                                            int num_sentences,
                                                            uint64_t seed) {
  GenOptions opts = DefaultOptionsFor(genre);
  opts.seed = seed;
  opts.num_sentences = num_sentences;
  text::Corpus corpus = GenerateCorpus(genre, opts);
  std::vector<std::vector<std::string>> out;
  out.reserve(corpus.sentences.size());
  for (text::Sentence& s : corpus.sentences) out.push_back(std::move(s.tokens));
  return out;
}

}  // namespace dlner::data
