#include "data/banks.h"

namespace dlner::data::banks {
namespace {

// Function-local static references to heap objects (never destroyed), per
// the static-storage-duration rules for non-trivially-destructible types.
template <typename T>
const T& Leak(T* t) {
  return *t;
}

}  // namespace

const SplitBank& FirstNames() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"James",  "Mary",    "Robert", "Patricia", "John",   "Jennifer",
       "Michael", "Linda",  "David",  "Elizabeth", "William", "Barbara",
       "Richard", "Susan",  "Joseph", "Jessica",  "Thomas", "Sarah",
       "Carlos",  "Yuki",   "Wei",    "Priya",    "Ahmed",  "Ingrid",
       "Pedro",   "Fatima", "Kofi",   "Elena",    "Marco",  "Aisha"},
      {"Jamet", "Marlia", "Robard", "Patrina", "Johnel", "Jennard",
       "Michalia", "Linet", "Davika", "Elizara"}});
  return bank;
}

const SplitBank& LastNames() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"Smith",   "Johnson",  "Williams", "Brown",  "Jones",   "Garcia",
       "Miller",  "Davis",    "Rodriguez", "Martinez", "Hernandez", "Lopez",
       "Wilson",  "Anderson", "Thomas",   "Taylor", "Moore",   "Jackson",
       "Tanaka",  "Chen",     "Kumar",    "Hassan", "Larsson", "Silva",
       "Mensah",  "Petrov",   "Rossi",    "Okafor", "Nguyen",  "Kowalski"},
      {"Smithson", "Johnez", "Willmore", "Brownez", "Garlia", "Millson",
       "Davidez", "Rodson", "Martley", "Petrossi"}});
  return bank;
}

const SplitBank& Cities() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"London",  "Paris",    "Tokyo",   "Berlin",   "Madrid",  "Rome",
       "Chicago", "Boston",   "Seattle", "Houston",  "Denver",  "Atlanta",
       "Mumbai",  "Shanghai", "Cairo",   "Lagos",    "Sydney",  "Toronto",
       "Moscow",  "Dublin",   "Vienna",  "Oslo",     "Lima",    "Nairobi"},
      {"Lonris", "Parino", "Tokberg", "Berdrid", "Madrona", "Romago",
       "Chicville", "Bostova"}});
  return bank;
}

const SplitBank& Countries() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"France", "Germany", "Japan", "Brazil", "India", "Canada", "Spain",
       "Italy", "Egypt", "Kenya", "Australia", "Mexico", "Norway", "Chile",
       "Poland", "Vietnam"},
      {"Franmark", "Gerbia", "Japandia", "Brasova", "Indara"}});
  return bank;
}

const SplitBank& OrgBases() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"Acme",     "Global",  "Pioneer", "Summit",  "Vertex",   "Horizon",
       "Quantum",  "Stellar", "Apex",    "Fusion",  "Northern", "Pacific",
       "United",   "Crystal", "Titan",   "Evergreen", "Silver", "Atlas",
       "Beacon",   "Cascade"},
      {"Glonix", "Pionex", "Sumtex", "Vertano", "Horizet", "Quantia",
       "Stellon"}});
  return bank;
}

const std::vector<std::string>& OrgSuffixes() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "Corp", "Inc", "Group", "Holdings", "Industries", "Labs", "Systems",
      "Bank", "Airlines", "Motors", "University", "Institute", "Press",
      "Partners", "Capital"});
  return v;
}

const std::vector<std::string>& TeamNames() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "Bulls", "Hawks", "Rovers", "United", "Tigers", "Sharks", "Wolves",
      "Eagles", "Falcons", "Dragons", "Knights", "Rangers"});
  return v;
}

const SplitBank& Nationalities() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"French", "German", "Japanese", "Brazilian", "Indian", "Canadian",
       "Spanish", "Italian", "Egyptian", "Kenyan", "Australian", "Mexican",
       "Norwegian", "Chilean", "Polish", "Vietnamese"},
      {"Chilese", "Polandian", "Vietnami", "Kenyese", "Norwegic"}});
  return bank;
}

const std::vector<std::string>& Events() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "Olympics", "World Cup", "Grand Prix", "Open", "Marathon",
      "Championship", "Summit", "Expo", "Festival", "Fair"});
  return v;
}

const std::vector<std::string>& Languages() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "English", "Mandarin", "Spanish", "Arabic", "Hindi", "Swahili",
      "Portuguese", "Russian", "Bengali", "Tagalog"});
  return v;
}

const std::vector<std::string>& Facilities() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "Airport", "Stadium", "Bridge", "Tower", "Station", "Harbor",
      "Museum", "Library", "Hospital", "Arena"});
  return v;
}

const std::vector<std::string>& NaturalPlaces() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "River", "Mountains", "Lake", "Valley", "Desert", "Coast", "Gulf",
      "Peninsula", "Falls", "Plateau"});
  return v;
}

const SplitBank& Products() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"Photon", "Nimbus", "Falcon", "Orion", "Pulse", "Vortex", "Echo",
       "Nova", "Spark", "Comet", "Zenith", "Aero"},
      {"Photix", "Nimbex", "Falconia", "Orionet"}});
  return bank;
}

const std::vector<std::string>& WorksOfArt() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "The Silent Sea", "Winter Light", "The Last Garden", "Broken Mirrors",
      "A Distant Shore", "The Glass City", "Midnight Sonata",
      "The Paper Crane", "Crimson Fields", "The Long Voyage"});
  return v;
}

const std::vector<std::string>& Laws() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "Privacy Act", "Clean Air Act", "Trade Reform Act", "Labor Code",
      "Banking Charter", "Data Protection Act", "Maritime Treaty",
      "Education Act"});
  return v;
}

const std::vector<std::string>& Months() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "January", "February", "March", "April", "May", "June", "July",
      "August", "September", "October", "November", "December"});
  return v;
}

const std::vector<std::string>& Weekdays() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday",
      "Sunday"});
  return v;
}

const std::vector<std::string>& Ordinals() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "first", "second", "third", "fourth", "fifth", "sixth", "seventh",
      "eighth", "ninth", "tenth"});
  return v;
}

const std::vector<std::string>& NumberWords() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "one", "two", "three", "four", "five", "six", "seven", "eight",
      "nine", "ten", "twelve", "twenty", "fifty", "hundred"});
  return v;
}

const SplitBank& Slang() {
  static const SplitBank& bank = Leak(new SplitBank{
      {"lol", "omg", "tbh", "fr", "lowkey", "deadass", "bruh", "yikes",
       "bet", "vibes", "sus", "based"},
      {"bussin", "mid", "cheugy", "yeet"}});
  return bank;
}

const std::vector<std::string>& GenePrefixes() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "BRCA", "TP", "EGFR", "KRAS", "MYC", "PTEN", "RB", "APC", "VEGF",
      "TNF", "IL", "CDK"});
  return v;
}

const std::vector<std::string>& ChemSyllables() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "metho", "cyclo", "benzo", "fluoro", "chloro", "nitro", "hydro",
      "oxy", "carbo", "sulfo", "aceto", "pheno"});
  return v;
}

const std::vector<std::string>& ChemSuffixes() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "statin", "mycin", "cillin", "azole", "idine", "amine", "oxide",
      "prazole", "olol", "sartan"});
  return v;
}

const std::vector<std::string>& DiseaseHeads() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "syndrome", "disease", "disorder", "carcinoma", "anemia", "fibrosis",
      "dystrophy", "neuropathy", "dermatitis", "arthritis"});
  return v;
}

const std::vector<std::string>& DiseaseModifiers() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "chronic", "acute", "hereditary", "idiopathic", "congenital",
      "systemic", "juvenile", "progressive"});
  return v;
}

const std::vector<std::string>& Verbs() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "announced", "said", "reported", "visited", "acquired", "launched",
      "defeated", "signed", "criticized", "praised", "opened", "closed",
      "expanded", "reduced", "approved", "rejected", "joined", "left",
      "published", "revealed", "confirmed", "denied", "won", "lost",
      "unveiled", "suspended", "reviewed", "discussed", "planned",
      "postponed"});
  return v;
}

const std::vector<std::string>& Nouns() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "company", "market", "deal", "plan", "report", "meeting", "match",
      "season", "election", "budget", "project", "investment", "strategy",
      "agreement", "conference", "factory", "office", "product", "service",
      "campaign", "policy", "contract", "merger", "profit", "revenue",
      "lawsuit", "shipment", "survey", "forecast", "statement"});
  return v;
}

const std::vector<std::string>& Adjectives() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "new", "major", "recent", "strong", "weak", "local", "global",
      "annual", "final", "early", "late", "controversial", "ambitious",
      "unexpected", "record", "quarterly", "strategic", "joint",
      "historic", "rapid"});
  return v;
}

const std::vector<std::string>& Adverbs() {
  static const std::vector<std::string>& v = Leak(new std::vector<std::string>{
      "quickly", "recently", "reportedly", "officially", "quietly",
      "sharply", "steadily", "unexpectedly", "formally", "broadly"});
  return v;
}

}  // namespace dlner::data::banks
