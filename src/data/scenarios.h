// Hostile-input scenario corpora.
//
// The survey's robustness discussion (and the deployment-focused related
// surveys) single out a handful of corpus properties that break
// sentence-trained NER systems: code-switched bilingual text, OCR/ASR noise
// channels, very long documents, discontinuous mentions, and documents whose
// later mentions are only resolvable from earlier context. Each scenario
// here is a seeded, fully deterministic generator for one of those
// properties, built on the same template/bank machinery as synthetic.h so
// models trained on the clean genres face a controlled distribution shift.
//
// Determinism contract: every generator is a pure function of its options —
// same ScenarioOptions (including seed) → byte-identical corpus. The noise
// channels report exact corruption counts so tests can verify calibration.
#ifndef DLNER_DATA_SCENARIOS_H_
#define DLNER_DATA_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/types.h"

namespace dlner::data {

enum class Scenario {
  kCodeSwitched,       // bilingual: non-entity tokens swap to accented L2
  kOcrNoise,           // char confusions/drops/doubles at a calibrated rate
  kAsrNoise,           // lowercased, punctuation lost, phonetic confusions
  kLongDoc,            // one 10k+-token document with recurring entities
  kDiscontinuous,      // coordinated mentions sharing a head token
  kEntityConsistency,  // later mentions only resolvable from earlier context
};

Scenario ScenarioFromString(const std::string& name);
std::string ScenarioToString(Scenario scenario);
/// All scenarios, in enum order (bench/test iteration).
const std::vector<Scenario>& AllScenarios();

struct ScenarioOptions {
  uint64_t seed = 1;
  /// Sentence budget for sentence-shaped scenarios (ignored by kLongDoc,
  /// which generates until `min_doc_tokens`).
  int num_sentences = 120;
  /// Per-eligible-character corruption probability for the OCR/ASR
  /// channels.
  double corruption_rate = 0.08;
  /// Per-non-entity-token replacement probability for kCodeSwitched.
  double code_switch_rate = 0.4;
  /// kLongDoc keeps appending sentences until this many tokens.
  int min_doc_tokens = 10000;
  /// Document length for kEntityConsistency.
  int sentences_per_doc = 5;
  /// Fraction of kEntityConsistency documents whose person surname comes
  /// from the held-out bank (unseen in any training split).
  double oov_entity_fraction = 0.6;
};

/// Entity-type inventory of a scenario's corpus.
const std::vector<std::string>& ScenarioEntityTypes(Scenario scenario);

/// Generates the scenario corpus (the hostile "test side").
/// kLongDoc and kEntityConsistency populate Corpus::doc_starts.
text::Corpus GenerateScenario(Scenario scenario, const ScenarioOptions& opts);

/// Matched clean/hostile pair: `train` is what a system would realistically
/// have trained on (clean, monolingual, cue-rich), `test` is the scenario
/// corpus. Both derive deterministically from `opts.seed`.
struct ScenarioSplit {
  text::Corpus train;
  text::Corpus test;
};
ScenarioSplit MakeScenarioSplit(Scenario scenario, const ScenarioOptions& opts);

/// Exact corruption counts from a noise channel, for calibration checks.
struct NoiseChannelStats {
  int64_t chars_eligible = 0;   // characters the channel could have hit
  int64_t chars_corrupted = 0;  // characters it actually hit
};

/// Applies the OCR channel in place: each ASCII alphanumeric character is
/// independently corrupted with probability `rate` (confusable substitution
/// such as O→0 / l→1, deletion, or doubling). Multi-byte UTF-8 sequences
/// are never touched, so text stays valid UTF-8; tokens never become empty;
/// spans are unchanged (OCR noise does not move token boundaries).
void ApplyOcrChannel(text::Corpus* corpus, double rate, uint64_t seed,
                     NoiseChannelStats* stats);

/// Applies the ASR channel in place: ASCII letters are lowercased,
/// punctuation-only tokens outside entity spans are deleted (span indexes
/// remapped), and each letter is independently replaced by a phonetic
/// confusion (c→k, s→z, f→v, ...) with probability `rate`.
void ApplyAsrChannel(text::Corpus* corpus, double rate, uint64_t seed,
                     NoiseChannelStats* stats);

/// Renders a corpus document back to the raw byte stream the streaming
/// tokenizer (text/stream_tokenizer.h) splits into exactly the same
/// sentences: tokens joined with ' ', one sentence per '\n'-terminated
/// line. Sentence-shaped scenarios keep tokens whitespace-free and use the
/// terminal "." convention, so round-tripping through StreamTagger aligns
/// 1:1 with the corpus sentences.
std::string RenderDocument(const text::Corpus& corpus, int doc);

}  // namespace dlner::data

#endif  // DLNER_DATA_SCENARIOS_H_
