// Word banks backing the synthetic corpus generators.
//
// Each entity-bearing bank is split into a "train" portion and a "heldout"
// portion; generators can draw from the heldout portion with configurable
// probability to create test-time out-of-vocabulary entities (the phenomenon
// character-level representations are designed to handle, survey
// Section 3.2.2).
#ifndef DLNER_DATA_BANKS_H_
#define DLNER_DATA_BANKS_H_

#include <string>
#include <vector>

namespace dlner::data::banks {

/// A bank with a train/heldout split.
struct SplitBank {
  std::vector<std::string> train;
  std::vector<std::string> heldout;
};

// Entity ingredient banks.
const SplitBank& FirstNames();
const SplitBank& LastNames();
const SplitBank& Cities();
const SplitBank& Countries();
const SplitBank& OrgBases();
const std::vector<std::string>& OrgSuffixes();
const std::vector<std::string>& TeamNames();
const SplitBank& Nationalities();
const std::vector<std::string>& Events();
const std::vector<std::string>& Languages();
const std::vector<std::string>& Facilities();
const std::vector<std::string>& NaturalPlaces();
const SplitBank& Products();
const std::vector<std::string>& WorksOfArt();
const std::vector<std::string>& Laws();
const std::vector<std::string>& Months();
const std::vector<std::string>& Weekdays();
const std::vector<std::string>& Ordinals();
const std::vector<std::string>& NumberWords();
const SplitBank& Slang();

// Biomedical morphemes.
const std::vector<std::string>& GenePrefixes();
const std::vector<std::string>& ChemSyllables();
const std::vector<std::string>& ChemSuffixes();
const std::vector<std::string>& DiseaseHeads();
const std::vector<std::string>& DiseaseModifiers();

// Plain (non-entity) word classes.
const std::vector<std::string>& Verbs();
const std::vector<std::string>& Nouns();
const std::vector<std::string>& Adjectives();
const std::vector<std::string>& Adverbs();

}  // namespace dlner::data::banks

#endif  // DLNER_DATA_BANKS_H_
