// Synthetic annotated-corpus generators.
//
// Stand-ins for the licensed corpora of the survey's Table 1 (CoNLL03,
// OntoNotes 5.0, W-NUT, fine-grained sets, GENIA/ACE-style nested sets,
// BC5CDR-style biomedical sets). Each genre reproduces the corpus
// *properties* the survey's comparisons depend on: entity-type inventory
// size, genre noise, entity density, multi-token/nested mentions, and
// test-time out-of-vocabulary entities. See DESIGN.md Section 2 for the
// substitution rationale.
#ifndef DLNER_DATA_SYNTHETIC_H_
#define DLNER_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/types.h"

namespace dlner::data {

/// Corpus family, mirroring a row-group of the survey's Table 1.
enum class Genre {
  kNews,         // CoNLL03-like: 4 coarse types, formal newswire
  kOnto,         // OntoNotes-like: 18 types incl. numeric/temporal
  kSocial,       // W-NUT-like: 6 types, noisy user-generated text
  kFineGrained,  // FIGER/BBN-like: 30 hierarchical "coarse.fine" types
  kNested,       // GENIA/ACE-like: overlapping mentions
  kBio,          // BC5CDR-like: Disease/Chemical/Gene
};

Genre GenreFromString(const std::string& name);
std::string GenreToString(Genre genre);

/// Generation knobs.
struct GenOptions {
  uint64_t seed = 1;
  int num_sentences = 200;
  /// Probability that an entity surface is drawn from the held-out name
  /// bank (unseen at training time if the training corpus used 0).
  double oov_entity_fraction = 0.0;
  /// Per-token probability of a character-level typo.
  double typo_prob = 0.0;
  /// Per-entity-token probability of lowercasing (kills the capitalization
  /// cue that word-shape features rely on).
  double lowercase_prob = 0.0;
  /// Per-entity probability of hashtag-izing its first token.
  double hashtag_prob = 0.0;
  /// Per-sentence probability of injecting slang interjections.
  double slang_prob = 0.0;
};

/// Default options for a genre (social presets enable the noise knobs).
GenOptions DefaultOptionsFor(Genre genre);

/// Entity-type inventory of a genre (the "#Tags" column of Table 1).
const std::vector<std::string>& EntityTypesFor(Genre genre);

/// Generates an annotated corpus.
text::Corpus GenerateCorpus(Genre genre, const GenOptions& opts);

/// Generates unlabeled sentences from the same distribution (the "large
/// unlabeled corpus" role that pre-trained embeddings and language models
/// are built from in the survey, Sections 3.2.1 and 3.3.4).
std::vector<std::vector<std::string>> GenerateUnlabeledText(Genre genre,
                                                            int num_sentences,
                                                            uint64_t seed);

}  // namespace dlner::data

#endif  // DLNER_DATA_SYNTHETIC_H_
