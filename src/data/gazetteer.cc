#include "data/gazetteer.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>

#include "tensor/check.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"

namespace dlner::data {
namespace {

// Sanity caps for deserialization; a stream exceeding any of them is
// corrupt, not merely large.
constexpr uint32_t kMaxTypes = 4096;
constexpr uint32_t kMaxEntries = 1u << 22;
constexpr uint32_t kMaxPhraseTokens = 256;
constexpr uint32_t kMaxTokenLen = 4096;

}  // namespace

int Gazetteer::TypeIndex(const std::string& type) {
  auto it = type_ids_.find(type);
  if (it != type_ids_.end()) return it->second;
  const int id = static_cast<int>(types_.size());
  types_.push_back(type);
  type_ids_[type] = id;
  return id;
}

void Gazetteer::AddEntry(const std::string& type,
                         const std::vector<std::string>& tokens) {
  DLNER_CHECK(!tokens.empty());
  const int type_idx = TypeIndex(type);
  auto& bucket = by_first_token_[tokens[0]];
  for (const Entry& e : bucket) {
    if (e.type_index == type_idx && e.tokens == tokens) return;  // duplicate
  }
  bucket.push_back({tokens, type_idx});
  ++num_entries_;
}

Gazetteer Gazetteer::FromCorpus(const text::Corpus& corpus, double coverage,
                                uint64_t seed) {
  DLNER_CHECK_GE(coverage, 0.0);
  DLNER_CHECK_LE(coverage, 1.0);
  Rng rng(seed);
  Gazetteer gaz;
  // Collect distinct (surface, type) pairs first so that coverage applies
  // per distinct entry, not per occurrence.
  std::set<std::pair<std::string, std::string>> seen;
  std::vector<std::pair<std::string, std::vector<std::string>>> entries;
  for (const text::Sentence& s : corpus.sentences) {
    for (const text::Span& sp : s.spans) {
      std::string key;
      std::vector<std::string> toks(s.tokens.begin() + sp.start,
                                    s.tokens.begin() + sp.end);
      for (const std::string& t : toks) key += t + "\x1f";
      if (!seen.insert({key, sp.type}).second) continue;
      entries.push_back({sp.type, std::move(toks)});
    }
  }
  for (const auto& [type, toks] : entries) {
    if (coverage >= 1.0 || rng.Bernoulli(coverage)) {
      gaz.AddEntry(type, toks);
    }
  }
  return gaz;
}

std::vector<std::vector<double>> Gazetteer::MatchFeatures(
    const std::vector<std::string>& tokens) const {
  const int n = static_cast<int>(tokens.size());
  const int k = static_cast<int>(types_.size());
  std::vector<std::vector<double>> features(n, std::vector<double>(k, 0.0));
  for (int start = 0; start < n; ++start) {
    auto it = by_first_token_.find(tokens[start]);
    if (it == by_first_token_.end()) continue;
    for (const Entry& e : it->second) {
      const int len = static_cast<int>(e.tokens.size());
      if (start + len > n) continue;
      bool match = true;
      for (int j = 1; j < len; ++j) {
        if (tokens[start + j] != e.tokens[j]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      for (int t = start; t < start + len; ++t) {
        features[t][e.type_index] = 1.0;
      }
    }
  }
  return features;
}

std::vector<text::Span> Gazetteer::Annotate(
    const std::vector<std::string>& tokens) const {
  const int n = static_cast<int>(tokens.size());
  std::vector<text::Span> spans;
  int pos = 0;
  while (pos < n) {
    auto it = by_first_token_.find(tokens[pos]);
    int best_len = 0;
    int best_type = -1;
    if (it != by_first_token_.end()) {
      for (const Entry& e : it->second) {
        const int len = static_cast<int>(e.tokens.size());
        if (len <= best_len || pos + len > n) continue;
        bool match = true;
        for (int j = 1; j < len; ++j) {
          if (tokens[pos + j] != e.tokens[j]) {
            match = false;
            break;
          }
        }
        if (match) {
          best_len = len;
          best_type = e.type_index;
        }
      }
    }
    if (best_len > 0) {
      spans.push_back({pos, pos + best_len, types_[best_type]});
      pos += best_len;
    } else {
      ++pos;
    }
  }
  return spans;
}

void Gazetteer::Save(std::ostream& os) const {
  WriteU32(os, static_cast<uint32_t>(types_.size()));
  for (const std::string& type : types_) WriteLenString(os, type);
  WriteU32(os, static_cast<uint32_t>(num_entries_));
  // Buckets are walked in sorted key order so the byte stream is
  // deterministic; within a bucket, insertion order is kept because
  // Annotate breaks equal-length ties by first-seen entry.
  std::vector<const std::string*> keys;
  keys.reserve(by_first_token_.size());
  for (const auto& [key, bucket] : by_first_token_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (const std::string* key : keys) {
    for (const Entry& e : by_first_token_.at(*key)) {
      WriteU32(os, static_cast<uint32_t>(e.type_index));
      WriteU32(os, static_cast<uint32_t>(e.tokens.size()));
      for (const std::string& tok : e.tokens) WriteLenString(os, tok);
    }
  }
}

bool Gazetteer::Load(std::istream& is, Gazetteer* gaz) {
  Gazetteer loaded;
  uint32_t n_types = 0;
  if (!ReadU32(is, &n_types) || n_types > kMaxTypes) return false;
  for (uint32_t i = 0; i < n_types; ++i) {
    std::string type;
    if (!ReadLenString(is, &type, kMaxTokenLen)) return false;
    // Restore types explicitly (not via AddEntry) so types with zero
    // surviving entries keep their feature column.
    if (loaded.TypeIndex(type) != static_cast<int>(i)) return false;
  }
  uint32_t n_entries = 0;
  if (!ReadU32(is, &n_entries) || n_entries > kMaxEntries) return false;
  for (uint32_t i = 0; i < n_entries; ++i) {
    uint32_t type_index = 0;
    uint32_t n_tokens = 0;
    if (!ReadU32(is, &type_index) || type_index >= n_types) return false;
    if (!ReadU32(is, &n_tokens) || n_tokens == 0 ||
        n_tokens > kMaxPhraseTokens) {
      return false;
    }
    std::vector<std::string> tokens(n_tokens);
    for (uint32_t t = 0; t < n_tokens; ++t) {
      if (!ReadLenString(is, &tokens[t], kMaxTokenLen)) return false;
      if (tokens[t].empty()) return false;
    }
    loaded.by_first_token_[tokens[0]].push_back(
        {std::move(tokens), static_cast<int>(type_index)});
    ++loaded.num_entries_;
  }
  *gaz = std::move(loaded);
  return true;
}

}  // namespace dlner::data
