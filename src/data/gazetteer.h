// Gazetteers: typed phrase lists used three ways in the survey:
//  1. as hybrid input features (Section 3.2.3, Huang et al., Collobert et
//     al.): per-token type-membership indicators;
//  2. as auxiliary resources for informal text (Section 5.2);
//  3. as a distant-supervision labeler whose incomplete coverage produces
//     the noisy annotations studied in Section 4.4.
#ifndef DLNER_DATA_GAZETTEER_H_
#define DLNER_DATA_GAZETTEER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/types.h"

namespace dlner::data {

class Gazetteer {
 public:
  Gazetteer() = default;

  /// Adds a typed phrase (token sequence). Duplicate entries are ignored.
  void AddEntry(const std::string& type,
                const std::vector<std::string>& tokens);

  /// Builds a gazetteer from the distinct gold mention surfaces of a corpus,
  /// keeping each distinct surface with probability `coverage` (partial
  /// coverage models real-world incomplete dictionaries).
  static Gazetteer FromCorpus(const text::Corpus& corpus, double coverage,
                              uint64_t seed);

  /// Entity types seen so far, in insertion order.
  const std::vector<std::string>& types() const { return types_; }

  /// Number of stored phrases.
  int size() const { return num_entries_; }

  /// Per-token membership features: result[t][k] is 1.0 when token t lies
  /// inside some gazetteer phrase of type k (k indexes types()).
  std::vector<std::vector<double>> MatchFeatures(
      const std::vector<std::string>& tokens) const;

  /// Distant supervision: greedy longest-match, left-to-right,
  /// non-overlapping annotation of a token sequence.
  std::vector<text::Span> Annotate(
      const std::vector<std::string>& tokens) const;

  /// Binary serialization (used by Pipeline checkpoints). Type order and
  /// per-bucket entry order are preserved, so a loaded gazetteer produces
  /// identical MatchFeatures / Annotate results.
  void Save(std::ostream& os) const;

  /// Restores a gazetteer written by Save(). Returns false on malformed or
  /// truncated input; all allocations are bounded.
  static bool Load(std::istream& is, Gazetteer* gaz);

 private:
  struct Entry {
    std::vector<std::string> tokens;
    int type_index;
  };

  int TypeIndex(const std::string& type);

  std::vector<std::string> types_;
  std::unordered_map<std::string, int> type_ids_;
  // Phrases bucketed by first token for fast scanning.
  std::unordered_map<std::string, std::vector<Entry>> by_first_token_;
  int num_entries_ = 0;
};

}  // namespace dlner::data

#endif  // DLNER_DATA_GAZETTEER_H_
