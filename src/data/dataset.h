// Dataset utilities: splits, statistics, a Table-1-like registry of the
// standard synthetic corpora, and label corruption for noisy-supervision
// experiments.
#ifndef DLNER_DATA_DATASET_H_
#define DLNER_DATA_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "text/types.h"

namespace dlner::data {

/// Train/dev/test partition.
struct DataSplit {
  text::Corpus train;
  text::Corpus dev;
  text::Corpus test;
};

/// Shuffles and partitions a corpus. Fractions must satisfy
/// 0 < train_frac, 0 <= dev_frac, train_frac + dev_frac < 1.
DataSplit SplitCorpus(const text::Corpus& corpus, double train_frac,
                      double dev_frac, uint64_t seed);

/// Seeded train/dev/test triple from one genre where the dev and test
/// splits inject out-of-vocabulary entity surfaces (fraction `test_oov`)
/// plus the genre's typical noise, so models differentiate the way they do
/// on real corpora instead of memorizing the synthetic name banks. Shared
/// by the benchmark harnesses and the correctness-test corpus generators.
DataSplit MakeOovSplit(Genre genre, int train_size, int test_size,
                       uint64_t seed, double test_oov = 0.35);

/// Descriptive statistics (the columns of the survey's Table 1 plus the
/// density/OOV measures its discussion relies on).
struct CorpusStats {
  int sentences = 0;
  int tokens = 0;
  int entities = 0;
  int num_types = 0;
  double entity_density = 0.0;     // entity tokens / tokens
  double avg_sentence_len = 0.0;
  double nested_fraction = 0.0;    // sentences containing overlapping spans
  std::map<std::string, int> per_type;
};

CorpusStats ComputeStats(const text::Corpus& corpus);

/// Fraction of test-corpus entity tokens never seen as tokens in train
/// (the unseen-entity problem of survey Section 5.1).
double OovEntityTokenRate(const text::Corpus& train, const text::Corpus& test);

/// Registry entry mapping a synthetic corpus family to the Table 1 corpora
/// it stands in for.
struct DatasetSpec {
  std::string name;          // registry key, e.g. "conll-like"
  Genre genre;
  std::string stands_in_for; // e.g. "CoNLL03 (Reuters news, 4 types)"
};

/// All standard dataset specs (one per Table 1 row-group we reproduce).
const std::vector<DatasetSpec>& StandardDatasets();

/// Generates a registered dataset by name with default genre options.
text::Corpus MakeDataset(const std::string& name, int num_sentences,
                         uint64_t seed);

/// Corrupts gold labels: each span is independently dropped, boundary-
/// shifted, or type-flipped with probability `rate` (uniform over the three
/// corruptions). Models distant-supervision noise (survey Section 4.4).
text::Corpus CorruptLabels(const text::Corpus& corpus, double rate,
                           const std::vector<std::string>& types,
                           uint64_t seed);

}  // namespace dlner::data

#endif  // DLNER_DATA_DATASET_H_
