#include "data/scenarios.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "data/banks.h"
#include "data/synthetic.h"
#include "tensor/check.h"
#include "tensor/rng.h"

namespace dlner::data {
namespace {

using text::Corpus;
using text::Sentence;
using text::Span;

// Seed-space separation: each scenario/channel mixes a distinct constant
// into the user seed so "same seed, different scenario" never aliases.
constexpr uint64_t kCodeSwitchSalt = 0x636f6465ULL;
constexpr uint64_t kOcrSalt = 0x6f637221ULL;
constexpr uint64_t kAsrSalt = 0x61737221ULL;
constexpr uint64_t kLongDocSalt = 0x6c6f6e67ULL;
constexpr uint64_t kDiscontSalt = 0x64697363ULL;
constexpr uint64_t kConsistSalt = 0x636f6e73ULL;
constexpr uint64_t kTrainSalt = 0x7472696eULL;

uint64_t Mix(uint64_t seed, uint64_t salt) {
  uint64_t x = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

const std::string& Pick(Rng* rng, const std::vector<std::string>& v) {
  DLNER_CHECK(!v.empty());
  return v[rng->UniformInt(0, static_cast<int>(v.size()) - 1)];
}

// Accented second-language function words for the code-switched scenario.
// Deliberately multi-byte UTF-8 throughout: these tokens double as the
// hostile input that exercises the streaming tokenizer's byte-buffering.
const std::vector<std::string>& SecondLanguageWords() {
  static const std::vector<std::string>* v = new std::vector<std::string>{
      "señor",   "mañana",  "también", "después", "según",   "año",
      "niño",    "música",  "corazón", "día",     "está",    "aquí",
      "über",    "schön",   "größer",  "früh",    "straße",  "zurück",
      "café",    "déjà",    "garçon",  "fenêtre", "château", "très",
      "être",    "où",      "así",     "jamás",   "perché",  "città",
      "più",     "così"};
  return *v;
}

bool IsPunctToken(const std::string& tok) {
  for (char c : tok) {
    if (std::isalnum(static_cast<unsigned char>(c))) return false;
    if (static_cast<unsigned char>(c) >= 0x80) return false;
  }
  return !tok.empty();
}

Corpus CleanNews(uint64_t seed, int num_sentences) {
  GenOptions opts;
  opts.seed = seed;
  opts.num_sentences = num_sentences;
  return GenerateCorpus(Genre::kNews, opts);
}

// --- kCodeSwitched -------------------------------------------------------

Corpus GenerateCodeSwitched(const ScenarioOptions& opts) {
  Corpus corpus = CleanNews(Mix(opts.seed, kCodeSwitchSalt), opts.num_sentences);
  Rng rng(Mix(opts.seed, kCodeSwitchSalt) + 1);
  for (Sentence& s : corpus.sentences) {
    std::vector<bool> in_entity(static_cast<size_t>(s.size()), false);
    for (const Span& sp : s.spans) {
      for (int t = sp.start; t < sp.end; ++t) {
        in_entity[static_cast<size_t>(t)] = true;
      }
    }
    for (int t = 0; t < s.size(); ++t) {
      // Entities keep their surface (code-switching swaps the matrix
      // language, not the names); the terminal "." keeps the streaming
      // sentence segmentation aligned.
      if (in_entity[static_cast<size_t>(t)]) continue;
      if (IsPunctToken(s.tokens[t])) continue;
      if (rng.Bernoulli(opts.code_switch_rate)) {
        s.tokens[t] = Pick(&rng, SecondLanguageWords());
      }
    }
  }
  return corpus;
}

// --- kLongDoc ------------------------------------------------------------

Corpus GenerateLongDoc(const ScenarioOptions& opts) {
  // One document: clean news sentences with a small recurring entity cast,
  // looped until the token budget. Recurrence is what makes document-level
  // state meaningful at this scale.
  const uint64_t seed = Mix(opts.seed, kLongDocSalt);
  Rng rng(seed);
  // A recurring cast: the same few PER/LOC/ORG surfaces reappear throughout.
  std::vector<std::string> cast_first, cast_last, cast_city;
  for (int i = 0; i < 6; ++i) {
    cast_first.push_back(Pick(&rng, banks::FirstNames().train));
    cast_last.push_back(Pick(&rng, banks::LastNames().train));
    cast_city.push_back(Pick(&rng, banks::Cities().train));
  }
  Corpus corpus;
  corpus.doc_starts = {0};
  int tokens = 0;
  uint64_t chunk_seed = seed + 17;
  while (tokens < opts.min_doc_tokens) {
    Corpus chunk = CleanNews(chunk_seed++, 20);
    for (Sentence& s : chunk.sentences) {
      // Rewrite a third of PER spans to the recurring cast.
      for (Span& sp : s.spans) {
        if (sp.type == "PER" && sp.end - sp.start == 2 && rng.Bernoulli(0.33)) {
          const int who = rng.UniformInt(0, 5);
          s.tokens[sp.start] = cast_first[static_cast<size_t>(who)];
          s.tokens[sp.start + 1] = cast_last[static_cast<size_t>(who)];
        } else if (sp.type == "LOC" && sp.end - sp.start == 1 &&
                   rng.Bernoulli(0.33)) {
          s.tokens[sp.start] = cast_city[static_cast<size_t>(
              rng.UniformInt(0, 5))];
        }
      }
      tokens += s.size();
      corpus.sentences.push_back(std::move(s));
      if (tokens >= opts.min_doc_tokens) break;
    }
  }
  return corpus;
}

// --- kDiscontinuous ------------------------------------------------------

// Coordinated mentions sharing a head token, extending the nested-genre
// overlapping-span representation: a discontinuous mention is stored as its
// component spans (same type), e.g. "the Dortmund and Leipzig committees"
// yields ORG components {Dortmund} + {committees} for the first conjunct
// and the contiguous ORG {Leipzig committees} for the second.
Corpus GenerateDiscontinuous(const ScenarioOptions& opts) {
  const uint64_t seed = Mix(opts.seed, kDiscontSalt);
  Rng rng(seed);
  Corpus corpus;
  corpus.sentences.reserve(static_cast<size_t>(opts.num_sentences));
  for (int i = 0; i < opts.num_sentences; ++i) {
    Sentence s;
    const int kind = rng.UniformInt(0, 2);
    if (kind == 0) {
      // "The <cityA> and <cityB> <team> <v> the <n> ."
      const std::string& a = Pick(&rng, banks::Cities().train);
      const std::string& b = Pick(&rng, banks::Cities().train);
      const std::string& head = Pick(&rng, banks::TeamNames());
      s.tokens = {"The", a, "and", b, head,
                  Pick(&rng, banks::Verbs()), "the", Pick(&rng, banks::Nouns()),
                  "."};
      s.spans.push_back({1, 2, "ORG"});  // discontinuous component: cityA
      s.spans.push_back({4, 5, "ORG"});  // shared head
      s.spans.push_back({3, 5, "ORG"});  // contiguous: cityB + head
    } else if (kind == 1) {
      // "Patients with <modA> and <modB> <name> <disease-head> <v> ."
      const std::string& ma = Pick(&rng, banks::DiseaseModifiers());
      const std::string& mb = Pick(&rng, banks::DiseaseModifiers());
      const std::string& nm = Pick(&rng, banks::LastNames().train);
      const std::string& hd = Pick(&rng, banks::DiseaseHeads());
      s.tokens = {"Patients", "with", ma, "and", mb, nm, hd,
                  Pick(&rng, banks::Verbs()), Pick(&rng, banks::Adverbs()),
                  "."};
      s.spans.push_back({2, 3, "Disease"});  // component: modA
      s.spans.push_back({5, 7, "Disease"});  // shared "<name> <head>"
      s.spans.push_back({4, 7, "Disease"});  // contiguous: modB name head
    } else {
      // Flat control sentence, keeping the discontinuous fraction realistic.
      const std::string& city = Pick(&rng, banks::Cities().train);
      s.tokens = {Pick(&rng, banks::FirstNames().train),
                  Pick(&rng, banks::LastNames().train),
                  Pick(&rng, banks::Verbs()), "the",
                  Pick(&rng, banks::Nouns()), "in", city, "."};
      s.spans.push_back({0, 2, "PER"});
      s.spans.push_back({6, 7, "LOC"});
    }
    corpus.sentences.push_back(std::move(s));
  }
  return corpus;
}

// --- kEntityConsistency --------------------------------------------------

// Documents whose FIRST mention of a person sits in a cue-rich frame
// ("President X Y visited ...") while later mentions are cue-poor and often
// OOV — exactly the case where sentence-at-a-time tagging misses what
// document state recovers. Sentence surfaces follow the streaming
// conventions (terminal ".", no internal sentence enders) so RenderDocument
// round-trips through StreamTagger on the identical sentence split.
constexpr const char* kCueTitles[] = {"President", "Senator", "Chancellor",
                                      "Governor", "Minister"};

// Single-token PER mentions on purpose: the consistency mechanism matches
// exact surfaces, and single-token mentions can only be hit or missed —
// never half-tagged — which keeps the doc-context comparison crisp.
Sentence CueRichSentence(Rng* rng, const std::string& name) {
  Sentence s;
  const char* title = kCueTitles[rng->UniformInt(0, 4)];
  const std::string& city = Pick(rng, banks::Cities().train);
  s.tokens = {title, name, "visited", city, "on",
              Pick(rng, banks::Weekdays()), "."};
  s.spans.push_back({1, 2, "PER"});
  s.spans.push_back({3, 4, "LOC"});
  return s;
}

Sentence CuePoorSentence(Rng* rng, const std::string& name) {
  Sentence s;
  // No title, no "visited" frame: just the bare name in a nondescript
  // carrier sentence.
  s.tokens = {name, Pick(rng, banks::Verbs()), "the",
              Pick(rng, banks::Nouns()), Pick(rng, banks::Adverbs()), "."};
  s.spans.push_back({0, 1, "PER"});
  return s;
}

// Distractor with no person at all, so documents are not wall-to-wall PER.
Sentence FillerSentence(Rng* rng) {
  Sentence s;
  const std::string& city = Pick(rng, banks::Cities().train);
  s.tokens = {"The", Pick(rng, banks::Nouns()), "in", city,
              Pick(rng, banks::Verbs()), Pick(rng, banks::Adverbs()), "."};
  s.spans.push_back({3, 4, "LOC"});
  return s;
}

Corpus GenerateConsistency(const ScenarioOptions& opts) {
  Rng rng(Mix(opts.seed, kConsistSalt));
  Corpus corpus;
  const int per_doc = std::max(opts.sentences_per_doc, 2);
  const int num_docs = std::max(opts.num_sentences / per_doc, 1);
  for (int d = 0; d < num_docs; ++d) {
    corpus.doc_starts.push_back(corpus.size());
    const bool oov = rng.Bernoulli(opts.oov_entity_fraction);
    const std::string& name = oov ? Pick(&rng, banks::LastNames().heldout)
                                  : Pick(&rng, banks::LastNames().train);
    corpus.sentences.push_back(CueRichSentence(&rng, name));
    for (int i = 1; i < per_doc; ++i) {
      if (rng.Bernoulli(0.3)) {
        corpus.sentences.push_back(FillerSentence(&rng));
      } else {
        corpus.sentences.push_back(CuePoorSentence(&rng, name));
      }
    }
  }
  return corpus;
}

// Training side of the consistency split: cue-rich frames plus fillers
// only, all in-vocabulary. The cue-poor bare-name frame never appears, so
// a sentence-level model can only learn "title → PER".
Corpus GenerateConsistencyTrain(const ScenarioOptions& opts) {
  Rng rng(Mix(opts.seed, kConsistSalt ^ kTrainSalt));
  Corpus corpus;
  for (int i = 0; i < opts.num_sentences; ++i) {
    if (rng.Bernoulli(0.35)) {
      corpus.sentences.push_back(FillerSentence(&rng));
    } else {
      corpus.sentences.push_back(
          CueRichSentence(&rng, Pick(&rng, banks::LastNames().train)));
    }
  }
  return corpus;
}

}  // namespace

// --- Noise channels ------------------------------------------------------

void ApplyOcrChannel(text::Corpus* corpus, double rate, uint64_t seed,
                     NoiseChannelStats* stats) {
  Rng rng(Mix(seed, kOcrSalt));
  NoiseChannelStats local;
  // Classic OCR confusion pairs (shape-based).
  auto confuse = [](char c) -> char {
    switch (c) {
      case 'O': return '0';
      case '0': return 'O';
      case 'l': return '1';
      case '1': return 'l';
      case 'I': return 'l';
      case 'S': return '5';
      case '5': return 'S';
      case 'B': return '8';
      case '8': return 'B';
      case 'Z': return '2';
      case 'e': return 'c';
      case 'c': return 'e';
      case 'n': return 'u';
      case 'u': return 'n';
      case 'm': return 'n';
      case 'h': return 'b';
      case 'g': return 'q';
      case 'a': return 'o';
      case 'o': return 'a';
      default: return c;
    }
  };
  for (Sentence& s : corpus->sentences) {
    for (std::string& tok : s.tokens) {
      std::string out;
      out.reserve(tok.size());
      for (char c : tok) {
        const bool eligible =
            std::isalnum(static_cast<unsigned char>(c)) &&
            static_cast<unsigned char>(c) < 0x80;
        if (!eligible) {
          out.push_back(c);
          continue;
        }
        ++local.chars_eligible;
        if (!rng.Bernoulli(rate)) {
          out.push_back(c);
          continue;
        }
        ++local.chars_corrupted;
        const int op = rng.UniformInt(0, 2);
        if (op == 0) {
          out.push_back(confuse(c));
        } else if (op == 1) {
          // Deletion — skipped entirely (token emptiness handled below).
        } else {
          out.push_back(c);
          out.push_back(c);
        }
      }
      // Never let deletion produce an empty token: that would merge with a
      // neighbor on re-rendering and move span boundaries.
      if (!out.empty()) tok = std::move(out);
    }
  }
  if (stats != nullptr) *stats = local;
}

void ApplyAsrChannel(text::Corpus* corpus, double rate, uint64_t seed,
                     NoiseChannelStats* stats) {
  Rng rng(Mix(seed, kAsrSalt));
  NoiseChannelStats local;
  auto phonetic = [](char c) -> char {
    switch (c) {
      case 'c': return 'k';
      case 'k': return 'c';
      case 's': return 'z';
      case 'z': return 's';
      case 'f': return 'v';
      case 'v': return 'f';
      case 'b': return 'p';
      case 'p': return 'b';
      case 'd': return 't';
      case 't': return 'd';
      case 'i': return 'e';
      case 'e': return 'i';
      default: return c;
    }
  };
  for (Sentence& s : corpus->sentences) {
    // Pass 1: lowercase + phonetic confusions (ASCII letters only; UTF-8
    // continuation bytes are >= 0x80 and untouched).
    for (std::string& tok : s.tokens) {
      for (char& c : tok) {
        if (static_cast<unsigned char>(c) >= 0x80) continue;
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (std::isalpha(static_cast<unsigned char>(c))) {
          ++local.chars_eligible;
          if (rng.Bernoulli(rate)) {
            const char replaced = phonetic(c);
            if (replaced != c) {
              c = replaced;
              ++local.chars_corrupted;
            }
          }
        }
      }
    }
    // Pass 2: ASR transcripts carry no punctuation. Drop punctuation-only
    // tokens outside entity spans and remap span indexes.
    std::vector<bool> in_entity(static_cast<size_t>(s.size()), false);
    for (const Span& sp : s.spans) {
      for (int t = sp.start; t < sp.end; ++t) {
        in_entity[static_cast<size_t>(t)] = true;
      }
    }
    std::vector<int> new_index(static_cast<size_t>(s.size()) + 1, 0);
    std::vector<std::string> kept;
    kept.reserve(s.tokens.size());
    for (int t = 0; t < s.size(); ++t) {
      new_index[static_cast<size_t>(t)] = static_cast<int>(kept.size());
      const bool drop =
          IsPunctToken(s.tokens[t]) && !in_entity[static_cast<size_t>(t)];
      if (!drop) kept.push_back(std::move(s.tokens[t]));
    }
    new_index[static_cast<size_t>(s.size())] = static_cast<int>(kept.size());
    for (Span& sp : s.spans) {
      sp.start = new_index[static_cast<size_t>(sp.start)];
      sp.end = new_index[static_cast<size_t>(sp.end)];
    }
    s.tokens = std::move(kept);
  }
  if (stats != nullptr) *stats = local;
}

// --- Dispatch ------------------------------------------------------------

Scenario ScenarioFromString(const std::string& name) {
  if (name == "code_switched") return Scenario::kCodeSwitched;
  if (name == "ocr_noise") return Scenario::kOcrNoise;
  if (name == "asr_noise") return Scenario::kAsrNoise;
  if (name == "long_doc") return Scenario::kLongDoc;
  if (name == "discontinuous") return Scenario::kDiscontinuous;
  if (name == "entity_consistency") return Scenario::kEntityConsistency;
  DLNER_CHECK_MSG(false, "unknown scenario: " << name);
}

std::string ScenarioToString(Scenario scenario) {
  switch (scenario) {
    case Scenario::kCodeSwitched: return "code_switched";
    case Scenario::kOcrNoise: return "ocr_noise";
    case Scenario::kAsrNoise: return "asr_noise";
    case Scenario::kLongDoc: return "long_doc";
    case Scenario::kDiscontinuous: return "discontinuous";
    case Scenario::kEntityConsistency: return "entity_consistency";
  }
  DLNER_CHECK(false);
}

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario>* v = new std::vector<Scenario>{
      Scenario::kCodeSwitched,  Scenario::kOcrNoise,
      Scenario::kAsrNoise,      Scenario::kLongDoc,
      Scenario::kDiscontinuous, Scenario::kEntityConsistency};
  return *v;
}

const std::vector<std::string>& ScenarioEntityTypes(Scenario scenario) {
  static const std::vector<std::string>* news =
      new std::vector<std::string>{"PER", "LOC", "ORG", "MISC"};
  static const std::vector<std::string>* discont =
      new std::vector<std::string>{"PER", "LOC", "ORG", "Disease"};
  static const std::vector<std::string>* consist =
      new std::vector<std::string>{"PER", "LOC"};
  switch (scenario) {
    case Scenario::kCodeSwitched:
    case Scenario::kOcrNoise:
    case Scenario::kAsrNoise:
    case Scenario::kLongDoc:
      return *news;
    case Scenario::kDiscontinuous:
      return *discont;
    case Scenario::kEntityConsistency:
      return *consist;
  }
  DLNER_CHECK(false);
}

text::Corpus GenerateScenario(Scenario scenario, const ScenarioOptions& opts) {
  switch (scenario) {
    case Scenario::kCodeSwitched:
      return GenerateCodeSwitched(opts);
    case Scenario::kOcrNoise: {
      Corpus corpus = CleanNews(Mix(opts.seed, kOcrSalt), opts.num_sentences);
      ApplyOcrChannel(&corpus, opts.corruption_rate, opts.seed, nullptr);
      return corpus;
    }
    case Scenario::kAsrNoise: {
      Corpus corpus = CleanNews(Mix(opts.seed, kAsrSalt), opts.num_sentences);
      ApplyAsrChannel(&corpus, opts.corruption_rate, opts.seed, nullptr);
      return corpus;
    }
    case Scenario::kLongDoc:
      return GenerateLongDoc(opts);
    case Scenario::kDiscontinuous:
      return GenerateDiscontinuous(opts);
    case Scenario::kEntityConsistency:
      return GenerateConsistency(opts);
  }
  DLNER_CHECK(false);
}

ScenarioSplit MakeScenarioSplit(Scenario scenario,
                                const ScenarioOptions& opts) {
  ScenarioSplit split;
  split.test = GenerateScenario(scenario, opts);
  switch (scenario) {
    case Scenario::kCodeSwitched:
    case Scenario::kOcrNoise:
    case Scenario::kAsrNoise:
    case Scenario::kLongDoc:
      // Clean monolingual newswire: the realistic training distribution for
      // a system later exposed to the hostile channel.
      split.train = CleanNews(Mix(opts.seed, kTrainSalt),
                              std::max(opts.num_sentences, 80));
      break;
    case Scenario::kDiscontinuous: {
      ScenarioOptions train_opts = opts;
      train_opts.seed = Mix(opts.seed, kTrainSalt);
      train_opts.num_sentences = std::max(opts.num_sentences, 80);
      split.train = GenerateDiscontinuous(train_opts);
      break;
    }
    case Scenario::kEntityConsistency:
      split.train = GenerateConsistencyTrain(opts);
      break;
  }
  return split;
}

std::string RenderDocument(const text::Corpus& corpus, int doc) {
  const auto [first, last] = corpus.DocRange(doc);
  std::string out;
  for (int i = first; i < last; ++i) {
    const Sentence& s = corpus.sentences[static_cast<size_t>(i)];
    for (int t = 0; t < s.size(); ++t) {
      if (t > 0) out.push_back(' ');
      out += s.tokens[t];
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace dlner::data
