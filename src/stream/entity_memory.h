// Entity-consistency cache: majority-vote type memory per surface form.
//
// The survey's document-level-context thread observes that sentence-at-a-time
// tagging discards cross-sentence evidence: once "Li" has been tagged PER
// early in a document, later mentions of the identical surface form should
// benefit. EntityMemory implements the simplest deterministic version of
// that idea as a post-decoder pass:
//
//   Observe(tokens, spans)  records every emitted span's surface form and
//                           type as one vote.
//   Apply(tokens, &spans)   (a) relabels a predicted span when the memory
//                           holds a sufficiently dominant different type for
//                           its exact surface, and (b) injects spans for
//                           exact surface matches of remembered entities
//                           that the decoder missed, longest-match first,
//                           never overlapping an existing span.
//
// Both passes are pure functions of the memory state and the sentence, and
// the StreamTagger applies them strictly in sentence order (Apply then
// Observe, one sentence at a time), so the output stream is independent of
// how sentences were grouped into batches or flushes — the chunk-boundary
// invariance property holds with doc-context on, too.
//
// All tie-breaks are deterministic (lexicographically smallest type wins a
// vote tie), and the table is capped so a pathological document cannot grow
// memory without bound.
#ifndef DLNER_STREAM_ENTITY_MEMORY_H_
#define DLNER_STREAM_ENTITY_MEMORY_H_

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/types.h"

namespace dlner::stream {

struct EntityMemoryOptions {
  /// Votes a surface needs before Apply will inject it into a sentence
  /// where the decoder produced no span.
  int min_votes_to_inject = 1;
  /// Apply relabels a predicted span only when the majority type has at
  /// least this many votes AND at least `relabel_ratio` times the votes of
  /// the predicted type. Conservative by default: one early mistake should
  /// not rewrite a confident later decode.
  int min_votes_to_relabel = 2;
  int relabel_ratio = 2;
  /// Longest remembered surface, in tokens, that Apply will scan for.
  int max_surface_tokens = 8;
  /// Hard cap on distinct remembered surfaces; once full, new surfaces are
  /// dropped (existing ones keep accumulating votes). Bounds memory on
  /// 10k+-token documents.
  std::size_t max_surfaces = 4096;
};

class EntityMemory {
 public:
  EntityMemory() = default;
  explicit EntityMemory(const EntityMemoryOptions& opts) : opts_(opts) {}

  /// Records one vote per span for (surface form -> type).
  void Observe(const std::vector<std::string>& tokens,
               const std::vector<text::Span>& spans);

  /// Rewrites `spans` in place using the memory: relabel dominated types,
  /// then inject missed exact surface matches. Output spans are sorted.
  void Apply(const std::vector<std::string>& tokens,
             std::vector<text::Span>* spans) const;

  /// Forgets everything (document boundary).
  void Clear();

  /// Distinct surfaces currently remembered.
  std::size_t size() const { return table_.size(); }

  /// Majority type for an exact surface ("" when unknown). Ties break to
  /// the lexicographically smallest type. Exposed for tests.
  std::string MajorityType(const std::vector<std::string>& surface) const;

 private:
  struct VoteEntry {
    // Ordered map: deterministic iteration makes the lexicographic
    // tie-break free.
    std::map<std::string, int> votes;
    int surface_tokens = 0;
  };

  static std::string Key(const std::vector<std::string>& tokens, int start,
                         int end);

  // Majority (type, votes) of an entry.
  static std::pair<std::string, int> Majority(const VoteEntry& entry);

  EntityMemoryOptions opts_;
  std::unordered_map<std::string, VoteEntry> table_;
  int longest_surface_ = 0;  // tokens of the longest remembered surface
};

}  // namespace dlner::stream

#endif  // DLNER_STREAM_ENTITY_MEMORY_H_
