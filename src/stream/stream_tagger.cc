#include "stream/stream_tagger.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "obs/obs.h"
#include "obs/trace.h"

namespace dlner::stream {

StreamTagger::StreamTagger(const core::Pipeline* pipeline,
                           const StreamOptions& opts)
    : pipeline_(pipeline), opts_(opts) {
  if (opts_.flush_sentences < 1) opts_.flush_sentences = 1;
  text::StreamTokenizerOptions tok;
  tok.max_sentence_tokens = opts_.max_sentence_tokens;
  tokenizer_ = text::StreamTokenizer(tok);
  doc_context_ = opts_.doc_context >= 0
                     ? opts_.doc_context != 0
                     : pipeline_->model()->config().doc_context;
  memory_ = EntityMemory(opts_.memory);
}

std::vector<TaggedSentence> StreamTagger::Feed(std::string_view chunk) {
  obs::ScopedTraceContext trace_ctx(trace_ctx_);
  obs::ScopedSpan span("stream/feed");
  tokenizer_.Feed(chunk);
  DrainTokenizer();
  std::vector<TaggedSentence> out;
  while (static_cast<int>(pending_.size()) >= opts_.flush_sentences) {
    TagPending(&out);
  }
  if (!pending_.empty() && DeadlineExpired()) TagPending(&out);
  return out;
}

std::vector<TaggedSentence> StreamTagger::Flush() {
  obs::ScopedTraceContext trace_ctx(trace_ctx_);
  obs::ScopedSpan span("stream/flush");
  tokenizer_.Flush();
  DrainTokenizer();
  std::vector<TaggedSentence> out;
  TagPending(&out);
  memory_.Clear();
  return out;
}

void StreamTagger::DrainTokenizer() {
  while (tokenizer_.HasSentence()) {
    if (pending_.empty()) oldest_pending_us_ = obs::NowMicros();
    pending_.push_back(tokenizer_.NextSentence());
  }
}

void StreamTagger::TagPending(std::vector<TaggedSentence>* out) {
  if (pending_.empty()) return;
  // Take at most one size-trigger batch per call so huge Feed()s still tag
  // in bounded TagCorpus batches; Feed loops until below threshold.
  const int take =
      std::min(static_cast<int>(pending_.size()), opts_.flush_sentences);
  text::Corpus corpus;
  corpus.sentences.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    text::Sentence s;
    s.tokens = std::move(pending_[static_cast<std::size_t>(i)]);
    corpus.sentences.push_back(std::move(s));
  }
  pending_.erase(pending_.begin(), pending_.begin() + take);
  if (!pending_.empty()) oldest_pending_us_ = obs::NowMicros();

  std::vector<std::vector<text::Span>> spans = pipeline_->TagCorpus(corpus);

  // The entity memory runs strictly sentence-by-sentence (Apply reads only
  // state from PRIOR sentences, then Observe folds this one in), so results
  // do not depend on how sentences were grouped into batches — the
  // chunk-boundary invariance property survives doc_context=true.
  for (std::size_t i = 0; i < corpus.sentences.size(); ++i) {
    TaggedSentence tagged;
    tagged.tokens = std::move(corpus.sentences[i].tokens);
    tagged.spans = std::move(spans[i]);
    if (doc_context_) {
      memory_.Apply(tagged.tokens, &tagged.spans);
      memory_.Observe(tagged.tokens, tagged.spans);
    }
    out->push_back(std::move(tagged));
  }
}

bool StreamTagger::DeadlineExpired() const {
  if (opts_.flush_deadline_us == 0) return false;
  return obs::NowMicros() - oldest_pending_us_ >= opts_.flush_deadline_us;
}

}  // namespace dlner::stream
