#include "stream/entity_memory.h"

#include <algorithm>

namespace dlner::stream {

std::string EntityMemory::Key(const std::vector<std::string>& tokens,
                              int start, int end) {
  // '\x1f' (ASCII unit separator) cannot be produced by the whitespace
  // tokenizers, so joined keys are unambiguous even for hostile tokens.
  std::string key;
  for (int t = start; t < end; ++t) {
    if (t > start) key.push_back('\x1f');
    key += tokens[t];
  }
  return key;
}

std::pair<std::string, int> EntityMemory::Majority(const VoteEntry& entry) {
  std::string best_type;
  int best_votes = 0;
  for (const auto& [type, votes] : entry.votes) {
    if (votes > best_votes) {  // first (lexicographically smallest) wins ties
      best_type = type;
      best_votes = votes;
    }
  }
  return {best_type, best_votes};
}

void EntityMemory::Observe(const std::vector<std::string>& tokens,
                           const std::vector<text::Span>& spans) {
  for (const text::Span& sp : spans) {
    if (sp.start < 0 || sp.end > static_cast<int>(tokens.size()) ||
        sp.start >= sp.end) {
      continue;
    }
    const int width = sp.end - sp.start;
    if (width > opts_.max_surface_tokens) continue;
    std::string key = Key(tokens, sp.start, sp.end);
    auto it = table_.find(key);
    if (it == table_.end()) {
      if (table_.size() >= opts_.max_surfaces) continue;
      it = table_.emplace(std::move(key), VoteEntry{}).first;
      it->second.surface_tokens = width;
    }
    ++it->second.votes[sp.type];
    longest_surface_ = std::max(longest_surface_, width);
  }
}

void EntityMemory::Apply(const std::vector<std::string>& tokens,
                         std::vector<text::Span>* spans) const {
  if (table_.empty()) return;
  const int n = static_cast<int>(tokens.size());

  // Pass 1: relabel predicted spans whose exact surface has a sufficiently
  // dominant different type in memory.
  for (text::Span& sp : *spans) {
    if (sp.start < 0 || sp.end > n || sp.start >= sp.end) continue;
    if (sp.end - sp.start > opts_.max_surface_tokens) continue;
    auto it = table_.find(Key(tokens, sp.start, sp.end));
    if (it == table_.end()) continue;
    const auto [major_type, major_votes] = Majority(it->second);
    if (major_type.empty() || major_type == sp.type) continue;
    auto own = it->second.votes.find(sp.type);
    const int own_votes = own == it->second.votes.end() ? 0 : own->second;
    if (major_votes >= opts_.min_votes_to_relabel &&
        major_votes >= opts_.relabel_ratio * std::max(own_votes, 1)) {
      sp.type = major_type;
    }
  }

  // Pass 2: inject remembered surfaces the decoder missed. Longest match
  // first at each position; injected spans never overlap existing or
  // previously injected ones.
  std::vector<bool> covered(static_cast<std::size_t>(n), false);
  for (const text::Span& sp : *spans) {
    for (int t = std::max(sp.start, 0); t < std::min(sp.end, n); ++t) {
      covered[static_cast<std::size_t>(t)] = true;
    }
  }
  const int max_width = std::min(longest_surface_, opts_.max_surface_tokens);
  std::vector<text::Span> injected;
  for (int start = 0; start < n; ++start) {
    if (covered[static_cast<std::size_t>(start)]) continue;
    for (int width = std::min(max_width, n - start); width >= 1; --width) {
      const int end = start + width;
      bool blocked = false;
      for (int t = start; t < end; ++t) {
        if (covered[static_cast<std::size_t>(t)]) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      auto it = table_.find(Key(tokens, start, end));
      if (it == table_.end() || it->second.surface_tokens != width) continue;
      const auto [major_type, major_votes] = Majority(it->second);
      if (major_votes < opts_.min_votes_to_inject) continue;
      injected.push_back(text::Span{start, end, major_type});
      for (int t = start; t < end; ++t) {
        covered[static_cast<std::size_t>(t)] = true;
      }
      start = end - 1;  // outer loop ++ lands just past the injected span
      break;
    }
  }
  if (!injected.empty()) {
    spans->insert(spans->end(), injected.begin(), injected.end());
    std::sort(spans->begin(), spans->end());
  }
}

void EntityMemory::Clear() {
  table_.clear();
  longest_surface_ = 0;
}

std::string EntityMemory::MajorityType(
    const std::vector<std::string>& surface) const {
  if (surface.empty()) return "";
  auto it = table_.find(Key(surface, 0, static_cast<int>(surface.size())));
  if (it == table_.end()) return "";
  return Majority(it->second).first;
}

}  // namespace dlner::stream
