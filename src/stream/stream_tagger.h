// Streaming document-level tagger: Feed()/Flush() over raw bytes.
//
// StreamTagger glues the incremental tokenizer (text/stream_tokenizer.h) to
// the compiled-plan batched inference path (Pipeline::TagCorpus) and,
// optionally, to the entity-consistency cache (entity_memory.h):
//
//   raw bytes --Feed()--> StreamTokenizer --> sentences --> pending queue
//     --(size or deadline reached)--> TagCorpus (plan-batched)
//     --(doc_context: Apply + Observe per sentence, in order)--> emitted
//
// Latency contract (deadline-or-size, mirroring the serve batcher): a
// completed sentence is tagged as soon as EITHER `flush_sentences` sentences
// are pending OR the oldest pending sentence has waited `flush_deadline_us`
// microseconds. The deadline is checked on every Feed/Flush call (the tagger
// owns no thread), so the bound is "next call after the deadline", which is
// what a poll-driven caller like the serve loop provides.
//
// Determinism: emitted spans are a pure function of the concatenated byte
// stream. Chunk boundaries, flush timing, and batch grouping cannot change
// the output, because (a) the tokenizer is chunk-invariant by construction,
// (b) TagCorpus is bit-identical regardless of batch composition, and (c)
// the entity memory is applied strictly sequentially per sentence. With
// doc_context=false the output is bit-identical to calling
// Pipeline::TagCorpus on the same sentence split.
#ifndef DLNER_STREAM_STREAM_TAGGER_H_
#define DLNER_STREAM_STREAM_TAGGER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "stream/entity_memory.h"
#include "text/stream_tokenizer.h"

namespace dlner::stream {

struct StreamOptions {
  /// Tag as soon as this many sentences are pending.
  int flush_sentences = 16;
  /// ... or as soon as the oldest pending sentence is this old (0 disables
  /// the deadline; sentences then wait for the size trigger or Flush()).
  std::uint64_t flush_deadline_us = 50000;
  /// Force a sentence break after this many tokens (tokenizer cap).
  int max_sentence_tokens = 512;
  /// Document-level entity-consistency state. When unset (default -1) the
  /// pipeline's NerConfig::doc_context decides; 0/1 force off/on.
  int doc_context = -1;
  EntityMemoryOptions memory;
};

/// One tagged sentence emitted by the stream.
struct TaggedSentence {
  std::vector<std::string> tokens;
  std::vector<text::Span> spans;
};

class StreamTagger {
 public:
  /// `pipeline` is borrowed and must outlive the tagger.
  StreamTagger(const core::Pipeline* pipeline, const StreamOptions& opts = {});

  /// Consumes the next chunk of the document. Returns the sentences whose
  /// tags became final during this call (possibly none; possibly several).
  std::vector<TaggedSentence> Feed(std::string_view chunk);

  /// Ends the document: tags everything still pending, including a final
  /// partial sentence/token. Document state (entity memory) is cleared, so
  /// the tagger is immediately ready for the next document.
  std::vector<TaggedSentence> Flush();

  /// True when doc-level state is active for this stream.
  bool doc_context() const { return doc_context_; }

  /// Trace context id stamped (as a "ctx" annotation) onto the
  /// stream/feed|flush spans this tagger records, and inherited by the
  /// plan/batch spans under them — the same request-context mechanism the
  /// serve batcher uses, so streamed document traffic is attributable in a
  /// merged trace. 0 (default) leaves spans unannotated.
  void set_trace_context(std::uint64_t ctx) { trace_ctx_ = ctx; }
  std::uint64_t trace_context() const { return trace_ctx_; }

  /// Sentences tokenized but not yet tagged.
  int PendingSentences() const { return static_cast<int>(pending_.size()); }

  /// The entity-consistency cache (inspection/tests).
  const EntityMemory& memory() const { return memory_; }

 private:
  // Moves completed sentences out of the tokenizer into pending_.
  void DrainTokenizer();
  // Tags and emits all pending sentences (no-op when none).
  void TagPending(std::vector<TaggedSentence>* out);
  bool DeadlineExpired() const;

  const core::Pipeline* pipeline_;
  StreamOptions opts_;
  bool doc_context_ = false;
  std::uint64_t trace_ctx_ = 0;

  text::StreamTokenizer tokenizer_;
  std::vector<std::vector<std::string>> pending_;
  std::uint64_t oldest_pending_us_ = 0;  // arrival time of pending_[0]
  EntityMemory memory_;
};

}  // namespace dlner::stream

#endif  // DLNER_STREAM_STREAM_TAGGER_H_
