// Lightweight runtime assertion macros used across the library.
//
// DLNER_CHECK aborts with a diagnostic on contract violations (programmer
// errors such as shape mismatches). These checks stay enabled in release
// builds: the library is a research toolkit where silent shape corruption is
// far more costly than the branch.
#ifndef DLNER_TENSOR_CHECK_H_
#define DLNER_TENSOR_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dlner {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "DLNER_CHECK failed at %s:%d: %s %s\n", file, line,
               expr, message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace dlner

#define DLNER_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::dlner::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                   \
  } while (0)

#define DLNER_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream oss_;                                          \
      oss_ << msg;                                                      \
      ::dlner::internal::CheckFailed(__FILE__, __LINE__, #cond,         \
                                     oss_.str());                       \
    }                                                                   \
  } while (0)

#define DLNER_CHECK_EQ(a, b) \
  DLNER_CHECK_MSG((a) == (b), "(" << (a) << " vs " << (b) << ")")
#define DLNER_CHECK_NE(a, b) \
  DLNER_CHECK_MSG((a) != (b), "(" << (a) << " vs " << (b) << ")")
#define DLNER_CHECK_LT(a, b) \
  DLNER_CHECK_MSG((a) < (b), "(" << (a) << " vs " << (b) << ")")
#define DLNER_CHECK_LE(a, b) \
  DLNER_CHECK_MSG((a) <= (b), "(" << (a) << " vs " << (b) << ")")
#define DLNER_CHECK_GT(a, b) \
  DLNER_CHECK_MSG((a) > (b), "(" << (a) << " vs " << (b) << ")")
#define DLNER_CHECK_GE(a, b) \
  DLNER_CHECK_MSG((a) >= (b), "(" << (a) << " vs " << (b) << ")")

#endif  // DLNER_TENSOR_CHECK_H_
