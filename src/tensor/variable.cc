#include "tensor/variable.h"

#include <unordered_set>

#include "tensor/check.h"

namespace dlner {
namespace {

thread_local bool g_grad_enabled = true;

}  // namespace

bool GradModeEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

void Variable::EnsureGrad() {
  if (!grad.SameShape(value) || grad.empty() != value.empty()) {
    grad = Tensor(value.shape());
  }
}

void Variable::ZeroGrad() {
  EnsureGrad();
  grad.Fill(0.0);
}

Var Constant(Tensor value) {
  auto v = std::make_shared<Variable>(std::move(value));
  v->requires_grad = false;
  return v;
}

Var Parameter(Tensor value, std::string name) {
  auto v = std::make_shared<Variable>(std::move(value));
  v->requires_grad = true;
  v->name = std::move(name);
  return v;
}

namespace {

// Builds a post-order (children after parents get visited first) list of the
// graph reachable from root, restricted to nodes that require gradients.
void TopoSort(Variable* node, std::unordered_set<Variable*>* visited,
              std::vector<Variable*>* order) {
  if (visited->count(node) > 0) return;
  visited->insert(node);
  for (const Var& p : node->parents) {
    if (p->requires_grad) TopoSort(p.get(), visited, order);
  }
  order->push_back(node);
}

}  // namespace

void Backward(const Var& root) {
  DLNER_CHECK(root != nullptr);
  DLNER_CHECK_MSG(root->value.size() == 1,
                  "Backward root must be scalar, got "
                      << root->value.ShapeString());
  std::unordered_set<Variable*> visited;
  std::vector<Variable*> order;
  TopoSort(root.get(), &visited, &order);

  // Zero gradients of all nodes in this graph, then seed the root.
  for (Variable* n : order) n->ZeroGrad();
  root->grad[0] = 1.0;

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Variable* n = *it;
    if (n->backward_fn) n->backward_fn(n);
  }
}

}  // namespace dlner
