#include "tensor/batched.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"

namespace dlner::batched {
namespace {

inline Float SigmoidScalar(Float v) { return 1.0 / (1.0 + std::exp(-v)); }

}  // namespace

int BatchLayout::max_len() const {
  int m = 0;
  for (int b = 0; b < batch(); ++b) m = std::max(m, len(b));
  return m;
}

void Affine(const Float* x, int rows, const Tensor& w, const Tensor& b,
            Float* out, Act act) {
  DLNER_CHECK_EQ(w.dim(), 2);
  DLNER_CHECK_EQ(b.dim(), 1);
  const int k = w.rows();
  const int n = w.cols();
  DLNER_CHECK_EQ(n, b.size());
  const Float* bias = b.data();
  for (int i = 0; i < rows; ++i) {
    std::memcpy(out + static_cast<std::size_t>(i) * n, bias,
                sizeof(Float) * static_cast<std::size_t>(n));
  }
  gemm::GemmAccum(x, w.data(), out, rows, k, n);
  const int total = rows * n;
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu:
      for (int i = 0; i < total; ++i) out[i] = std::max(out[i], 0.0);
      break;
    case Act::kTanh:
      for (int i = 0; i < total; ++i) out[i] = std::tanh(out[i]);
      break;
  }
}

void ReluInPlace(Float* x, int n) {
  for (int i = 0; i < n; ++i) x[i] = std::max(x[i], 0.0);
}

void UnfoldSegments(const Float* x, int d, const BatchLayout& layout,
                    int width, int dilation, Float* out) {
  DLNER_CHECK_EQ(width % 2, 1);
  DLNER_CHECK_GE(dilation, 1);
  const int half = width / 2;
  const int wd = width * d;
  std::memset(out, 0,
              static_cast<std::size_t>(layout.rows()) * wd * sizeof(Float));
  for (int b = 0; b < layout.batch(); ++b) {
    const int off = layout.offset(b);
    const int len = layout.len(b);
    for (int t = 0; t < len; ++t) {
      Float* orow = out + static_cast<std::size_t>(off + t) * wd;
      for (int k = -half; k <= half; ++k) {
        const int src = t + k * dilation;
        if (src < 0 || src >= len) continue;
        std::memcpy(orow + (k + half) * d,
                    x + static_cast<std::size_t>(off + src) * d,
                    static_cast<std::size_t>(d) * sizeof(Float));
      }
    }
  }
}

void ConvSegments(const Float* x, int d, const BatchLayout& layout,
                  int width, int dilation, const Tensor& w, const Tensor& b,
                  Float* out, Act act) {
  DLNER_CHECK_EQ(width % 2, 1);
  DLNER_CHECK_GE(dilation, 1);
  DLNER_CHECK_EQ(w.rows(), width * d);
  const int half = width / 2;
  const int n = w.cols();
  DLNER_CHECK_EQ(n, b.size());
  const Float* wm = w.data();
  const Float* bias = b.data();
  for (int seg = 0; seg < layout.batch(); ++seg) {
    const int off = layout.offset(seg);
    const int len = layout.len(seg);
    if (len == 0) continue;
    Float* cseg = out + static_cast<std::size_t>(off) * n;
    for (int t = 0; t < len; ++t) {
      std::memcpy(cseg + static_cast<std::size_t>(t) * n, bias,
                  static_cast<std::size_t>(n) * sizeof(Float));
    }
    // One strided GEMM per window offset: slab k covers unfolded columns
    // [(k+half)*d, (k+half+1)*d), and slabs run in ascending k, so every
    // output element still accumulates in ascending unfolded-column order.
    // Tokens whose offset-k neighbor falls outside the segment are simply
    // excluded from that slab's row range — those are exactly the
    // zero-padded slots the dense kernel would have skipped.
    for (int k = -half; k <= half; ++k) {
      const int ko = k * dilation;
      const int t0 = std::max(0, -ko);
      const int t1 = std::min(len, len - ko);
      if (t1 <= t0) continue;
      gemm::GemmAccumStrided(
          x + static_cast<std::size_t>(off + t0 + ko) * d, d,
          wm + static_cast<std::size_t>(k + half) * d * n,
          cseg + static_cast<std::size_t>(t0) * n, t1 - t0, d, n);
    }
    const int total = len * n;
    switch (act) {
      case Act::kNone:
        break;
      case Act::kRelu:
        for (int i = 0; i < total; ++i) cseg[i] = std::max(cseg[i], 0.0);
        break;
      case Act::kTanh:
        for (int i = 0; i < total; ++i) cseg[i] = std::tanh(cseg[i]);
        break;
    }
  }
}

void LayerNormRows(const Float* x, int rows, int d, const Tensor& gain,
                   const Tensor& bias, Float* out) {
  DLNER_CHECK_EQ(gain.size(), d);
  DLNER_CHECK_EQ(bias.size(), d);
  constexpr Float kEps = 1e-5;  // must match LayerNorm::Apply
  const Float* g = gain.data();
  const Float* be = bias.data();
  for (int i = 0; i < rows; ++i) {
    const Float* row = x + static_cast<std::size_t>(i) * d;
    Float* orow = out + static_cast<std::size_t>(i) * d;
    Float mu = 0.0;
    for (int j = 0; j < d; ++j) mu += row[j];
    mu /= d;
    Float var = 0.0;
    for (int j = 0; j < d; ++j) {
      const Float c = row[j] - mu;
      var += c * c;
    }
    var /= d;
    const Float inv_sigma = 1.0 / std::sqrt(var + kEps);
    for (int j = 0; j < d; ++j) {
      const Float xhat = (row[j] - mu) * inv_sigma;
      orow[j] = g[j] * xhat + be[j];
    }
  }
}

void GlobalMaxConcat(const Float* h, int d, const BatchLayout& layout,
                     Float* out) {
  const int od = 2 * d;
  for (int b = 0; b < layout.batch(); ++b) {
    const int off = layout.offset(b);
    const int len = layout.len(b);
    for (int t = 0; t < len; ++t) {
      std::memcpy(out + static_cast<std::size_t>(off + t) * od,
                  h + static_cast<std::size_t>(off + t) * d,
                  static_cast<std::size_t>(d) * sizeof(Float));
    }
    // Column-wise max over the segment, written once into the first row's
    // second half and copied to the rest (no scratch allocation).
    Float* global = out + static_cast<std::size_t>(off) * od + d;
    for (int j = 0; j < d; ++j) {
      Float best = h[static_cast<std::size_t>(off) * d + j];
      for (int t = 1; t < len; ++t) {
        const Float v = h[static_cast<std::size_t>(off + t) * d + j];
        if (v > best) best = v;
      }
      global[j] = best;
    }
    for (int t = 1; t < len; ++t) {
      std::memcpy(out + static_cast<std::size_t>(off + t) * od + d, global,
                  static_cast<std::size_t>(d) * sizeof(Float));
    }
  }
}

namespace {

// One direction of a packed-batch LSTM layer. At step s every segment with
// len > s is "active"; active lanes are compacted (in segment order) into
// one gate GEMM, then stepped elementwise with exactly the eager cell's
// arithmetic: gates order i,f,o,g; c = f*c + i*g; h = o*tanh(c).
void RunLstmDir(const Float* x, int in_dim, int hidden,
                const BatchLayout& layout, const LstmDir& dir, bool reverse,
                Float* out, int out_stride, int col0, Arena* arena) {
  const int batch = layout.batch();
  const int zdim = in_dim + hidden;
  const int gdim = 4 * hidden;
  Float* h_prev = arena->AllocZero(static_cast<std::size_t>(batch) * hidden);
  Float* c_prev = arena->AllocZero(static_cast<std::size_t>(batch) * hidden);
  Float* z = arena->Alloc(static_cast<std::size_t>(batch) * zdim);
  Float* gates = arena->Alloc(static_cast<std::size_t>(batch) * gdim);
  std::vector<int> lanes(batch);
  const int max_len = layout.max_len();
  for (int s = 0; s < max_len; ++s) {
    int na = 0;
    for (int b = 0; b < batch; ++b) {
      const int len = layout.len(b);
      if (len <= s) continue;
      const int t = reverse ? len - 1 - s : s;
      Float* zrow = z + static_cast<std::size_t>(na) * zdim;
      std::memcpy(zrow, x + static_cast<std::size_t>(layout.offset(b) + t) * in_dim,
                  static_cast<std::size_t>(in_dim) * sizeof(Float));
      std::memcpy(zrow + in_dim, h_prev + static_cast<std::size_t>(b) * hidden,
                  static_cast<std::size_t>(hidden) * sizeof(Float));
      lanes[na++] = b;
    }
    Affine(z, na, *dir.w, *dir.b, gates, Act::kNone);
    for (int a = 0; a < na; ++a) {
      const int b = lanes[a];
      const Float* g = gates + static_cast<std::size_t>(a) * gdim;
      Float* hp = h_prev + static_cast<std::size_t>(b) * hidden;
      Float* cp = c_prev + static_cast<std::size_t>(b) * hidden;
      const int t = reverse ? layout.len(b) - 1 - s : s;
      Float* orow =
          out + static_cast<std::size_t>(layout.offset(b) + t) * out_stride +
          col0;
      for (int j = 0; j < hidden; ++j) {
        const Float gi = SigmoidScalar(g[j]);
        const Float gf = SigmoidScalar(g[hidden + j]);
        const Float go = SigmoidScalar(g[2 * hidden + j]);
        const Float gg = std::tanh(g[3 * hidden + j]);
        const Float c = gf * cp[j] + gi * gg;
        const Float h = go * std::tanh(c);
        cp[j] = c;
        hp[j] = h;
        orow[j] = h;
      }
    }
  }
}

// One direction of a packed-batch GRU layer; mirrors GruCell::Step:
// r,z gates from [x, h]; candidate from [x, r*h]; h = (1-z)*h + z*h~.
void RunGruDir(const Float* x, int in_dim, int hidden,
               const BatchLayout& layout, const GruDir& dir, bool reverse,
               Float* out, int out_stride, int col0, Arena* arena) {
  const int batch = layout.batch();
  const int zdim = in_dim + hidden;
  const int rdim = 2 * hidden;
  Float* h_prev = arena->AllocZero(static_cast<std::size_t>(batch) * hidden);
  Float* z = arena->Alloc(static_cast<std::size_t>(batch) * zdim);
  Float* rz = arena->Alloc(static_cast<std::size_t>(batch) * rdim);
  Float* zc = arena->Alloc(static_cast<std::size_t>(batch) * zdim);
  Float* cand = arena->Alloc(static_cast<std::size_t>(batch) * hidden);
  std::vector<int> lanes(batch);
  const int max_len = layout.max_len();
  for (int s = 0; s < max_len; ++s) {
    int na = 0;
    for (int b = 0; b < batch; ++b) {
      const int len = layout.len(b);
      if (len <= s) continue;
      const int t = reverse ? len - 1 - s : s;
      Float* zrow = z + static_cast<std::size_t>(na) * zdim;
      std::memcpy(zrow, x + static_cast<std::size_t>(layout.offset(b) + t) * in_dim,
                  static_cast<std::size_t>(in_dim) * sizeof(Float));
      std::memcpy(zrow + in_dim, h_prev + static_cast<std::size_t>(b) * hidden,
                  static_cast<std::size_t>(hidden) * sizeof(Float));
      lanes[na++] = b;
    }
    Affine(z, na, *dir.rz_w, *dir.rz_b, rz, Act::kNone);
    for (int a = 0; a < na; ++a) {
      const int b = lanes[a];
      const Float* rzrow = rz + static_cast<std::size_t>(a) * rdim;
      const Float* hp = h_prev + static_cast<std::size_t>(b) * hidden;
      Float* zcrow = zc + static_cast<std::size_t>(a) * zdim;
      std::memcpy(zcrow, z + static_cast<std::size_t>(a) * zdim,
                  static_cast<std::size_t>(in_dim) * sizeof(Float));
      for (int j = 0; j < hidden; ++j) {
        zcrow[in_dim + j] = SigmoidScalar(rzrow[j]) * hp[j];
      }
    }
    Affine(zc, na, *dir.cand_w, *dir.cand_b, cand, Act::kNone);
    for (int a = 0; a < na; ++a) {
      const int b = lanes[a];
      const Float* rzrow = rz + static_cast<std::size_t>(a) * rdim;
      const Float* crow = cand + static_cast<std::size_t>(a) * hidden;
      Float* hp = h_prev + static_cast<std::size_t>(b) * hidden;
      const int t = reverse ? layout.len(b) - 1 - s : s;
      Float* orow =
          out + static_cast<std::size_t>(layout.offset(b) + t) * out_stride +
          col0;
      for (int j = 0; j < hidden; ++j) {
        const Float zg = SigmoidScalar(rzrow[hidden + j]);
        const Float h_tilde = std::tanh(crow[j]);
        const Float h = (1.0 - zg) * hp[j] + zg * h_tilde;
        hp[j] = h;
        orow[j] = h;
      }
    }
  }
}

}  // namespace

void BiLstm(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
            const LstmDir& fwd, const LstmDir& bwd, Float* out, Arena* arena) {
  const int stride = 2 * hidden;
  RunLstmDir(x, in_dim, hidden, layout, fwd, /*reverse=*/false, out, stride,
             /*col0=*/0, arena);
  RunLstmDir(x, in_dim, hidden, layout, bwd, /*reverse=*/true, out, stride,
             /*col0=*/hidden, arena);
}

void BiGru(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
           const GruDir& fwd, const GruDir& bwd, Float* out, Arena* arena) {
  const int stride = 2 * hidden;
  RunGruDir(x, in_dim, hidden, layout, fwd, /*reverse=*/false, out, stride,
            /*col0=*/0, arena);
  RunGruDir(x, in_dim, hidden, layout, bwd, /*reverse=*/true, out, stride,
            /*col0=*/hidden, arena);
}

}  // namespace dlner::batched
