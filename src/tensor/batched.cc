#include "tensor/batched.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"
#include "tensor/simd/simd.h"

namespace dlner::batched {
namespace {

inline Float SigmoidScalar(Float v) { return 1.0 / (1.0 + std::exp(-v)); }

std::atomic<bool> g_force_scalar{false};

}  // namespace

void ForceScalarKernels(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ScalarKernelsForced() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

int BatchLayout::max_len() const {
  int m = 0;
  for (int b = 0; b < batch(); ++b) m = std::max(m, len(b));
  return m;
}

// Activation epilogue shared by the affine/conv kernels. ReLU is a
// comparison-select (vectorizable with scalar-identical semantics); tanh
// stays a scalar libm call on every ISA so results never depend on a
// vector polynomial approximation.
template <class Isa>
void ApplyAct(Float* x, int n, Act act) {
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu:
      Isa::Relu(x, n);
      break;
    case Act::kTanh:
      for (int i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
      break;
  }
}

template <class Isa>
void AffineT(const Float* x, int rows, const Tensor& w, const Tensor& b,
             Float* out, Act act) {
  DLNER_CHECK_EQ(w.dim(), 2);
  DLNER_CHECK_EQ(b.dim(), 1);
  const int k = w.rows();
  const int n = w.cols();
  DLNER_CHECK_EQ(n, b.size());
  const Float* bias = b.data();
  for (int i = 0; i < rows; ++i) {
    std::memcpy(out + static_cast<std::size_t>(i) * n, bias,
                sizeof(Float) * static_cast<std::size_t>(n));
  }
  gemm::GemmAccum<Isa>(x, w.data(), out, rows, k, n);
  ApplyAct<Isa>(out, rows * n, act);
}

void Affine(const Float* x, int rows, const Tensor& w, const Tensor& b,
            Float* out, Act act) {
  if (ScalarKernelsForced()) {
    AffineT<simd::Scalar>(x, rows, w, b, out, act);
  } else {
    AffineT<simd::Active>(x, rows, w, b, out, act);
  }
}

template <class Isa>
void ReluInPlaceT(Float* x, int n) {
  Isa::Relu(x, n);
}

void ReluInPlace(Float* x, int n) {
  if (ScalarKernelsForced()) {
    ReluInPlaceT<simd::Scalar>(x, n);
  } else {
    ReluInPlaceT<simd::Active>(x, n);
  }
}

void UnfoldSegments(const Float* x, int d, const BatchLayout& layout,
                    int width, int dilation, Float* out) {
  DLNER_CHECK_EQ(width % 2, 1);
  DLNER_CHECK_GE(dilation, 1);
  const int half = width / 2;
  const int wd = width * d;
  std::memset(out, 0,
              static_cast<std::size_t>(layout.rows()) * wd * sizeof(Float));
  for (int b = 0; b < layout.batch(); ++b) {
    const int off = layout.offset(b);
    const int len = layout.len(b);
    for (int t = 0; t < len; ++t) {
      Float* orow = out + static_cast<std::size_t>(off + t) * wd;
      for (int k = -half; k <= half; ++k) {
        const int src = t + k * dilation;
        if (src < 0 || src >= len) continue;
        std::memcpy(orow + (k + half) * d,
                    x + static_cast<std::size_t>(off + src) * d,
                    static_cast<std::size_t>(d) * sizeof(Float));
      }
    }
  }
}

template <class Isa>
void ConvSegmentsT(const Float* x, int d, const BatchLayout& layout,
                   int width, int dilation, const Tensor& w, const Tensor& b,
                   Float* out, Act act) {
  DLNER_CHECK_EQ(width % 2, 1);
  DLNER_CHECK_GE(dilation, 1);
  DLNER_CHECK_EQ(w.rows(), width * d);
  const int half = width / 2;
  const int n = w.cols();
  DLNER_CHECK_EQ(n, b.size());
  const Float* wm = w.data();
  const Float* bias = b.data();
  for (int seg = 0; seg < layout.batch(); ++seg) {
    const int off = layout.offset(seg);
    const int len = layout.len(seg);
    if (len == 0) continue;
    Float* cseg = out + static_cast<std::size_t>(off) * n;
    for (int t = 0; t < len; ++t) {
      std::memcpy(cseg + static_cast<std::size_t>(t) * n, bias,
                  static_cast<std::size_t>(n) * sizeof(Float));
    }
    // One strided GEMM per window offset: slab k covers unfolded columns
    // [(k+half)*d, (k+half+1)*d), and slabs run in ascending k, so every
    // output element still accumulates in ascending unfolded-column order.
    // Tokens whose offset-k neighbor falls outside the segment are simply
    // excluded from that slab's row range — those are exactly the
    // zero-padded slots the dense kernel would have skipped.
    for (int k = -half; k <= half; ++k) {
      const int ko = k * dilation;
      const int t0 = std::max(0, -ko);
      const int t1 = std::min(len, len - ko);
      if (t1 <= t0) continue;
      gemm::GemmAccumStrided<Isa>(
          x + static_cast<std::size_t>(off + t0 + ko) * d, d,
          wm + static_cast<std::size_t>(k + half) * d * n,
          cseg + static_cast<std::size_t>(t0) * n, t1 - t0, d, n);
    }
    ApplyAct<Isa>(cseg, len * n, act);
  }
}

void ConvSegments(const Float* x, int d, const BatchLayout& layout,
                  int width, int dilation, const Tensor& w, const Tensor& b,
                  Float* out, Act act) {
  if (ScalarKernelsForced()) {
    ConvSegmentsT<simd::Scalar>(x, d, layout, width, dilation, w, b, out, act);
  } else {
    ConvSegmentsT<simd::Active>(x, d, layout, width, dilation, w, b, out, act);
  }
}

template <class Isa>
void LayerNormRowsT(const Float* x, int rows, int d, const Tensor& gain,
                    const Tensor& bias, Float* out) {
  DLNER_CHECK_EQ(gain.size(), d);
  DLNER_CHECK_EQ(bias.size(), d);
  constexpr Float kEps = 1e-5;  // must match LayerNorm::Apply
  const Float* g = gain.data();
  const Float* be = bias.data();
  for (int i = 0; i < rows; ++i) {
    const Float* row = x + static_cast<std::size_t>(i) * d;
    Float* orow = out + static_cast<std::size_t>(i) * d;
    // Mean/variance reductions stay scalar: vector partial sums would
    // reassociate the additions and break bit-identity with the eager
    // LayerNorm::Apply. Only the per-element epilogue vectorizes.
    Float mu = 0.0;
    for (int j = 0; j < d; ++j) mu += row[j];
    mu /= d;
    Float var = 0.0;
    for (int j = 0; j < d; ++j) {
      const Float c = row[j] - mu;
      var += c * c;
    }
    var /= d;
    const Float inv_sigma = 1.0 / std::sqrt(var + kEps);
    Isa::NormApply(row, mu, inv_sigma, g, be, orow, d);
  }
}

void LayerNormRows(const Float* x, int rows, int d, const Tensor& gain,
                   const Tensor& bias, Float* out) {
  if (ScalarKernelsForced()) {
    LayerNormRowsT<simd::Scalar>(x, rows, d, gain, bias, out);
  } else {
    LayerNormRowsT<simd::Active>(x, rows, d, gain, bias, out);
  }
}

template <class Isa>
void GlobalMaxConcatT(const Float* h, int d, const BatchLayout& layout,
                      Float* out) {
  const int od = 2 * d;
  for (int b = 0; b < layout.batch(); ++b) {
    const int off = layout.offset(b);
    const int len = layout.len(b);
    if (len == 0) continue;
    for (int t = 0; t < len; ++t) {
      std::memcpy(out + static_cast<std::size_t>(off + t) * od,
                  h + static_cast<std::size_t>(off + t) * d,
                  static_cast<std::size_t>(d) * sizeof(Float));
    }
    // Column-wise max over the segment, written once into the first row's
    // second half and copied to the rest (no scratch allocation). Row t=0
    // seeds the running max, then rows fold in ascending t — per column
    // that is exactly the scalar `if (v > best)` scan, and max is exact in
    // any order, so the row-major rewrite is bit-identical.
    Float* global = out + static_cast<std::size_t>(off) * od + d;
    std::memcpy(global, h + static_cast<std::size_t>(off) * d,
                static_cast<std::size_t>(d) * sizeof(Float));
    for (int t = 1; t < len; ++t) {
      Isa::RowMax(h + static_cast<std::size_t>(off + t) * d, global, d);
    }
    for (int t = 1; t < len; ++t) {
      std::memcpy(out + static_cast<std::size_t>(off + t) * od + d, global,
                  static_cast<std::size_t>(d) * sizeof(Float));
    }
  }
}

void GlobalMaxConcat(const Float* h, int d, const BatchLayout& layout,
                     Float* out) {
  if (ScalarKernelsForced()) {
    GlobalMaxConcatT<simd::Scalar>(h, d, layout, out);
  } else {
    GlobalMaxConcatT<simd::Active>(h, d, layout, out);
  }
}

namespace {

// One direction of a packed-batch LSTM layer. At step s every segment with
// len > s is "active"; active lanes are compacted (in segment order) into
// one gate GEMM, then stepped with exactly the eager cell's per-element
// arithmetic: gates order i,f,o,g; c = f*c + i*g; h = o*tanh(c). The step
// is phased — all gate nonlinearities first (scalar libm), then the state
// update as vector primitives — which changes only loop structure, never
// any element's value or operand order, so bit-identity with the eager
// LstmCell holds on every ISA.
template <class Isa>
void RunLstmDir(const Float* x, int in_dim, int hidden,
                const BatchLayout& layout, const LstmDir& dir, bool reverse,
                Float* out, int out_stride, int col0, Arena* arena) {
  const int batch = layout.batch();
  const int zdim = in_dim + hidden;
  const int gdim = 4 * hidden;
  Float* h_prev = arena->AllocZero(static_cast<std::size_t>(batch) * hidden);
  Float* c_prev = arena->AllocZero(static_cast<std::size_t>(batch) * hidden);
  Float* z = arena->Alloc(static_cast<std::size_t>(batch) * zdim);
  Float* gates = arena->Alloc(static_cast<std::size_t>(batch) * gdim);
  std::vector<int> lanes(batch);
  const int max_len = layout.max_len();
  for (int s = 0; s < max_len; ++s) {
    int na = 0;
    for (int b = 0; b < batch; ++b) {
      const int len = layout.len(b);
      if (len <= s) continue;
      const int t = reverse ? len - 1 - s : s;
      Float* zrow = z + static_cast<std::size_t>(na) * zdim;
      std::memcpy(zrow, x + static_cast<std::size_t>(layout.offset(b) + t) * in_dim,
                  static_cast<std::size_t>(in_dim) * sizeof(Float));
      std::memcpy(zrow + in_dim, h_prev + static_cast<std::size_t>(b) * hidden,
                  static_cast<std::size_t>(hidden) * sizeof(Float));
      lanes[na++] = b;
    }
    AffineT<Isa>(z, na, *dir.w, *dir.b, gates, Act::kNone);
    for (int a = 0; a < na; ++a) {
      const int b = lanes[a];
      Float* g = gates + static_cast<std::size_t>(a) * gdim;
      Float* hp = h_prev + static_cast<std::size_t>(b) * hidden;
      Float* cp = c_prev + static_cast<std::size_t>(b) * hidden;
      const int t = reverse ? layout.len(b) - 1 - s : s;
      Float* orow =
          out + static_cast<std::size_t>(layout.offset(b) + t) * out_stride +
          col0;
      for (int j = 0; j < 3 * hidden; ++j) g[j] = SigmoidScalar(g[j]);
      for (int j = 3 * hidden; j < gdim; ++j) g[j] = std::tanh(g[j]);
      // c = f*c_prev + i*g, in place over c_prev (same-offset aliasing is
      // allowed by the primitive contract).
      Isa::MulMulAdd(g + hidden, cp, g, g + 3 * hidden, cp, hidden);
      for (int j = 0; j < hidden; ++j) {
        const Float h = g[2 * hidden + j] * std::tanh(cp[j]);
        hp[j] = h;
        orow[j] = h;
      }
    }
  }
}

// One direction of a packed-batch GRU layer; mirrors GruCell::Step:
// r,z gates from [x, h]; candidate from [x, r*h]; h = (1-z)*h + z*h~.
// Phased like the LSTM step: sigmoids/tanh in place first, then the
// elementwise products and interpolation as vector primitives.
template <class Isa>
void RunGruDir(const Float* x, int in_dim, int hidden,
               const BatchLayout& layout, const GruDir& dir, bool reverse,
               Float* out, int out_stride, int col0, Arena* arena) {
  const int batch = layout.batch();
  const int zdim = in_dim + hidden;
  const int rdim = 2 * hidden;
  Float* h_prev = arena->AllocZero(static_cast<std::size_t>(batch) * hidden);
  Float* z = arena->Alloc(static_cast<std::size_t>(batch) * zdim);
  Float* rz = arena->Alloc(static_cast<std::size_t>(batch) * rdim);
  Float* zc = arena->Alloc(static_cast<std::size_t>(batch) * zdim);
  Float* cand = arena->Alloc(static_cast<std::size_t>(batch) * hidden);
  std::vector<int> lanes(batch);
  const int max_len = layout.max_len();
  for (int s = 0; s < max_len; ++s) {
    int na = 0;
    for (int b = 0; b < batch; ++b) {
      const int len = layout.len(b);
      if (len <= s) continue;
      const int t = reverse ? len - 1 - s : s;
      Float* zrow = z + static_cast<std::size_t>(na) * zdim;
      std::memcpy(zrow, x + static_cast<std::size_t>(layout.offset(b) + t) * in_dim,
                  static_cast<std::size_t>(in_dim) * sizeof(Float));
      std::memcpy(zrow + in_dim, h_prev + static_cast<std::size_t>(b) * hidden,
                  static_cast<std::size_t>(hidden) * sizeof(Float));
      lanes[na++] = b;
    }
    AffineT<Isa>(z, na, *dir.rz_w, *dir.rz_b, rz, Act::kNone);
    for (int a = 0; a < na; ++a) {
      const int b = lanes[a];
      Float* rzrow = rz + static_cast<std::size_t>(a) * rdim;
      const Float* hp = h_prev + static_cast<std::size_t>(b) * hidden;
      Float* zcrow = zc + static_cast<std::size_t>(a) * zdim;
      std::memcpy(zcrow, z + static_cast<std::size_t>(a) * zdim,
                  static_cast<std::size_t>(in_dim) * sizeof(Float));
      for (int j = 0; j < hidden; ++j) rzrow[j] = SigmoidScalar(rzrow[j]);
      Isa::Mul(rzrow, hp, zcrow + in_dim, hidden);
    }
    AffineT<Isa>(zc, na, *dir.cand_w, *dir.cand_b, cand, Act::kNone);
    for (int a = 0; a < na; ++a) {
      const int b = lanes[a];
      Float* rzrow = rz + static_cast<std::size_t>(a) * rdim;
      Float* crow = cand + static_cast<std::size_t>(a) * hidden;
      Float* hp = h_prev + static_cast<std::size_t>(b) * hidden;
      const int t = reverse ? layout.len(b) - 1 - s : s;
      Float* orow =
          out + static_cast<std::size_t>(layout.offset(b) + t) * out_stride +
          col0;
      for (int j = 0; j < hidden; ++j) {
        rzrow[hidden + j] = SigmoidScalar(rzrow[hidden + j]);
      }
      for (int j = 0; j < hidden; ++j) crow[j] = std::tanh(crow[j]);
      // h = (1-z)*h_prev + z*h~, into the output row, then carried forward.
      Isa::Blend(rzrow + hidden, hp, crow, orow, hidden);
      std::memcpy(hp, orow, static_cast<std::size_t>(hidden) * sizeof(Float));
    }
  }
}

}  // namespace

template <class Isa>
void BiLstmT(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
             const LstmDir& fwd, const LstmDir& bwd, Float* out,
             Arena* arena) {
  const int stride = 2 * hidden;
  RunLstmDir<Isa>(x, in_dim, hidden, layout, fwd, /*reverse=*/false, out,
                  stride, /*col0=*/0, arena);
  RunLstmDir<Isa>(x, in_dim, hidden, layout, bwd, /*reverse=*/true, out,
                  stride, /*col0=*/hidden, arena);
}

void BiLstm(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
            const LstmDir& fwd, const LstmDir& bwd, Float* out, Arena* arena) {
  if (ScalarKernelsForced()) {
    BiLstmT<simd::Scalar>(x, in_dim, hidden, layout, fwd, bwd, out, arena);
  } else {
    BiLstmT<simd::Active>(x, in_dim, hidden, layout, fwd, bwd, out, arena);
  }
}

template <class Isa>
void BiGruT(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
            const GruDir& fwd, const GruDir& bwd, Float* out, Arena* arena) {
  const int stride = 2 * hidden;
  RunGruDir<Isa>(x, in_dim, hidden, layout, fwd, /*reverse=*/false, out,
                 stride, /*col0=*/0, arena);
  RunGruDir<Isa>(x, in_dim, hidden, layout, bwd, /*reverse=*/true, out,
                 stride, /*col0=*/hidden, arena);
}

void BiGru(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
           const GruDir& fwd, const GruDir& bwd, Float* out, Arena* arena) {
  if (ScalarKernelsForced()) {
    BiGruT<simd::Scalar>(x, in_dim, hidden, layout, fwd, bwd, out, arena);
  } else {
    BiGruT<simd::Active>(x, in_dim, hidden, layout, fwd, bwd, out, arena);
  }
}

// Explicit instantiations so the differential tests can call the template
// entry points from another translation unit. When the active ISA is
// Scalar the first block already covers both.
#define DLNER_BATCHED_INSTANTIATE(Isa)                                        \
  template void AffineT<Isa>(const Float*, int, const Tensor&, const Tensor&, \
                             Float*, Act);                                    \
  template void ReluInPlaceT<Isa>(Float*, int);                               \
  template void ConvSegmentsT<Isa>(const Float*, int, const BatchLayout&,     \
                                   int, int, const Tensor&, const Tensor&,    \
                                   Float*, Act);                              \
  template void LayerNormRowsT<Isa>(const Float*, int, int, const Tensor&,    \
                                    const Tensor&, Float*);                   \
  template void GlobalMaxConcatT<Isa>(const Float*, int, const BatchLayout&,  \
                                      Float*);                                \
  template void BiLstmT<Isa>(const Float*, int, int, const BatchLayout&,      \
                             const LstmDir&, const LstmDir&, Float*, Arena*); \
  template void BiGruT<Isa>(const Float*, int, int, const BatchLayout&,       \
                            const GruDir&, const GruDir&, Float*, Arena*);

DLNER_BATCHED_INSTANTIATE(simd::Scalar)
#if DLNER_SIMD_ISA_ID != 0
DLNER_BATCHED_INSTANTIATE(simd::Active)
#endif
#undef DLNER_BATCHED_INSTANTIATE

}  // namespace dlner::batched
