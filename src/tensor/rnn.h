// Recurrent cells and sequence runners (LSTM, GRU).
//
// These are the survey's RNN context-encoder substrate (Section 3.3.2) and
// also power char-level representations (Fig. 3b), neural language models
// (Section 3.3.4), and RNN tag decoders (Section 3.4.3).
#ifndef DLNER_TENSOR_RNN_H_
#define DLNER_TENSOR_RNN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/nn.h"

namespace dlner {

/// Hidden state of a recurrent cell: (h, c) for LSTM; c unused by GRU.
struct RnnState {
  Var h;
  Var c;
};

/// Interface shared by LSTM and GRU cells.
class RnnCell : public Module {
 public:
  /// Zero initial state.
  virtual RnnState InitialState() const = 0;
  /// One step: consumes input vector [in_dim] and previous state.
  virtual RnnState Step(const Var& x, const RnnState& prev) const = 0;
  virtual int in_dim() const = 0;
  virtual int hidden_dim() const = 0;
};

/// Long short-term memory cell with a single fused gate matrix.
class LstmCell : public RnnCell {
 public:
  LstmCell(int in_dim, int hidden_dim, Rng* rng,
           const std::string& name = "lstm");

  RnnState InitialState() const override;
  RnnState Step(const Var& x, const RnnState& prev) const override;
  std::vector<Var> Parameters() const override;
  int in_dim() const override { return in_dim_; }
  int hidden_dim() const override { return hidden_dim_; }
  const Linear& gates() const { return *gates_; }

 private:
  int in_dim_;
  int hidden_dim_;
  std::unique_ptr<Linear> gates_;  // [in+hid] -> [4*hid]: i, f, o, g
};

/// Gated recurrent unit cell.
class GruCell : public RnnCell {
 public:
  GruCell(int in_dim, int hidden_dim, Rng* rng,
          const std::string& name = "gru");

  RnnState InitialState() const override;
  RnnState Step(const Var& x, const RnnState& prev) const override;
  std::vector<Var> Parameters() const override;
  int in_dim() const override { return in_dim_; }
  int hidden_dim() const override { return hidden_dim_; }
  const Linear& rz() const { return *rz_; }
  const Linear& candidate() const { return *candidate_; }

 private:
  int in_dim_;
  int hidden_dim_;
  std::unique_ptr<Linear> rz_;         // [in+hid] -> [2*hid]: r, z
  std::unique_ptr<Linear> candidate_;  // [in+hid] -> [hid]
};

/// Runs a cell over a sequence [T, in] and stacks hidden states -> [T, hid].
/// When `reverse` is true the input is consumed right-to-left but the output
/// rows stay aligned with the input rows.
Var RunRnn(const RnnCell& cell, const Var& input, bool reverse);

/// Runs a cell and also returns the final state (used by encoders that need
/// a whole-sequence summary and by RNN decoders).
std::pair<Var, RnnState> RunRnnWithState(const RnnCell& cell,
                                         const Var& input, bool reverse);

/// Bidirectional wrapper: concatenates forward and backward runs -> [T, 2*hid].
class BiRnn : public Module {
 public:
  /// `kind` is "lstm" or "gru".
  BiRnn(const std::string& kind, int in_dim, int hidden_dim, Rng* rng,
        const std::string& name = "birnn");

  /// Input [T, in] -> [T, 2*hidden].
  Var Apply(const Var& input) const;

  std::vector<Var> Parameters() const override;
  int out_dim() const { return 2 * forward_->hidden_dim(); }
  const RnnCell& forward_cell() const { return *forward_; }
  const RnnCell& backward_cell() const { return *backward_; }

 private:
  std::unique_ptr<RnnCell> forward_;
  std::unique_ptr<RnnCell> backward_;
};

/// Factory for a cell by kind ("lstm" or "gru").
std::unique_ptr<RnnCell> MakeRnnCell(const std::string& kind, int in_dim,
                                     int hidden_dim, Rng* rng,
                                     const std::string& name);

}  // namespace dlner

#endif  // DLNER_TENSOR_RNN_H_
