#include "tensor/optim.h"

#include <cmath>

#include "tensor/check.h"

namespace dlner {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const Var& p : params_) {
    DLNER_CHECK(p != nullptr);
    p->EnsureGrad();
  }
}

void Optimizer::ZeroGrad() {
  for (const Var& p : params_) p->ZeroGrad();
}

Float Optimizer::ClipGradNorm(Float max_norm) {
  DLNER_CHECK_GT(max_norm, 0.0);
  Float total = 0.0;
  for (const Var& p : params_) {
    p->EnsureGrad();
    for (int i = 0; i < p->grad.size(); ++i) total += p->grad[i] * p->grad[i];
  }
  const Float norm = std::sqrt(total);
  if (norm > max_norm) {
    const Float scale = max_norm / norm;
    for (const Var& p : params_) {
      for (int i = 0; i < p->grad.size(); ++i) p->grad[i] *= scale;
    }
  }
  return norm;
}

// ---------------------------------------------------------------------------
// Sgd.
// ---------------------------------------------------------------------------

Sgd::Sgd(std::vector<Var> params, Float lr, Float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (const Var& p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k];
    if (!p->requires_grad) continue;  // frozen
    p->EnsureGrad();
    if (momentum_ == 0.0) {
      for (int i = 0; i < p->value.size(); ++i) {
        p->value[i] -= lr_ * p->grad[i];
      }
    } else {
      Tensor& v = velocity_[k];
      for (int i = 0; i < p->value.size(); ++i) {
        v[i] = momentum_ * v[i] - lr_ * p->grad[i];
        p->value[i] += v[i];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Adagrad.
// ---------------------------------------------------------------------------

Adagrad::Adagrad(std::vector<Var> params, Float lr, Float eps)
    : Optimizer(std::move(params)), lr_(lr), eps_(eps) {
  accum_.reserve(params_.size());
  for (const Var& p : params_) accum_.emplace_back(p->value.shape());
}

void Adagrad::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k];
    if (!p->requires_grad) continue;  // frozen
    p->EnsureGrad();
    Tensor& a = accum_[k];
    for (int i = 0; i < p->value.size(); ++i) {
      a[i] += p->grad[i] * p->grad[i];
      p->value[i] -= lr_ * p->grad[i] / (std::sqrt(a[i]) + eps_);
    }
  }
}

// ---------------------------------------------------------------------------
// Adam.
// ---------------------------------------------------------------------------

Adam::Adam(std::vector<Var> params, Float lr, Float beta1, Float beta2,
           Float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const Float bc1 = 1.0 - std::pow(beta1_, t_);
  const Float bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k];
    if (!p->requires_grad) continue;  // frozen
    p->EnsureGrad();
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (int i = 0; i < p->value.size(); ++i) {
      const Float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g * g;
      const Float mhat = m[i] / bc1;
      const Float vhat = v[i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& kind,
                                         std::vector<Var> params, Float lr) {
  if (kind == "sgd") return std::make_unique<Sgd>(std::move(params), lr, 0.9);
  if (kind == "adagrad") return std::make_unique<Adagrad>(std::move(params), lr);
  if (kind == "adam") return std::make_unique<Adam>(std::move(params), lr);
  DLNER_CHECK_MSG(false, "unknown optimizer kind: " << kind);
}

}  // namespace dlner
