#include "tensor/nn.h"

#include <cmath>

namespace dlner {

int Module::ParameterCount() const {
  int n = 0;
  for (const Var& p : Parameters()) n += p->value.size();
  return n;
}

std::vector<Var> JoinParameters(const std::vector<const Module*>& modules) {
  std::vector<Var> all;
  for (const Module* m : modules) {
    if (m == nullptr) continue;
    for (const Var& p : m->Parameters()) all.push_back(p);
  }
  return all;
}

Tensor GlorotMatrix(int rows, int cols, Rng* rng) {
  const Float scale = std::sqrt(6.0 / (rows + cols));
  return UniformMatrix(rows, cols, scale, rng);
}

Tensor UniformMatrix(int rows, int cols, Float scale, Rng* rng) {
  Tensor t({rows, cols});
  for (int i = 0; i < t.size(); ++i) t[i] = rng->Uniform(-scale, scale);
  return t;
}

Tensor UniformVector(int n, Float scale, Rng* rng) {
  Tensor t({n});
  for (int i = 0; i < t.size(); ++i) t[i] = rng->Uniform(-scale, scale);
  return t;
}

Var SliceVec(const Var& v, int start, int len) {
  DLNER_CHECK_EQ(v->value.dim(), 1);
  DLNER_CHECK_GE(start, 0);
  DLNER_CHECK_GT(len, 0);
  DLNER_CHECK_LE(start + len, v->value.size());
  Tensor out({len});
  for (int i = 0; i < len; ++i) out[i] = v->value[start + i];
  return MakeNode(std::move(out), {v}, [v, start, len](Variable* n) {
    if (!v->requires_grad) return;
    for (int i = 0; i < len; ++i) v->grad[start + i] += n->grad[i];
  });
}

Var Unfold(const Var& m, int width, int dilation) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  DLNER_CHECK_EQ(width % 2, 1);
  DLNER_CHECK_GE(dilation, 1);
  const int t_len = m->value.rows();
  const int d = m->value.cols();
  const int half = width / 2;
  Tensor out({t_len, width * d});
  for (int t = 0; t < t_len; ++t) {
    for (int k = -half; k <= half; ++k) {
      const int src = t + k * dilation;
      if (src < 0 || src >= t_len) continue;
      const int block = (k + half) * d;
      for (int j = 0; j < d; ++j) {
        out.at(t, block + j) = m->value.at(src, j);
      }
    }
  }
  return MakeNode(
      std::move(out), {m}, [m, width, dilation, t_len, d, half](Variable* n) {
        if (!m->requires_grad) return;
        for (int t = 0; t < t_len; ++t) {
          for (int k = -half; k <= half; ++k) {
            const int src = t + k * dilation;
            if (src < 0 || src >= t_len) continue;
            const int block = (k + half) * d;
            for (int j = 0; j < d; ++j) {
              m->grad.at(src, j) += n->grad.at(t, block + j);
            }
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Linear.
// ---------------------------------------------------------------------------

Linear::Linear(int in_dim, int out_dim, Rng* rng, const std::string& name)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(Parameter(GlorotMatrix(in_dim, out_dim, rng), name + ".W")),
      bias_(Parameter(Tensor({out_dim}), name + ".b")) {}

Var Linear::Apply(const Var& x) const {
  DLNER_CHECK_EQ(x->value.cols(), in_dim_);
  return Affine(x, weight_, bias_);
}

Var Linear::ApplyVec(const Var& x) const {
  DLNER_CHECK_EQ(x->value.dim(), 1);
  return AffineVec(x, weight_, bias_);
}

Var Linear::ApplyTanh(const Var& x) const {
  DLNER_CHECK_EQ(x->value.cols(), in_dim_);
  return AffineTanh(x, weight_, bias_);
}

Var Linear::ApplySigmoid(const Var& x) const {
  DLNER_CHECK_EQ(x->value.cols(), in_dim_);
  return AffineSigmoid(x, weight_, bias_);
}

// ---------------------------------------------------------------------------
// Embedding.
// ---------------------------------------------------------------------------

Embedding::Embedding(int vocab_size, int dim, Rng* rng,
                     const std::string& name)
    : vocab_size_(vocab_size),
      dim_(dim),
      table_(Parameter(UniformMatrix(vocab_size, dim,
                                     std::sqrt(3.0 / dim), rng),
                       name + ".table")) {}

Var Embedding::Lookup(const std::vector<int>& ids) const {
  return Rows(table_, ids);
}

Var Embedding::LookupOne(int id) const { return Row(table_, id); }

void Embedding::SetRow(int id, const std::vector<Float>& values) {
  DLNER_CHECK_GE(id, 0);
  DLNER_CHECK_LT(id, vocab_size_);
  DLNER_CHECK_EQ(static_cast<int>(values.size()), dim_);
  for (int j = 0; j < dim_; ++j) table_->value.at(id, j) = values[j];
}

// ---------------------------------------------------------------------------
// LayerNorm (fused forward/backward).
// ---------------------------------------------------------------------------

LayerNorm::LayerNorm(int dim, const std::string& name)
    : dim_(dim),
      gain_(Parameter(Tensor::Full({dim}, 1.0), name + ".gain")),
      bias_(Parameter(Tensor({dim}), name + ".bias")) {}

Var LayerNorm::Apply(const Var& x) const {
  DLNER_CHECK_EQ(x->value.dim(), 2);
  DLNER_CHECK_EQ(x->value.cols(), dim_);
  const int rows = x->value.rows();
  const int d = dim_;
  constexpr Float kEps = 1e-5;

  // Cache normalized activations and per-row inverse stddev for backward.
  Tensor xhat({rows, d});
  std::vector<Float> inv_sigma(rows);
  Tensor out({rows, d});
  for (int i = 0; i < rows; ++i) {
    Float mu = 0.0;
    for (int j = 0; j < d; ++j) mu += x->value.at(i, j);
    mu /= d;
    Float var = 0.0;
    for (int j = 0; j < d; ++j) {
      const Float c = x->value.at(i, j) - mu;
      var += c * c;
    }
    var /= d;
    inv_sigma[i] = 1.0 / std::sqrt(var + kEps);
    for (int j = 0; j < d; ++j) {
      xhat.at(i, j) = (x->value.at(i, j) - mu) * inv_sigma[i];
      out.at(i, j) = gain_->value[j] * xhat.at(i, j) + bias_->value[j];
    }
  }

  Var gain = gain_;
  Var bias = bias_;
  return MakeNode(
      std::move(out), {x, gain, bias},
      [x, gain, bias, xhat = std::move(xhat),
       inv_sigma = std::move(inv_sigma), rows, d](Variable* n) {
        for (int i = 0; i < rows; ++i) {
          // dL/dxhat_j = dy_j * gain_j
          Float mean_g = 0.0;
          Float mean_gx = 0.0;
          for (int j = 0; j < d; ++j) {
            const Float gx = n->grad.at(i, j) * gain->value[j];
            mean_g += gx;
            mean_gx += gx * xhat.at(i, j);
          }
          mean_g /= d;
          mean_gx /= d;
          if (x->requires_grad) {
            for (int j = 0; j < d; ++j) {
              const Float gx = n->grad.at(i, j) * gain->value[j];
              x->grad.at(i, j) +=
                  (gx - mean_g - xhat.at(i, j) * mean_gx) * inv_sigma[i];
            }
          }
          if (gain->requires_grad) {
            for (int j = 0; j < d; ++j) {
              gain->grad[j] += n->grad.at(i, j) * xhat.at(i, j);
            }
          }
          if (bias->requires_grad) {
            for (int j = 0; j < d; ++j) bias->grad[j] += n->grad.at(i, j);
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Conv1d.
// ---------------------------------------------------------------------------

Conv1d::Conv1d(int in_dim, int out_dim, int width, int dilation, Rng* rng,
               const std::string& name)
    : width_(width),
      dilation_(dilation),
      weight_(Parameter(GlorotMatrix(width * in_dim, out_dim, rng),
                        name + ".W")),
      bias_(Parameter(Tensor({out_dim}), name + ".b")) {
  DLNER_CHECK_EQ(width % 2, 1);
}

Var Conv1d::Apply(const Var& x) const {
  Var unfolded = Unfold(x, width_, dilation_);
  return Affine(unfolded, weight_, bias_);
}

// ---------------------------------------------------------------------------
// Highway.
// ---------------------------------------------------------------------------

Highway::Highway(int dim, Rng* rng, const std::string& name)
    : dim_(dim),
      transform_(std::make_unique<Linear>(dim, dim, rng, name + ".H")),
      gate_(std::make_unique<Linear>(dim, dim, rng, name + ".T")) {}

Var Highway::Apply(const Var& x) const {
  DLNER_CHECK_EQ(x->value.cols(), dim_);
  Var t = gate_->ApplySigmoid(x);
  Var h = Relu(transform_->Apply(x));
  Var ones = Constant(Tensor::Full(x->value.shape(), 1.0));
  Var carry = Sub(ones, t);
  return Add(Mul(t, h), Mul(carry, x));
}

std::vector<Var> Highway::Parameters() const {
  return JoinParameters({transform_.get(), gate_.get()});
}

}  // namespace dlner
