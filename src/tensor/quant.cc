#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "tensor/simd/simd.h"

namespace dlner::quant {
namespace {

using batched::Act;
using batched::BatchLayout;

// "dlnerQT1": sidecar magic + version in one 8-byte tag.
constexpr char kMagic[8] = {'d', 'l', 'n', 'e', 'r', 'Q', 'T', '1'};

// A plan has one calibration slot per quantizable op — a handful per
// architecture. Anything above this is a corrupt or hostile file.
constexpr std::uint64_t kMaxEntries = 1 << 16;

template <class Isa>
void ApplyAct(Float* x, int n, Act act) {
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu:
      Isa::Relu(x, n);
      break;
    case Act::kTanh:
      for (int i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
      break;
  }
}

}  // namespace

bool WriteCalibrationFile(const std::string& path, const Calibration& calib) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic);
  const std::uint64_t count = calib.max_abs.size();
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  ok = ok && (count == 0 ||
              std::fwrite(calib.max_abs.data(), sizeof(double), count, f) ==
                  count);
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool ReadCalibrationFile(const std::string& path, Calibration* calib) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof(kMagic)];
  std::uint64_t count = 0;
  bool ok = std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
            std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
            std::fread(&count, sizeof(count), 1, f) == 1 &&
            count <= kMaxEntries;
  if (ok) {
    calib->max_abs.assign(count, 0.0);
    ok = count == 0 || std::fread(calib->max_abs.data(), sizeof(double),
                                  count, f) == count;
  }
  // Reject trailing garbage: the sidecar is exactly header + payload.
  char extra;
  ok = ok && std::fread(&extra, 1, 1, f) == 0 && std::feof(f) != 0;
  std::fclose(f);
  if (ok) {
    for (double v : calib->max_abs) {
      if (!std::isfinite(v) || v < 0.0) return false;
    }
  }
  return ok;
}

QuantizedMatrix QuantizeMatrix(const Tensor& w, double act_max_abs) {
  DLNER_CHECK_EQ(w.dim(), 2);
  DLNER_CHECK_GE(act_max_abs, 0.0);
  QuantizedMatrix qm;
  qm.k = w.rows();
  qm.n = w.cols();
  qm.q.assign(static_cast<std::size_t>(qm.k) * qm.n, 0);
  qm.dequant.assign(qm.n, 0.0);
  const double act_scale = act_max_abs > 0.0 ? act_max_abs / 127.0 : 0.0;
  qm.act_inv_scale = act_max_abs > 0.0 ? 127.0 / act_max_abs : 0.0;
  const Float* wd = w.data();
  for (int j = 0; j < qm.n; ++j) {
    double cmax = 0.0;
    for (int p = 0; p < qm.k; ++p) {
      cmax = std::max(cmax,
                      std::fabs(wd[static_cast<std::size_t>(p) * qm.n + j]));
    }
    const double col_scale = cmax > 0.0 ? cmax / 127.0 : 0.0;
    qm.dequant[j] = act_scale * col_scale;
    if (col_scale <= 0.0) continue;
    const double inv = 1.0 / col_scale;
    for (int p = 0; p < qm.k; ++p) {
      const std::size_t idx = static_cast<std::size_t>(p) * qm.n + j;
      long v = std::lrint(wd[idx] * inv);
      v = std::clamp(v, -127L, 127L);
      qm.q[idx] = static_cast<std::int8_t>(v);
    }
  }
  return qm;
}

template <class Isa>
void QAffineT(const Float* x, int rows, const QuantizedMatrix& qm,
              const Tensor& bias, Float* out, Act act) {
  DLNER_CHECK_EQ(qm.n, bias.size());
  const int k = qm.k;
  const int n = qm.n;
  // Thread-local scratch mirrors the plan's thread_local arena: capacity
  // persists across batches, so the steady state allocates nothing.
  thread_local std::vector<std::int8_t> qx;
  thread_local std::vector<std::int32_t> acc;
  qx.resize(static_cast<std::size_t>(rows) * k);
  acc.assign(static_cast<std::size_t>(rows) * n, 0);
  Isa::Quantize(x, qm.act_inv_scale, qx.data(), rows * k);
  Isa::QGemm(qx.data(), k, qm.q.data(), acc.data(), rows, k, n);
  const Float* bd = bias.data();
  for (int i = 0; i < rows; ++i) {
    Isa::Dequant(acc.data() + static_cast<std::size_t>(i) * n,
                 qm.dequant.data(), bd, out + static_cast<std::size_t>(i) * n,
                 n);
  }
  ApplyAct<Isa>(out, rows * n, act);
}

template <class Isa>
void QConvSegmentsT(const Float* x, int d, const BatchLayout& layout,
                    int width, int dilation, const QuantizedMatrix& qm,
                    const Tensor& bias, Float* out, Act act) {
  DLNER_CHECK_EQ(width % 2, 1);
  DLNER_CHECK_GE(dilation, 1);
  DLNER_CHECK_EQ(qm.k, width * d);
  const int half = width / 2;
  const int n = qm.n;
  DLNER_CHECK_EQ(n, bias.size());
  const int rows = layout.rows();
  thread_local std::vector<std::int8_t> qx;
  thread_local std::vector<std::int32_t> acc;
  qx.resize(static_cast<std::size_t>(rows) * d);
  Isa::Quantize(x, qm.act_inv_scale, qx.data(), rows * d);
  const Float* bd = bias.data();
  for (int seg = 0; seg < layout.batch(); ++seg) {
    const int off = layout.offset(seg);
    const int len = layout.len(seg);
    if (len == 0) continue;
    acc.assign(static_cast<std::size_t>(len) * n, 0);
    // Same slab structure as the f32 kernel: one strided int8 GEMM per
    // window offset, all accumulating into the segment's int32 buffer.
    for (int k2 = -half; k2 <= half; ++k2) {
      const int ko = k2 * dilation;
      const int t0 = std::max(0, -ko);
      const int t1 = std::min(len, len - ko);
      if (t1 <= t0) continue;
      Isa::QGemm(qx.data() + static_cast<std::size_t>(off + t0 + ko) * d, d,
                 qm.q.data() + static_cast<std::size_t>(k2 + half) * d * n,
                 acc.data() + static_cast<std::size_t>(t0) * n, t1 - t0, d, n);
    }
    Float* cseg = out + static_cast<std::size_t>(off) * n;
    for (int t = 0; t < len; ++t) {
      Isa::Dequant(acc.data() + static_cast<std::size_t>(t) * n,
                   qm.dequant.data(), bd,
                   cseg + static_cast<std::size_t>(t) * n, n);
    }
    ApplyAct<Isa>(cseg, len * n, act);
  }
}

void QAffine(const Float* x, int rows, const QuantizedMatrix& qm,
             const Tensor& bias, Float* out, Act act) {
  if (batched::ScalarKernelsForced()) {
    QAffineT<simd::Scalar>(x, rows, qm, bias, out, act);
  } else {
    QAffineT<simd::Active>(x, rows, qm, bias, out, act);
  }
}

void QConvSegments(const Float* x, int d, const BatchLayout& layout,
                   int width, int dilation, const QuantizedMatrix& qm,
                   const Tensor& bias, Float* out, Act act) {
  if (batched::ScalarKernelsForced()) {
    QConvSegmentsT<simd::Scalar>(x, d, layout, width, dilation, qm, bias, out,
                                 act);
  } else {
    QConvSegmentsT<simd::Active>(x, d, layout, width, dilation, qm, bias, out,
                                 act);
  }
}

#define DLNER_QUANT_INSTANTIATE(Isa)                                         \
  template void QAffineT<Isa>(const Float*, int, const QuantizedMatrix&,     \
                              const Tensor&, Float*, Act);                   \
  template void QConvSegmentsT<Isa>(const Float*, int, const BatchLayout&,   \
                                    int, int, const QuantizedMatrix&,        \
                                    const Tensor&, Float*, Act);

DLNER_QUANT_INSTANTIATE(simd::Scalar)
#if DLNER_SIMD_ISA_ID != 0
DLNER_QUANT_INSTANTIATE(simd::Active)
#endif
#undef DLNER_QUANT_INSTANTIATE

}  // namespace dlner::quant
