// Post-training int8 quantization for the compiled inference path
// (docs/PERFORMANCE.md, "SIMD & quantization").
//
// Scheme: symmetric per-output-column weight scales plus one static
// per-tensor activation scale per quantized op, estimated by a calibration
// pass over a dev corpus (max |activation| flowing into the op, recorded by
// InferencePlan::Calibrate). Inference quantizes activations with
// q = round(clamp(x / act_scale * 127, ±127)), accumulates the GEMM in
// int32 (exact: |q| <= 127 so i32 holds any k < 2^17 reduction), and a f32
// epilogue applies out[j] = acc[j] * (act_scale * col_scale[j]) + bias[j].
//
// Training and the eager path stay f32. Only plan-compiled Affine and
// ConvSegments sites quantize; RNN gate GEMMs are deliberately excluded —
// recurrent state feeds back through the quantizer, so error compounds per
// time step instead of staying bounded per layer.
#ifndef DLNER_TENSOR_QUANT_H_
#define DLNER_TENSOR_QUANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/batched.h"
#include "tensor/tensor.h"

namespace dlner::quant {

/// Activation calibration: max_abs[i] is the largest |x| observed flowing
/// into quantizable op i (indexed in plan compile order, which is
/// deterministic for a given architecture). Serialized as the
/// `<model>.quant` sidecar written by `dlner quantize`.
struct Calibration {
  std::vector<double> max_abs;
};

/// Sidecar I/O. The reader is hardened like the checkpoint readers: bad
/// magic, short reads, absurd counts, trailing bytes, and non-finite or
/// negative scales all fail by return value, never by crash.
bool WriteCalibrationFile(const std::string& path, const Calibration& calib);
bool ReadCalibrationFile(const std::string& path, Calibration* calib);

/// A weight matrix quantized once at plan-compile time: int8 values in
/// row-major [k, n] with symmetric per-column scales, the dequant factors
/// pre-fused with the activation scale.
struct QuantizedMatrix {
  int k = 0;
  int n = 0;
  std::vector<std::int8_t> q;   // [k * n], row-major like the f32 weights
  std::vector<double> dequant;  // [n]: act_scale * col_scale[j]
  double act_inv_scale = 0.0;   // 127 / act_max; 0 when act_max == 0
};

/// Quantizes w [k, n] given the calibrated bound on |input activation|.
QuantizedMatrix QuantizeMatrix(const Tensor& w, double act_max_abs);

/// Int8 twin of batched::Affine:
/// out[rows,n] = act(dequant(quantize(x[rows,k]) . q) + bias).
template <class Isa>
void QAffineT(const Float* x, int rows, const QuantizedMatrix& qm,
              const Tensor& bias, Float* out, batched::Act act);

/// Int8 twin of batched::ConvSegments: the same one-strided-GEMM-per-window-
/// offset structure, with a single int32 accumulator per output row across
/// all offsets and one dequant+bias+act epilogue. The packed input is
/// quantized once per call.
template <class Isa>
void QConvSegmentsT(const Float* x, int d, const batched::BatchLayout& layout,
                    int width, int dilation, const QuantizedMatrix& qm,
                    const Tensor& bias, Float* out, batched::Act act);

/// Non-template entry points on the active ISA; they honor
/// batched::ForceScalarKernels like the f32 kernels (outputs are identical
/// either way — int8 arithmetic is exact on every ISA).
void QAffine(const Float* x, int rows, const QuantizedMatrix& qm,
             const Tensor& bias, Float* out, batched::Act act);
void QConvSegments(const Float* x, int d, const batched::BatchLayout& layout,
                   int width, int dilation, const QuantizedMatrix& qm,
                   const Tensor& bias, Float* out, batched::Act act);

}  // namespace dlner::quant

#endif  // DLNER_TENSOR_QUANT_H_
