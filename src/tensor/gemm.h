// Raw-pointer GEMM kernels shared by the autograd ops (ops.cc) and the
// packed-batch inference kernels (batched.cc).
//
// All three access A, B, and C strictly row-major with hoisted row
// pointers. The forward kernel additionally blocks the inner (k) dimension
// so a slab of B rows stays cache-resident across the rows of A. Zero
// entries of A are skipped: activation matrices from ReLU layers and
// one-hot-ish features are sparse enough for the branch to pay for itself.
//
// Every output row is accumulated independently and in ascending-k order
// (blocking only changes which rows of B are resident, not the per-row
// summation order), which is what lets the planned batch path produce
// bit-identical results to the per-sentence eager path: a packed
// [sum(T), k] x [k, n] GEMM computes exactly the same per-row sums as B
// separate per-sentence GEMMs or AffineVec calls.
#ifndef DLNER_TENSOR_GEMM_H_
#define DLNER_TENSOR_GEMM_H_

#include <algorithm>
#include <cstddef>

namespace dlner::gemm {

inline constexpr int kGemmBlock = 32;

// C[m,n] += A[m,k] * B[k,n], where consecutive logical rows of A start
// `lda` floats apart. lda may be smaller than k — overlapping rows, which
// is how the implicit-convolution kernel (batched::ConvSegments) reads
// sliding windows of a sequence without materializing an unfolded copy.
// The per-row summation order is identical to GemmAccum (the lda == k
// case), so strided and dense calls over the same values are bit-identical.
template <typename Float>
void GemmAccumStrided(const Float* a, int lda, const Float* b, Float* c,
                      int m, int k, int n) {
  for (int p0 = 0; p0 < k; p0 += kGemmBlock) {
    const int p1 = std::min(k, p0 + kGemmBlock);
    for (int i = 0; i < m; ++i) {
      const Float* arow = a + static_cast<std::size_t>(i) * lda;
      Float* crow = c + static_cast<std::size_t>(i) * n;
      for (int p = p0; p < p1; ++p) {
        const Float av = arow[p];
        if (av == 0.0) continue;
        const Float* brow = b + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// C[m,n] += A[m,k] * B[k,n]
template <typename Float>
void GemmAccum(const Float* a, const Float* b, Float* c, int m, int k, int n) {
  GemmAccumStrided(a, k, b, c, m, k, n);
}

// dA[m,k] += dC[m,n] * B^T  (row-dot-row: both operands stream row-major)
template <typename Float>
void GemmAccumGradA(const Float* dc, const Float* b, Float* da, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const Float* grow = dc + static_cast<std::size_t>(i) * n;
    Float* darow = da + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const Float* brow = b + static_cast<std::size_t>(p) * n;
      Float s = 0.0;
      for (int j = 0; j < n; ++j) s += grow[j] * brow[j];
      darow[p] += s;
    }
  }
}

// dB[k,n] += A^T * dC
template <typename Float>
void GemmAccumGradB(const Float* a, const Float* dc, Float* db, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const Float* arow = a + static_cast<std::size_t>(i) * k;
    const Float* grow = dc + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const Float av = arow[p];
      if (av == 0.0) continue;
      Float* dbrow = db + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) dbrow[j] += av * grow[j];
    }
  }
}

}  // namespace dlner::gemm

#endif  // DLNER_TENSOR_GEMM_H_
