// Raw-pointer GEMM kernels shared by the autograd ops (ops.cc) and the
// packed-batch inference kernels (batched.cc).
//
// All access A, B, and C strictly row-major with hoisted row pointers. The
// forward kernel blocks the inner (k) dimension so a slab of B rows stays
// cache-resident across the rows of A, and additionally walks A four rows
// at a time so each streamed B row updates four C rows from registers (the
// Axpy4 tile in tensor/simd/). Zero entries of A are skipped: activation
// matrices from ReLU layers and one-hot-ish features are sparse enough for
// the branch to pay for itself — and the skip is load-bearing for
// bit-identity, because accumulating a literal a*0 is not a no-op in IEEE
// arithmetic (-0.0 + 0.0 = +0.0, 0 * inf = NaN).
//
// Every output row is accumulated independently and in ascending-k order:
// neither the k-blocking, nor the 4-row tile (rows are independent), nor
// the SIMD Axpy primitives (mul+add per element, never FMA, ascending j)
// change any per-element summation order. That is what lets the planned
// batch path produce bit-identical results to the per-sentence eager path,
// and every Isa instantiation produce bit-identical results to Scalar: a
// packed [sum(T), k] x [k, n] GEMM computes exactly the same per-row sums
// as B separate per-sentence GEMMs or AffineVec calls, on any ISA.
#ifndef DLNER_TENSOR_GEMM_H_
#define DLNER_TENSOR_GEMM_H_

#include <algorithm>
#include <cstddef>

#include "tensor/simd/simd.h"

namespace dlner::gemm {

inline constexpr int kGemmBlock = 32;

// C[m,n] += A[m,k] * B[k,n], where consecutive logical rows of A start
// `lda` floats apart. lda may be smaller than k — overlapping rows, which
// is how the implicit-convolution kernel (batched::ConvSegments) reads
// sliding windows of a sequence without materializing an unfolded copy.
// The per-row summation order is identical to GemmAccum (the lda == k
// case), so strided and dense calls over the same values are bit-identical.
template <class Isa = simd::Active>
void GemmAccumStrided(const double* a, int lda, const double* b, double* c,
                      int m, int k, int n) {
  for (int p0 = 0; p0 < k; p0 += kGemmBlock) {
    const int p1 = std::min(k, p0 + kGemmBlock);
    int i = 0;
    for (; i + 4 <= m; i += 4) {
      const double* a0 = a + static_cast<std::size_t>(i) * lda;
      const double* a1 = a0 + lda;
      const double* a2 = a1 + lda;
      const double* a3 = a2 + lda;
      double* c0 = c + static_cast<std::size_t>(i) * n;
      double* c1 = c0 + n;
      double* c2 = c1 + n;
      double* c3 = c2 + n;
      for (int p = p0; p < p1; ++p) {
        const double v0 = a0[p];
        const double v1 = a1[p];
        const double v2 = a2[p];
        const double v3 = a3[p];
        const double* brow = b + static_cast<std::size_t>(p) * n;
        if (v0 != 0.0 && v1 != 0.0 && v2 != 0.0 && v3 != 0.0) {
          Isa::Axpy4(v0, v1, v2, v3, brow, c0, c1, c2, c3, n);
        } else {
          // Per-row zero-skip, exactly as the 1-row loop below: a row with
          // av == 0.0 must contribute nothing, not a*0.
          if (v0 != 0.0) Isa::Axpy(v0, brow, c0, n);
          if (v1 != 0.0) Isa::Axpy(v1, brow, c1, n);
          if (v2 != 0.0) Isa::Axpy(v2, brow, c2, n);
          if (v3 != 0.0) Isa::Axpy(v3, brow, c3, n);
        }
      }
    }
    for (; i < m; ++i) {
      const double* arow = a + static_cast<std::size_t>(i) * lda;
      double* crow = c + static_cast<std::size_t>(i) * n;
      for (int p = p0; p < p1; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        Isa::Axpy(av, b + static_cast<std::size_t>(p) * n, crow, n);
      }
    }
  }
}

// C[m,n] += A[m,k] * B[k,n]
template <class Isa = simd::Active>
void GemmAccum(const double* a, const double* b, double* c, int m, int k,
               int n) {
  GemmAccumStrided<Isa>(a, k, b, c, m, k, n);
}

// dA[m,k] += dC[m,n] * B^T  (row-dot-row: both operands stream row-major).
// Training-only; stays scalar — the dot-product reduction order is part of
// seeded-rerun reproducibility and vector partial sums would reassociate it.
template <typename Float>
void GemmAccumGradA(const Float* dc, const Float* b, Float* da, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const Float* grow = dc + static_cast<std::size_t>(i) * n;
    Float* darow = da + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const Float* brow = b + static_cast<std::size_t>(p) * n;
      Float s = 0.0;
      for (int j = 0; j < n; ++j) s += grow[j] * brow[j];
      darow[p] += s;
    }
  }
}

// dB[k,n] += A^T * dC  (training-only; scalar for the same reason)
template <typename Float>
void GemmAccumGradB(const Float* a, const Float* dc, Float* db, int m, int k,
                    int n) {
  for (int i = 0; i < m; ++i) {
    const Float* arow = a + static_cast<std::size_t>(i) * k;
    const Float* grow = dc + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const Float av = arow[p];
      if (av == 0.0) continue;
      Float* dbrow = db + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) dbrow[j] += av * grow[j];
    }
  }
}

}  // namespace dlner::gemm

#endif  // DLNER_TENSOR_GEMM_H_
