#include "tensor/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace dlner {

Float MaxGradError(const std::function<Var()>& build_loss,
                   const std::vector<Var>& inputs, Float eps) {
  // Analytic pass.
  Var loss = build_loss();
  DLNER_CHECK_EQ(loss->value.size(), 1);
  Backward(loss);
  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const Var& in : inputs) {
    DLNER_CHECK_MSG(in->requires_grad,
                    "gradcheck input must require gradients");
    analytic.push_back(in->grad);
  }

  Float worst = 0.0;
  for (size_t k = 0; k < inputs.size(); ++k) {
    Var in = inputs[k];
    for (int i = 0; i < in->value.size(); ++i) {
      const Float saved = in->value[i];
      in->value[i] = saved + eps;
      const Float plus = build_loss()->value[0];
      in->value[i] = saved - eps;
      const Float minus = build_loss()->value[0];
      in->value[i] = saved;
      const Float numeric = (plus - minus) / (2.0 * eps);
      const Float a = analytic[k][i];
      const Float denom = std::max({1.0, std::fabs(a), std::fabs(numeric)});
      worst = std::max(worst, std::fabs(a - numeric) / denom);
    }
  }
  return worst;
}

}  // namespace dlner
