// Reverse-mode automatic differentiation tape.
//
// A Variable is a node in a dynamically built computation graph. Operations
// in ops.h create new Variables whose `backward_fn` knows how to propagate
// the node's gradient into its parents. Backward() performs a topological
// traversal from a scalar root. The graph is rebuilt per training example
// (define-by-run), matching how the surveyed NER systems batch at sentence
// granularity.
#ifndef DLNER_TENSOR_VARIABLE_H_
#define DLNER_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dlner {

class Variable;

/// Shared handle to a graph node. Ops accept and return Var.
using Var = std::shared_ptr<Variable>;

/// One node of the autodiff graph.
class Variable {
 public:
  Variable() = default;
  explicit Variable(Tensor value) : value(std::move(value)) {}

  // Graph nodes are identity objects; copying one would silently detach it
  // from the tape.
  Variable(const Variable&) = delete;
  Variable& operator=(const Variable&) = delete;

  /// Forward value.
  Tensor value;

  /// Gradient of the loss w.r.t. `value`. Allocated lazily by Backward().
  Tensor grad;

  /// True for trainable parameters and any node on a path to one.
  bool requires_grad = false;

  /// Parents in the computation graph (inputs of the op that produced this).
  std::vector<Var> parents;

  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(Variable*)> backward_fn;

  /// Optional name; set for parameters to support serialization.
  std::string name;

  /// Ensures `grad` is allocated (zero-filled, same shape as value).
  void EnsureGrad();

  /// Resets the gradient to zero (keeps allocation).
  void ZeroGrad();
};

/// Thread-local autograd mode. While disabled, MakeNode produces value-only
/// nodes: no backward closure, no parent edges (so intermediate results are
/// freed as soon as the forward pass moves past them), and the
/// buffer-reusing in-place op variants in ops.h become eligible even when an
/// input depends on trainable parameters. Inference entry points
/// (NerModel::Predict) disable gradients via NoGradGuard; each thread has
/// its own flag, so parallel inference never disturbs a training thread.
bool GradModeEnabled();

/// RAII guard that disables gradient recording on the current thread.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Creates a leaf that does not require gradients (e.g. fixed input).
Var Constant(Tensor value);

/// Creates a trainable leaf parameter.
Var Parameter(Tensor value, std::string name = "");

/// Runs backpropagation from `root`, which must hold a single scalar.
/// Accumulates gradients into every reachable node with requires_grad.
void Backward(const Var& root);

}  // namespace dlner

#endif  // DLNER_TENSOR_VARIABLE_H_
