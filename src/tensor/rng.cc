#include "tensor/rng.h"

#include <cmath>

namespace dlner {

uint64_t Rng::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int lo, int hi) {
  DLNER_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(Next() % range);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller. Guard against log(0).
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  DLNER_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DLNER_CHECK_GE(w, 0.0);
    total += w;
  }
  DLNER_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace dlner
