#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "tensor/check.h"

namespace dlner {
namespace {

constexpr char kMagic[4] = {'D', 'L', 'N', 'R'};
constexpr uint32_t kVersion = 1;
// A parameter list longer than this is certainly corrupt.
constexpr uint32_t kMaxParameterCount = 1u << 20;

}  // namespace

void WriteU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

void WriteLenString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadLenString(std::istream& is, std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  if (!ReadU32(is, &len) || len > max_len) return false;
  s->assign(len, '\0');
  is.read(s->data(), len);
  return static_cast<bool>(is);
}

void SaveTensor(std::ostream& os, const Tensor& t) {
  WriteU32(os, static_cast<uint32_t>(t.dim()));
  for (int i = 0; i < t.dim(); ++i) {
    int32_t d = t.shape(i);
    os.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(Float)));
}

bool LoadTensor(std::istream& is, Tensor* t) {
  uint32_t rank = 0;
  if (!ReadU32(is, &rank) || rank > 8) return false;
  std::vector<int> shape(rank);
  std::uint64_t numel = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    int32_t d = 0;
    is.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!is || d < 0) return false;
    shape[i] = d;
    // numel <= kMaxTensorElements (2^26) and d < 2^31 here, so the product
    // stays below 2^57 — no u64 overflow before the bound check.
    numel *= static_cast<std::uint64_t>(d);
    if (numel > kMaxTensorElements) return false;
  }
  Tensor loaded(shape);
  is.read(reinterpret_cast<char*>(loaded.data()),
          static_cast<std::streamsize>(loaded.size() * sizeof(Float)));
  if (!is) return false;
  *t = std::move(loaded);
  return true;
}

void SaveParameters(std::ostream& os, const std::vector<Var>& params) {
  os.write(kMagic, sizeof(kMagic));
  WriteU32(os, kVersion);
  WriteU32(os, static_cast<uint32_t>(params.size()));
  for (const Var& p : params) {
    DLNER_CHECK_MSG(!p->name.empty(), "serializable parameters need names");
    WriteU32(os, static_cast<uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    SaveTensor(os, p->value);
  }
}

bool LoadParameters(std::istream& is, const std::vector<Var>& params) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) return false;
  uint32_t version = 0;
  if (!ReadU32(is, &version) || version != kVersion) return false;
  uint32_t count = 0;
  if (!ReadU32(is, &count) || count > kMaxParameterCount) return false;

  std::unordered_map<std::string, Var> by_name;
  for (const Var& p : params) {
    DLNER_CHECK(!p->name.empty());
    DLNER_CHECK_MSG(by_name.emplace(p->name, p).second,
                    "duplicate parameter name: " << p->name);
  }

  size_t restored = 0;
  for (uint32_t k = 0; k < count; ++k) {
    std::string name;
    if (!ReadLenString(is, &name, 4096)) return false;
    Tensor t;
    if (!LoadTensor(is, &t)) return false;
    auto it = by_name.find(name);
    if (it == by_name.end()) continue;  // Extra entries are tolerated.
    if (!it->second->value.SameShape(t)) return false;
    it->second->value = std::move(t);
    ++restored;
  }
  return restored == params.size();
}

bool SaveParametersToFile(const std::string& path,
                          const std::vector<Var>& params) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  SaveParameters(os, params);
  return static_cast<bool>(os);
}

bool LoadParametersFromFile(const std::string& path,
                            const std::vector<Var>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  return LoadParameters(is, params);
}

}  // namespace dlner
