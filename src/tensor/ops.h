// Differentiable operations on Variables.
//
// Shape conventions:
//  * Rank-1 tensors [n] are vectors; rank-2 tensors [r,c] are row-major
//    matrices. Sequences of token representations are [T, D] with one row
//    per token.
//  * Every op returns a fresh node whose backward_fn accumulates into the
//    gradients of parents that require gradients.
//
// The op set is exactly what the surveyed NER architectures need: affine
// maps, pointwise nonlinearities, row/column broadcasts and reductions
// (including the log-sum-exp forms used by CRF dynamic programs), gather /
// stack / concat for embeddings and hybrid representations, pooling for
// char-CNNs, and dropout.
#ifndef DLNER_TENSOR_OPS_H_
#define DLNER_TENSOR_OPS_H_

#include <vector>

#include "tensor/rng.h"
#include "tensor/variable.h"

namespace dlner {

// ---------------------------------------------------------------------------
// Elementwise arithmetic.
// ---------------------------------------------------------------------------

/// Elementwise sum; shapes must match.
Var Add(const Var& a, const Var& b);
/// Elementwise difference; shapes must match.
Var Sub(const Var& a, const Var& b);
/// Elementwise (Hadamard) product; shapes must match.
Var Mul(const Var& a, const Var& b);
/// Multiplies every element by a constant.
Var Scale(const Var& a, Float s);
/// Adds a constant to every element.
Var AddScalar(const Var& a, Float s);
/// Elementwise negation.
Var Neg(const Var& a);

// ---------------------------------------------------------------------------
// Pointwise nonlinearities.
// ---------------------------------------------------------------------------

Var Tanh(const Var& a);
Var Sigmoid(const Var& a);
Var Relu(const Var& a);
Var Exp(const Var& a);
/// Natural log; inputs must be strictly positive.
Var Log(const Var& a);

// Rvalue overloads that transform the input buffer in place when it is safe
// to do so (the handle is the sole owner and the node carries no gradient,
// i.e. inference under NoGradGuard). They fall back to the copying overloads
// otherwise, so call sites may pass std::move unconditionally.
Var Tanh(Var&& a);
Var Sigmoid(Var&& a);
Var Relu(Var&& a);
Var Exp(Var&& a);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// Matrix product of [m,k] and [k,n] -> [m,n].
Var MatMul(const Var& a, const Var& b);
/// Fused affine map: x [m,k] times w [k,n] plus row-broadcast bias b [n]
/// -> [m,n]. One node instead of the MatMul -> AddRowBroadcast chain.
Var Affine(const Var& x, const Var& w, const Var& b);
/// Affine followed by tanh, fused into a single node.
Var AffineTanh(const Var& x, const Var& w, const Var& b);
/// Affine followed by the logistic sigmoid, fused into a single node.
Var AffineSigmoid(const Var& x, const Var& w, const Var& b);
/// Vector affine map: x [k] times w [k,n] plus b [n] -> [n].
Var AffineVec(const Var& x, const Var& w, const Var& b);
/// Matrix transpose.
Var Transpose(const Var& m);
/// Inner product of two equal-length vectors -> scalar [1].
Var Dot(const Var& a, const Var& b);

// ---------------------------------------------------------------------------
// Broadcasts.
// ---------------------------------------------------------------------------

/// Adds vector [c] to every row of matrix [r,c].
Var AddRowBroadcast(const Var& m, const Var& v);
/// Adds vector [r] element i to every entry of row i of matrix [r,c].
Var AddColBroadcast(const Var& m, const Var& v);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum of all elements -> scalar [1].
Var Sum(const Var& a);
/// Mean of all elements -> scalar [1].
Var Mean(const Var& a);
/// Column-wise max over rows of [r,c] -> [c] (max-over-time pooling).
Var MaxOverRows(const Var& m);
/// Column-wise mean over rows of [r,c] -> [c].
Var MeanOverRows(const Var& m);
/// log(sum(exp(v))) of a vector -> scalar [1]; numerically stabilized.
Var LogSumExp(const Var& v);
/// Column-wise log-sum-exp over rows of [r,c] -> [c]; the inner step of the
/// CRF forward recursion.
Var LogSumExpOverRows(const Var& m);

// ---------------------------------------------------------------------------
// Softmax family.
// ---------------------------------------------------------------------------

/// Softmax of a vector [n] -> [n].
Var Softmax(const Var& v);
/// Row-wise softmax of [r,c] -> [r,c] (attention weights).
Var SoftmaxRows(const Var& m);
/// Numerically-stable log-softmax of a vector [n] -> [n].
Var LogSoftmax(const Var& v);

// ---------------------------------------------------------------------------
// Indexing, reshaping, and structure.
// ---------------------------------------------------------------------------

/// Extracts row r of [rows,c] as a vector [c].
Var Row(const Var& m, int r);
/// Gathers rows by index (duplicates allowed) -> [ids.size(), c]. This is
/// the embedding-lookup primitive; gradients scatter-add back.
Var Rows(const Var& m, const std::vector<int>& ids);
/// Stacks equal-length vectors into a matrix [k, c].
Var StackRows(const std::vector<Var>& rows);
/// Concatenates vectors -> single vector.
Var ConcatVecs(const std::vector<Var>& parts);
/// Concatenates matrices with equal row counts along columns.
Var ConcatCols(const std::vector<Var>& parts);
/// Concatenates matrices with equal column counts along rows.
Var ConcatRows(const std::vector<Var>& parts);
/// Element i of a vector -> scalar [1].
Var Pick(const Var& v, int i);
/// Element (r,c) of a matrix -> scalar [1].
Var PickAt(const Var& m, int r, int c);
/// Reinterprets a vector [n] as a one-row matrix [1,n].
Var AsRow(const Var& v);
/// Reinterprets a one-row matrix [1,n] as a vector [n].
Var AsVector(const Var& m);
/// Pads a matrix [r,c] with `top` zero rows above and `bottom` below.
Var PadRows(const Var& m, int top, int bottom);

// ---------------------------------------------------------------------------
// Regularization.
// ---------------------------------------------------------------------------

/// Inverted dropout: when `training`, zeroes elements with probability p and
/// scales survivors by 1/(1-p); identity otherwise.
Var Dropout(const Var& a, Float p, Rng* rng, bool training);

// ---------------------------------------------------------------------------
// Losses.
// ---------------------------------------------------------------------------

/// Negative log likelihood of class `target` under logits [n] -> scalar.
Var CrossEntropyWithLogits(const Var& logits, int target);
/// Mean squared error between two equal-shaped tensors -> scalar.
Var MeanSquaredError(const Var& a, const Var& b);

// ---------------------------------------------------------------------------
// Graph utilities.
// ---------------------------------------------------------------------------

/// Creates an op node. Exposed so higher layers can define custom fused ops.
Var MakeNode(Tensor value, std::vector<Var> parents,
             std::function<void(Variable*)> backward_fn);

}  // namespace dlner

#endif  // DLNER_TENSOR_OPS_H_
