#include "tensor/arena.h"

#include <algorithm>
#include <cstring>

namespace dlner {

Float* Arena::Alloc(std::size_t n) {
  if (n == 0) n = 1;  // keep returned pointers distinct and valid
  while (block_ < blocks_.size() &&
         used_ + n > blocks_[block_].capacity) {
    // The remainder of the current block is abandoned until Reset; blocks
    // double, so the waste is bounded by a constant factor.
    ++block_;
    used_ = 0;
  }
  if (block_ == blocks_.size()) {
    const std::size_t last =
        blocks_.empty() ? kInitialFloats / 2 : blocks_.back().capacity;
    const std::size_t cap = std::max(n, last * 2);
    blocks_.push_back({std::make_unique<Float[]>(cap), cap});
    reserved_floats_ += cap;
    used_ = 0;
  }
  Float* out = blocks_[block_].data.get() + used_;
  used_ += n;
  in_use_floats_ += n;
  high_water_floats_ = std::max(high_water_floats_, in_use_floats_);
  return out;
}

Float* Arena::AllocZero(std::size_t n) {
  Float* out = Alloc(n);
  std::memset(out, 0, n * sizeof(Float));
  return out;
}

void Arena::Reset() {
  block_ = 0;
  used_ = 0;
  in_use_floats_ = 0;
}

}  // namespace dlner
