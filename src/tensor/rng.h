// Deterministic pseudo-random number generation.
//
// All randomness in the library (parameter init, dropout masks, corpus
// synthesis, negative sampling, data shuffling) flows through Rng so that
// every test and benchmark is reproducible bit-for-bit across platforms.
// The core generator is SplitMix64, which is tiny, fast, and has no
// implementation-defined behavior (unlike std::mt19937 distributions, whose
// outputs differ across standard libraries).
#ifndef DLNER_TENSOR_RNG_H_
#define DLNER_TENSOR_RNG_H_

#include <cstdint>
#include <vector>

#include "tensor/check.h"

namespace dlner {

/// Deterministic SplitMix64 random number generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(0, i);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  int Categorical(const std::vector<double>& weights);

  /// Spawns an independent stream derived from this one.
  Rng Fork();

 private:
  uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dlner

#endif  // DLNER_TENSOR_RNG_H_
