// Dense row-major tensor of doubles.
//
// The library's workloads are sentence-scale NER models, so tensors are
// small (at most a few thousand elements); the representation favors
// simplicity and numerical robustness (double precision keeps CRF dynamic
// programs and finite-difference gradient checks stable) over SIMD
// micro-optimization.
#ifndef DLNER_TENSOR_TENSOR_H_
#define DLNER_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "tensor/check.h"

namespace dlner {

/// Scalar type used throughout the library.
using Float = double;

/// A dense row-major tensor. Rank 1 and 2 cover every model in the toolkit;
/// higher ranks are representable but no op requires them.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-filled tensor with the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Tensor with the given shape and explicit contents (row-major).
  Tensor(std::vector<int> shape, std::vector<Float> data);

  // Copies/moves participate in the allocation accounting below. Defined
  // inline so the disabled path stays as cheap as the defaulted members:
  // one relaxed load (copy), one integer move (move), one member branch
  // (destructor) — no out-of-line call on the hot path.
  Tensor(const Tensor& other) : shape_(other.shape_), data_(other.data_) {
    if (obs::MetricsEnabled()) TrackAlloc();
  }
  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)),
        data_(std::move(other.data_)),
        tracked_bytes_(other.tracked_bytes_) {
    other.tracked_bytes_ = 0;
  }
  Tensor& operator=(const Tensor& other) {
    if (this == &other) return *this;
    if (tracked_bytes_ != 0) ReleaseTracked();
    shape_ = other.shape_;
    data_ = other.data_;
    if (obs::MetricsEnabled()) TrackAlloc();
    return *this;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this == &other) return *this;
    if (tracked_bytes_ != 0) ReleaseTracked();
    shape_ = std::move(other.shape_);
    data_ = std::move(other.data_);
    tracked_bytes_ = other.tracked_bytes_;
    other.tracked_bytes_ = 0;
    return *this;
  }
  ~Tensor() {
    if (tracked_bytes_ != 0) ReleaseTracked();
  }

  /// Rank-1 zero tensor of length n.
  static Tensor Zeros(int n);
  /// Rank-2 zero tensor.
  static Tensor Zeros(int rows, int cols);
  /// Rank-1 tensor from values.
  static Tensor FromVector(const std::vector<Float>& values);
  /// Tensor of the given shape filled with a constant.
  static Tensor Full(std::vector<int> shape, Float value);

  int dim() const { return static_cast<int>(shape_.size()); }
  const std::vector<int>& shape() const { return shape_; }
  int shape(int axis) const;
  int size() const { return static_cast<int>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Number of rows / columns; requires rank 2.
  int rows() const;
  int cols() const;

  Float* data() { return data_.data(); }
  const Float* data() const { return data_.data(); }
  std::vector<Float>& vec() { return data_; }
  const std::vector<Float>& vec() const { return data_; }

  /// Flat element access.
  Float& operator[](int i);
  Float operator[](int i) const;

  /// 2-D element access; requires rank 2.
  Float& at(int r, int c);
  Float at(int r, int c) const;

  /// Sets every element to the given value.
  void Fill(Float value);

  /// Adds `other` elementwise into this tensor. Shapes must match.
  void AccumulateFrom(const Tensor& other);

  /// Euclidean norm of all elements.
  Float Norm() const;

  /// Order- and bit-sensitive FNV-1a hash over the shape and the raw bytes
  /// of every element. Two tensors fingerprint equally iff their shapes
  /// match and every element is bit-identical (distinguishing signed zeros
  /// and NaN payloads), which is what the determinism and round-trip
  /// invariance tests compare.
  std::uint64_t Fingerprint() const;

  /// True when shapes and all elements match exactly.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable short description, e.g. "[3x4]".
  std::string ShapeString() const;

 private:
  // Registers this tensor's payload with the process-wide allocation
  // metrics (obs::Metrics "tensor.*" series) when metric collection is on.
  void TrackAlloc();
  // Unregisters exactly what TrackAlloc registered, keeping the live-bytes
  // gauge balanced even when metrics toggle mid-lifetime.
  void ReleaseTracked();

  std::vector<int> shape_;
  std::vector<Float> data_;
  // Bytes this tensor added to the live-bytes gauge; 0 when it was created
  // with metrics disabled (then the destructor is branch-only).
  std::int64_t tracked_bytes_ = 0;
};

}  // namespace dlner

#endif  // DLNER_TENSOR_TENSOR_H_
