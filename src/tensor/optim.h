// First-order optimizers with global-norm gradient clipping.
//
// SGD (with momentum), Adagrad, and Adam cover the training recipes of every
// system in the survey's Table 3.
#ifndef DLNER_TENSOR_OPTIM_H_
#define DLNER_TENSOR_OPTIM_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/variable.h"

namespace dlner {

/// Base class: owns the parameter list and the update rule.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  Float ClipGradNorm(Float max_norm);

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

/// Stochastic gradient descent with (optional) classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, Float lr, Float momentum = 0.0);
  void Step() override;
  void set_lr(Float lr) { lr_ = lr; }
  Float lr() const { return lr_; }

 private:
  Float lr_;
  Float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adagrad (per-coordinate adaptive learning rates).
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<Var> params, Float lr, Float eps = 1e-8);
  void Step() override;

 private:
  Float lr_;
  Float eps_;
  std::vector<Tensor> accum_;
};

/// Adam with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, Float lr, Float beta1 = 0.9,
       Float beta2 = 0.999, Float eps = 1e-8);
  void Step() override;
  void set_lr(Float lr) { lr_ = lr; }
  Float lr() const { return lr_; }

 private:
  Float lr_;
  Float beta1_;
  Float beta2_;
  Float eps_;
  int t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Factory by name: "sgd", "adagrad", or "adam".
std::unique_ptr<Optimizer> MakeOptimizer(const std::string& kind,
                                         std::vector<Var> params, Float lr);

}  // namespace dlner

#endif  // DLNER_TENSOR_OPTIM_H_
