// AArch64 NEON implementation of the SIMD primitive set (2 doubles / 8
// int8 per vector). Bit-identical to simd::Scalar by construction:
//
//  * mul and add stay separate instructions (fmul + fadd, never fmla) to
//    match -ffp-contract=off scalar code;
//  * max-like operations use explicit compare+select (vcgtq/vbslq) instead
//    of vmaxq so NaN and ±0 behavior reproduces the scalar
//    comparison-select expressions exactly (vmaxq propagates NaN, the
//    scalar contract does not);
//  * vcvtnq_s64_f64 rounds to nearest-even, matching std::lrint in the
//    default FP environment;
//  * int8 products are computed in 16-bit lanes (|a*w| <= 16129 < 32767,
//    exact) and widened into the scalar kernel's int32 accumulators.
//
// Scalar loop tails reuse the exact per-element expressions from
// kernels_scalar.h.
#ifndef DLNER_TENSOR_SIMD_KERNELS_NEON_H_
#define DLNER_TENSOR_SIMD_KERNELS_NEON_H_

#include <arm_neon.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace dlner::simd {

struct Neon {
  static constexpr const char* kName = "neon";

  static void Axpy(double a, const double* x, double* y, int n) {
    const float64x2_t va = vdupq_n_f64(a);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + j));
      vst1q_f64(y + j, vaddq_f64(vld1q_f64(y + j), prod));
    }
    for (; j < n; ++j) y[j] += a * x[j];
  }

  static void Axpy4(double a0, double a1, double a2, double a3,
                    const double* x, double* y0, double* y1, double* y2,
                    double* y3, int n) {
    const float64x2_t va0 = vdupq_n_f64(a0);
    const float64x2_t va1 = vdupq_n_f64(a1);
    const float64x2_t va2 = vdupq_n_f64(a2);
    const float64x2_t va3 = vdupq_n_f64(a3);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t vx = vld1q_f64(x + j);
      vst1q_f64(y0 + j, vaddq_f64(vld1q_f64(y0 + j), vmulq_f64(va0, vx)));
      vst1q_f64(y1 + j, vaddq_f64(vld1q_f64(y1 + j), vmulq_f64(va1, vx)));
      vst1q_f64(y2 + j, vaddq_f64(vld1q_f64(y2 + j), vmulq_f64(va2, vx)));
      vst1q_f64(y3 + j, vaddq_f64(vld1q_f64(y3 + j), vmulq_f64(va3, vx)));
    }
    for (; j < n; ++j) {
      const double v = x[j];
      y0[j] += a0 * v;
      y1[j] += a1 * v;
      y2[j] += a2 * v;
      y3[j] += a3 * v;
    }
  }

  static void Relu(double* x, int n) {
    // select(x < 0, 0, x): NaN compares false and stays NaN; -0.0 stays.
    const float64x2_t zero = vdupq_n_f64(0.0);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t vx = vld1q_f64(x + j);
      const uint64x2_t neg = vcltq_f64(vx, zero);
      vst1q_f64(x + j, vbslq_f64(neg, zero, vx));
    }
    for (; j < n; ++j) x[j] = std::max(x[j], 0.0);
  }

  static void Mul(const double* a, const double* b, double* out, int n) {
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      vst1q_f64(out + j, vmulq_f64(vld1q_f64(a + j), vld1q_f64(b + j)));
    }
    for (; j < n; ++j) out[j] = a[j] * b[j];
  }

  static void MulMulAdd(const double* a, const double* b, const double* c,
                        const double* d, double* out, int n) {
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t ab = vmulq_f64(vld1q_f64(a + j), vld1q_f64(b + j));
      const float64x2_t cd = vmulq_f64(vld1q_f64(c + j), vld1q_f64(d + j));
      vst1q_f64(out + j, vaddq_f64(ab, cd));
    }
    for (; j < n; ++j) out[j] = a[j] * b[j] + c[j] * d[j];
  }

  static void Blend(const double* z, const double* a, const double* b,
                    double* out, int n) {
    const float64x2_t one = vdupq_n_f64(1.0);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t vz = vld1q_f64(z + j);
      const float64x2_t left =
          vmulq_f64(vsubq_f64(one, vz), vld1q_f64(a + j));
      const float64x2_t right = vmulq_f64(vz, vld1q_f64(b + j));
      vst1q_f64(out + j, vaddq_f64(left, right));
    }
    for (; j < n; ++j) out[j] = (1.0 - z[j]) * a[j] + z[j] * b[j];
  }

  static void NormApply(const double* x, double mu, double inv_sigma,
                        const double* g, const double* b, double* out,
                        int n) {
    const float64x2_t vmu = vdupq_n_f64(mu);
    const float64x2_t vinv = vdupq_n_f64(inv_sigma);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t xhat =
          vmulq_f64(vsubq_f64(vld1q_f64(x + j), vmu), vinv);
      vst1q_f64(out + j, vaddq_f64(vmulq_f64(vld1q_f64(g + j), xhat),
                                   vld1q_f64(b + j)));
    }
    for (; j < n; ++j) out[j] = g[j] * ((x[j] - mu) * inv_sigma) + b[j];
  }

  static void RowMax(const double* x, double* best, int n) {
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t vx = vld1q_f64(x + j);
      const float64x2_t vb = vld1q_f64(best + j);
      const uint64x2_t gt = vcgtq_f64(vx, vb);  // false on NaN/equal
      vst1q_f64(best + j, vbslq_f64(gt, vx, vb));
    }
    for (; j < n; ++j) {
      if (x[j] > best[j]) best[j] = x[j];
    }
  }

  static double MaxAbs(const double* x, int n) {
    float64x2_t vm = vdupq_n_f64(0.0);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t va = vabsq_f64(vld1q_f64(x + j));
      const uint64x2_t gt = vcgtq_f64(va, vm);  // NaN lanes keep vm
      vm = vbslq_f64(gt, va, vm);
    }
    double m = vgetq_lane_f64(vm, 0);
    const double m1 = vgetq_lane_f64(vm, 1);
    if (m1 > m) m = m1;
    for (; j < n; ++j) {
      const double a = std::fabs(x[j]);
      if (a > m) m = a;
    }
    return m;
  }

  static void Quantize(const double* x, double inv_scale, std::int8_t* q,
                       int n) {
    const float64x2_t vinv = vdupq_n_f64(inv_scale);
    const float64x2_t lo = vdupq_n_f64(-127.0);
    const float64x2_t hi = vdupq_n_f64(127.0);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      float64x2_t r = vmulq_f64(vld1q_f64(x + j), vinv);
      // select(r >= -127, r, -127): NaN saturates low, as in scalar.
      r = vbslq_f64(vcgeq_f64(r, lo), r, lo);
      r = vbslq_f64(vcleq_f64(r, hi), r, hi);
      const int64x2_t vi = vcvtnq_s64_f64(r);  // nearest-even, as lrint
      q[j] = static_cast<std::int8_t>(vgetq_lane_s64(vi, 0));
      q[j + 1] = static_cast<std::int8_t>(vgetq_lane_s64(vi, 1));
    }
    for (; j < n; ++j) {
      double r = x[j] * inv_scale;
      r = r >= -127.0 ? r : -127.0;
      r = r <= 127.0 ? r : 127.0;
      q[j] = static_cast<std::int8_t>(std::lrint(r));
    }
  }

  static void QGemm(const std::int8_t* a, int lda, const std::int8_t* w,
                    std::int32_t* c, int m, int k, int n) {
    // Register-blocked over j like the AVX2 kernel: an 8-column int32
    // accumulator block (2 q-registers) stays live across the whole k
    // loop. Products are exact in int16 lanes (|a*w| <= 16129 < 32767);
    // integer accumulation order is irrelevant to the result.
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      for (int i = 0; i < m; ++i) {
        const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
        std::int32_t* crow = c + static_cast<std::size_t>(i) * n + j;
        int32x4_t acc0 = vld1q_s32(crow);
        int32x4_t acc1 = vld1q_s32(crow + 4);
        for (int p = 0; p < k; ++p) {
          const std::int8_t av = arow[p];
          if (av == 0) continue;
          const int16x8_t va = vdupq_n_s16(av);
          const int16x8_t w16 = vmovl_s8(
              vld1_s8(w + static_cast<std::size_t>(p) * n + j));
          const int16x8_t prod = vmulq_s16(w16, va);
          acc0 = vaddq_s32(acc0, vmovl_s16(vget_low_s16(prod)));
          acc1 = vaddq_s32(acc1, vmovl_s16(vget_high_s16(prod)));
        }
        vst1q_s32(crow, acc0);
        vst1q_s32(crow + 4, acc1);
      }
    }
    // Column tail: plain scalar triple loop over the remaining j.
    if (j < n) {
      for (int i = 0; i < m; ++i) {
        const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
        std::int32_t* crow = c + static_cast<std::size_t>(i) * n;
        for (int p = 0; p < k; ++p) {
          const std::int32_t av = arow[p];
          if (av == 0) continue;
          const std::int8_t* wrow = w + static_cast<std::size_t>(p) * n;
          for (int jj = j; jj < n; ++jj) {
            crow[jj] += av * static_cast<std::int32_t>(wrow[jj]);
          }
        }
      }
    }
  }

  static void Dequant(const std::int32_t* acc, const double* scale,
                      const double* bias, double* out, int n) {
    int j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t vd = vcvtq_f64_s64(vmovl_s32(vld1_s32(acc + j)));
      vst1q_f64(out + j, vaddq_f64(vmulq_f64(vd, vld1q_f64(scale + j)),
                                   vld1q_f64(bias + j)));
    }
    for (; j < n; ++j) {
      out[j] = static_cast<double>(acc[j]) * scale[j] + bias[j];
    }
  }
};

}  // namespace dlner::simd

#endif  // DLNER_TENSOR_SIMD_KERNELS_NEON_H_
