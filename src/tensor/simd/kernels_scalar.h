// Scalar reference implementation of the SIMD primitive set.
//
// The per-element arithmetic here IS the contract: every vector ISA
// (kernels_avx2.h, kernels_neon.h) must produce bit-identical results,
// element for element, which the differential suite enforces by comparing
// simd::Active against simd::Scalar over random shapes. Practical rules
// that follow (docs/PERFORMANCE.md, "SIMD & quantization"):
//
//  * Multiplies and adds stay separate operations — never FMA — because
//    the whole tree builds with -ffp-contract=off and the planned-vs-eager
//    bit-identity contract depends on it.
//  * Additive reductions keep their exact order; only max-based reductions
//    (RowMax, MaxAbs), which are exact in any evaluation order, may be
//    reassociated by a vector ISA.
//  * Comparison-select semantics (Relu, RowMax, clamps) are part of the
//    contract, including NaN and signed-zero behavior: each primitive
//    documents the exact scalar expression vector code must reproduce.
//  * Transcendentals (tanh, exp) never appear here — they stay scalar
//    libm calls in the kernels so every ISA shares the same results.
//
// Unless noted otherwise, `out` may alias an input pointer at the SAME
// element offset (in-place update); partially overlapping buffers are not
// allowed.
#ifndef DLNER_TENSOR_SIMD_KERNELS_SCALAR_H_
#define DLNER_TENSOR_SIMD_KERNELS_SCALAR_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

// Keep the reference truly scalar: without this, -march=native lets the
// compiler auto-vectorize these loops into the same code as the explicit
// ISA kernels, and both the simd-vs-scalar differential suite and the
// bench.simd_speedup series would be comparing SIMD against SIMD.
// Auto-vectorization is value-preserving (we build with -ffp-contract=off
// and without -ffast-math), so disabling it cannot change results — only
// make the scalar fallback honest about its cost.
#if defined(__GNUC__) && !defined(__clang__)
#define DLNER_SIMD_SCALAR_ONLY \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define DLNER_SIMD_SCALAR_ONLY
#endif

namespace dlner::simd {

struct Scalar {
  static constexpr const char* kName = "scalar";

  // y[j] += a * x[j]
  DLNER_SIMD_SCALAR_ONLY
  static void Axpy(double a, const double* x, double* y, int n) {
    for (int j = 0; j < n; ++j) y[j] += a * x[j];
  }

  // Four independent output rows sharing one streamed x row:
  // yi[j] += ai * x[j]. Exactly equivalent to four Axpy calls (each row
  // accumulates independently); exists so vector ISAs can reuse the loaded
  // x registers across all four rows (the GEMM register tile).
  DLNER_SIMD_SCALAR_ONLY
  static void Axpy4(double a0, double a1, double a2, double a3,
                    const double* x, double* y0, double* y1, double* y2,
                    double* y3, int n) {
    for (int j = 0; j < n; ++j) {
      const double v = x[j];
      y0[j] += a0 * v;
      y1[j] += a1 * v;
      y2[j] += a2 * v;
      y3[j] += a3 * v;
    }
  }

  // x[j] = (x[j] < 0 ? 0 : x[j])  — std::max(x, 0.0): NaN stays NaN,
  // -0.0 stays -0.0.
  DLNER_SIMD_SCALAR_ONLY
  static void Relu(double* x, int n) {
    for (int j = 0; j < n; ++j) x[j] = std::max(x[j], 0.0);
  }

  // out[j] = a[j] * b[j]
  DLNER_SIMD_SCALAR_ONLY
  static void Mul(const double* a, const double* b, double* out, int n) {
    for (int j = 0; j < n; ++j) out[j] = a[j] * b[j];
  }

  // out[j] = a[j]*b[j] + c[j]*d[j]  (the LSTM cell update f*c + i*g)
  DLNER_SIMD_SCALAR_ONLY
  static void MulMulAdd(const double* a, const double* b, const double* c,
                        const double* d, double* out, int n) {
    for (int j = 0; j < n; ++j) out[j] = a[j] * b[j] + c[j] * d[j];
  }

  // out[j] = (1 - z[j]) * a[j] + z[j] * b[j]  (the GRU interpolation)
  DLNER_SIMD_SCALAR_ONLY
  static void Blend(const double* z, const double* a, const double* b,
                    double* out, int n) {
    for (int j = 0; j < n; ++j) {
      out[j] = (1.0 - z[j]) * a[j] + z[j] * b[j];
    }
  }

  // out[j] = g[j] * ((x[j] - mu) * inv_sigma) + b[j]  (LayerNorm epilogue)
  DLNER_SIMD_SCALAR_ONLY
  static void NormApply(const double* x, double mu, double inv_sigma,
                        const double* g, const double* b, double* out,
                        int n) {
    for (int j = 0; j < n; ++j) {
      out[j] = g[j] * ((x[j] - mu) * inv_sigma) + b[j];
    }
  }

  // best[j] = (x[j] > best[j] ? x[j] : best[j]): NaN x never replaces,
  // equal values (incl. ±0) keep best.
  DLNER_SIMD_SCALAR_ONLY
  static void RowMax(const double* x, double* best, int n) {
    for (int j = 0; j < n; ++j) {
      if (x[j] > best[j]) best[j] = x[j];
    }
  }

  // max_j |x[j]|, at least 0.0. Max reductions are exact in any order, so
  // vector ISAs may split lanes; NaN elements are ignored.
  DLNER_SIMD_SCALAR_ONLY
  static double MaxAbs(const double* x, int n) {
    double m = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = std::fabs(x[j]);
      if (a > m) m = a;
    }
    return m;
  }

  // q[j] = int8(nearest-even-round(clamp(x[j] * inv_scale, ±127))).
  // The clamp is exactly (r >= -127 ? r : -127) then (r <= 127 ? r : 127),
  // so NaN products saturate to -127; rounding is the default FP
  // environment's nearest-even (std::lrint == cvtpd round-to-nearest).
  DLNER_SIMD_SCALAR_ONLY
  static void Quantize(const double* x, double inv_scale, std::int8_t* q,
                       int n) {
    for (int j = 0; j < n; ++j) {
      double r = x[j] * inv_scale;
      r = r >= -127.0 ? r : -127.0;
      r = r <= 127.0 ? r : 127.0;
      q[j] = static_cast<std::int8_t>(std::lrint(r));
    }
  }

  // c[m,n] += a[m,k] . w[k,n] in int32, rows of `a` being `lda` apart (the
  // conv kernel reads sliding windows in place). Integer arithmetic is
  // exact, so unlike the f32 GEMM there is no accumulation-order contract:
  // ISAs are free to register-block the loop nest (the whole point of
  // making the full kernel a primitive — int32 accumulators can live in
  // registers across the k loop instead of round-tripping to memory per
  // step). The zero-skip is pure speed: quantized ReLU activations are
  // mostly zeros.
  DLNER_SIMD_SCALAR_ONLY
  static void QGemm(const std::int8_t* a, int lda, const std::int8_t* w,
                    std::int32_t* c, int m, int k, int n) {
    for (int i = 0; i < m; ++i) {
      const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
      std::int32_t* crow = c + static_cast<std::size_t>(i) * n;
      for (int p = 0; p < k; ++p) {
        const std::int32_t av = arow[p];
        if (av == 0) continue;
        const std::int8_t* wrow = w + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) {
          crow[j] += av * static_cast<std::int32_t>(wrow[j]);
        }
      }
    }
  }

  // out[j] = double(acc[j]) * scale[j] + bias[j]  (int32 -> f64 is exact)
  DLNER_SIMD_SCALAR_ONLY
  static void Dequant(const std::int32_t* acc, const double* scale,
                      const double* bias, double* out, int n) {
    for (int j = 0; j < n; ++j) {
      out[j] = static_cast<double>(acc[j]) * scale[j] + bias[j];
    }
  }
};

}  // namespace dlner::simd

#endif  // DLNER_TENSOR_SIMD_KERNELS_SCALAR_H_
