// Compile-time SIMD dispatch for the explicit kernels (tensor/gemm.h,
// tensor/batched.cc, tensor/quant.cc).
//
// Exactly one ISA struct is selected as simd::Active per build:
//
//   DLNER_SIMD_FORCE_SCALAR defined  -> Scalar  (CMake -DDLNER_SIMD=scalar)
//   __AVX2__                         -> Avx2    (auto via -march=native,
//                                                or forced via -mavx2)
//   AArch64 __ARM_NEON               -> Neon
//   otherwise                        -> Scalar
//
// Every ISA implements the same primitive set with bit-identical
// per-element results (the contract lives in kernels_scalar.h and is
// enforced by the differential suite), so dispatch never changes outputs —
// only speed. Kernels that must be comparable against the scalar path in
// one binary (bench_throughput's A/B) take the ISA as a template parameter
// and instantiate both Scalar and Active.
#ifndef DLNER_TENSOR_SIMD_SIMD_H_
#define DLNER_TENSOR_SIMD_SIMD_H_

#include "tensor/simd/kernels_scalar.h"

#if !defined(DLNER_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#include "tensor/simd/kernels_avx2.h"
#define DLNER_SIMD_ISA_ID 1
namespace dlner::simd {
using Active = Avx2;
}
#elif !defined(DLNER_SIMD_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#include "tensor/simd/kernels_neon.h"
#define DLNER_SIMD_ISA_ID 2
namespace dlner::simd {
using Active = Neon;
}
#else
#define DLNER_SIMD_ISA_ID 0
namespace dlner::simd {
using Active = Scalar;
}
#endif

namespace dlner::simd {

// 0 = scalar, 1 = avx2, 2 = neon. Recorded numerically as the
// `bench.simd_isa` gauge (dlner-metrics-v1 gauges are numeric-only);
// kIsaName is the human-readable twin.
inline constexpr int kIsaId = DLNER_SIMD_ISA_ID;
inline constexpr const char* kIsaName = Active::kName;

}  // namespace dlner::simd

#endif  // DLNER_TENSOR_SIMD_SIMD_H_
