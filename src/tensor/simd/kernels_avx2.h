// AVX2 implementation of the SIMD primitive set (4 doubles / 16 int8 per
// vector). Bit-identical to simd::Scalar by construction:
//
//  * mul and add are separate instructions (vmulpd + vaddpd, never
//    vfmadd*) to match -ffp-contract=off scalar code;
//  * vmaxpd/vminpd operand order is chosen so NaN and ±0 behavior matches
//    the scalar comparison-select expressions exactly (both return the
//    SECOND operand when either input is NaN or the values compare equal);
//  * vcvtpd2dq rounds to nearest-even under the default MXCSR, matching
//    std::lrint in the default FP environment;
//  * int8 products are computed in 16-bit lanes (|a*w| <= 127*127 = 16129
//    < 32767, so vpmullw is exact) and widened to the same int32
//    accumulators the scalar kernel uses.
//
// Scalar loop tails reuse the exact per-element expressions from
// kernels_scalar.h.
#ifndef DLNER_TENSOR_SIMD_KERNELS_AVX2_H_
#define DLNER_TENSOR_SIMD_KERNELS_AVX2_H_

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dlner::simd {

struct Avx2 {
  static constexpr const char* kName = "avx2";

  static void Axpy(double a, const double* x, double* y, int n) {
    const __m256d va = _mm256_set1_pd(a);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + j));
      _mm256_storeu_pd(y + j, _mm256_add_pd(_mm256_loadu_pd(y + j), prod));
    }
    for (; j < n; ++j) y[j] += a * x[j];
  }

  static void Axpy4(double a0, double a1, double a2, double a3,
                    const double* x, double* y0, double* y1, double* y2,
                    double* y3, int n) {
    const __m256d va0 = _mm256_set1_pd(a0);
    const __m256d va1 = _mm256_set1_pd(a1);
    const __m256d va2 = _mm256_set1_pd(a2);
    const __m256d va3 = _mm256_set1_pd(a3);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d vx = _mm256_loadu_pd(x + j);
      _mm256_storeu_pd(y0 + j, _mm256_add_pd(_mm256_loadu_pd(y0 + j),
                                             _mm256_mul_pd(va0, vx)));
      _mm256_storeu_pd(y1 + j, _mm256_add_pd(_mm256_loadu_pd(y1 + j),
                                             _mm256_mul_pd(va1, vx)));
      _mm256_storeu_pd(y2 + j, _mm256_add_pd(_mm256_loadu_pd(y2 + j),
                                             _mm256_mul_pd(va2, vx)));
      _mm256_storeu_pd(y3 + j, _mm256_add_pd(_mm256_loadu_pd(y3 + j),
                                             _mm256_mul_pd(va3, vx)));
    }
    for (; j < n; ++j) {
      const double v = x[j];
      y0[j] += a0 * v;
      y1[j] += a1 * v;
      y2[j] += a2 * v;
      y3[j] += a3 * v;
    }
  }

  static void Relu(double* x, int n) {
    // vmaxpd(0, x) returns x when x is NaN or when both are zero — exactly
    // std::max(x, 0.0) = (x < 0 ? 0 : x).
    const __m256d zero = _mm256_setzero_pd();
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      _mm256_storeu_pd(x + j, _mm256_max_pd(zero, _mm256_loadu_pd(x + j)));
    }
    for (; j < n; ++j) x[j] = std::max(x[j], 0.0);
  }

  static void Mul(const double* a, const double* b, double* out, int n) {
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      _mm256_storeu_pd(out + j, _mm256_mul_pd(_mm256_loadu_pd(a + j),
                                              _mm256_loadu_pd(b + j)));
    }
    for (; j < n; ++j) out[j] = a[j] * b[j];
  }

  static void MulMulAdd(const double* a, const double* b, const double* c,
                        const double* d, double* out, int n) {
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d ab = _mm256_mul_pd(_mm256_loadu_pd(a + j),
                                       _mm256_loadu_pd(b + j));
      const __m256d cd = _mm256_mul_pd(_mm256_loadu_pd(c + j),
                                       _mm256_loadu_pd(d + j));
      _mm256_storeu_pd(out + j, _mm256_add_pd(ab, cd));
    }
    for (; j < n; ++j) out[j] = a[j] * b[j] + c[j] * d[j];
  }

  static void Blend(const double* z, const double* a, const double* b,
                    double* out, int n) {
    const __m256d one = _mm256_set1_pd(1.0);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d vz = _mm256_loadu_pd(z + j);
      const __m256d left =
          _mm256_mul_pd(_mm256_sub_pd(one, vz), _mm256_loadu_pd(a + j));
      const __m256d right = _mm256_mul_pd(vz, _mm256_loadu_pd(b + j));
      _mm256_storeu_pd(out + j, _mm256_add_pd(left, right));
    }
    for (; j < n; ++j) out[j] = (1.0 - z[j]) * a[j] + z[j] * b[j];
  }

  static void NormApply(const double* x, double mu, double inv_sigma,
                        const double* g, const double* b, double* out,
                        int n) {
    const __m256d vmu = _mm256_set1_pd(mu);
    const __m256d vinv = _mm256_set1_pd(inv_sigma);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d xhat = _mm256_mul_pd(
          _mm256_sub_pd(_mm256_loadu_pd(x + j), vmu), vinv);
      _mm256_storeu_pd(
          out + j,
          _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(g + j), xhat),
                        _mm256_loadu_pd(b + j)));
    }
    for (; j < n; ++j) out[j] = g[j] * ((x[j] - mu) * inv_sigma) + b[j];
  }

  static void RowMax(const double* x, double* best, int n) {
    // vmaxpd(x, best) returns best when x is NaN or the values compare
    // equal — exactly (x > best ? x : best).
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      _mm256_storeu_pd(best + j, _mm256_max_pd(_mm256_loadu_pd(x + j),
                                               _mm256_loadu_pd(best + j)));
    }
    for (; j < n; ++j) {
      if (x[j] > best[j]) best[j] = x[j];
    }
  }

  static double MaxAbs(const double* x, int n) {
    const __m256d abs_mask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7fffffffffffffffLL));
    __m256d vm = _mm256_setzero_pd();
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d va = _mm256_and_pd(_mm256_loadu_pd(x + j), abs_mask);
      // vmaxpd(|x|, m): NaN lanes keep m, matching the scalar (a > m).
      vm = _mm256_max_pd(va, vm);
    }
    double lanes[4];
    _mm256_storeu_pd(lanes, vm);
    double m = 0.0;
    for (double a : lanes) {
      if (a > m) m = a;
    }
    for (; j < n; ++j) {
      const double a = std::fabs(x[j]);
      if (a > m) m = a;
    }
    return m;
  }

  static void Quantize(const double* x, double inv_scale, std::int8_t* q,
                       int n) {
    const __m256d vinv = _mm256_set1_pd(inv_scale);
    const __m256d lo = _mm256_set1_pd(-127.0);
    const __m256d hi = _mm256_set1_pd(127.0);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d r = _mm256_mul_pd(_mm256_loadu_pd(x + j), vinv);
      // vmaxpd(r, lo): NaN r -> lo, matching (r >= -127 ? r : -127).
      r = _mm256_max_pd(r, lo);
      r = _mm256_min_pd(r, hi);
      const __m128i vi = _mm256_cvtpd_epi32(r);  // nearest-even, as lrint
      const __m128i v16 = _mm_packs_epi32(vi, vi);
      const __m128i v8 = _mm_packs_epi16(v16, v16);
      const int packed = _mm_cvtsi128_si32(v8);
      std::memcpy(q + j, &packed, 4);
    }
    for (; j < n; ++j) {
      double r = x[j] * inv_scale;
      r = r >= -127.0 ? r : -127.0;
      r = r <= 127.0 ? r : 127.0;
      q[j] = static_cast<std::int8_t>(std::lrint(r));
    }
  }

  static void QGemm(const std::int8_t* a, int lda, const std::int8_t* w,
                    std::int32_t* c, int m, int k, int n) {
    // Register-blocked over j: a 16-column accumulator block (2 ymm of
    // int32) stays in registers across the whole k loop, so the only
    // per-step memory traffic is one 16-byte weight load. Products are
    // exact in int16 lanes (|a*w| <= 16129 < 32767) and widened into the
    // same int32 accumulators the scalar kernel uses; integer order is
    // irrelevant to the result.
    int j = 0;
    for (; j + 16 <= n; j += 16) {
      // 4-row register tile: eight ymm accumulators live across the whole
      // k loop, and each 16-byte weight load + widen is shared by all four
      // rows. Rows whose activation is zero skip their two multiply-adds.
      int i = 0;
      for (; i + 4 <= m; i += 4) {
        const std::int8_t* a0 = a + static_cast<std::size_t>(i) * lda;
        const std::int8_t* a1 = a0 + lda;
        const std::int8_t* a2 = a1 + lda;
        const std::int8_t* a3 = a2 + lda;
        std::int32_t* c0 = c + static_cast<std::size_t>(i) * n + j;
        std::int32_t* c1 = c0 + n;
        std::int32_t* c2 = c1 + n;
        std::int32_t* c3 = c2 + n;
        __m256i acc0lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c0));
        __m256i acc0hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c0 + 8));
        __m256i acc1lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c1));
        __m256i acc1hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c1 + 8));
        __m256i acc2lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c2));
        __m256i acc2hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c2 + 8));
        __m256i acc3lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c3));
        __m256i acc3hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c3 + 8));
        for (int p = 0; p < k; ++p) {
          const std::int8_t v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
          if ((v0 | v1 | v2 | v3) == 0) continue;
          const __m256i w16 =
              _mm256_cvtepi8_epi16(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(
                      w + static_cast<std::size_t>(p) * n + j)));
          if (v0 != 0) {
            const __m256i prod = _mm256_mullo_epi16(
                w16, _mm256_set1_epi16(static_cast<short>(v0)));
            acc0lo = _mm256_add_epi32(
                acc0lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
            acc0hi = _mm256_add_epi32(
                acc0hi,
                _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
          }
          if (v1 != 0) {
            const __m256i prod = _mm256_mullo_epi16(
                w16, _mm256_set1_epi16(static_cast<short>(v1)));
            acc1lo = _mm256_add_epi32(
                acc1lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
            acc1hi = _mm256_add_epi32(
                acc1hi,
                _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
          }
          if (v2 != 0) {
            const __m256i prod = _mm256_mullo_epi16(
                w16, _mm256_set1_epi16(static_cast<short>(v2)));
            acc2lo = _mm256_add_epi32(
                acc2lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
            acc2hi = _mm256_add_epi32(
                acc2hi,
                _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
          }
          if (v3 != 0) {
            const __m256i prod = _mm256_mullo_epi16(
                w16, _mm256_set1_epi16(static_cast<short>(v3)));
            acc3lo = _mm256_add_epi32(
                acc3lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
            acc3hi = _mm256_add_epi32(
                acc3hi,
                _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
          }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c0), acc0lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c0 + 8), acc0hi);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c1), acc1lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c1 + 8), acc1hi);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c2), acc2lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c2 + 8), acc2hi);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c3), acc3lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(c3 + 8), acc3hi);
      }
      for (; i < m; ++i) {
        const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
        std::int32_t* crow = c + static_cast<std::size_t>(i) * n + j;
        __m256i acc0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow));
        __m256i acc1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow + 8));
        for (int p = 0; p < k; ++p) {
          const std::int8_t av = arow[p];
          if (av == 0) continue;
          const __m256i va = _mm256_set1_epi16(static_cast<short>(av));
          const __m128i w8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
              w + static_cast<std::size_t>(p) * n + j));
          const __m256i prod =
              _mm256_mullo_epi16(_mm256_cvtepi8_epi16(w8), va);
          acc0 = _mm256_add_epi32(
              acc0, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
          acc1 = _mm256_add_epi32(
              acc1, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8), acc1);
      }
    }
    // 8-column block (one ymm accumulator) — matters a lot at this
    // toolkit's layer widths (n == 24 leaves 8 columns after the 16-block).
    for (; j + 8 <= n; j += 8) {
      for (int i = 0; i < m; ++i) {
        const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
        std::int32_t* crow = c + static_cast<std::size_t>(i) * n + j;
        __m256i acc =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(crow));
        for (int p = 0; p < k; ++p) {
          const std::int8_t av = arow[p];
          if (av == 0) continue;
          const __m128i va = _mm_set1_epi16(static_cast<short>(av));
          const __m128i w8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
              w + static_cast<std::size_t>(p) * n + j));
          const __m128i prod = _mm_mullo_epi16(_mm_cvtepi8_epi16(w8), va);
          acc = _mm256_add_epi32(acc, _mm256_cvtepi16_epi32(prod));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow), acc);
      }
    }
    // 4-column block (one xmm accumulator).
    for (; j + 4 <= n; j += 4) {
      for (int i = 0; i < m; ++i) {
        const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
        std::int32_t* crow = c + static_cast<std::size_t>(i) * n + j;
        __m128i acc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(crow));
        for (int p = 0; p < k; ++p) {
          const std::int8_t av = arow[p];
          if (av == 0) continue;
          std::int32_t packed;
          std::memcpy(&packed, w + static_cast<std::size_t>(p) * n + j, 4);
          const __m128i w32 = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(packed));
          acc = _mm_add_epi32(
              acc, _mm_mullo_epi32(w32, _mm_set1_epi32(av)));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(crow), acc);
      }
    }
    // Final scalar columns (n % 4).
    if (j < n) {
      for (int i = 0; i < m; ++i) {
        const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
        std::int32_t* crow = c + static_cast<std::size_t>(i) * n;
        for (int p = 0; p < k; ++p) {
          const std::int32_t av = arow[p];
          if (av == 0) continue;
          const std::int8_t* wrow = w + static_cast<std::size_t>(p) * n;
          for (int jj = j; jj < n; ++jj) {
            crow[jj] += av * static_cast<std::int32_t>(wrow[jj]);
          }
        }
      }
    }
  }

  static void Dequant(const std::int32_t* acc, const double* scale,
                      const double* bias, double* out, int n) {
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d vd = _mm256_cvtepi32_pd(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + j)));
      _mm256_storeu_pd(
          out + j,
          _mm256_add_pd(_mm256_mul_pd(vd, _mm256_loadu_pd(scale + j)),
                        _mm256_loadu_pd(bias + j)));
    }
    for (; j < n; ++j) {
      out[j] = static_cast<double>(acc[j]) * scale[j] + bias[j];
    }
  }
};

}  // namespace dlner::simd

#endif  // DLNER_TENSOR_SIMD_KERNELS_AVX2_H_
