// Finite-difference gradient checking, used by the test suite to validate
// every differentiable op and fused module against central differences.
#ifndef DLNER_TENSOR_GRADCHECK_H_
#define DLNER_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/variable.h"

namespace dlner {

/// Compares analytic gradients against central finite differences.
///
/// `build_loss` must rebuild the computation graph from scratch on every
/// call (the inputs keep their identity; only their values are perturbed)
/// and return a scalar loss. Returns the maximum elementwise error
/// |analytic - numeric| / max(1, |analytic|, |numeric|) across all elements
/// of all `inputs`.
Float MaxGradError(const std::function<Var()>& build_loss,
                   const std::vector<Var>& inputs, Float eps = 1e-5);

}  // namespace dlner

#endif  // DLNER_TENSOR_GRADCHECK_H_
