#include "tensor/rnn.h"

namespace dlner {

// ---------------------------------------------------------------------------
// LstmCell.
// ---------------------------------------------------------------------------

LstmCell::LstmCell(int in_dim, int hidden_dim, Rng* rng,
                   const std::string& name)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      gates_(std::make_unique<Linear>(in_dim + hidden_dim, 4 * hidden_dim,
                                      rng, name + ".gates")) {
  // Initialize the forget-gate bias to 1 (standard practice: remember by
  // default early in training).
  Var bias = gates_->Parameters()[1];
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) bias->value[j] = 1.0;
}

RnnState LstmCell::InitialState() const {
  return {Constant(Tensor({hidden_dim_})), Constant(Tensor({hidden_dim_}))};
}

RnnState LstmCell::Step(const Var& x, const RnnState& prev) const {
  DLNER_CHECK_EQ(x->value.size(), in_dim_);
  Var z = ConcatVecs({x, prev.h});
  Var gates = gates_->ApplyVec(z);  // [4*hid]
  Var i = Sigmoid(SliceVec(gates, 0, hidden_dim_));
  Var f = Sigmoid(SliceVec(gates, hidden_dim_, hidden_dim_));
  Var o = Sigmoid(SliceVec(gates, 2 * hidden_dim_, hidden_dim_));
  Var g = Tanh(SliceVec(gates, 3 * hidden_dim_, hidden_dim_));
  Var c = Add(Mul(f, prev.c), Mul(i, g));
  Var h = Mul(o, Tanh(c));
  return {h, c};
}

std::vector<Var> LstmCell::Parameters() const { return gates_->Parameters(); }

// ---------------------------------------------------------------------------
// GruCell.
// ---------------------------------------------------------------------------

GruCell::GruCell(int in_dim, int hidden_dim, Rng* rng, const std::string& name)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      rz_(std::make_unique<Linear>(in_dim + hidden_dim, 2 * hidden_dim, rng,
                                   name + ".rz")),
      candidate_(std::make_unique<Linear>(in_dim + hidden_dim, hidden_dim,
                                          rng, name + ".cand")) {}

RnnState GruCell::InitialState() const {
  return {Constant(Tensor({hidden_dim_})), Constant(Tensor({hidden_dim_}))};
}

RnnState GruCell::Step(const Var& x, const RnnState& prev) const {
  DLNER_CHECK_EQ(x->value.size(), in_dim_);
  Var z_in = ConcatVecs({x, prev.h});
  Var rz = rz_->ApplyVec(z_in);  // [2*hid]
  Var r = Sigmoid(SliceVec(rz, 0, hidden_dim_));
  Var z = Sigmoid(SliceVec(rz, hidden_dim_, hidden_dim_));
  Var cand_in = ConcatVecs({x, Mul(r, prev.h)});
  Var h_tilde = Tanh(candidate_->ApplyVec(cand_in));
  // h = (1 - z) * h_prev + z * h_tilde
  Var ones = Constant(Tensor::Full({hidden_dim_}, 1.0));
  Var h = Add(Mul(Sub(ones, z), prev.h), Mul(z, h_tilde));
  return {h, prev.c};
}

std::vector<Var> GruCell::Parameters() const {
  return JoinParameters({rz_.get(), candidate_.get()});
}

// ---------------------------------------------------------------------------
// Sequence runners.
// ---------------------------------------------------------------------------

Var RunRnn(const RnnCell& cell, const Var& input, bool reverse) {
  return RunRnnWithState(cell, input, reverse).first;
}

std::pair<Var, RnnState> RunRnnWithState(const RnnCell& cell, const Var& input,
                                         bool reverse) {
  DLNER_CHECK_EQ(input->value.dim(), 2);
  const int t_len = input->value.rows();
  DLNER_CHECK_GT(t_len, 0);
  RnnState state = cell.InitialState();
  std::vector<Var> outputs(t_len);
  for (int step = 0; step < t_len; ++step) {
    const int t = reverse ? t_len - 1 - step : step;
    state = cell.Step(Row(input, t), state);
    outputs[t] = state.h;
  }
  return {StackRows(outputs), state};
}

// ---------------------------------------------------------------------------
// BiRnn.
// ---------------------------------------------------------------------------

BiRnn::BiRnn(const std::string& kind, int in_dim, int hidden_dim, Rng* rng,
             const std::string& name)
    : forward_(MakeRnnCell(kind, in_dim, hidden_dim, rng, name + ".fwd")),
      backward_(MakeRnnCell(kind, in_dim, hidden_dim, rng, name + ".bwd")) {}

Var BiRnn::Apply(const Var& input) const {
  Var fwd = RunRnn(*forward_, input, /*reverse=*/false);
  Var bwd = RunRnn(*backward_, input, /*reverse=*/true);
  return ConcatCols({fwd, bwd});
}

std::vector<Var> BiRnn::Parameters() const {
  return JoinParameters({forward_.get(), backward_.get()});
}

std::unique_ptr<RnnCell> MakeRnnCell(const std::string& kind, int in_dim,
                                     int hidden_dim, Rng* rng,
                                     const std::string& name) {
  if (kind == "lstm") {
    return std::make_unique<LstmCell>(in_dim, hidden_dim, rng, name);
  }
  if (kind == "gru") {
    return std::make_unique<GruCell>(in_dim, hidden_dim, rng, name);
  }
  DLNER_CHECK_MSG(false, "unknown rnn cell kind: " << kind);
}

}  // namespace dlner
