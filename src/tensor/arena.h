// Bump-pointer arena for inference-plan activation buffers.
//
// The planned batch path (src/plan/) sizes every intermediate up front and
// frees nothing mid-batch, so allocation reduces to pointer arithmetic:
// Alloc bumps a cursor inside a block, Reset rewinds the cursors while
// keeping the blocks, and after the first batch of a given shape the hot
// path performs zero heap allocation. Each worker thread owns its own
// arena (thread_local in plan.cc), so no synchronization is needed.
#ifndef DLNER_TENSOR_ARENA_H_
#define DLNER_TENSOR_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dlner {

class Arena {
 public:
  /// Capacity (in Floats) of the first block; later blocks double.
  static constexpr std::size_t kInitialFloats = 1u << 13;  // 64 KiB

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` Floats, valid until the next Reset.
  Float* Alloc(std::size_t n);

  /// Zero-filled storage for `n` Floats.
  Float* AllocZero(std::size_t n);

  /// Rewinds every block cursor; capacity is retained for reuse.
  void Reset();

  /// Total bytes of block capacity ever reserved (monotone).
  std::size_t bytes_reserved() const { return reserved_floats_ * sizeof(Float); }

  /// Peak bytes simultaneously in use across the arena's lifetime.
  std::size_t high_water() const { return high_water_floats_ * sizeof(Float); }

 private:
  struct Block {
    std::unique_ptr<Float[]> data;
    std::size_t capacity = 0;  // in Floats
  };

  std::vector<Block> blocks_;
  std::size_t block_ = 0;           // index of the block being bumped
  std::size_t used_ = 0;            // Floats used within blocks_[block_]
  std::size_t in_use_floats_ = 0;   // Floats live since the last Reset
  std::size_t reserved_floats_ = 0;
  std::size_t high_water_floats_ = 0;
};

}  // namespace dlner

#endif  // DLNER_TENSOR_ARENA_H_
