#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"

namespace dlner {
namespace {

bool AnyRequiresGrad(const std::vector<Var>& parents) {
  for (const Var& p : parents) {
    if (p->requires_grad) return true;
  }
  return false;
}

// Accumulates `delta` into `p`'s gradient if `p` participates in backprop.
void Accum(const Var& p, const Tensor& delta) {
  if (!p->requires_grad) return;
  p->grad.AccumulateFrom(delta);
}

// Accumulates `-delta` into `p`'s gradient if `p` participates in backprop
// (the mirror of Accum used by subtrahend inputs).
void AccumNeg(const Var& p, const Tensor& delta) {
  if (!p->requires_grad) return;
  DLNER_CHECK(p->grad.SameShape(delta));
  Float* g = p->grad.data();
  const Float* d = delta.data();
  const int n = delta.size();
  for (int i = 0; i < n; ++i) g[i] -= d[i];
}

// True when a unary op may overwrite `a`'s buffer instead of copying it:
// nothing can read the value again. `!requires_grad` rules out every
// backward pass over this value, and a use count of 1 on an rvalue handle
// means no other owner exists (an aliasing op such as Dropout in eval mode
// returns a second handle to the same node, which bumps the count).
bool CanReuseBuffer(const Var& a) {
  return !a->requires_grad && a.use_count() == 1;
}

// GEMM kernels live in tensor/gemm.h so the packed-batch inference path
// (batched.cc) runs literally the same code — bit-identical planned vs
// eager results depend on sharing the kernel, not reimplementing it.
using gemm::GemmAccum;
using gemm::GemmAccumGradA;
using gemm::GemmAccumGradB;

}  // namespace

Var MakeNode(Tensor value, std::vector<Var> parents,
             std::function<void(Variable*)> backward_fn) {
  auto node = std::make_shared<Variable>(std::move(value));
  node->requires_grad = GradModeEnabled() && AnyRequiresGrad(parents);
  if (node->requires_grad) {
    // Value-only nodes (inference, or constant subgraphs) keep no parent
    // edges: the upstream chain is released as soon as the forward pass
    // moves on, which also keeps graph destruction shallow.
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

// ---------------------------------------------------------------------------
// Elementwise arithmetic.
// ---------------------------------------------------------------------------

Var Add(const Var& a, const Var& b) {
  DLNER_CHECK_MSG(a->value.SameShape(b->value),
                  a->value.ShapeString() << " vs " << b->value.ShapeString());
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] += b->value[i];
  return MakeNode(std::move(out), {a, b}, [a, b](Variable* n) {
    Accum(a, n->grad);
    Accum(b, n->grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  DLNER_CHECK(a->value.SameShape(b->value));
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] -= b->value[i];
  return MakeNode(std::move(out), {a, b}, [a, b](Variable* n) {
    Accum(a, n->grad);
    AccumNeg(b, n->grad);
  });
}

Var Mul(const Var& a, const Var& b) {
  DLNER_CHECK(a->value.SameShape(b->value));
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] *= b->value[i];
  return MakeNode(std::move(out), {a, b}, [a, b](Variable* n) {
    if (a->requires_grad) {
      for (int i = 0; i < n->grad.size(); ++i) {
        a->grad[i] += n->grad[i] * b->value[i];
      }
    }
    if (b->requires_grad) {
      for (int i = 0; i < n->grad.size(); ++i) {
        b->grad[i] += n->grad[i] * a->value[i];
      }
    }
  });
}

Var Scale(const Var& a, Float s) {
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] *= s;
  return MakeNode(std::move(out), {a}, [a, s](Variable* n) {
    if (a->requires_grad) {
      for (int i = 0; i < n->grad.size(); ++i) a->grad[i] += s * n->grad[i];
    }
  });
}

Var AddScalar(const Var& a, Float s) {
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] += s;
  return MakeNode(std::move(out), {a},
                  [a](Variable* n) { Accum(a, n->grad); });
}

Var Neg(const Var& a) { return Scale(a, -1.0); }

// ---------------------------------------------------------------------------
// Pointwise nonlinearities.
// ---------------------------------------------------------------------------

Var Tanh(const Var& a) {
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  auto node = MakeNode(std::move(out), {a}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [a](Variable* n) {
      for (int i = 0; i < n->grad.size(); ++i) {
        a->grad[i] += n->grad[i] * (1.0 - n->value[i] * n->value[i]);
      }
    };
  }
  return node;
}

Var Sigmoid(const Var& a) {
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] = 1.0 / (1.0 + std::exp(-out[i]));
  auto node = MakeNode(std::move(out), {a}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [a](Variable* n) {
      for (int i = 0; i < n->grad.size(); ++i) {
        a->grad[i] += n->grad[i] * n->value[i] * (1.0 - n->value[i]);
      }
    };
  }
  return node;
}

Var Relu(const Var& a) {
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] = std::max(out[i], 0.0);
  return MakeNode(std::move(out), {a}, [a](Variable* n) {
    if (!a->requires_grad) return;
    for (int i = 0; i < n->grad.size(); ++i) {
      if (a->value[i] > 0.0) a->grad[i] += n->grad[i];
    }
  });
}

// In-place variants: an rvalue handle whose buffer nothing else can observe
// is overwritten instead of copied (see CanReuseBuffer). These fire on the
// inference path, where chains like Tanh(SliceVec(...)) otherwise copy
// every intermediate.

Var Tanh(Var&& a) {
  if (!CanReuseBuffer(a)) return Tanh(a);
  Tensor out = std::move(a->value);
  Float* x = out.data();
  const int n = out.size();
  for (int i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
  return MakeNode(std::move(out), {}, nullptr);
}

Var Sigmoid(Var&& a) {
  if (!CanReuseBuffer(a)) return Sigmoid(a);
  Tensor out = std::move(a->value);
  Float* x = out.data();
  const int n = out.size();
  for (int i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
  return MakeNode(std::move(out), {}, nullptr);
}

Var Relu(Var&& a) {
  if (!CanReuseBuffer(a)) return Relu(a);
  Tensor out = std::move(a->value);
  Float* x = out.data();
  const int n = out.size();
  for (int i = 0; i < n; ++i) x[i] = std::max(x[i], 0.0);
  return MakeNode(std::move(out), {}, nullptr);
}

Var Exp(Var&& a) {
  if (!CanReuseBuffer(a)) return Exp(a);
  Tensor out = std::move(a->value);
  Float* x = out.data();
  const int n = out.size();
  for (int i = 0; i < n; ++i) x[i] = std::exp(x[i]);
  return MakeNode(std::move(out), {}, nullptr);
}

Var Exp(const Var& a) {
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) out[i] = std::exp(out[i]);
  auto node = MakeNode(std::move(out), {a}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [a](Variable* n) {
      for (int i = 0; i < n->grad.size(); ++i) {
        a->grad[i] += n->grad[i] * n->value[i];
      }
    };
  }
  return node;
}

Var Log(const Var& a) {
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) {
    DLNER_CHECK_GT(out[i], 0.0);
    out[i] = std::log(out[i]);
  }
  return MakeNode(std::move(out), {a}, [a](Variable* n) {
    if (!a->requires_grad) return;
    for (int i = 0; i < n->grad.size(); ++i) {
      a->grad[i] += n->grad[i] / a->value[i];
    }
  });
}

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

Var MatMul(const Var& a, const Var& b) {
  DLNER_CHECK_EQ(a->value.dim(), 2);
  DLNER_CHECK_EQ(b->value.dim(), 2);
  const int m = a->value.rows();
  const int k = a->value.cols();
  DLNER_CHECK_EQ(k, b->value.rows());
  const int n = b->value.cols();

  Tensor out({m, n});
  GemmAccum(a->value.data(), b->value.data(), out.data(), m, k, n);
  return MakeNode(std::move(out), {a, b}, [a, b, m, k, n](Variable* node) {
    if (a->requires_grad) {
      GemmAccumGradA(node->grad.data(), b->value.data(), a->grad.data(), m, k,
                     n);
    }
    if (b->requires_grad) {
      GemmAccumGradB(a->value.data(), node->grad.data(), b->grad.data(), m, k,
                     n);
    }
  });
}

// ---------------------------------------------------------------------------
// Fused affine ops. One graph node instead of the MatMul -> AddRowBroadcast
// (-> activation) chain: the bias is written into the output rows before the
// GEMM accumulates into them, and the optional activation is applied in the
// same pass, saving one full-tensor copy and one node per call — which on
// the RNN hot path means per gate per timestep.
// ---------------------------------------------------------------------------

namespace {

enum class FusedAct { kNone, kTanh, kSigmoid };

Var AffineImpl(const Var& x, const Var& w, const Var& b, FusedAct act) {
  DLNER_CHECK_EQ(x->value.dim(), 2);
  DLNER_CHECK_EQ(w->value.dim(), 2);
  DLNER_CHECK_EQ(b->value.dim(), 1);
  const int m = x->value.rows();
  const int k = x->value.cols();
  DLNER_CHECK_EQ(k, w->value.rows());
  const int n = w->value.cols();
  DLNER_CHECK_EQ(n, b->value.size());

  Tensor out({m, n});
  Float* c = out.data();
  const Float* bias = b->value.data();
  for (int i = 0; i < m; ++i) {
    std::memcpy(c + static_cast<std::size_t>(i) * n, bias,
                sizeof(Float) * static_cast<std::size_t>(n));
  }
  GemmAccum(x->value.data(), w->value.data(), c, m, k, n);
  const int total = m * n;
  switch (act) {
    case FusedAct::kNone:
      break;
    case FusedAct::kTanh:
      for (int i = 0; i < total; ++i) c[i] = std::tanh(c[i]);
      break;
    case FusedAct::kSigmoid:
      for (int i = 0; i < total; ++i) c[i] = 1.0 / (1.0 + std::exp(-c[i]));
      break;
  }

  auto node = MakeNode(std::move(out), {x, w, b}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [x, w, b, act, m, k, n](Variable* nd) {
      // dZ is the gradient at the pre-activation; for the identity case it
      // is nd->grad itself and no temporary is materialized.
      Tensor dz_store;
      const Float* dz = nd->grad.data();
      if (act != FusedAct::kNone) {
        dz_store = Tensor({m, n});
        Float* t = dz_store.data();
        const Float* y = nd->value.data();
        const Float* g = nd->grad.data();
        const int total = m * n;
        if (act == FusedAct::kTanh) {
          for (int i = 0; i < total; ++i) t[i] = g[i] * (1.0 - y[i] * y[i]);
        } else {
          for (int i = 0; i < total; ++i) t[i] = g[i] * y[i] * (1.0 - y[i]);
        }
        dz = t;
      }
      if (x->requires_grad) {
        GemmAccumGradA(dz, w->value.data(), x->grad.data(), m, k, n);
      }
      if (w->requires_grad) {
        GemmAccumGradB(x->value.data(), dz, w->grad.data(), m, k, n);
      }
      if (b->requires_grad) {
        Float* bg = b->grad.data();
        for (int i = 0; i < m; ++i) {
          const Float* row = dz + static_cast<std::size_t>(i) * n;
          for (int j = 0; j < n; ++j) bg[j] += row[j];
        }
      }
    };
  }
  return node;
}

}  // namespace

Var Affine(const Var& x, const Var& w, const Var& b) {
  return AffineImpl(x, w, b, FusedAct::kNone);
}

Var AffineTanh(const Var& x, const Var& w, const Var& b) {
  return AffineImpl(x, w, b, FusedAct::kTanh);
}

Var AffineSigmoid(const Var& x, const Var& w, const Var& b) {
  return AffineImpl(x, w, b, FusedAct::kSigmoid);
}

Var AffineVec(const Var& x, const Var& w, const Var& b) {
  DLNER_CHECK_EQ(x->value.dim(), 1);
  DLNER_CHECK_EQ(w->value.dim(), 2);
  DLNER_CHECK_EQ(b->value.dim(), 1);
  const int k = x->value.size();
  DLNER_CHECK_EQ(k, w->value.rows());
  const int n = w->value.cols();
  DLNER_CHECK_EQ(n, b->value.size());

  Tensor out({n}, b->value.vec());
  Float* c = out.data();
  const Float* xv = x->value.data();
  const Float* wm = w->value.data();
  for (int p = 0; p < k; ++p) {
    const Float av = xv[p];
    if (av == 0.0) continue;
    const Float* wrow = wm + static_cast<std::size_t>(p) * n;
    for (int j = 0; j < n; ++j) c[j] += av * wrow[j];
  }
  return MakeNode(std::move(out), {x, w, b}, [x, w, b, k, n](Variable* nd) {
    const Float* g = nd->grad.data();
    const Float* wm = w->value.data();
    if (x->requires_grad) {
      Float* xg = x->grad.data();
      for (int p = 0; p < k; ++p) {
        const Float* wrow = wm + static_cast<std::size_t>(p) * n;
        Float s = 0.0;
        for (int j = 0; j < n; ++j) s += g[j] * wrow[j];
        xg[p] += s;
      }
    }
    if (w->requires_grad) {
      const Float* xv = x->value.data();
      Float* wg = w->grad.data();
      for (int p = 0; p < k; ++p) {
        const Float av = xv[p];
        if (av == 0.0) continue;
        Float* wrow = wg + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) wrow[j] += av * g[j];
      }
    }
    if (b->requires_grad) {
      Float* bg = b->grad.data();
      for (int j = 0; j < n; ++j) bg[j] += g[j];
    }
  });
}

Var Transpose(const Var& m) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  const int r = m->value.rows();
  const int c = m->value.cols();
  Tensor out({c, r});
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at(j, i) = m->value.at(i, j);
  }
  return MakeNode(std::move(out), {m}, [m, r, c](Variable* n) {
    if (!m->requires_grad) return;
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < c; ++j) m->grad.at(i, j) += n->grad.at(j, i);
    }
  });
}

Var Dot(const Var& a, const Var& b) {
  DLNER_CHECK_EQ(a->value.dim(), 1);
  DLNER_CHECK(a->value.SameShape(b->value));
  Float s = 0.0;
  for (int i = 0; i < a->value.size(); ++i) s += a->value[i] * b->value[i];
  return MakeNode(Tensor({1}, {s}), {a, b}, [a, b](Variable* n) {
    const Float g = n->grad[0];
    if (a->requires_grad) {
      for (int i = 0; i < a->value.size(); ++i) {
        a->grad[i] += g * b->value[i];
      }
    }
    if (b->requires_grad) {
      for (int i = 0; i < b->value.size(); ++i) {
        b->grad[i] += g * a->value[i];
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Broadcasts.
// ---------------------------------------------------------------------------

Var AddRowBroadcast(const Var& m, const Var& v) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  DLNER_CHECK_EQ(v->value.dim(), 1);
  const int r = m->value.rows();
  const int c = m->value.cols();
  DLNER_CHECK_EQ(c, v->value.size());
  Tensor out = m->value;
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at(i, j) += v->value[j];
  }
  return MakeNode(std::move(out), {m, v}, [m, v, r, c](Variable* n) {
    Accum(m, n->grad);
    if (v->requires_grad) {
      for (int i = 0; i < r; ++i) {
        for (int j = 0; j < c; ++j) v->grad[j] += n->grad.at(i, j);
      }
    }
  });
}

Var AddColBroadcast(const Var& m, const Var& v) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  DLNER_CHECK_EQ(v->value.dim(), 1);
  const int r = m->value.rows();
  const int c = m->value.cols();
  DLNER_CHECK_EQ(r, v->value.size());
  Tensor out = m->value;
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at(i, j) += v->value[i];
  }
  return MakeNode(std::move(out), {m, v}, [m, v, r, c](Variable* n) {
    Accum(m, n->grad);
    if (v->requires_grad) {
      for (int i = 0; i < r; ++i) {
        for (int j = 0; j < c; ++j) v->grad[i] += n->grad.at(i, j);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

Var Sum(const Var& a) {
  Float s = 0.0;
  for (int i = 0; i < a->value.size(); ++i) s += a->value[i];
  return MakeNode(Tensor({1}, {s}), {a}, [a](Variable* n) {
    if (!a->requires_grad) return;
    const Float g = n->grad[0];
    for (int i = 0; i < a->grad.size(); ++i) a->grad[i] += g;
  });
}

Var Mean(const Var& a) {
  DLNER_CHECK_GT(a->value.size(), 0);
  return Scale(Sum(a), 1.0 / a->value.size());
}

Var MaxOverRows(const Var& m) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  const int r = m->value.rows();
  const int c = m->value.cols();
  DLNER_CHECK_GT(r, 0);
  Tensor out({c});
  std::vector<int> argmax(c, 0);
  for (int j = 0; j < c; ++j) {
    Float best = m->value.at(0, j);
    for (int i = 1; i < r; ++i) {
      if (m->value.at(i, j) > best) {
        best = m->value.at(i, j);
        argmax[j] = i;
      }
    }
    out[j] = best;
  }
  return MakeNode(std::move(out), {m},
                  [m, argmax = std::move(argmax), c](Variable* n) {
                    if (!m->requires_grad) return;
                    for (int j = 0; j < c; ++j) {
                      m->grad.at(argmax[j], j) += n->grad[j];
                    }
                  });
}

Var MeanOverRows(const Var& m) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  const int r = m->value.rows();
  const int c = m->value.cols();
  DLNER_CHECK_GT(r, 0);
  Tensor out({c});
  for (int j = 0; j < c; ++j) {
    Float s = 0.0;
    for (int i = 0; i < r; ++i) s += m->value.at(i, j);
    out[j] = s / r;
  }
  return MakeNode(std::move(out), {m}, [m, r, c](Variable* n) {
    if (!m->requires_grad) return;
    for (int j = 0; j < c; ++j) {
      const Float g = n->grad[j] / r;
      for (int i = 0; i < r; ++i) m->grad.at(i, j) += g;
    }
  });
}

Var LogSumExp(const Var& v) {
  DLNER_CHECK_EQ(v->value.dim(), 1);
  DLNER_CHECK_GT(v->value.size(), 0);
  const int n = v->value.size();
  Float mx = v->value[0];
  for (int i = 1; i < n; ++i) mx = std::max(mx, v->value[i]);
  Float s = 0.0;
  for (int i = 0; i < n; ++i) s += std::exp(v->value[i] - mx);
  const Float lse = mx + std::log(s);
  return MakeNode(Tensor({1}, {lse}), {v}, [v, n, lse](Variable* node) {
    if (!v->requires_grad) return;
    const Float g = node->grad[0];
    for (int i = 0; i < n; ++i) {
      v->grad[i] += g * std::exp(v->value[i] - lse);
    }
  });
}

Var LogSumExpOverRows(const Var& m) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  const int r = m->value.rows();
  const int c = m->value.cols();
  DLNER_CHECK_GT(r, 0);
  Tensor out({c});
  for (int j = 0; j < c; ++j) {
    Float mx = m->value.at(0, j);
    for (int i = 1; i < r; ++i) mx = std::max(mx, m->value.at(i, j));
    Float s = 0.0;
    for (int i = 0; i < r; ++i) s += std::exp(m->value.at(i, j) - mx);
    out[j] = mx + std::log(s);
  }
  auto node = MakeNode(std::move(out), {m}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [m, r, c](Variable* n) {
      for (int j = 0; j < c; ++j) {
        const Float g = n->grad[j];
        const Float lse = n->value[j];
        for (int i = 0; i < r; ++i) {
          m->grad.at(i, j) += g * std::exp(m->value.at(i, j) - lse);
        }
      }
    };
  }
  return node;
}

// ---------------------------------------------------------------------------
// Softmax family.
// ---------------------------------------------------------------------------

Var Softmax(const Var& v) {
  DLNER_CHECK_EQ(v->value.dim(), 1);
  const int n = v->value.size();
  DLNER_CHECK_GT(n, 0);
  Tensor out({n});
  Float mx = v->value[0];
  for (int i = 1; i < n; ++i) mx = std::max(mx, v->value[i]);
  Float s = 0.0;
  for (int i = 0; i < n; ++i) {
    out[i] = std::exp(v->value[i] - mx);
    s += out[i];
  }
  for (int i = 0; i < n; ++i) out[i] /= s;
  auto node = MakeNode(std::move(out), {v}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [v, n](Variable* node_) {
      Float dot = 0.0;
      for (int i = 0; i < n; ++i) dot += node_->grad[i] * node_->value[i];
      for (int i = 0; i < n; ++i) {
        v->grad[i] += node_->value[i] * (node_->grad[i] - dot);
      }
    };
  }
  return node;
}

Var SoftmaxRows(const Var& m) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  const int r = m->value.rows();
  const int c = m->value.cols();
  Tensor out({r, c});
  for (int i = 0; i < r; ++i) {
    Float mx = m->value.at(i, 0);
    for (int j = 1; j < c; ++j) mx = std::max(mx, m->value.at(i, j));
    Float s = 0.0;
    for (int j = 0; j < c; ++j) {
      out.at(i, j) = std::exp(m->value.at(i, j) - mx);
      s += out.at(i, j);
    }
    for (int j = 0; j < c; ++j) out.at(i, j) /= s;
  }
  auto node = MakeNode(std::move(out), {m}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [m, r, c](Variable* n) {
      for (int i = 0; i < r; ++i) {
        Float dot = 0.0;
        for (int j = 0; j < c; ++j) dot += n->grad.at(i, j) * n->value.at(i, j);
        for (int j = 0; j < c; ++j) {
          m->grad.at(i, j) += n->value.at(i, j) * (n->grad.at(i, j) - dot);
        }
      }
    };
  }
  return node;
}

Var LogSoftmax(const Var& v) {
  DLNER_CHECK_EQ(v->value.dim(), 1);
  const int n = v->value.size();
  DLNER_CHECK_GT(n, 0);
  Float mx = v->value[0];
  for (int i = 1; i < n; ++i) mx = std::max(mx, v->value[i]);
  Float s = 0.0;
  for (int i = 0; i < n; ++i) s += std::exp(v->value[i] - mx);
  const Float lse = mx + std::log(s);
  Tensor out({n});
  for (int i = 0; i < n; ++i) out[i] = v->value[i] - lse;
  auto node = MakeNode(std::move(out), {v}, nullptr);
  if (node->requires_grad) {
    node->backward_fn = [v, n](Variable* node_) {
      Float gsum = 0.0;
      for (int i = 0; i < n; ++i) gsum += node_->grad[i];
      for (int i = 0; i < n; ++i) {
        v->grad[i] += node_->grad[i] - std::exp(node_->value[i]) * gsum;
      }
    };
  }
  return node;
}

// ---------------------------------------------------------------------------
// Indexing, reshaping, and structure.
// ---------------------------------------------------------------------------

Var Row(const Var& m, int r) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  DLNER_CHECK_GE(r, 0);
  DLNER_CHECK_LT(r, m->value.rows());
  const int c = m->value.cols();
  Tensor out({c});
  for (int j = 0; j < c; ++j) out[j] = m->value.at(r, j);
  return MakeNode(std::move(out), {m}, [m, r, c](Variable* n) {
    if (!m->requires_grad) return;
    for (int j = 0; j < c; ++j) m->grad.at(r, j) += n->grad[j];
  });
}

Var Rows(const Var& m, const std::vector<int>& ids) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  const int c = m->value.cols();
  const int k = static_cast<int>(ids.size());
  DLNER_CHECK_GT(k, 0);
  Tensor out({k, c});
  for (int i = 0; i < k; ++i) {
    DLNER_CHECK_GE(ids[i], 0);
    DLNER_CHECK_LT(ids[i], m->value.rows());
    for (int j = 0; j < c; ++j) out.at(i, j) = m->value.at(ids[i], j);
  }
  return MakeNode(std::move(out), {m}, [m, ids, k, c](Variable* n) {
    if (!m->requires_grad) return;
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < c; ++j) m->grad.at(ids[i], j) += n->grad.at(i, j);
    }
  });
}

Var StackRows(const std::vector<Var>& rows) {
  DLNER_CHECK(!rows.empty());
  const int c = rows[0]->value.size();
  const int k = static_cast<int>(rows.size());
  Tensor out({k, c});
  for (int i = 0; i < k; ++i) {
    DLNER_CHECK_EQ(rows[i]->value.dim(), 1);
    DLNER_CHECK_EQ(rows[i]->value.size(), c);
    for (int j = 0; j < c; ++j) out.at(i, j) = rows[i]->value[j];
  }
  return MakeNode(std::move(out), rows, [rows, k, c](Variable* n) {
    for (int i = 0; i < k; ++i) {
      if (!rows[i]->requires_grad) continue;
      for (int j = 0; j < c; ++j) rows[i]->grad[j] += n->grad.at(i, j);
    }
  });
}

Var ConcatVecs(const std::vector<Var>& parts) {
  DLNER_CHECK(!parts.empty());
  int total = 0;
  for (const Var& p : parts) {
    DLNER_CHECK_EQ(p->value.dim(), 1);
    total += p->value.size();
  }
  Tensor out({total});
  int off = 0;
  for (const Var& p : parts) {
    for (int i = 0; i < p->value.size(); ++i) out[off + i] = p->value[i];
    off += p->value.size();
  }
  return MakeNode(std::move(out), parts, [parts](Variable* n) {
    int off = 0;
    for (const Var& p : parts) {
      if (p->requires_grad) {
        for (int i = 0; i < p->value.size(); ++i) {
          p->grad[i] += n->grad[off + i];
        }
      }
      off += p->value.size();
    }
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  DLNER_CHECK(!parts.empty());
  const int r = parts[0]->value.rows();
  int total = 0;
  for (const Var& p : parts) {
    DLNER_CHECK_EQ(p->value.dim(), 2);
    DLNER_CHECK_EQ(p->value.rows(), r);
    total += p->value.cols();
  }
  Tensor out({r, total});
  int off = 0;
  for (const Var& p : parts) {
    const int c = p->value.cols();
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < c; ++j) out.at(i, off + j) = p->value.at(i, j);
    }
    off += c;
  }
  return MakeNode(std::move(out), parts, [parts, r](Variable* n) {
    int off = 0;
    for (const Var& p : parts) {
      const int c = p->value.cols();
      if (p->requires_grad) {
        for (int i = 0; i < r; ++i) {
          for (int j = 0; j < c; ++j) {
            p->grad.at(i, j) += n->grad.at(i, off + j);
          }
        }
      }
      off += c;
    }
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  DLNER_CHECK(!parts.empty());
  const int c = parts[0]->value.cols();
  int total = 0;
  for (const Var& p : parts) {
    DLNER_CHECK_EQ(p->value.dim(), 2);
    DLNER_CHECK_EQ(p->value.cols(), c);
    total += p->value.rows();
  }
  Tensor out({total, c});
  int off = 0;
  for (const Var& p : parts) {
    for (int i = 0; i < p->value.rows(); ++i) {
      for (int j = 0; j < c; ++j) out.at(off + i, j) = p->value.at(i, j);
    }
    off += p->value.rows();
  }
  return MakeNode(std::move(out), parts, [parts, c](Variable* n) {
    int off = 0;
    for (const Var& p : parts) {
      if (p->requires_grad) {
        for (int i = 0; i < p->value.rows(); ++i) {
          for (int j = 0; j < c; ++j) {
            p->grad.at(i, j) += n->grad.at(off + i, j);
          }
        }
      }
      off += p->value.rows();
    }
  });
}

Var Pick(const Var& v, int i) {
  DLNER_CHECK_EQ(v->value.dim(), 1);
  DLNER_CHECK_GE(i, 0);
  DLNER_CHECK_LT(i, v->value.size());
  return MakeNode(Tensor({1}, {v->value[i]}), {v}, [v, i](Variable* n) {
    if (v->requires_grad) v->grad[i] += n->grad[0];
  });
}

Var PickAt(const Var& m, int r, int c) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  return MakeNode(Tensor({1}, {m->value.at(r, c)}), {m},
                  [m, r, c](Variable* n) {
                    if (m->requires_grad) m->grad.at(r, c) += n->grad[0];
                  });
}

Var AsRow(const Var& v) {
  DLNER_CHECK_EQ(v->value.dim(), 1);
  const int n = v->value.size();
  Tensor out({1, n}, v->value.vec());
  return MakeNode(std::move(out), {v}, [v, n](Variable* node) {
    if (!v->requires_grad) return;
    for (int i = 0; i < n; ++i) v->grad[i] += node->grad[i];
  });
}

Var AsVector(const Var& m) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  DLNER_CHECK_EQ(m->value.rows(), 1);
  const int n = m->value.cols();
  Tensor out({n}, m->value.vec());
  return MakeNode(std::move(out), {m}, [m, n](Variable* node) {
    if (!m->requires_grad) return;
    for (int i = 0; i < n; ++i) m->grad[i] += node->grad[i];
  });
}

Var PadRows(const Var& m, int top, int bottom) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  DLNER_CHECK_GE(top, 0);
  DLNER_CHECK_GE(bottom, 0);
  const int r = m->value.rows();
  const int c = m->value.cols();
  Tensor out({r + top + bottom, c});
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) out.at(top + i, j) = m->value.at(i, j);
  }
  return MakeNode(std::move(out), {m}, [m, top, r, c](Variable* n) {
    if (!m->requires_grad) return;
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < c; ++j) m->grad.at(i, j) += n->grad.at(top + i, j);
    }
  });
}

// ---------------------------------------------------------------------------
// Regularization.
// ---------------------------------------------------------------------------

Var Dropout(const Var& a, Float p, Rng* rng, bool training) {
  DLNER_CHECK_GE(p, 0.0);
  DLNER_CHECK_LT(p, 1.0);
  if (!training || p == 0.0) return a;
  DLNER_CHECK(rng != nullptr);
  const Float keep = 1.0 - p;
  std::vector<Float> mask(a->value.size());
  Tensor out = a->value;
  for (int i = 0; i < out.size(); ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0 : 1.0 / keep;
    out[i] *= mask[i];
  }
  return MakeNode(std::move(out), {a},
                  [a, mask = std::move(mask)](Variable* n) {
                    if (!a->requires_grad) return;
                    for (int i = 0; i < n->grad.size(); ++i) {
                      a->grad[i] += n->grad[i] * mask[i];
                    }
                  });
}

// ---------------------------------------------------------------------------
// Losses.
// ---------------------------------------------------------------------------

Var CrossEntropyWithLogits(const Var& logits, int target) {
  DLNER_CHECK_EQ(logits->value.dim(), 1);
  DLNER_CHECK_GE(target, 0);
  DLNER_CHECK_LT(target, logits->value.size());
  return Neg(Pick(LogSoftmax(logits), target));
}

Var MeanSquaredError(const Var& a, const Var& b) {
  Var d = Sub(a, b);
  return Mean(Mul(d, d));
}

}  // namespace dlner
