#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"

namespace dlner {
namespace {

int NumElements(const std::vector<int>& shape) {
  int n = 1;
  for (int d : shape) {
    DLNER_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

// Cached instrument pointers (stable for the process lifetime) so the
// enabled path of allocation accounting is four relaxed atomic ops, not a
// registry lookup.
struct TensorMetrics {
  obs::Counter* allocs;
  obs::Counter* alloc_bytes;
  obs::Gauge* live_bytes;
  obs::Gauge* peak_bytes;
};

const TensorMetrics& Tm() {
  static const TensorMetrics tm = [] {
    obs::Metrics& m = obs::Metrics::Get();
    return TensorMetrics{m.counter("tensor.allocs"),
                         m.counter("tensor.alloc_bytes"),
                         m.gauge("tensor.live_bytes"),
                         m.gauge("tensor.peak_bytes")};
  }();
  return tm;
}

}  // namespace

void Tensor::TrackAlloc() {
  if (!obs::MetricsEnabled()) return;
  tracked_bytes_ =
      static_cast<std::int64_t>(data_.size() * sizeof(Float));
  const TensorMetrics& tm = Tm();
  tm.allocs->Add(1);
  tm.alloc_bytes->Add(tracked_bytes_);
  tm.peak_bytes->SetMax(
      tm.live_bytes->Add(static_cast<double>(tracked_bytes_)));
}

void Tensor::ReleaseTracked() {
  if (tracked_bytes_ == 0) return;
  Tm().live_bytes->Add(-static_cast<double>(tracked_bytes_));
  tracked_bytes_ = 0;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0) {
  TrackAlloc();
}

Tensor::Tensor(std::vector<int> shape, std::vector<Float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  DLNER_CHECK_EQ(NumElements(shape_), static_cast<int>(data_.size()));
  TrackAlloc();
}

Tensor Tensor::Zeros(int n) { return Tensor({n}); }

Tensor Tensor::Zeros(int rows, int cols) { return Tensor({rows, cols}); }

Tensor Tensor::FromVector(const std::vector<Float>& values) {
  return Tensor({static_cast<int>(values.size())}, values);
}

Tensor Tensor::Full(std::vector<int> shape, Float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

int Tensor::shape(int axis) const {
  DLNER_CHECK_GE(axis, 0);
  DLNER_CHECK_LT(axis, dim());
  return shape_[axis];
}

int Tensor::rows() const {
  DLNER_CHECK_EQ(dim(), 2);
  return shape_[0];
}

int Tensor::cols() const {
  DLNER_CHECK_EQ(dim(), 2);
  return shape_[1];
}

Float& Tensor::operator[](int i) {
  DLNER_CHECK_GE(i, 0);
  DLNER_CHECK_LT(i, size());
  return data_[i];
}

Float Tensor::operator[](int i) const {
  DLNER_CHECK_GE(i, 0);
  DLNER_CHECK_LT(i, size());
  return data_[i];
}

Float& Tensor::at(int r, int c) {
  DLNER_CHECK_EQ(dim(), 2);
  DLNER_CHECK_GE(r, 0);
  DLNER_CHECK_LT(r, shape_[0]);
  DLNER_CHECK_GE(c, 0);
  DLNER_CHECK_LT(c, shape_[1]);
  return data_[r * shape_[1] + c];
}

Float Tensor::at(int r, int c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

void Tensor::Fill(Float value) {
  for (Float& x : data_) x = value;
}

void Tensor::AccumulateFrom(const Tensor& other) {
  DLNER_CHECK_MSG(SameShape(other), ShapeString() << " vs "
                                                  << other.ShapeString());
  for (int i = 0; i < size(); ++i) data_[i] += other.data_[i];
}

Float Tensor::Norm() const {
  Float s = 0.0;
  for (Float x : data_) s += x * x;
  return std::sqrt(s);
}

std::uint64_t Tensor::Fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](const unsigned char* bytes, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  for (int d : shape_) {
    mix(reinterpret_cast<const unsigned char*>(&d), sizeof(d));
  }
  if (!data_.empty()) {
    mix(reinterpret_cast<const unsigned char*>(data_.data()),
        data_.size() * sizeof(Float));
  }
  return h;
}

std::string Tensor::ShapeString() const {
  std::ostringstream oss;
  oss << "[";
  for (int i = 0; i < dim(); ++i) {
    if (i > 0) oss << "x";
    oss << shape_[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace dlner
