// Packed-batch forward kernels for the compiled inference plan.
//
// A micro-batch of B sentences is laid out *packed* (ragged), not padded:
// sentence b occupies rows [offsets[b], offsets[b+1]) of one [sum(T_b), d]
// row-major buffer. Because the shared GEMM kernel (tensor/gemm.h)
// accumulates every output row independently in ascending-k order, one
// blocked GEMM over the packed buffer is bit-identical to B per-sentence
// GEMMs — which is what makes planned-vs-eager differential tests exact
// and makes results independent of batch composition (batch-order and
// thread-count invariance come for free).
//
// Sequence structure (convolution windows, recurrent steps, max-pooling)
// is handled per segment: windows never cross a sentence boundary, and the
// recurrent kernels step time per segment with an active-lane mask, so no
// padding rows ever enter a computation.
//
// Every kernel replicates the corresponding eager module's per-element
// operation order exactly; any change here must keep the planned-vs-eager
// differential suite (tests/differential_test.cc) bit-identical.
#ifndef DLNER_TENSOR_BATCHED_H_
#define DLNER_TENSOR_BATCHED_H_

#include <vector>

#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace dlner::batched {

/// Ragged layout of a packed micro-batch: sentence b occupies rows
/// [offsets[b], offsets[b+1]) of the packed buffer.
struct BatchLayout {
  std::vector<int> offsets{0};

  void Add(int len) { offsets.push_back(offsets.back() + len); }
  int batch() const { return static_cast<int>(offsets.size()) - 1; }
  int rows() const { return offsets.back(); }
  int offset(int b) const { return offsets[b]; }
  int len(int b) const { return offsets[b + 1] - offsets[b]; }
  int max_len() const;
};

enum class Act { kNone, kRelu, kTanh };

/// out[rows,n] = act(x[rows,k] . w[k,n] + b[n]). Same bias-first,
/// ascending-k accumulation as the eager Affine/AffineVec ops.
void Affine(const Float* x, int rows, const Tensor& w, const Tensor& b,
            Float* out, Act act = Act::kNone);

/// In-place ReLU over a flat buffer (matches the eager Relu op).
void ReluInPlace(Float* x, int n);

/// Segment-aware im2col: the eager Unfold applied independently to every
/// segment (windows zero-padded at segment boundaries). x is [rows, d],
/// out is [rows, width*d]; width must be odd.
void UnfoldSegments(const Float* x, int d, const BatchLayout& layout,
                    int width, int dilation, Float* out);

/// Implicit 1-D convolution over every segment: exactly Affine(unfold(x))
/// with w [width*d, n] / b [n], but the window rows are read from x in
/// place instead of materializing the unfolded buffer. Accumulation per
/// output row runs in the same ascending-p order with the same zero-skip
/// as the GEMM kernel over an unfolded row (out-of-segment window slots
/// are the zeros the kernel would have skipped), so results are
/// bit-identical to UnfoldSegments + Affine.
void ConvSegments(const Float* x, int d, const BatchLayout& layout,
                  int width, int dilation, const Tensor& w, const Tensor& b,
                  Float* out, Act act = Act::kNone);

/// Per-row layer normalization replicating LayerNorm::Apply's forward
/// arithmetic (mean, biased variance, eps = 1e-5, gain/bias).
void LayerNormRows(const Float* x, int rows, int d, const Tensor& gain,
                   const Tensor& bias, Float* out);

/// CnnEncoder's global feature: for each segment, the column-wise max over
/// the segment's rows of h [rows, d] is appended to every row of that
/// segment; out is [rows, 2*d].
void GlobalMaxConcat(const Float* h, int d, const BatchLayout& layout,
                     Float* out);

/// One direction of an LSTM/GRU layer, expressed by its fused parameter
/// matrices (same layout as the eager cells in tensor/rnn.h).
struct LstmDir {
  const Tensor* w = nullptr;  // [in+hid, 4*hid], gate order i, f, o, g
  const Tensor* b = nullptr;  // [4*hid]
};
struct GruDir {
  const Tensor* rz_w = nullptr;    // [in+hid, 2*hid], order r, z
  const Tensor* rz_b = nullptr;    // [2*hid]
  const Tensor* cand_w = nullptr;  // [in+hid, hid]
  const Tensor* cand_b = nullptr;  // [hid]
};

/// Bidirectional LSTM over the packed batch: time steps run across all
/// still-active segments at once (one gate GEMM per step instead of one
/// per sentence). x is [rows, in_dim], out is [rows, 2*hidden] with
/// forward states in columns [0, hidden) and backward states in
/// [hidden, 2*hidden), rows aligned with the input (as in BiRnn::Apply).
/// Scratch state comes from `arena`.
void BiLstm(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
            const LstmDir& fwd, const LstmDir& bwd, Float* out, Arena* arena);

/// Bidirectional GRU; same contract as BiLstm.
void BiGru(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
           const GruDir& fwd, const GruDir& bwd, Float* out, Arena* arena);

// --- ISA-templated variants -----------------------------------------------
//
// Each kernel above is a thin wrapper over a template parameterized on the
// SIMD primitive set (tensor/simd/simd.h). Every instantiation is
// bit-identical by contract; the differential suite checks simd::Active
// against simd::Scalar over random shapes and ragged segment mixes.
// Instantiations for simd::Scalar and simd::Active are provided by
// batched.cc.
template <class Isa>
void AffineT(const Float* x, int rows, const Tensor& w, const Tensor& b,
             Float* out, Act act = Act::kNone);
template <class Isa>
void ReluInPlaceT(Float* x, int n);
template <class Isa>
void ConvSegmentsT(const Float* x, int d, const BatchLayout& layout,
                   int width, int dilation, const Tensor& w, const Tensor& b,
                   Float* out, Act act = Act::kNone);
template <class Isa>
void LayerNormRowsT(const Float* x, int rows, int d, const Tensor& gain,
                    const Tensor& bias, Float* out);
template <class Isa>
void GlobalMaxConcatT(const Float* h, int d, const BatchLayout& layout,
                      Float* out);
template <class Isa>
void BiLstmT(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
             const LstmDir& fwd, const LstmDir& bwd, Float* out, Arena* arena);
template <class Isa>
void BiGruT(const Float* x, int in_dim, int hidden, const BatchLayout& layout,
            const GruDir& fwd, const GruDir& bwd, Float* out, Arena* arena);

/// Benchmark hook: routes the non-template entry points above (and the
/// quantized kernels in tensor/quant.h) through the simd::Scalar
/// instantiations, so one binary can A/B planned-SIMD against
/// planned-scalar end to end (bench_throughput's bench.simd_speedup.*
/// series). Outputs are bit-identical either way — this only trades speed.
/// Process-wide; not meant for production use.
void ForceScalarKernels(bool force);
bool ScalarKernelsForced();

}  // namespace dlner::batched

#endif  // DLNER_TENSOR_BATCHED_H_
