// Reusable neural-network building blocks on top of the autograd ops.
//
// Modules own their Parameter Variables and expose them through
// Parameters(); optimizers and serializers operate on those lists. Modules
// are identity objects (non-copyable), mirroring the style-guide rule that
// classes with ownership semantics make copyability explicit.
#ifndef DLNER_TENSOR_NN_H_
#define DLNER_TENSOR_NN_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/variable.h"

namespace dlner {

/// Base class for anything that owns trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module (and submodules).
  virtual std::vector<Var> Parameters() const = 0;

  /// Total scalar parameter count.
  int ParameterCount() const;
};

/// Concatenates the parameter lists of several modules.
std::vector<Var> JoinParameters(
    const std::vector<const Module*>& modules);

// ---------------------------------------------------------------------------
// Initialization helpers.
// ---------------------------------------------------------------------------

/// Glorot/Xavier-uniform matrix [rows, cols].
Tensor GlorotMatrix(int rows, int cols, Rng* rng);
/// Uniform matrix in [-scale, scale].
Tensor UniformMatrix(int rows, int cols, Float scale, Rng* rng);
/// Uniform vector in [-scale, scale].
Tensor UniformVector(int n, Float scale, Rng* rng);

// ---------------------------------------------------------------------------
// Extra structural ops used by modules (fused for efficiency).
// ---------------------------------------------------------------------------

/// Contiguous slice [start, start+len) of a vector.
Var SliceVec(const Var& v, int start, int len);

/// im2col for 1-D convolution over time: input [T, D] -> [T, width*D],
/// where output row t concatenates rows t + k*dilation for the window
/// offsets k in [-(width/2), width/2], zero-padded outside the sequence.
/// `width` must be odd.
Var Unfold(const Var& m, int width, int dilation);

// ---------------------------------------------------------------------------
// Modules.
// ---------------------------------------------------------------------------

/// Affine map y = xW + b.
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng* rng, const std::string& name = "linear");

  /// Applies to a matrix [T, in] -> [T, out].
  Var Apply(const Var& x) const;
  /// Applies to a vector [in] -> [out].
  Var ApplyVec(const Var& x) const;
  /// Apply followed by tanh, fused into one graph node.
  Var ApplyTanh(const Var& x) const;
  /// Apply followed by sigmoid, fused into one graph node.
  Var ApplySigmoid(const Var& x) const;

  std::vector<Var> Parameters() const override { return {weight_, bias_}; }
  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  int in_dim_;
  int out_dim_;
  Var weight_;  // [in, out]
  Var bias_;    // [out]
};

/// Token-id to vector lookup table.
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng* rng,
            const std::string& name = "embedding");

  /// Looks up a sequence of ids -> [ids.size(), dim].
  Var Lookup(const std::vector<int>& ids) const;
  /// Looks up a single id -> [dim].
  Var LookupOne(int id) const;

  /// Overwrites row `id` with the given vector (used to load pre-trained
  /// embeddings).
  void SetRow(int id, const std::vector<Float>& values);

  /// Freezes (or unfreezes) the table: frozen tables receive no gradient
  /// updates, matching the "pre-trained embeddings kept fixed" option
  /// discussed in the survey (Section 3.2.1).
  void set_trainable(bool trainable) { table_->requires_grad = trainable; }
  bool trainable() const { return table_->requires_grad; }

  /// The table is always reported (so serialization captures frozen
  /// pre-trained vectors); optimizers skip parameters whose requires_grad
  /// is false.
  std::vector<Var> Parameters() const override { return {table_}; }
  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  const Var& table() const { return table_; }

 private:
  int vocab_size_;
  int dim_;
  Var table_;  // [V, dim]
};

/// Per-row layer normalization with learned gain and bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim, const std::string& name = "layernorm");

  /// Normalizes each row of [T, dim].
  Var Apply(const Var& x) const;

  std::vector<Var> Parameters() const override { return {gain_, bias_}; }
  const Var& gain() const { return gain_; }
  const Var& bias() const { return bias_; }

 private:
  int dim_;
  Var gain_;  // [dim]
  Var bias_;  // [dim]
};

/// 1-D convolution over the time axis with zero padding (same length) and
/// optional dilation; the workhorse of char-CNNs (Fig. 3a), the sentence
/// approach network (Fig. 5), and ID-CNN blocks (Fig. 6).
class Conv1d : public Module {
 public:
  Conv1d(int in_dim, int out_dim, int width, int dilation, Rng* rng,
         const std::string& name = "conv1d");

  /// Input [T, in] -> output [T, out].
  Var Apply(const Var& x) const;

  std::vector<Var> Parameters() const override { return {weight_, bias_}; }
  int width() const { return width_; }
  int dilation() const { return dilation_; }
  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  int width_;
  int dilation_;
  Var weight_;  // [width*in, out]
  Var bias_;    // [out]
};

/// Highway layer: y = t * g(Wh x) + (1 - t) * x with t = sigmoid(Wt x)
/// (used by Li et al.'s char representation stack).
class Highway : public Module {
 public:
  Highway(int dim, Rng* rng, const std::string& name = "highway");

  /// Input [T, dim] -> output [T, dim].
  Var Apply(const Var& x) const;

  std::vector<Var> Parameters() const override;

 private:
  int dim_;
  std::unique_ptr<Linear> transform_;
  std::unique_ptr<Linear> gate_;
};

}  // namespace dlner

#endif  // DLNER_TENSOR_NN_H_
