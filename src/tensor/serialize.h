// Binary (de)serialization of tensors and named parameter lists.
//
// Format (little-endian, host doubles):
//   magic "DLNR" | version u32 | count u32 |
//   per parameter: name_len u32 | name bytes | rank u32 | dims i32[rank] |
//                  data f64[numel]
// Loading verifies names and shapes so that a checkpoint can only be
// restored into a structurally identical model, and every reader bounds
// its allocations so corrupt or truncated input fails with `false`
// instead of a crash or a huge allocation.
#ifndef DLNER_TENSOR_SERIALIZE_H_
#define DLNER_TENSOR_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/variable.h"

namespace dlner {

/// Upper bound on elements of a single deserialized tensor (512 MB of
/// doubles) — far above any model in the toolkit, far below what a corrupt
/// dim field could request.
constexpr std::uint64_t kMaxTensorElements = 1ull << 26;

// --- Primitive binary helpers shared by all checkpoint readers/writers ---

/// Writes a little-endian u32.
void WriteU32(std::ostream& os, uint32_t v);

/// Reads a u32; returns false on a short stream.
bool ReadU32(std::istream& is, uint32_t* v);

/// Writes a u32-length-prefixed byte string.
void WriteLenString(std::ostream& os, const std::string& s);

/// Reads a length-prefixed string, rejecting lengths above `max_len`.
bool ReadLenString(std::istream& is, std::string* s, uint32_t max_len);

/// Writes one tensor.
void SaveTensor(std::ostream& os, const Tensor& t);

/// Reads one tensor; returns false on malformed input. The total element
/// count is bounded by kMaxTensorElements and the dim product is checked
/// for overflow before anything is allocated.
bool LoadTensor(std::istream& is, Tensor* t);

/// Writes a named parameter list (names must be unique and non-empty).
void SaveParameters(std::ostream& os, const std::vector<Var>& params);

/// Restores values into `params`, matching entries by name. Returns false if
/// the stream is malformed, a name is missing, or a shape differs.
bool LoadParameters(std::istream& is, const std::vector<Var>& params);

/// Convenience file wrappers; return false on I/O failure.
bool SaveParametersToFile(const std::string& path,
                          const std::vector<Var>& params);
bool LoadParametersFromFile(const std::string& path,
                            const std::vector<Var>& params);

}  // namespace dlner

#endif  // DLNER_TENSOR_SERIALIZE_H_
