// Binary (de)serialization of tensors and named parameter lists.
//
// Format (little-endian, host doubles):
//   magic "DLNR" | version u32 | count u32 |
//   per parameter: name_len u32 | name bytes | rank u32 | dims i32[rank] |
//                  data f64[numel]
// Loading verifies names and shapes so that a checkpoint can only be
// restored into a structurally identical model.
#ifndef DLNER_TENSOR_SERIALIZE_H_
#define DLNER_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/variable.h"

namespace dlner {

/// Writes one tensor.
void SaveTensor(std::ostream& os, const Tensor& t);

/// Reads one tensor; returns false on malformed input.
bool LoadTensor(std::istream& is, Tensor* t);

/// Writes a named parameter list (names must be unique and non-empty).
void SaveParameters(std::ostream& os, const std::vector<Var>& params);

/// Restores values into `params`, matching entries by name. Returns false if
/// the stream is malformed, a name is missing, or a shape differs.
bool LoadParameters(std::istream& is, const std::vector<Var>& params);

/// Convenience file wrappers; return false on I/O failure.
bool SaveParametersToFile(const std::string& path,
                          const std::vector<Var>& params);
bool LoadParametersFromFile(const std::string& path,
                            const std::vector<Var>& params);

}  // namespace dlner

#endif  // DLNER_TENSOR_SERIALIZE_H_
