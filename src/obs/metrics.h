// Runtime metrics registry: counters, gauges, histograms, and step series.
//
// Instruments register by name once (pointers are stable for the process
// lifetime; cache them on hot paths) and update with relaxed atomics, so
// concurrent Predict shards and pool workers never contend on a lock.
// Export (`Metrics::WriteJson`) walks every registered instrument in
// lexicographic name order — the JSON is a deterministic function of the
// recorded values. Collection call sites are expected to gate on
// `obs::MetricsEnabled()` so the disabled path costs one relaxed load.
//
// Naming convention (docs/OBSERVABILITY.md): dot-separated,
// `<layer>.<what>[_<unit>]`, e.g. "tensor.live_bytes",
// "encoder.bilstm.forward_us", "train.loss".
#ifndef DLNER_OBS_METRICS_H_
#define DLNER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace dlner::obs {

/// Monotonically increasing integer (events, bytes, calls).
class Counter {
 public:
  void Add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value instrument with add/sub (live quantities) and monotone-max
/// (peaks). All updates are lock-free CAS loops.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }

  /// Adds `delta` and returns the post-add value (so callers can feed a
  /// peak gauge without a second read).
  double Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
    return cur + delta;
  }

  /// Raises the gauge to `v` if larger.
  void SetMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two bucketed histogram over non-negative samples (typically
/// microseconds). Bucket b >= 1 covers [2^(b-1), 2^b); bucket 0 holds
/// exactly zero. Percentiles interpolate linearly inside the selected
/// bucket, so estimates are exact to within a factor of two — enough to
/// tell a 50 us forward pass from a 5 ms one.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(double v);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;

  /// p in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;

  void Reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Append-only (step, value) sequence — per-epoch training curves,
/// per-thread-count benchmark sweeps.
class Series {
 public:
  void Append(double step, double value);
  std::vector<std::pair<double, double>> points() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
};

/// Options for Metrics::WriteJson.
struct MetricsJsonOptions {
  /// Drops histograms with zero observations from the export. Registration
  /// is eager (NerModel::Build registers its timing histograms up front),
  /// so exports from processes that never ran the instrumented path — e.g.
  /// benchmark binaries — otherwise carry all-zero entries.
  bool skip_empty_histograms = false;
};

/// Process-wide registry. Instruments are created on first lookup and are
/// never destroyed or unregistered, so returned pointers stay valid for
/// the process lifetime (ResetAll zeroes values, not registrations).
class Metrics {
 public:
  static Metrics& Get();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);
  Series* series(const std::string& name);

  /// Number of registered instruments (all four kinds).
  std::size_t NumSeries() const;

  /// Deterministic JSON snapshot: {"schema": "dlner-metrics-v1",
  /// "series": {<name>: {...}, ...}} with names sorted lexicographically.
  void WriteJson(std::ostream& os) const { WriteJson(os, {}); }
  bool WriteJson(const std::string& path) const { return WriteJson(path, {}); }
  void WriteJson(std::ostream& os, const MetricsJsonOptions& options) const;
  bool WriteJson(const std::string& path,
                 const MetricsJsonOptions& options) const;

  /// Zeroes every instrument (registrations and pointers survive).
  void ResetAll();

 private:
  Metrics() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace dlner::obs

#endif  // DLNER_OBS_METRICS_H_
