// Runtime metrics registry: counters, gauges, histograms, and step series.
//
// Instruments register by name once (pointers are stable for the process
// lifetime; cache them on hot paths) and update with relaxed atomics, so
// concurrent Predict shards and pool workers never contend on a lock.
// Export (`Metrics::WriteJson`) walks every registered instrument in
// lexicographic name order — the JSON is a deterministic function of the
// recorded values. Collection call sites are expected to gate on
// `obs::MetricsEnabled()` so the disabled path costs one relaxed load.
//
// Naming convention (docs/OBSERVABILITY.md): dot-separated,
// `<layer>.<what>[_<unit>]`, e.g. "tensor.live_bytes",
// "encoder.bilstm.forward_us", "train.loss".
#ifndef DLNER_OBS_METRICS_H_
#define DLNER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace dlner::obs {

/// Monotonically increasing integer (events, bytes, calls).
class Counter {
 public:
  void Add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value instrument with add/sub (live quantities) and monotone-max
/// (peaks). All updates are lock-free CAS loops.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }

  /// Adds `delta` and returns the post-add value (so callers can feed a
  /// peak gauge without a second read).
  double Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
    return cur + delta;
  }

  /// Raises the gauge to `v` if larger.
  void SetMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Plain-struct copy of a histogram's state at one point in time. Windowed
/// instruments return these (their live slots rotate underneath readers);
/// merged snapshots answer percentile queries with the same power-of-two
/// bucket interpolation as the live Histogram.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;
  std::int64_t buckets[kBuckets] = {};

  /// p in [0, 100]. Returns 0 for an empty snapshot.
  double Percentile(double p) const;

  /// Folds `other` into this snapshot (bucket-wise add, min/max widen).
  void Merge(const HistogramSnapshot& other);
};

/// Power-of-two bucketed histogram over non-negative samples (typically
/// microseconds). Bucket b >= 1 covers [2^(b-1), 2^b); bucket 0 holds
/// exactly zero. Percentiles interpolate linearly inside the selected
/// bucket, so estimates are exact to within a factor of two — enough to
/// tell a 50 us forward pass from a 5 ms one.
class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void Observe(double v);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;

  /// Observation count in bucket `b` (0 <= b < kBuckets).
  std::int64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Largest sample value bucket `b` can hold (0 for bucket 0, 2^b - 1
  /// otherwise) — the upper bounds of the Prometheus `le` buckets.
  static double BucketUpperBound(int b);

  /// p in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;

  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Sliding-window histogram: a ring of `epochs` fixed-duration slots, each
/// a full power-of-two bucket table. Observations land in the slot for
/// `now / epoch_us`; reading merges every slot still inside the window, so
/// the result is a rolling histogram over the last `epochs * epoch_us`
/// microseconds (e.g. 12 x 5 s = a one-minute window) that live scrapes
/// can poll for current p50/p99 without lifetime averaging washing out a
/// latency regression.
///
/// Lock discipline: the hot path (Observe into an already-current slot) is
/// relaxed atomics only, same as Histogram. A slot is zeroed and re-tagged
/// under its own mutex exactly once per epoch turnover, so writers only
/// contend in the first microseconds of an epoch. One benign race is
/// accepted and documented: a writer stalled for longer than the entire
/// window between loading `now` and recording may land its sample in a
/// rotated slot, misattributing one observation by one window length —
/// harmless for monitoring, and the tsan suite exercises the rotation.
class WindowedHistogram {
 public:
  WindowedHistogram(std::int64_t epoch_us, int epochs);
  WindowedHistogram() : WindowedHistogram(5'000'000, 12) {}
  ~WindowedHistogram();

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Observe(double v) { Observe(v, NowMicros()); }
  /// Explicit-clock overload (tests drive rotation deterministically).
  void Observe(double v, std::uint64_t now_us);

  /// Merged view of every slot inside the window ending at `now_us`.
  HistogramSnapshot Read(std::uint64_t now_us) const;
  HistogramSnapshot Read() const { return Read(NowMicros()); }

  std::int64_t epoch_us() const { return epoch_us_; }
  int epochs() const { return epochs_; }
  double window_seconds() const {
    return static_cast<double>(epoch_us_) * epochs_ / 1e6;
  }

  void Reset();

 private:
  struct Slot;

  /// The slot owning epoch `epoch`, zeroed and re-tagged if it still holds
  /// an older epoch's data.
  Slot* SlotFor(std::int64_t epoch);

  const std::int64_t epoch_us_;
  const int epochs_;
  std::unique_ptr<Slot[]> slots_;
};

/// Sliding-window counter: same slot ring as WindowedHistogram but a single
/// value per slot. `WindowTotal` is the rolling event count; `RatePerSec`
/// divides by the window length, which is the live requests/errors-per-
/// second a scrape wants.
class WindowedCounter {
 public:
  WindowedCounter(std::int64_t epoch_us, int epochs);
  WindowedCounter() : WindowedCounter(5'000'000, 12) {}
  ~WindowedCounter();

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void Add(std::int64_t n = 1) { Add(n, NowMicros()); }
  void Add(std::int64_t n, std::uint64_t now_us);

  std::int64_t WindowTotal(std::uint64_t now_us) const;
  std::int64_t WindowTotal() const { return WindowTotal(NowMicros()); }
  double RatePerSec(std::uint64_t now_us) const;
  double RatePerSec() const { return RatePerSec(NowMicros()); }

  std::int64_t epoch_us() const { return epoch_us_; }
  int epochs() const { return epochs_; }
  double window_seconds() const {
    return static_cast<double>(epoch_us_) * epochs_ / 1e6;
  }

  void Reset();

 private:
  struct Slot;

  Slot* SlotFor(std::int64_t epoch);

  const std::int64_t epoch_us_;
  const int epochs_;
  std::unique_ptr<Slot[]> slots_;
};

/// Append-only (step, value) sequence — per-epoch training curves,
/// per-thread-count benchmark sweeps.
class Series {
 public:
  void Append(double step, double value);
  std::vector<std::pair<double, double>> points() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<double, double>> points_;
};

/// Options for Metrics::WriteJson.
struct MetricsJsonOptions {
  /// Drops histograms with zero observations from the export. Registration
  /// is eager (NerModel::Build registers its timing histograms up front),
  /// so exports from processes that never ran the instrumented path — e.g.
  /// benchmark binaries — otherwise carry all-zero entries.
  bool skip_empty_histograms = false;
};

/// Process-wide registry. Instruments are created on first lookup and are
/// never destroyed or unregistered, so returned pointers stay valid for
/// the process lifetime (ResetAll zeroes values, not registrations).
class Metrics {
 public:
  static Metrics& Get();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);
  Series* series(const std::string& name);
  /// Windowed instruments take their window shape on first registration;
  /// later lookups by the same name return the existing instrument (the
  /// shape arguments are ignored then, like every other registry accessor).
  WindowedCounter* windowed_counter(const std::string& name,
                                    std::int64_t epoch_us = 5'000'000,
                                    int epochs = 12);
  WindowedHistogram* windowed_histogram(const std::string& name,
                                        std::int64_t epoch_us = 5'000'000,
                                        int epochs = 12);

  /// Number of registered instruments (all kinds).
  std::size_t NumSeries() const;

  /// Deterministic JSON snapshot: {"schema": "dlner-metrics-v1",
  /// "series": {<name>: {...}, ...}} with names sorted lexicographically.
  /// Windowed instruments export their rolling-window view as of the call.
  void WriteJson(std::ostream& os) const { WriteJson(os, {}); }
  bool WriteJson(const std::string& path) const { return WriteJson(path, {}); }
  void WriteJson(std::ostream& os, const MetricsJsonOptions& options) const;
  bool WriteJson(const std::string& path,
                 const MetricsJsonOptions& options) const;

  /// Prometheus text exposition (format version 0.0.4): counters and
  /// gauges as-is, histograms as cumulative `le` buckets ending in +Inf,
  /// windowed histograms as summaries with quantile labels, windowed
  /// counters as gauges (a rolling-window total is not monotone). Dots in
  /// metric names become underscores; series are JSON-export-only. The
  /// serve scrape endpoint (--metrics-port) and the admin "metrics"
  /// command both emit this.
  void WritePrometheus(std::ostream& os) const;

  /// Zeroes every instrument (registrations and pointers survive).
  void ResetAll();

 private:
  Metrics() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  std::map<std::string, std::unique_ptr<WindowedCounter>> windowed_counters_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>>
      windowed_histograms_;
};

}  // namespace dlner::obs

#endif  // DLNER_OBS_METRICS_H_
