// Scoped span tracing with Chrome trace_event JSON export.
//
// Each thread records completed spans into its own fixed-capacity ring
// buffer (oldest spans are overwritten once the ring is full), so recording
// never blocks another thread and never allocates unboundedly. Export
// merges every ring and sorts by (start, duration desc, tid, seq), making
// the emitted JSON a pure function of the recorded spans — deterministic
// content ordering, as the invariance suite expects. The resulting file
// loads directly in chrome://tracing and Perfetto (ui.perfetto.dev); see
// docs/OBSERVABILITY.md for span naming conventions.
#ifndef DLNER_OBS_TRACE_H_
#define DLNER_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace dlner::obs {

/// One completed span as stored in a ring buffer.
struct SpanEvent {
  std::string name;
  std::uint64_t start_us = 0;  // NowMicros() at span open
  std::uint64_t dur_us = 0;
  int tid = 0;            // stable per-thread id (registration order, 1-based)
  std::uint64_t seq = 0;  // global record-order tiebreaker
  /// Pre-rendered JSON object body (no braces), e.g. `"req":7,"cached":true`.
  /// Emitted as the Chrome-trace "args" object when non-empty.
  std::string args;
};

class Tracer {
 public:
  /// Per-thread ring capacity in spans. A full training run keeps its most
  /// recent ~32k spans per thread, which is what a trace viewer can
  /// usefully display anyway; the overwrite count is reported in the
  /// export's otherData.
  static constexpr std::size_t kRingCapacity = 1u << 15;

  /// The process-wide tracer (leaked singleton: spans recorded by worker
  /// threads during static destruction stay safe).
  static Tracer& Get();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Appends one completed span to the calling thread's ring. Called by
  /// ScopedSpan only while tracing is enabled. `args`, when non-empty, is a
  /// pre-rendered JSON object body attached to the span — it lets code that
  /// tracks a request across threads (the serve batcher) record stage spans
  /// with request-id annotations at completion time.
  void Record(std::string name, std::uint64_t start_us, std::uint64_t end_us,
              std::string args = {});

  /// Merged copy of every ring, sorted by (start, duration desc, tid, seq).
  std::vector<SpanEvent> Snapshot() const;

  /// Spans ever recorded / overwritten by ring wraparound.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Drops all buffered spans (rings stay registered; counters reset).
  void Clear();

  /// Chrome trace_event JSON ("X" complete events, microsecond
  /// timestamps). The stream overload reports success via the stream
  /// state; the path overload returns false when the file cannot be
  /// written.
  void WriteChromeTrace(std::ostream& os) const;
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct Ring {
    int tid = 0;
    mutable std::mutex mu;
    std::vector<SpanEvent> events;  // ring storage, slot = total % capacity
    std::uint64_t total = 0;        // spans ever recorded into this ring
  };

  Tracer() = default;

  Ring* ThreadRing();

  mutable std::mutex mu_;  // guards rings_ registration and snapshot
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> seq_{0};
};

namespace internal {
/// Thread-local trace context (see ScopedTraceContext below). 0 = none.
extern thread_local std::uint64_t g_trace_ctx;
}  // namespace internal

/// The calling thread's current trace context id (0 when none is set).
inline std::uint64_t CurrentTraceContext() { return internal::g_trace_ctx; }

/// RAII trace context: every span finished on this thread (or on pool
/// workers that inherit the context through runtime::ParallelFor) while the
/// guard is live carries a `"ctx":<id>` annotation. The serve batcher sets
/// the batch id as the context around TagCorpus, so plan/batch and
/// plan/quantized_batch spans are attributable to the serve/batch span (and
/// through it to the request ids it carried); `dlner tag --stream` sets a
/// per-document ordinal so stream/feed|flush spans group by document.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t ctx)
      : saved_(internal::g_trace_ctx) {
    internal::g_trace_ctx = ctx;
  }
  ~ScopedTraceContext() { internal::g_trace_ctx = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::uint64_t saved_;
};

/// RAII span: captures the start time at construction and records a
/// completed span at destruction. When tracing is disabled at construction
/// the whole object is a no-op (one relaxed load, no clock reads, no
/// allocation). Spans nest naturally; names should be static literals for
/// the common case.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_ = NowMicros();
      active_ = true;
    }
  }

  /// Dynamic-name variant ("prefix/suffix"); the string is only built when
  /// tracing is enabled.
  ScopedSpan(const char* prefix, const std::string& suffix) {
    if (TracingEnabled()) {
      owned_ = std::string(prefix) + "/" + suffix;
      start_ = NowMicros();
      active_ = true;
    }
  }

  ~ScopedSpan() {
    if (active_) Finish();
  }

  /// Attaches a `"key":value` annotation to the span's args object. No-ops
  /// when the span is inactive (tracing was off at construction).
  void Annotate(const char* key, std::int64_t value);
  /// `raw_json` must already be valid JSON (a quoted string, number,
  /// boolean, or array) — it is spliced into the args object verbatim.
  void Annotate(const char* key, const std::string& raw_json);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Finish();

  const char* name_ = nullptr;  // static name; owned_ used when null
  std::string owned_;
  std::string args_;
  std::uint64_t start_ = 0;
  bool active_ = false;
};

/// Copies the tracer's lifetime recorded/dropped span counts into the
/// metrics registry as `trace.recorded_spans` / `trace.dropped_spans`
/// counters. Call before exporting metrics (FlushObsArtifacts does) so ring
/// overwrites are visible in the metrics file, not only in the Chrome-trace
/// otherData.
void PublishTraceMetrics();

}  // namespace dlner::obs

#endif  // DLNER_OBS_TRACE_H_
