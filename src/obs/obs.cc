#include "obs/obs.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace dlner::obs {
namespace {

bool EnvBool(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

int EnvLogLevel() {
  const char* v = std::getenv("DLNER_LOG_LEVEL");
  if (v == nullptr) return static_cast<int>(LogLevel::kWarn);
  return static_cast<int>(LogLevelFromString(v, LogLevel::kWarn));
}

// Log sink shared by every thread; records are written whole under the
// lock, so concurrent loggers interleave at record granularity only.
std::mutex g_log_mu;
std::FILE* g_log_file = nullptr;  // null = stderr

std::FILE* LogSinkLocked() {
  return g_log_file != nullptr ? g_log_file : stderr;
}

void AppendField(std::string* out, const Field& f) {
  out->append(",\"");
  out->append(internal::JsonEscape(f.key));
  out->append("\":");
  switch (f.kind) {
    case Field::Kind::kString:
      out->push_back('"');
      out->append(internal::JsonEscape(f.str));
      out->push_back('"');
      break;
    case Field::Kind::kInt:
      out->append(std::to_string(f.i));
      break;
    case Field::Kind::kDouble:
      out->append(internal::JsonNumber(f.d));
      break;
    case Field::Kind::kBool:
      out->append(f.b ? "true" : "false");
      break;
  }
}

void WriteRecord(LogLevel level, const char* event,
                 std::initializer_list<Field> fields) {
  std::string line = "{\"ts_us\":" + std::to_string(NowMicros());
  line.append(",\"level\":\"");
  line.append(LogLevelName(level));
  line.append("\",\"event\":\"");
  line.append(internal::JsonEscape(event));
  line.push_back('"');
  for (const Field& f : fields) AppendField(&line, f);
  line.append("}\n");
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::FILE* sink = LogSinkLocked();
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

}  // namespace

namespace internal {

std::atomic<bool> g_tracing{EnvBool("DLNER_TRACE")};
std::atomic<bool> g_metrics{EnvBool("DLNER_METRICS")};
std::atomic<int> g_log_level{EnvLogLevel()};

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace internal

void EnableTracing(bool on) {
  internal::g_tracing.store(on, std::memory_order_relaxed);
}

void EnableMetrics(bool on) {
  internal::g_metrics.store(on, std::memory_order_relaxed);
}

std::uint64_t NowMicros() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

LogLevel LogLevelFromString(std::string_view name, LogLevel fallback) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return fallback;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "warn";
}

void SetLogLevel(LogLevel level) {
  int v = static_cast<int>(level);
  if (v < static_cast<int>(LogLevel::kDebug)) v = 0;
  if (v > static_cast<int>(LogLevel::kOff)) {
    v = static_cast<int>(LogLevel::kOff);
  }
  internal::g_log_level.store(v, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      internal::g_log_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const char* event,
         std::initializer_list<Field> fields) {
  if (!LogEnabled(level)) return;
  WriteRecord(level, event, fields);
}

void ForceLog(LogLevel level, const char* event,
              std::initializer_list<Field> fields) {
  WriteRecord(level, event, fields);
}

bool SetLogFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_log_mu);
  if (g_log_file != nullptr) {
    std::fclose(g_log_file);
    g_log_file = nullptr;
  }
  if (path.empty()) return true;
  g_log_file = std::fopen(path.c_str(), "w");
  return g_log_file != nullptr;
}

void ResetForTesting() {
  internal::g_tracing.store(EnvBool("DLNER_TRACE"), std::memory_order_relaxed);
  internal::g_metrics.store(EnvBool("DLNER_METRICS"),
                            std::memory_order_relaxed);
  internal::g_log_level.store(EnvLogLevel(), std::memory_order_relaxed);
  SetLogFile("");
}

}  // namespace dlner::obs
