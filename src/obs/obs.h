// Observability runtime shared by the whole toolkit: global enablement
// switches, a monotonic clock, and the structured JSONL logger.
//
// Design rule: every hot-path hook must cost exactly one relaxed atomic
// load plus a predictable branch while the corresponding switch is off.
// Tracing and metrics are disabled by default; the environment variables
// DLNER_TRACE=1, DLNER_METRICS=1, and DLNER_LOG_LEVEL=debug|info|warn|
// error|off seed the initial state, and the CLI flags --trace-out,
// --metrics-out, --log-level flip them per run (see docs/OBSERVABILITY.md).
#ifndef DLNER_OBS_OBS_H_
#define DLNER_OBS_OBS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace dlner::obs {

namespace internal {
extern std::atomic<bool> g_tracing;
extern std::atomic<bool> g_metrics;
extern std::atomic<int> g_log_level;

/// JSON string-escapes `s` (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Formats a double as a JSON number: integers without a fraction,
/// everything else with enough digits to be useful; NaN/inf become null
/// (JSON has no encoding for them).
std::string JsonNumber(double v);
}  // namespace internal

// --- Enablement switches ------------------------------------------------

/// True while span tracing is collecting. The disabled path of every
/// ScopedSpan is this single relaxed load.
inline bool TracingEnabled() {
  return internal::g_tracing.load(std::memory_order_relaxed);
}
void EnableTracing(bool on);

/// True while metric collection is on (tensor allocation accounting,
/// throughput counters, per-module timings).
inline bool MetricsEnabled() {
  return internal::g_metrics.load(std::memory_order_relaxed);
}
void EnableMetrics(bool on);

// --- Clock --------------------------------------------------------------

/// Monotonic microseconds since the first call in this process
/// (std::chrono::steady_clock; never goes backwards, unaffected by
/// wall-clock adjustments). All trace timestamps share this origin.
std::uint64_t NowMicros();

/// Wall-clock interval helper over the same monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Micros() const { return Seconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// --- Structured logging -------------------------------------------------

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Parses "debug|info|warn|error|off" (case-sensitive); anything else
/// yields `fallback`.
LogLevel LogLevelFromString(std::string_view name,
                            LogLevel fallback = LogLevel::kWarn);
const char* LogLevelName(LogLevel level);

/// Sets the process-wide threshold: records below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when a record at `level` would be emitted.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_log_level.load(std::memory_order_relaxed);
}

/// One typed key/value pair of a log record.
struct Field {
  enum class Kind { kString, kInt, kDouble, kBool };

  Field(const char* k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(const char* k, const char* v) : key(k), kind(Kind::kString), str(v) {}
  Field(const char* k, std::int64_t v) : key(k), kind(Kind::kInt), i(v) {}
  Field(const char* k, int v) : key(k), kind(Kind::kInt), i(v) {}
  Field(const char* k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  Field(const char* k, bool v) : key(k), kind(Kind::kBool), b(v) {}

  const char* key;
  Kind kind;
  std::string str;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
};

/// Appends one JSONL record — {"ts_us":..,"level":..,"event":..,<fields>} —
/// to the log sink iff `level` passes the threshold.
void Log(LogLevel level, const char* event,
         std::initializer_list<Field> fields = {});

/// Same record format but bypasses the threshold (used by Trainer's
/// `verbose` mode, which must stay visible regardless of DLNER_LOG_LEVEL).
void ForceLog(LogLevel level, const char* event,
              std::initializer_list<Field> fields = {});

/// Redirects log output to `path` (truncating); an empty path restores the
/// default sink (stderr). Returns false when the file cannot be opened.
bool SetLogFile(const std::string& path);

/// Test hook: restores switches and log level to their environment-derived
/// startup values and points the log sink back at stderr.
void ResetForTesting();

}  // namespace dlner::obs

#endif  // DLNER_OBS_OBS_H_
