#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

namespace dlner::obs {
namespace {

// Bucket index for a non-negative integer sample: 0 -> 0, otherwise
// 1 + floor(log2(sample)) clamped to the table.
int BucketIndex(std::uint64_t sample) {
  if (sample == 0) return 0;
  int b = 0;
  while (sample > 0 && b < Histogram::kBuckets - 1) {
    sample >>= 1;
    ++b;
  }
  return b;
}

// Inclusive value range covered by a bucket.
void BucketBounds(int b, double* lo, double* hi) {
  if (b == 0) {
    *lo = 0.0;
    *hi = 0.0;
    return;
  }
  *lo = std::ldexp(1.0, b - 1);      // 2^(b-1)
  *hi = std::ldexp(1.0, b) - 1.0;    // 2^b - 1
}

void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(double v) {
  if (!(v >= 0.0)) v = 0.0;  // clamp negatives and NaN
  const std::uint64_t sample =
      v >= 9.2e18 ? ~0ull : static_cast<std::uint64_t>(std::llround(v));
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  if (n == 0) {
    // First observation initializes min; the sentinel 0.0 would otherwise
    // pin the minimum of all-positive samples.
    min_.store(v, std::memory_order_relaxed);
    AtomicMaxDouble(&max_, v);
  } else {
    AtomicMinDouble(&min_, v);
    AtomicMaxDouble(&max_, v);
  }
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Percentile(double p) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(n);
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      double lo = 0.0, hi = 0.0;
      BucketBounds(b, &lo, &hi);
      const double frac =
          in_bucket == 0
              ? 0.0
              : (target - static_cast<double>(cum)) /
                    static_cast<double>(in_bucket);
      const double est = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      // Never report outside the observed range.
      return std::clamp(est, min(), max());
    }
    cum += in_bucket;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void Series::Append(double step, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.emplace_back(step, value);
}

std::vector<std::pair<double, double>> Series::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

Metrics& Metrics::Get() {
  static Metrics* instance = new Metrics();  // leaked: lives until exit
  return *instance;
}

Counter* Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Series* Metrics::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (slot == nullptr) slot = std::make_unique<Series>();
  return slot.get();
}

std::size_t Metrics::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         series_.size();
}

void Metrics::WriteJson(std::ostream& os,
                        const MetricsJsonOptions& options) const {
  using internal::JsonEscape;
  using internal::JsonNumber;
  // One (name, body) entry per instrument, then emitted sorted by name so
  // the file is deterministic regardless of registration order.
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      entries.emplace_back(
          name, "{\"type\": \"counter\", \"value\": " +
                    std::to_string(c->value()) + "}");
    }
    for (const auto& [name, g] : gauges_) {
      entries.emplace_back(name, "{\"type\": \"gauge\", \"value\": " +
                                     JsonNumber(g->value()) + "}");
    }
    for (const auto& [name, h] : histograms_) {
      if (options.skip_empty_histograms && h->count() == 0) continue;
      std::string body = "{\"type\": \"histogram\", \"count\": " +
                         std::to_string(h->count());
      body += ", \"sum\": " + JsonNumber(h->sum());
      body += ", \"min\": " + JsonNumber(h->min());
      body += ", \"max\": " + JsonNumber(h->max());
      body += ", \"p50\": " + JsonNumber(h->Percentile(50));
      body += ", \"p90\": " + JsonNumber(h->Percentile(90));
      body += ", \"p99\": " + JsonNumber(h->Percentile(99));
      body += "}";
      entries.emplace_back(name, std::move(body));
    }
    for (const auto& [name, s] : series_) {
      std::string body = "{\"type\": \"series\", \"points\": [";
      bool first = true;
      for (const auto& [step, value] : s->points()) {
        if (!first) body += ", ";
        first = false;
        body += "[" + JsonNumber(step) + ", " + JsonNumber(value) + "]";
      }
      body += "]}";
      entries.emplace_back(name, std::move(body));
    }
  }
  std::sort(entries.begin(), entries.end());
  os << "{\n\"schema\": \"dlner-metrics-v1\",\n\"series\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "  \"" << JsonEscape(entries[i].first)
       << "\": " << entries[i].second;
    if (i + 1 < entries.size()) os << ",";
    os << "\n";
  }
  os << "}\n}\n";
}

bool Metrics::WriteJson(const std::string& path,
                        const MetricsJsonOptions& options) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteJson(os, options);
  return static_cast<bool>(os);
}

void Metrics::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : series_) s->Reset();
}

}  // namespace dlner::obs
