#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

namespace dlner::obs {
namespace {

// Bucket index for a non-negative integer sample: 0 -> 0, otherwise
// 1 + floor(log2(sample)) clamped to the table.
int BucketIndex(std::uint64_t sample) {
  if (sample == 0) return 0;
  int b = 0;
  while (sample > 0 && b < Histogram::kBuckets - 1) {
    sample >>= 1;
    ++b;
  }
  return b;
}

// Inclusive value range covered by a bucket.
void BucketBounds(int b, double* lo, double* hi) {
  if (b == 0) {
    *lo = 0.0;
    *hi = 0.0;
    return;
  }
  *lo = std::ldexp(1.0, b - 1);      // 2^(b-1)
  *hi = std::ldexp(1.0, b) - 1.0;    // 2^b - 1
}

void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Prometheus metric names allow [a-zA-Z0-9_:] only; the registry's
// dot-separated names map dots (and anything else) to underscores.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

// Prometheus sample values: like JsonNumber but with the exposition
// format's spellings for non-finite values.
std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return internal::JsonNumber(v);
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      double lo = 0.0, hi = 0.0;
      BucketBounds(b, &lo, &hi);
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(in_bucket);
      const double est = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      // Never report outside the observed range.
      return std::clamp(est, min, max);
    }
    cum += in_bucket;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

void Histogram::Observe(double v) {
  if (!(v >= 0.0)) v = 0.0;  // clamp negatives and NaN
  const std::uint64_t sample =
      v >= 9.2e18 ? ~0ull : static_cast<std::uint64_t>(std::llround(v));
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
  if (n == 0) {
    // First observation initializes min; the sentinel 0.0 would otherwise
    // pin the minimum of all-positive samples.
    min_.store(v, std::memory_order_relaxed);
    AtomicMaxDouble(&max_, v);
  } else {
    AtomicMinDouble(&min_, v);
    AtomicMaxDouble(&max_, v);
  }
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Percentile(double p) const {
  return Snapshot().Percentile(p);
}

double Histogram::BucketUpperBound(int b) {
  double lo = 0.0, hi = 0.0;
  BucketBounds(b, &lo, &hi);
  return hi;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  for (int b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- Windowed instruments -----------------------------------------------
//
// Both windowed kinds share the same slot-ring discipline. A slot is owned
// by epoch e = now_us / epoch_us at index e % epochs; it is lazily zeroed
// and re-tagged (under its own mutex, once per turnover) the first time a
// writer or reader touches it in a new epoch. The epoch tag is stored with
// release order after zeroing so a relaxed-reading writer that sees the new
// tag also sees the cleared payload.

struct WindowedHistogram::Slot {
  std::mutex mu;  // taken only to rotate the slot into a new epoch
  std::atomic<std::int64_t> epoch{-1};
  std::atomic<std::int64_t> buckets[HistogramSnapshot::kBuckets] = {};
  std::atomic<std::int64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
};

WindowedHistogram::WindowedHistogram(std::int64_t epoch_us, int epochs)
    : epoch_us_(epoch_us > 0 ? epoch_us : 1),
      epochs_(epochs > 0 ? epochs : 1),
      slots_(new Slot[static_cast<std::size_t>(epochs_)]) {}

WindowedHistogram::~WindowedHistogram() = default;

WindowedHistogram::Slot* WindowedHistogram::SlotFor(std::int64_t epoch) {
  Slot* slot = &slots_[static_cast<std::size_t>(epoch % epochs_)];
  if (slot->epoch.load(std::memory_order_acquire) != epoch) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->epoch.load(std::memory_order_relaxed) != epoch) {
      for (auto& b : slot->buckets) b.store(0, std::memory_order_relaxed);
      slot->count.store(0, std::memory_order_relaxed);
      slot->sum.store(0.0, std::memory_order_relaxed);
      slot->min.store(0.0, std::memory_order_relaxed);
      slot->max.store(0.0, std::memory_order_relaxed);
      slot->epoch.store(epoch, std::memory_order_release);
    }
  }
  return slot;
}

void WindowedHistogram::Observe(double v, std::uint64_t now_us) {
  if (!(v >= 0.0)) v = 0.0;  // clamp negatives and NaN, like Histogram
  Slot* slot = SlotFor(static_cast<std::int64_t>(now_us) / epoch_us_);
  const std::uint64_t sample =
      v >= 9.2e18 ? ~0ull : static_cast<std::uint64_t>(std::llround(v));
  slot->buckets[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t n = slot->count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&slot->sum, v);
  if (n == 0) {
    slot->min.store(v, std::memory_order_relaxed);
    AtomicMaxDouble(&slot->max, v);
  } else {
    AtomicMinDouble(&slot->min, v);
    AtomicMaxDouble(&slot->max, v);
  }
}

HistogramSnapshot WindowedHistogram::Read(std::uint64_t now_us) const {
  const std::int64_t current = static_cast<std::int64_t>(now_us) / epoch_us_;
  HistogramSnapshot merged;
  for (int i = 0; i < epochs_; ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>(i)];
    const std::int64_t e = slot.epoch.load(std::memory_order_acquire);
    // Only slots tagged with an epoch inside [current - epochs + 1,
    // current] are part of the rolling window; anything older is a stale
    // slot awaiting rotation.
    if (e < 0 || e > current || current - e >= epochs_) continue;
    HistogramSnapshot s;
    s.count = slot.count.load(std::memory_order_relaxed);
    s.sum = slot.sum.load(std::memory_order_relaxed);
    s.min = slot.min.load(std::memory_order_relaxed);
    s.max = slot.max.load(std::memory_order_relaxed);
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      s.buckets[b] = slot.buckets[b].load(std::memory_order_relaxed);
    }
    merged.Merge(s);
  }
  return merged;
}

void WindowedHistogram::Reset() {
  for (int i = 0; i < epochs_; ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.epoch.store(-1, std::memory_order_release);
  }
}

struct WindowedCounter::Slot {
  std::mutex mu;
  std::atomic<std::int64_t> epoch{-1};
  std::atomic<std::int64_t> value{0};
};

WindowedCounter::WindowedCounter(std::int64_t epoch_us, int epochs)
    : epoch_us_(epoch_us > 0 ? epoch_us : 1),
      epochs_(epochs > 0 ? epochs : 1),
      slots_(new Slot[static_cast<std::size_t>(epochs_)]) {}

WindowedCounter::~WindowedCounter() = default;

WindowedCounter::Slot* WindowedCounter::SlotFor(std::int64_t epoch) {
  Slot* slot = &slots_[static_cast<std::size_t>(epoch % epochs_)];
  if (slot->epoch.load(std::memory_order_acquire) != epoch) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->epoch.load(std::memory_order_relaxed) != epoch) {
      slot->value.store(0, std::memory_order_relaxed);
      slot->epoch.store(epoch, std::memory_order_release);
    }
  }
  return slot;
}

void WindowedCounter::Add(std::int64_t n, std::uint64_t now_us) {
  SlotFor(static_cast<std::int64_t>(now_us) / epoch_us_)
      ->value.fetch_add(n, std::memory_order_relaxed);
}

std::int64_t WindowedCounter::WindowTotal(std::uint64_t now_us) const {
  const std::int64_t current = static_cast<std::int64_t>(now_us) / epoch_us_;
  std::int64_t total = 0;
  for (int i = 0; i < epochs_; ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>(i)];
    const std::int64_t e = slot.epoch.load(std::memory_order_acquire);
    if (e < 0 || e > current || current - e >= epochs_) continue;
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

double WindowedCounter::RatePerSec(std::uint64_t now_us) const {
  return static_cast<double>(WindowTotal(now_us)) / window_seconds();
}

void WindowedCounter::Reset() {
  for (int i = 0; i < epochs_; ++i) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.epoch.store(-1, std::memory_order_release);
  }
}

void Series::Append(double step, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.emplace_back(step, value);
}

std::vector<std::pair<double, double>> Series::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

void Series::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

Metrics& Metrics::Get() {
  static Metrics* instance = new Metrics();  // leaked: lives until exit
  return *instance;
}

Counter* Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Series* Metrics::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (slot == nullptr) slot = std::make_unique<Series>();
  return slot.get();
}

WindowedCounter* Metrics::windowed_counter(const std::string& name,
                                           std::int64_t epoch_us,
                                           int epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windowed_counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedCounter>(epoch_us, epochs);
  }
  return slot.get();
}

WindowedHistogram* Metrics::windowed_histogram(const std::string& name,
                                               std::int64_t epoch_us,
                                               int epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windowed_histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedHistogram>(epoch_us, epochs);
  }
  return slot.get();
}

std::size_t Metrics::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         series_.size() + windowed_counters_.size() +
         windowed_histograms_.size();
}

void Metrics::WriteJson(std::ostream& os,
                        const MetricsJsonOptions& options) const {
  using internal::JsonEscape;
  using internal::JsonNumber;
  // One (name, body) entry per instrument, then emitted sorted by name so
  // the file is deterministic regardless of registration order.
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      entries.emplace_back(
          name, "{\"type\": \"counter\", \"value\": " +
                    std::to_string(c->value()) + "}");
    }
    for (const auto& [name, g] : gauges_) {
      entries.emplace_back(name, "{\"type\": \"gauge\", \"value\": " +
                                     JsonNumber(g->value()) + "}");
    }
    for (const auto& [name, h] : histograms_) {
      if (options.skip_empty_histograms && h->count() == 0) continue;
      std::string body = "{\"type\": \"histogram\", \"count\": " +
                         std::to_string(h->count());
      body += ", \"sum\": " + JsonNumber(h->sum());
      body += ", \"min\": " + JsonNumber(h->min());
      body += ", \"max\": " + JsonNumber(h->max());
      body += ", \"p50\": " + JsonNumber(h->Percentile(50));
      body += ", \"p90\": " + JsonNumber(h->Percentile(90));
      body += ", \"p99\": " + JsonNumber(h->Percentile(99));
      body += "}";
      entries.emplace_back(name, std::move(body));
    }
    for (const auto& [name, s] : series_) {
      std::string body = "{\"type\": \"series\", \"points\": [";
      bool first = true;
      for (const auto& [step, value] : s->points()) {
        if (!first) body += ", ";
        first = false;
        body += "[" + JsonNumber(step) + ", " + JsonNumber(value) + "]";
      }
      body += "]}";
      entries.emplace_back(name, std::move(body));
    }
    const std::uint64_t now_us = NowMicros();
    for (const auto& [name, wc] : windowed_counters_) {
      entries.emplace_back(
          name, "{\"type\": \"windowed_counter\", \"window_s\": " +
                    JsonNumber(wc->window_seconds()) + ", \"value\": " +
                    std::to_string(wc->WindowTotal(now_us)) +
                    ", \"rate_per_sec\": " +
                    JsonNumber(wc->RatePerSec(now_us)) + "}");
    }
    for (const auto& [name, wh] : windowed_histograms_) {
      const HistogramSnapshot s = wh->Read(now_us);
      if (options.skip_empty_histograms && s.count == 0) continue;
      std::string body = "{\"type\": \"windowed_histogram\", \"window_s\": " +
                         JsonNumber(wh->window_seconds());
      body += ", \"count\": " + std::to_string(s.count);
      body += ", \"sum\": " + JsonNumber(s.sum);
      body += ", \"min\": " + JsonNumber(s.min);
      body += ", \"max\": " + JsonNumber(s.max);
      body += ", \"p50\": " + JsonNumber(s.Percentile(50));
      body += ", \"p90\": " + JsonNumber(s.Percentile(90));
      body += ", \"p99\": " + JsonNumber(s.Percentile(99));
      body += "}";
      entries.emplace_back(name, std::move(body));
    }
  }
  std::sort(entries.begin(), entries.end());
  os << "{\n\"schema\": \"dlner-metrics-v1\",\n\"series\": {\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "  \"" << JsonEscape(entries[i].first)
       << "\": " << entries[i].second;
    if (i + 1 < entries.size()) os << ",";
    os << "\n";
  }
  os << "}\n}\n";
}

bool Metrics::WriteJson(const std::string& path,
                        const MetricsJsonOptions& options) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteJson(os, options);
  return static_cast<bool>(os);
}

void Metrics::WritePrometheus(std::ostream& os) const {
  // One (sanitized name, text block) entry per instrument, emitted sorted
  // so the exposition is deterministic regardless of registration order.
  // Series are not exported here: a step curve has no Prometheus shape.
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      const std::string n = PromName(name);
      entries.emplace_back(
          n, "# TYPE " + n + " counter\n" + n + " " +
                 std::to_string(c->value()) + "\n");
    }
    for (const auto& [name, g] : gauges_) {
      const std::string n = PromName(name);
      entries.emplace_back(n, "# TYPE " + n + " gauge\n" + n + " " +
                                  PromNumber(g->value()) + "\n");
    }
    for (const auto& [name, h] : histograms_) {
      const std::string n = PromName(name);
      const HistogramSnapshot s = h->Snapshot();
      std::string block = "# TYPE " + n + " histogram\n";
      std::int64_t cum = 0;
      for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
        cum += s.buckets[b];
        // Emit only occupied boundaries (plus +Inf below): 64 pow-2
        // buckets per histogram would drown a scrape in zeros.
        if (s.buckets[b] == 0) continue;
        block += n + "_bucket{le=\"" +
                 PromNumber(Histogram::BucketUpperBound(b)) + "\"} " +
                 std::to_string(cum) + "\n";
      }
      block += n + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) + "\n";
      block += n + "_sum " + PromNumber(s.sum) + "\n";
      block += n + "_count " + std::to_string(s.count) + "\n";
      entries.emplace_back(n, std::move(block));
    }
    const std::uint64_t now_us = NowMicros();
    for (const auto& [name, wc] : windowed_counters_) {
      // A rolling-window total can decrease, so it is a gauge, not a
      // Prometheus counter; the per-second rate rides along.
      const std::string n = PromName(name);
      std::string block = "# TYPE " + n + " gauge\n" + n + " " +
                          std::to_string(wc->WindowTotal(now_us)) + "\n";
      const std::string rate = n + "_per_sec";
      block += "# TYPE " + rate + " gauge\n" + rate + " " +
               PromNumber(wc->RatePerSec(now_us)) + "\n";
      entries.emplace_back(n, std::move(block));
    }
    for (const auto& [name, wh] : windowed_histograms_) {
      const std::string n = PromName(name);
      const HistogramSnapshot s = wh->Read(now_us);
      std::string block = "# TYPE " + n + " summary\n";
      for (const double q : {0.5, 0.9, 0.99}) {
        block += n + "{quantile=\"" + PromNumber(q) + "\"} " +
                 PromNumber(s.Percentile(q * 100.0)) + "\n";
      }
      block += n + "_sum " + PromNumber(s.sum) + "\n";
      block += n + "_count " + std::to_string(s.count) + "\n";
      entries.emplace_back(n, std::move(block));
    }
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [name, block] : entries) os << block;
}

void Metrics::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, s] : series_) s->Reset();
  for (auto& [name, wc] : windowed_counters_) wc->Reset();
  for (auto& [name, wh] : windowed_histograms_) wh->Reset();
}

}  // namespace dlner::obs
