#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <utility>

#include "obs/metrics.h"

namespace dlner::obs {

namespace internal {
thread_local std::uint64_t g_trace_ctx = 0;
}  // namespace internal

Tracer& Tracer::Get() {
  static Tracer* instance = new Tracer();  // leaked: lives until exit
  return *instance;
}

Tracer::Ring* Tracer::ThreadRing() {
  // One ring per thread per process lifetime; the tracer owns it, so spans
  // from exited threads (e.g. a rebuilt thread pool) remain exportable.
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>());
    ring = rings_.back().get();
    ring->tid = static_cast<int>(rings_.size());
  }
  return ring;
}

void Tracer::Record(std::string name, std::uint64_t start_us,
                    std::uint64_t end_us, std::string args) {
  Ring* ring = ThreadRing();
  SpanEvent ev;
  ev.name = std::move(name);
  ev.start_us = start_us;
  ev.dur_us = end_us >= start_us ? end_us - start_us : 0;
  ev.args = std::move(args);
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring->mu);
  ev.tid = ring->tid;
  if (ring->events.size() < kRingCapacity) {
    ring->events.push_back(std::move(ev));
  } else {
    ring->events[ring->total % kRingCapacity] = std::move(ev);
  }
  ++ring->total;
}

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::vector<SpanEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      all.insert(all.end(), ring->events.begin(), ring->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return all;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->total;
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->total > kRingCapacity) dropped += ring->total - kRingCapacity;
  }
  return dropped;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->total = 0;
  }
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  const std::vector<SpanEvent> events = Snapshot();
  const std::uint64_t lost = dropped();
  os << "{\n\"displayTimeUnit\": \"ms\",\n";
  os << "\"otherData\": {\"tool\": \"dlner\", \"dropped_events\": " << lost
     << "},\n";
  os << "\"traceEvents\": [\n";
  // Thread-name metadata first, then the spans; both in deterministic order.
  int max_tid = 0;
  for (const SpanEvent& ev : events) max_tid = std::max(max_tid, ev.tid);
  bool first = true;
  for (int tid = 1; tid <= max_tid; ++tid) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": {\"name\": \"dlner-" << tid << "\"}}";
  }
  for (const SpanEvent& ev : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\": \"" << internal::JsonEscape(ev.name)
       << "\", \"cat\": \"dlner\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << ev.tid << ", \"ts\": " << ev.start_us << ", \"dur\": " << ev.dur_us;
    // Span annotations are pre-rendered JSON object bodies, spliced in
    // verbatim so export stays a pure function of the recorded spans.
    if (!ev.args.empty()) os << ", \"args\": {" << ev.args << "}";
    os << "}";
  }
  os << "\n]\n}\n";
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteChromeTrace(os);
  return static_cast<bool>(os);
}

void ScopedSpan::Annotate(const char* key, std::int64_t value) {
  if (!active_) return;
  if (!args_.empty()) args_.push_back(',');
  args_ += "\"" + internal::JsonEscape(key) + "\":" + std::to_string(value);
}

void ScopedSpan::Annotate(const char* key, const std::string& raw_json) {
  if (!active_) return;
  if (!args_.empty()) args_.push_back(',');
  args_ += "\"" + internal::JsonEscape(key) + "\":" + raw_json;
}

void ScopedSpan::Finish() {
  // The thread-local trace context is appended last so a span's explicit
  // annotations always come first and a surrounding ScopedTraceContext
  // cannot be shadowed by an Annotate call site.
  if (const std::uint64_t ctx = CurrentTraceContext(); ctx != 0) {
    if (!args_.empty()) args_.push_back(',');
    args_ += "\"ctx\":" + std::to_string(ctx);
  }
  Tracer::Get().Record(name_ != nullptr ? std::string(name_)
                                        : std::move(owned_),
                       start_, NowMicros(), std::move(args_));
}

void PublishTraceMetrics() {
  Tracer& tracer = Tracer::Get();
  Metrics& metrics = Metrics::Get();
  // Published as a point-in-time copy: Reset-then-Add so repeated flushes
  // do not double-count.
  Counter* recorded = metrics.counter("trace.recorded_spans");
  recorded->Reset();
  recorded->Add(static_cast<std::int64_t>(tracer.recorded()));
  Counter* dropped = metrics.counter("trace.dropped_spans");
  dropped->Reset();
  dropped->Add(static_cast<std::int64_t>(tracer.dropped()));
}

}  // namespace dlner::obs
