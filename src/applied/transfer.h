// Deep transfer learning for NER (survey Section 4.2).
//
// Two mechanisms from the surveyed literature:
//  * Parameter sharing (Yang et al. 2017): copy the representation and/or
//    encoder parameters of a source-domain model into a target-domain
//    model. Parameters are matched by name and shape, so layers whose
//    shapes are vocabulary- or label-set-dependent (word embedding tables,
//    decoder projections over a different tag set) are skipped
//    automatically — exactly Yang et al.'s "shared CRF only when label
//    sets are mappable" rule.
//  * Fine-tuning (Lee et al. 2017): build the target model around the
//    source model's vocabularies so *all* parameters carry over, then
//    continue training on the (small) target corpus, optionally with the
//    transferred layers frozen.
#ifndef DLNER_APPLIED_TRANSFER_H_
#define DLNER_APPLIED_TRANSFER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"

namespace dlner::applied {

/// Copies every source parameter whose name and shape match a target
/// parameter. Returns the number of parameters copied.
int CopyMatchingParameters(const core::NerModel& source,
                           core::NerModel* target);

/// Builds a target model that reuses the source model's vocabularies and
/// starts from its parameter values (full fine-tuning initialization).
/// Target entity types may differ; label-dependent decoder parameters are
/// then re-initialized (skipped by the name/shape match).
std::unique_ptr<core::NerModel> MakeFineTuneModel(
    core::NerModel& source, const core::NerConfig& target_config,
    std::vector<std::string> target_entity_types,
    const core::Resources& resources = {});

/// Freezes (requires_grad = false) the representation and/or encoder so
/// fine-tuning only updates the remaining layers.
void FreezeModules(core::NerModel* model, bool freeze_representation,
                   bool freeze_encoder);

}  // namespace dlner::applied

#endif  // DLNER_APPLIED_TRANSFER_H_
