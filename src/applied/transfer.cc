#include "applied/transfer.h"

#include <unordered_map>

namespace dlner::applied {

int CopyMatchingParameters(const core::NerModel& source,
                           core::NerModel* target) {
  DLNER_CHECK(target != nullptr);
  std::unordered_map<std::string, Var> source_by_name;
  for (const Var& p : source.Parameters()) {
    if (!p->name.empty()) source_by_name[p->name] = p;
  }
  int copied = 0;
  for (const Var& p : target->Parameters()) {
    auto it = source_by_name.find(p->name);
    if (it == source_by_name.end()) continue;
    if (!it->second->value.SameShape(p->value)) continue;
    p->value = it->second->value;
    ++copied;
  }
  return copied;
}

std::unique_ptr<core::NerModel> MakeFineTuneModel(
    core::NerModel& source, const core::NerConfig& target_config,
    std::vector<std::string> target_entity_types,
    const core::Resources& resources) {
  auto target = std::make_unique<core::NerModel>(
      target_config, source.word_vocab(), source.char_vocab(),
      std::move(target_entity_types), resources);
  CopyMatchingParameters(source, target.get());
  return target;
}

void FreezeModules(core::NerModel* model, bool freeze_representation,
                   bool freeze_encoder) {
  DLNER_CHECK(model != nullptr);
  if (freeze_representation) {
    for (const Var& p : model->representation()->Parameters()) {
      p->requires_grad = false;
    }
  }
  if (freeze_encoder) {
    for (const Var& p : model->encoder()->Parameters()) {
      p->requires_grad = false;
    }
  }
}

}  // namespace dlner::applied
