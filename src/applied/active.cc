#include "applied/active.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "decoders/crf.h"

namespace dlner::applied {

ActiveLearner::ActiveLearner(core::NerModel* model,
                             const ActiveConfig& config)
    : model_(model), config_(config), rng_(config.seed) {
  DLNER_CHECK(model_ != nullptr);
  trainer_ = std::make_unique<core::Trainer>(model_, config_.train);
}

double ActiveLearner::Uncertainty(const text::Sentence& sentence) {
  if (config_.strategy == "entropy") {
    auto* crf = dynamic_cast<decoders::CrfDecoder*>(model_->decoder());
    DLNER_CHECK_MSG(crf != nullptr,
                    "entropy strategy requires a CRF decoder");
    Var rep = model_->Represent(sentence.tokens, /*training=*/false);
    Var enc = model_->Encode(rep, /*training=*/false);
    Tensor marginals = crf->Marginals(crf->Emissions(enc)->value);
    double total = 0.0;
    for (int t = 0; t < marginals.rows(); ++t) {
      for (int k = 0; k < marginals.cols(); ++k) {
        const double p = marginals.at(t, k);
        if (p > 1e-12) total -= p * std::log(p);
      }
    }
    return total / marginals.rows();
  }
  // Least confidence: NLL of the model's own best prediction. The spans
  // are re-labeled with the predicted annotation, so this works for every
  // decoder type uniformly.
  text::Sentence self = sentence;
  self.spans = model_->Predict(sentence.tokens);
  if (!text::SpansAreFlat(self.spans)) return 0.0;  // defensive
  Var loss = model_->Loss(self, /*training=*/false);
  return loss->value[0];
}

std::vector<ActiveRound> ActiveLearner::Run(const text::Corpus& pool,
                                            const text::Corpus& test) {
  const int n = pool.size();
  std::vector<int> unlabeled(n);
  std::iota(unlabeled.begin(), unlabeled.end(), 0);
  rng_.Shuffle(&unlabeled);

  text::Corpus labeled;
  auto acquire = [&](int count) {
    // Order remaining pool items by uncertainty (or leave the random
    // shuffle order for the baseline strategy).
    if (config_.strategy != "random" && !labeled.sentences.empty()) {
      std::vector<std::pair<double, int>> scored;
      scored.reserve(unlabeled.size());
      for (int idx : unlabeled) {
        scored.push_back({Uncertainty(pool.sentences[idx]), idx});
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      unlabeled.clear();
      for (const auto& [u, idx] : scored) unlabeled.push_back(idx);
    }
    const int take = std::min<int>(count, static_cast<int>(unlabeled.size()));
    for (int i = 0; i < take; ++i) {
      labeled.sentences.push_back(pool.sentences[unlabeled[i]]);
    }
    unlabeled.erase(unlabeled.begin(), unlabeled.begin() + take);
  };

  std::vector<ActiveRound> history;
  acquire(config_.seed_size);
  for (int round = 0; round <= config_.rounds; ++round) {
    if (round > 0) acquire(config_.batch_size);
    trainer_->TrainEpochs(labeled, config_.epochs_per_round);
    ActiveRound stats;
    stats.round = round;
    stats.labeled_sentences = labeled.size();
    stats.labeled_fraction = static_cast<double>(labeled.size()) / n;
    stats.test_f1 = model_->Evaluate(test).micro.f1();
    history.push_back(stats);
    if (unlabeled.empty()) break;
  }
  return history;
}

}  // namespace dlner::applied
