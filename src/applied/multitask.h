// Deep multi-task learning for NER (survey Section 4.1).
//
// MultiTaskLmModel implements Rei (2017): alongside the NER objective, the
// shared encoder is trained with an auxiliary language-modeling objective —
// at each position the model predicts the next and previous word (Fig. 9).
// The auxiliary signal regularizes the representation, which is what yields
// the "consistent performance improvement" the survey reports, especially
// with small training sets (bench_multitask_lm).
#ifndef DLNER_APPLIED_MULTITASK_H_
#define DLNER_APPLIED_MULTITASK_H_

#include <memory>
#include <vector>

#include "core/model.h"

namespace dlner::applied {

class MultiTaskLmModel : public core::NerModel {
 public:
  /// `lm_weight` scales the auxiliary LM loss relative to the NER loss.
  MultiTaskLmModel(const core::NerConfig& config, const text::Corpus& train,
                   std::vector<std::string> entity_types, Float lm_weight,
                   const core::Resources& resources = {});

  /// NER loss + lm_weight * bidirectional LM loss over the shared encoder.
  Var Loss(const text::Sentence& sentence, bool training) override;

  std::vector<Var> Parameters() const override;

  /// Auxiliary LM loss alone (for diagnostics).
  Var LmLoss(const Var& encodings, const std::vector<std::string>& tokens);

 private:
  Float lm_weight_;
  std::unique_ptr<Linear> next_head_;  // enc_dim -> |V|: predict word t+1
  std::unique_ptr<Linear> prev_head_;  // enc_dim -> |V|: predict word t-1
};

/// Multi-task NER + entity-boundary detection (survey Section 4.1, Aguilar
/// et al.: "model NER as two related subtasks: entity segmentation and
/// entity category prediction"; also the Section 5.2 future direction of
/// treating boundary detection as a dedicated task). The auxiliary head
/// labels each token as B/I/O with the entity type erased, sharing the
/// encoder with the main typed tagger.
class MultiTaskBoundaryModel : public core::NerModel {
 public:
  MultiTaskBoundaryModel(const core::NerConfig& config,
                         const text::Corpus& train,
                         std::vector<std::string> entity_types,
                         Float boundary_weight,
                         const core::Resources& resources = {});

  Var Loss(const text::Sentence& sentence, bool training) override;
  std::vector<Var> Parameters() const override;

  /// Auxiliary boundary loss alone (for diagnostics). Uses untyped B/I/O.
  Var BoundaryLoss(const Var& encodings, const text::Sentence& gold);

  /// Untyped boundary spans predicted by the auxiliary head (a dedicated
  /// boundary detector, usable on its own).
  std::vector<text::Span> PredictBoundaries(
      const std::vector<std::string>& tokens);

 private:
  Float boundary_weight_;
  text::TagSet boundary_tags_;        // single pseudo-type "ENT", BIO
  std::unique_ptr<Linear> boundary_head_;  // enc_dim -> 3 (O, B, I)
};

}  // namespace dlner::applied

#endif  // DLNER_APPLIED_MULTITASK_H_
