#include "applied/distant.h"

#include <algorithm>
#include <cmath>

namespace dlner::applied {
namespace {

constexpr int kNumFeatures = 3;  // bias, normalized NLL, entity density

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

InstanceSelector::InstanceSelector(const DistantConfig& config)
    : config_(config), policy_(kNumFeatures, 0.0) {
  // Optimistic initialization: start near "keep most sentences" (p ~ 0.73)
  // so early episodes explore dropping the suspicious tail rather than
  // random halves of the data.
  policy_[0] = 1.0;
}

double InstanceSelector::KeepProbability(
    const std::vector<double>& features) const {
  DLNER_CHECK_EQ(features.size(), policy_.size());
  double z = 0.0;
  for (size_t i = 0; i < policy_.size(); ++i) z += policy_[i] * features[i];
  return Sigmoid(z);
}

DistantResult InstanceSelector::Run(
    const text::Corpus& noisy_train, const text::Corpus& dev,
    const text::Corpus& test, const std::vector<std::string>& entity_types) {
  DistantResult result;
  Rng rng(config_.seed);

  // Baseline: tagger trained on all noisy data.
  {
    core::NerModel model(config_.model_config, noisy_train, entity_types);
    core::Trainer trainer(&model, config_.train);
    trainer.Train(noisy_train, nullptr);
    result.f1_all_data = model.Evaluate(test).micro.f1();
  }

  // Warm-up tagger used only for sentence features.
  core::NerModel warm(config_.model_config, noisy_train, entity_types);
  {
    core::Trainer trainer(&warm, config_.train);
    trainer.TrainEpochs(noisy_train, config_.warmup_epochs);
  }

  // Per-sentence features under the warm model. The NLL of the noisy
  // labels is z-scored so the policy's logistic weights act on a
  // well-scaled signal.
  std::vector<double> nlls;
  for (const text::Sentence& s : noisy_train.sentences) {
    nlls.push_back(warm.Loss(s, /*training=*/false)->value[0]);
  }
  double mean = 0.0;
  for (double v : nlls) mean += v;
  mean /= std::max<size_t>(1, nlls.size());
  double var = 0.0;
  for (double v : nlls) var += (v - mean) * (v - mean);
  const double stddev =
      std::sqrt(var / std::max<size_t>(1, nlls.size())) + 1e-9;

  std::vector<std::vector<double>> features;
  features.reserve(noisy_train.sentences.size());
  for (size_t i = 0; i < noisy_train.sentences.size(); ++i) {
    const text::Sentence& s = noisy_train.sentences[i];
    int entity_tokens = 0;
    for (const text::Span& sp : s.spans) entity_tokens += sp.end - sp.start;
    features.push_back({1.0, (nlls[i] - mean) / stddev,
                        s.size() > 0 ? static_cast<double>(entity_tokens) /
                                           s.size()
                                     : 0.0});
  }

  // REINFORCE episodes.
  double baseline = 0.0;
  bool have_baseline = false;
  for (int ep = 0; ep < config_.episodes; ++ep) {
    std::vector<bool> keep(noisy_train.sentences.size());
    text::Corpus kept;
    for (size_t i = 0; i < keep.size(); ++i) {
      keep[i] = rng.Bernoulli(KeepProbability(features[i]));
      if (keep[i]) kept.sentences.push_back(noisy_train.sentences[i]);
    }
    double reward = 0.0;
    if (!kept.sentences.empty()) {
      // A fixed episode seed keeps initialization identical across
      // episodes, so reward differences reflect the selected data.
      core::NerConfig episode_config = config_.model_config;
      episode_config.seed = config_.seed + 1000;
      core::NerModel model(episode_config, noisy_train, entity_types);
      core::Trainer trainer(&model, config_.train);
      trainer.TrainEpochs(kept, config_.episode_epochs);
      reward = model.Evaluate(dev).micro.f1();
    }
    result.episode_rewards.push_back(reward);
    result.keep_fractions.push_back(
        static_cast<double>(kept.size()) / noisy_train.size());

    if (!have_baseline) {
      baseline = reward;
      have_baseline = true;
    }
    const double advantage = reward - baseline;
    baseline = 0.8 * baseline + 0.2 * reward;

    // d log pi / dw = (a - p) * f for Bernoulli action a with prob p.
    for (size_t i = 0; i < keep.size(); ++i) {
      const double p = KeepProbability(features[i]);
      const double a = keep[i] ? 1.0 : 0.0;
      for (int d = 0; d < kNumFeatures; ++d) {
        policy_[d] += config_.policy_lr * advantage * (a - p) *
                      features[i][d] / static_cast<double>(keep.size());
      }
    }
  }
  result.policy_weights = policy_;

  // Final tagger on the deterministic selection. The learned selection is
  // accepted only if it beats training on everything on the dev set
  // (standard dev-based model selection; REINFORCE on few episodes is
  // noisy, and deploying a selector that loses on dev would be malpractice).
  text::Corpus selected;
  for (size_t i = 0; i < noisy_train.sentences.size(); ++i) {
    if (KeepProbability(features[i]) > 0.5) {
      selected.sentences.push_back(noisy_train.sentences[i]);
    }
  }
  if (selected.sentences.empty()) selected = noisy_train;

  auto train_and_dev = [&](const text::Corpus& data, uint64_t seed_offset) {
    core::NerConfig final_config = config_.model_config;
    final_config.seed = config_.seed + seed_offset;
    auto model = std::make_unique<core::NerModel>(final_config, noisy_train,
                                                  entity_types);
    core::Trainer trainer(model.get(), config_.train);
    trainer.TrainEpochs(data, config_.final_epochs);
    const double dev_f1 = model->Evaluate(dev).micro.f1();
    return std::make_pair(std::move(model), dev_f1);
  };
  auto [selected_model, selected_dev] = train_and_dev(selected, 7);
  auto [all_model, all_dev] = train_and_dev(noisy_train, 7);
  result.f1_selected = selected_dev >= all_dev
                           ? selected_model->Evaluate(test).micro.f1()
                           : all_model->Evaluate(test).micro.f1();
  return result;
}

}  // namespace dlner::applied
