// Nested NER via layered flat models (survey Section 3.3.2; Ju et al.
// 2018): decompose overlapping annotations into nesting levels (innermost
// first), train one flat NER model per level, and take the union of their
// predictions. The survey motivates this with the prevalence of nesting
// (17% of GENIA entities, 30% of ACE sentences).
#ifndef DLNER_APPLIED_NESTED_H_
#define DLNER_APPLIED_NESTED_H_

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"

namespace dlner::applied {

/// Splits possibly-nested annotations into flat layers. Layer 0 holds the
/// innermost spans; each subsequent layer holds spans that strictly contain
/// spans of earlier layers. Every returned corpus has the same sentences
/// with a flat subset of the original spans; at most `max_levels` layers.
std::vector<text::Corpus> SplitNestingLevels(const text::Corpus& corpus,
                                             int max_levels = 3);

/// A stack of flat NER models, one per nesting level.
class LayeredNerModel {
 public:
  LayeredNerModel(const core::NerConfig& config,
                  std::vector<std::string> entity_types);

  /// Trains one model per nesting level of `train`.
  void Train(const text::Corpus& train, const core::TrainConfig& train_config);

  /// Union of per-level predictions (duplicates removed).
  std::vector<text::Span> Predict(const std::vector<std::string>& tokens);

  /// Exact-match evaluation against (possibly nested) gold annotations.
  eval::ExactResult Evaluate(const text::Corpus& corpus);

  int num_levels() const { return static_cast<int>(models_.size()); }

 private:
  core::NerConfig config_;
  std::vector<std::string> entity_types_;
  std::vector<std::unique_ptr<core::NerModel>> models_;
};

}  // namespace dlner::applied

#endif  // DLNER_APPLIED_NESTED_H_
