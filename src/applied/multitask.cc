#include "applied/multitask.h"

#include "tensor/ops.h"

namespace dlner::applied {

MultiTaskLmModel::MultiTaskLmModel(const core::NerConfig& config,
                                   const text::Corpus& train,
                                   std::vector<std::string> entity_types,
                                   Float lm_weight,
                                   const core::Resources& resources)
    : core::NerModel(config, train, std::move(entity_types), resources),
      lm_weight_(lm_weight) {
  const int enc_dim = encoder()->out_dim();
  // Rei's directional split: the next-word head sees only the first half
  // of the encoder state (the forward direction of a BiRNN) and the
  // prev-word head only the second half. With the full bidirectional
  // state, next-word prediction is trivial — the backward direction has
  // already read the next token — and the auxiliary task would inject
  // copy-identity features instead of predictive context.
  DLNER_CHECK_EQ(enc_dim % 2, 0);
  const int vocab_size = word_vocab().size();
  next_head_ = std::make_unique<Linear>(enc_dim / 2, vocab_size, rng(),
                                        "mtl.next_head");
  prev_head_ = std::make_unique<Linear>(enc_dim / 2, vocab_size, rng(),
                                        "mtl.prev_head");
}

Var MultiTaskLmModel::LmLoss(const Var& encodings,
                             const std::vector<std::string>& tokens) {
  const int t_len = encodings->value.rows();
  const int half = encodings->value.cols() / 2;
  const std::vector<int> ids = word_vocab().Encode(tokens);
  std::vector<Var> terms;
  for (int t = 0; t + 1 < t_len; ++t) {
    Var fwd_half = SliceVec(Row(encodings, t), 0, half);
    terms.push_back(CrossEntropyWithLogits(next_head_->ApplyVec(fwd_half),
                                           ids[t + 1]));
  }
  for (int t = 1; t < t_len; ++t) {
    Var bwd_half = SliceVec(Row(encodings, t), half, half);
    terms.push_back(CrossEntropyWithLogits(prev_head_->ApplyVec(bwd_half),
                                           ids[t - 1]));
  }
  if (terms.empty()) return Constant(Tensor({1}));
  return Scale(Sum(ConcatVecs(terms)),
               1.0 / static_cast<int>(terms.size()));
}

Var MultiTaskLmModel::Loss(const text::Sentence& sentence, bool training) {
  Var rep = Represent(sentence.tokens, training);
  Var enc = EncodeTokens(rep, sentence.tokens, training);
  Var ner_loss = decoder()->Loss(enc, sentence);
  if (!training || lm_weight_ == 0.0) return ner_loss;
  Var lm_loss = LmLoss(enc, sentence.tokens);
  return Add(ner_loss, Scale(lm_loss, lm_weight_));
}

std::vector<Var> MultiTaskLmModel::Parameters() const {
  std::vector<Var> all = core::NerModel::Parameters();
  for (const Var& p : next_head_->Parameters()) all.push_back(p);
  for (const Var& p : prev_head_->Parameters()) all.push_back(p);
  return all;
}

// ---------------------------------------------------------------------------
// MultiTaskBoundaryModel.
// ---------------------------------------------------------------------------

MultiTaskBoundaryModel::MultiTaskBoundaryModel(
    const core::NerConfig& config, const text::Corpus& train,
    std::vector<std::string> entity_types, Float boundary_weight,
    const core::Resources& resources)
    : core::NerModel(config, train, std::move(entity_types), resources),
      boundary_weight_(boundary_weight),
      boundary_tags_({"ENT"}, text::TagScheme::kBio) {
  boundary_head_ = std::make_unique<Linear>(
      encoder()->out_dim(), boundary_tags_.size(), rng(), "mtl.boundary");
}

Var MultiTaskBoundaryModel::BoundaryLoss(const Var& encodings,
                                         const text::Sentence& gold) {
  // Erase entity types: every mention becomes type "ENT".
  std::vector<text::Span> untyped = gold.spans;
  for (text::Span& sp : untyped) sp.type = "ENT";
  const std::vector<int> gold_ids =
      boundary_tags_.SpansToTagIds(untyped, gold.size());
  std::vector<Var> terms;
  for (int t = 0; t < gold.size(); ++t) {
    terms.push_back(CrossEntropyWithLogits(
        boundary_head_->ApplyVec(Row(encodings, t)), gold_ids[t]));
  }
  return Scale(Sum(ConcatVecs(terms)), 1.0 / gold.size());
}

Var MultiTaskBoundaryModel::Loss(const text::Sentence& sentence,
                                 bool training) {
  Var rep = Represent(sentence.tokens, training);
  Var enc = EncodeTokens(rep, sentence.tokens, training);
  Var ner_loss = decoder()->Loss(enc, sentence);
  if (!training || boundary_weight_ == 0.0) return ner_loss;
  return Add(ner_loss,
             Scale(BoundaryLoss(enc, sentence), boundary_weight_));
}

std::vector<text::Span> MultiTaskBoundaryModel::PredictBoundaries(
    const std::vector<std::string>& tokens) {
  Var rep = Represent(tokens, /*training=*/false);
  Var enc = EncodeTokens(rep, tokens, /*training=*/false);
  std::vector<int> ids(tokens.size());
  for (size_t t = 0; t < tokens.size(); ++t) {
    Var logits = boundary_head_->ApplyVec(Row(enc, static_cast<int>(t)));
    int arg = 0;
    for (int k = 1; k < logits->value.size(); ++k) {
      if (logits->value[k] > logits->value[arg]) arg = k;
    }
    ids[t] = arg;
  }
  return boundary_tags_.TagIdsToSpans(ids);
}

std::vector<Var> MultiTaskBoundaryModel::Parameters() const {
  std::vector<Var> all = core::NerModel::Parameters();
  for (const Var& p : boundary_head_->Parameters()) all.push_back(p);
  return all;
}

}  // namespace dlner::applied
