// Deep adversarial learning for NER (survey Section 4.5; DATNet, Zhou et
// al. 2019).
//
// FGSM-style adversarial training on the input representation: the
// perturbation eta = epsilon * g / ||g|| maximizes the loss to first order,
// where g is the loss gradient at the representation matrix. Each training
// step minimizes loss(x) + adv_weight * loss(x + eta), which the survey
// reports "improves generalization", particularly on noisy/low-resource
// inputs (bench_adversarial).
#ifndef DLNER_APPLIED_ADVERSARIAL_H_
#define DLNER_APPLIED_ADVERSARIAL_H_

#include <memory>

#include "core/trainer.h"

namespace dlner::applied {

struct AdversarialConfig {
  Float epsilon = 0.5;     // perturbation radius (L2)
  Float adv_weight = 1.0;  // weight of the adversarial term
};

class AdversarialTrainer {
 public:
  AdversarialTrainer(core::NerModel* model,
                     const core::TrainConfig& train_config,
                     const AdversarialConfig& adv_config);

  /// One shuffled epoch of combined clean + adversarial updates; returns
  /// the mean combined loss.
  double RunEpoch(const text::Corpus& train);

  /// Runs `epochs` epochs.
  void Train(const text::Corpus& train, int epochs);

  /// The FGSM perturbation for one sentence under the current model
  /// (exposed for tests: it must increase the loss to first order).
  Tensor ComputePerturbation(const text::Sentence& sentence);

 private:
  core::NerModel* model_;  // not owned
  core::TrainConfig train_config_;
  AdversarialConfig adv_config_;
  Rng shuffle_rng_;
  std::unique_ptr<Optimizer> optimizer_;
};

}  // namespace dlner::applied

#endif  // DLNER_APPLIED_ADVERSARIAL_H_
