// Reinforcement-learning instance selection for distantly supervised NER
// (survey Section 4.4; Yang et al. 2018).
//
// Distant supervision (gazetteer matching) yields noisy annotations:
// missing entities and wrong boundaries/types. A stochastic policy scores
// each noisy sentence from cheap features (the warm-started tagger's loss
// on the noisy labels and the annotation density) and decides keep/drop;
// REINFORCE with a moving-average baseline updates the policy using the
// dev-set F1 of a tagger trained on the kept subset as reward. The learned
// selector filters sentences whose noisy labels disagree with the tagger —
// "choosing positive sentences to reduce the effect of noisy annotation".
#ifndef DLNER_APPLIED_DISTANT_H_
#define DLNER_APPLIED_DISTANT_H_

#include <string>
#include <vector>

#include "core/trainer.h"

namespace dlner::applied {

struct DistantConfig {
  int episodes = 6;
  int warmup_epochs = 3;        // tagger warm-up on all noisy data
  int episode_epochs = 2;       // tagger epochs per policy episode
  int final_epochs = 6;         // final tagger on the selected subset
  double policy_lr = 0.5;
  uint64_t seed = 29;
  core::NerConfig model_config;
  core::TrainConfig train;
};

struct DistantResult {
  std::vector<double> episode_rewards;   // dev F1 per episode
  std::vector<double> keep_fractions;    // fraction of sentences kept
  double f1_all_data = 0.0;              // baseline: train on all noisy data
  double f1_selected = 0.0;              // train on the learned selection
  std::vector<double> policy_weights;
};

class InstanceSelector {
 public:
  explicit InstanceSelector(const DistantConfig& config);

  /// `noisy_train` carries distant-supervision labels; `dev` and `test`
  /// carry clean labels. `entity_types` is the label inventory.
  DistantResult Run(const text::Corpus& noisy_train, const text::Corpus& dev,
                    const text::Corpus& test,
                    const std::vector<std::string>& entity_types);

  /// Keep-probability of a sentence under the current policy given its
  /// feature vector.
  double KeepProbability(const std::vector<double>& features) const;

 private:
  DistantConfig config_;
  std::vector<double> policy_;  // logistic-regression weights
};

}  // namespace dlner::applied

#endif  // DLNER_APPLIED_DISTANT_H_
