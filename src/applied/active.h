// Deep active learning for NER (survey Section 4.3; Shen et al. 2017).
//
// Rounds of: select the most uncertain unlabeled sentences up to the
// annotation budget, reveal their labels, and *incrementally* train the
// model for a few epochs on the augmented labeled set (no retraining from
// scratch — Shen et al.'s key efficiency trick). Uncertainty is least
// confidence: the model's negative log likelihood of its own best
// prediction (for a CRF this is exactly log Z minus the Viterbi score).
#ifndef DLNER_APPLIED_ACTIVE_H_
#define DLNER_APPLIED_ACTIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/trainer.h"

namespace dlner::applied {

struct ActiveConfig {
  int seed_size = 20;        // initial random labeled set
  int batch_size = 20;       // sentences labeled per round
  int rounds = 8;
  int epochs_per_round = 3;  // incremental epochs after each acquisition
  /// "least_confidence": NLL of the model's own best prediction (works for
  /// every decoder; for a CRF this is logZ - Viterbi score).
  /// "entropy": mean posterior token entropy from CRF forward-backward
  /// marginals (requires a CRF decoder).
  /// "random": baseline.
  std::string strategy = "least_confidence";
  core::TrainConfig train;
  uint64_t seed = 17;
};

struct ActiveRound {
  int round = 0;
  int labeled_sentences = 0;
  double labeled_fraction = 0.0;
  double test_f1 = 0.0;
};

class ActiveLearner {
 public:
  /// Borrows the model; the caller owns it.
  ActiveLearner(core::NerModel* model, const ActiveConfig& config);

  /// Runs the acquisition loop against a fully-labeled pool (labels are
  /// revealed on selection) and evaluates on `test` after each round.
  std::vector<ActiveRound> Run(const text::Corpus& pool,
                               const text::Corpus& test);

  /// Least-confidence uncertainty of one sentence under the current model.
  double Uncertainty(const text::Sentence& sentence);

 private:
  core::NerModel* model_;  // not owned
  ActiveConfig config_;
  std::unique_ptr<core::Trainer> trainer_;
  Rng rng_;
};

}  // namespace dlner::applied

#endif  // DLNER_APPLIED_ACTIVE_H_
