#include "applied/nested.h"

#include <algorithm>
#include <set>

namespace dlner::applied {
namespace {

bool StrictlyContains(const text::Span& outer, const text::Span& inner) {
  return outer.start <= inner.start && inner.end <= outer.end &&
         (outer.end - outer.start) > (inner.end - inner.start);
}

}  // namespace

std::vector<text::Corpus> SplitNestingLevels(const text::Corpus& corpus,
                                             int max_levels) {
  DLNER_CHECK_GE(max_levels, 1);
  std::vector<text::Corpus> levels(max_levels);
  for (auto& level : levels) {
    level.sentences.resize(corpus.sentences.size());
  }
  for (size_t si = 0; si < corpus.sentences.size(); ++si) {
    const text::Sentence& s = corpus.sentences[si];
    for (int l = 0; l < max_levels; ++l) {
      levels[l].sentences[si].tokens = s.tokens;
    }
    // Deduplicate spans, then peel innermost layers.
    std::set<text::Span> remaining(s.spans.begin(), s.spans.end());
    int level = 0;
    while (!remaining.empty() && level < max_levels) {
      std::vector<text::Span> inner;
      for (const text::Span& sp : remaining) {
        bool contains_other = false;
        for (const text::Span& other : remaining) {
          if (!(other == sp) && StrictlyContains(sp, other)) {
            contains_other = true;
            break;
          }
        }
        if (!contains_other) inner.push_back(sp);
      }
      // Overlapping same-level spans (rare, partial overlap) would break
      // flat tagging; keep a flat subset greedily.
      std::sort(inner.begin(), inner.end());
      std::vector<text::Span> flat;
      for (const text::Span& sp : inner) {
        if (flat.empty() || sp.start >= flat.back().end) flat.push_back(sp);
      }
      levels[level].sentences[si].spans = flat;
      for (const text::Span& sp : flat) remaining.erase(sp);
      ++level;
    }
  }
  return levels;
}

LayeredNerModel::LayeredNerModel(const core::NerConfig& config,
                                 std::vector<std::string> entity_types)
    : config_(config), entity_types_(std::move(entity_types)) {}

void LayeredNerModel::Train(const text::Corpus& train,
                            const core::TrainConfig& train_config) {
  models_.clear();
  std::vector<text::Corpus> levels = SplitNestingLevels(train);
  for (size_t l = 0; l < levels.size(); ++l) {
    // Skip empty trailing levels.
    if (levels[l].EntityCount() == 0) break;
    core::NerConfig config = config_;
    config.seed = config_.seed + 31 * static_cast<uint64_t>(l);
    auto model =
        std::make_unique<core::NerModel>(config, train, entity_types_);
    core::Trainer trainer(model.get(), train_config);
    trainer.Train(levels[l], nullptr);
    models_.push_back(std::move(model));
  }
  DLNER_CHECK(!models_.empty());
}

std::vector<text::Span> LayeredNerModel::Predict(
    const std::vector<std::string>& tokens) {
  std::set<text::Span> all;
  for (const auto& model : models_) {
    for (const text::Span& sp : model->Predict(tokens)) all.insert(sp);
  }
  return {all.begin(), all.end()};
}

eval::ExactResult LayeredNerModel::Evaluate(const text::Corpus& corpus) {
  eval::ExactMatchEvaluator ev;
  for (const text::Sentence& s : corpus.sentences) {
    ev.Add(s.spans, Predict(s.tokens));
  }
  return ev.Result();
}

}  // namespace dlner::applied
