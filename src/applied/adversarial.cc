#include "applied/adversarial.h"

#include "tensor/ops.h"

namespace dlner::applied {

AdversarialTrainer::AdversarialTrainer(core::NerModel* model,
                                       const core::TrainConfig& train_config,
                                       const AdversarialConfig& adv_config)
    : model_(model),
      train_config_(train_config),
      adv_config_(adv_config),
      shuffle_rng_(train_config.shuffle_seed) {
  DLNER_CHECK(model_ != nullptr);
  optimizer_ = MakeOptimizer(train_config_.optimizer, model_->Parameters(),
                             train_config_.lr);
}

Tensor AdversarialTrainer::ComputePerturbation(
    const text::Sentence& sentence) {
  // Throwaway pass: gradient of the loss at the representation matrix.
  Var rep = model_->Represent(sentence.tokens, /*training=*/true);
  DLNER_CHECK_MSG(rep->requires_grad,
                  "adversarial training needs a trainable representation");
  Var loss = model_->LossFromRepresentation(rep, sentence, /*training=*/true);
  Backward(loss);
  Tensor eta = rep->grad;
  const Float norm = eta.Norm();
  if (norm > 0.0) {
    for (int i = 0; i < eta.size(); ++i) {
      eta[i] *= adv_config_.epsilon / norm;
    }
  }
  return eta;
}

double AdversarialTrainer::RunEpoch(const text::Corpus& train) {
  std::vector<int> order(train.sentences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  shuffle_rng_.Shuffle(&order);

  double total = 0.0;
  for (int idx : order) {
    const text::Sentence& sentence = train.sentences[idx];
    if (sentence.size() == 0) continue;
    Tensor eta = ComputePerturbation(sentence);

    optimizer_->ZeroGrad();
    Var clean_rep = model_->Represent(sentence.tokens, true);
    Var clean_loss =
        model_->LossFromRepresentation(clean_rep, sentence, true);
    Var adv_rep = Add(model_->Represent(sentence.tokens, true),
                      Constant(std::move(eta)));
    Var adv_loss = model_->LossFromRepresentation(adv_rep, sentence, true);
    Var combined = Add(clean_loss, Scale(adv_loss, adv_config_.adv_weight));
    Backward(combined);
    optimizer_->ClipGradNorm(train_config_.clip_norm);
    optimizer_->Step();
    total += combined->value[0];
  }
  return train.sentences.empty()
             ? 0.0
             : total / static_cast<double>(train.sentences.size());
}

void AdversarialTrainer::Train(const text::Corpus& train, int epochs) {
  for (int e = 0; e < epochs; ++e) RunEpoch(train);
}

}  // namespace dlner::applied
