// Greedy RNN tag decoder (survey Section 3.4.3, Fig. 12c; Shen et al.):
// an LSTM consumes the encoder state of the current token together with an
// embedding of the previously predicted tag and emits the next tag. Teacher
// forcing at training time, greedy left-to-right decoding at test time.
//
// Shen et al.'s claim — decoding cost grows O(K) with the tag-set size K
// instead of the CRF's O(K^2) — is measured by bench_decoder_scaling.
#ifndef DLNER_DECODERS_RNN_DECODER_H_
#define DLNER_DECODERS_RNN_DECODER_H_

#include <memory>
#include <string>

#include "decoders/decoder.h"
#include "tensor/rnn.h"
#include "text/tagging.h"

namespace dlner::decoders {

class RnnDecoder : public TagDecoder {
 public:
  RnnDecoder(int in_dim, const text::TagSet* tags, int tag_embed_dim,
             int hidden_dim, Rng* rng, const std::string& name = "rnn_dec");

  Var Loss(const Var& encodings, const text::Sentence& gold) override;
  std::vector<text::Span> Predict(const Var& encodings) const override;
  std::vector<Var> Parameters() const override;

  /// Beam-search decoding: keeps the `beam_width` highest log-probability
  /// tag prefixes instead of committing greedily (mitigates the error
  /// propagation the survey flags as the decoder's main weakness,
  /// Section 3.5). beam_width == 1 is exactly greedy decoding.
  std::vector<text::Span> PredictBeam(const Var& encodings, int beam_width) const;

  const text::TagSet& tags() const { return *tags_; }

 private:
  /// Tag-embedding id of the [GO] symbol (one past the last tag id).
  int GoId() const { return tags_->size(); }

  const text::TagSet* tags_;  // not owned
  std::unique_ptr<Embedding> tag_embedding_;  // [K+1, e] (+1 for GO)
  std::unique_ptr<LstmCell> cell_;            // input: enc_dim + e
  std::unique_ptr<Linear> out_;               // hidden -> K
};

}  // namespace dlner::decoders

#endif  // DLNER_DECODERS_RNN_DECODER_H_
