#include "decoders/fofe.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::decoders {

FofeDecoder::FofeDecoder(int in_dim, std::vector<std::string> entity_types,
                         int max_span_len, Float alpha, Rng* rng,
                         const std::string& name)
    : entity_types_(std::move(entity_types)),
      max_len_(max_span_len),
      alpha_(alpha) {
  DLNER_CHECK(!entity_types_.empty());
  DLNER_CHECK_GE(max_len_, 1);
  DLNER_CHECK_GT(alpha_, 0.0);
  DLNER_CHECK_LT(alpha_, 1.0);
  const int hidden = 2 * in_dim;
  hidden_ =
      std::make_unique<Linear>(4 * in_dim, hidden, rng, name + ".hidden");
  out_ = std::make_unique<Linear>(
      hidden, static_cast<int>(entity_types_.size()) + 1, rng,
      name + ".out");
}

std::vector<Var> FofeDecoder::Parameters() const {
  return JoinParameters({hidden_.get(), out_.get()});
}

Var FofeDecoder::Encode(const Var& m, int start, int end,
                        bool reverse) const {
  const int d = m->value.cols();
  if (start >= end) return Constant(Tensor({d}));
  const int len = end - start;
  // Weight row [1, len]: alpha^(len-1), ..., alpha, 1 (or reversed).
  Tensor w({1, len});
  for (int k = 0; k < len; ++k) {
    const int power = reverse ? k : len - 1 - k;
    w.at(0, k) = std::pow(alpha_, power);
  }
  std::vector<int> rows(len);
  for (int k = 0; k < len; ++k) rows[k] = start + k;
  return AsVector(MatMul(Constant(std::move(w)), Rows(m, rows)));
}

Var FofeDecoder::FragmentLogits(const Var& encodings, int i, int j) const {
  const int t_len = encodings->value.rows();
  Var frag_fwd = Encode(encodings, i, j, /*reverse=*/false);
  Var frag_bwd = Encode(encodings, i, j, /*reverse=*/true);
  Var left_ctx = Encode(encodings, 0, i, /*reverse=*/false);
  Var right_ctx = Encode(encodings, j, t_len, /*reverse=*/true);
  Var features = ConcatVecs({frag_fwd, frag_bwd, left_ctx, right_ctx});
  return out_->ApplyVec(Tanh(hidden_->ApplyVec(features)));
}

Var FofeDecoder::Loss(const Var& encodings, const text::Sentence& gold) {
  obs::ScopedSpan span("loss/fofe");
  const int t_len = encodings->value.rows();
  DLNER_CHECK_EQ(t_len, gold.size());

  auto label_of = [this](const std::string& type) {
    for (size_t k = 0; k < entity_types_.size(); ++k) {
      if (entity_types_[k] == type) return static_cast<int>(k) + 1;
    }
    DLNER_CHECK_MSG(false, "unknown entity type: " << type);
  };

  std::vector<Var> terms;
  for (int i = 0; i < t_len; ++i) {
    for (int j = i + 1; j <= std::min(t_len, i + max_len_); ++j) {
      int label = 0;
      for (const text::Span& sp : gold.spans) {
        if (sp.start == i && sp.end == j) {
          label = label_of(sp.type);
          break;
        }
      }
      terms.push_back(
          CrossEntropyWithLogits(FragmentLogits(encodings, i, j), label));
    }
  }
  return Scale(Sum(ConcatVecs(terms)),
               1.0 / static_cast<int>(terms.size()));
}

std::vector<text::Span> FofeDecoder::Predict(const Var& encodings) const {
  obs::ScopedSpan span("decode/fofe");
  const int t_len = encodings->value.rows();
  struct Candidate {
    int start;
    int end;
    int label;  // 1..Y
    Float prob;
  };
  std::vector<Candidate> candidates;
  for (int i = 0; i < t_len; ++i) {
    for (int j = i + 1; j <= std::min(t_len, i + max_len_); ++j) {
      Var probs = Softmax(FragmentLogits(encodings, i, j));
      int arg = 0;
      for (int k = 1; k < probs->value.size(); ++k) {
        if (probs->value[k] > probs->value[arg]) arg = k;
      }
      if (arg != 0) candidates.push_back({i, j, arg, probs->value[arg]});
    }
  }
  // Greedy non-overlap selection by probability (Xu et al.'s post-process).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.prob > b.prob;
            });
  std::vector<bool> taken(t_len, false);
  std::vector<text::Span> spans;
  for (const Candidate& c : candidates) {
    bool overlaps = false;
    for (int t = c.start; t < c.end; ++t) overlaps = overlaps || taken[t];
    if (overlaps) continue;
    for (int t = c.start; t < c.end; ++t) taken[t] = true;
    spans.push_back({c.start, c.end, entity_types_[c.label - 1]});
  }
  std::sort(spans.begin(), spans.end());
  return spans;
}

}  // namespace dlner::decoders
