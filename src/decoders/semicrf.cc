#include "decoders/semicrf.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::decoders {
namespace {
constexpr Float kNegInf = -1e9;
}  // namespace

SemiCrfDecoder::SemiCrfDecoder(int in_dim,
                               std::vector<std::string> entity_types,
                               int max_segment_len, Rng* rng,
                               const std::string& name)
    : entity_types_(std::move(entity_types)), max_len_(max_segment_len) {
  DLNER_CHECK(!entity_types_.empty());
  DLNER_CHECK_GE(max_len_, 1);
  const int y = num_labels();
  proj_ = std::make_unique<Linear>(in_dim, y, rng, name + ".proj");
  length_bias_ =
      Parameter(UniformMatrix(max_len_, y, 0.1, rng), name + ".len_bias");
  transitions_ = Parameter(UniformMatrix(y, y, 0.1, rng), name + ".trans");
  start_ = Parameter(UniformVector(y, 0.1, rng), name + ".start");
  end_ = Parameter(UniformVector(y, 0.1, rng), name + ".end");
}

std::vector<Var> SemiCrfDecoder::Parameters() const {
  std::vector<Var> all = proj_->Parameters();
  all.push_back(length_bias_);
  all.push_back(transitions_);
  all.push_back(start_);
  all.push_back(end_);
  return all;
}

Var SemiCrfDecoder::SegScore(const Var& emissions, int i, int j) const {
  const int len = j - i;
  std::vector<int> rows(len);
  for (int t = 0; t < len; ++t) rows[t] = i + t;
  // Sum of emissions over the segment (colwise) + length bias.
  Var summed = Scale(MeanOverRows(Rows(emissions, rows)),
                     static_cast<Float>(len));           // [Y]
  Var score = Add(summed, Row(length_bias_, len - 1));   // [Y]
  if (len > 1) {
    // O segments longer than 1 are forbidden.
    Tensor mask({num_labels()});
    mask[0] = kNegInf;
    score = Add(score, Constant(std::move(mask)));
  }
  return score;
}

Var SemiCrfDecoder::LogPartition(const Var& encodings) const {
  const int t_len = encodings->value.rows();
  Var emissions = proj_->Apply(encodings);  // [T, Y]
  // alpha[j]: log-sum of scores of all segmentations of [0, j) by the label
  // of the segment that *ends* at j.
  std::vector<Var> alpha(t_len + 1);
  for (int j = 1; j <= t_len; ++j) {
    std::vector<Var> candidates;
    for (int len = 1; len <= std::min(max_len_, j); ++len) {
      const int i = j - len;
      Var prev;
      if (i == 0) {
        prev = start_;
      } else {
        prev = LogSumExpOverRows(AddColBroadcast(transitions_, alpha[i]));
      }
      candidates.push_back(Add(prev, SegScore(emissions, i, j)));
    }
    alpha[j] = candidates.size() == 1
                   ? candidates[0]
                   : LogSumExpOverRows(StackRows(candidates));
  }
  return LogSumExp(Add(alpha[t_len], end_));
}

Var SemiCrfDecoder::SegmentationScore(
    const Var& encodings, const std::vector<Segment>& segments) const {
  DLNER_CHECK(!segments.empty());
  Var emissions = proj_->Apply(encodings);
  std::vector<Var> terms;
  terms.push_back(Pick(start_, segments.front().label));
  for (size_t s = 0; s < segments.size(); ++s) {
    const Segment& seg = segments[s];
    terms.push_back(Pick(SegScore(emissions, seg.start, seg.end), seg.label));
    if (s > 0) {
      terms.push_back(PickAt(transitions_, segments[s - 1].label, seg.label));
    }
  }
  terms.push_back(Pick(end_, segments.back().label));
  return Sum(ConcatVecs(terms));
}

std::vector<SemiCrfDecoder::Segment> SemiCrfDecoder::GoldSegmentation(
    const text::Sentence& gold) const {
  std::vector<text::Span> spans = gold.spans;
  std::sort(spans.begin(), spans.end());
  std::vector<Segment> segments;
  int pos = 0;
  auto label_of = [this](const std::string& type) {
    for (size_t i = 0; i < entity_types_.size(); ++i) {
      if (entity_types_[i] == type) return static_cast<int>(i) + 1;
    }
    DLNER_CHECK_MSG(false, "unknown entity type: " << type);
  };
  for (const text::Span& sp : spans) {
    DLNER_CHECK_LE(sp.end - sp.start, max_len_);
    DLNER_CHECK_GE(sp.start, pos);
    while (pos < sp.start) {
      segments.push_back({pos, pos + 1, 0});
      ++pos;
    }
    segments.push_back({sp.start, sp.end, label_of(sp.type)});
    pos = sp.end;
  }
  while (pos < gold.size()) {
    segments.push_back({pos, pos + 1, 0});
    ++pos;
  }
  return segments;
}

Var SemiCrfDecoder::Loss(const Var& encodings, const text::Sentence& gold) {
  obs::ScopedSpan span("loss/semicrf");
  const int t_len = encodings->value.rows();
  DLNER_CHECK_EQ(t_len, gold.size());
  std::vector<Segment> segments = GoldSegmentation(gold);
  Var nll =
      Sub(LogPartition(encodings), SegmentationScore(encodings, segments));
  return Scale(nll, 1.0 / t_len);
}

std::vector<text::Span> SemiCrfDecoder::Predict(const Var& encodings) const {
  obs::ScopedSpan span("decode/semicrf");
  std::vector<text::Span> spans;
  for (const Segment& seg : ViterbiSegments(encodings)) {
    if (seg.label != 0) {
      spans.push_back({seg.start, seg.end, entity_types_[seg.label - 1]});
    }
  }
  return spans;
}

std::vector<SemiCrfDecoder::Segment> SemiCrfDecoder::ViterbiSegments(
    const Var& encodings) const {
  const int t_len = encodings->value.rows();
  const int y = num_labels();
  const Tensor emissions = proj_->Apply(encodings)->value;

  // Prefix sums of emissions for O(1) segment sums.
  std::vector<std::vector<Float>> prefix(t_len + 1, std::vector<Float>(y, 0));
  for (int t = 0; t < t_len; ++t) {
    for (int l = 0; l < y; ++l) {
      prefix[t + 1][l] = prefix[t][l] + emissions.at(t, l);
    }
  }
  auto seg_score = [&](int i, int j, int l) {
    if (l == 0 && j - i > 1) return kNegInf;
    return prefix[j][l] - prefix[i][l] + length_bias_->value.at(j - i - 1, l);
  };

  // dp[j][l]: best score of a segmentation of [0, j) ending with label l.
  std::vector<std::vector<Float>> dp(t_len + 1,
                                     std::vector<Float>(y, kNegInf * 2));
  struct Back {
    int i = -1;
    int label = -1;
  };
  std::vector<std::vector<Back>> parent(t_len + 1, std::vector<Back>(y));
  for (int j = 1; j <= t_len; ++j) {
    for (int len = 1; len <= std::min(max_len_, j); ++len) {
      const int i = j - len;
      for (int l = 0; l < y; ++l) {
        const Float seg = seg_score(i, j, l);
        if (i == 0) {
          const Float s = start_->value[l] + seg;
          if (s > dp[j][l]) {
            dp[j][l] = s;
            parent[j][l] = {0, -1};
          }
        } else {
          for (int lp = 0; lp < y; ++lp) {
            const Float s = dp[i][lp] + transitions_->value.at(lp, l) + seg;
            if (s > dp[j][l]) {
              dp[j][l] = s;
              parent[j][l] = {i, lp};
            }
          }
        }
      }
    }
  }
  int best_label = 0;
  Float best = kNegInf * 3;
  for (int l = 0; l < y; ++l) {
    const Float s = dp[t_len][l] + end_->value[l];
    if (s > best) {
      best = s;
      best_label = l;
    }
  }
  // Reconstruct segments right-to-left.
  std::vector<Segment> segments;
  int j = t_len;
  int label = best_label;
  while (j > 0) {
    const Back& b = parent[j][label];
    segments.push_back({b.i, j, label});
    const int next_label = b.label;
    j = b.i;
    label = next_label;
    if (j > 0) DLNER_CHECK_GE(label, 0);
  }
  std::reverse(segments.begin(), segments.end());
  return segments;
}

}  // namespace dlner::decoders
