// FOFE local-detection decoder (survey Section 3.2.3/3.4.1; Xu et al. 2017
// [115]): named entity recognition as *span classification* rather than
// sequence labeling. Every text fragment up to a maximum length is encoded
// with fixed-size ordinally-forgetting encoding (FOFE) — the recency-
// weighted sum z = sum_i alpha^(n-i) x_i, which encodes a variable-length
// sequence into a fixed-size vector losslessly for alpha in (0, 0.5] — and
// classified into an entity type or NONE. Fragment features combine the
// fragment's own bidirectional FOFE with FOFE encodings of its left and
// right contexts. Inference scores all fragments and greedily keeps the
// highest-probability non-overlapping non-NONE spans.
#ifndef DLNER_DECODERS_FOFE_H_
#define DLNER_DECODERS_FOFE_H_

#include <memory>
#include <string>
#include <vector>

#include "decoders/decoder.h"

namespace dlner::decoders {

class FofeDecoder : public TagDecoder {
 public:
  FofeDecoder(int in_dim, std::vector<std::string> entity_types,
              int max_span_len, Float alpha, Rng* rng,
              const std::string& name = "fofe_dec");

  Var Loss(const Var& encodings, const text::Sentence& gold) override;
  std::vector<text::Span> Predict(const Var& encodings) const override;
  std::vector<Var> Parameters() const override;

  /// FOFE encoding of rows [start, end) of `m` (forward order when
  /// `reverse` is false): sum_k alpha^(len-1-k) * m[start+k]. Empty ranges
  /// yield a zero vector. Exposed for tests.
  Var Encode(const Var& m, int start, int end, bool reverse) const;

  const std::vector<std::string>& entity_types() const {
    return entity_types_;
  }
  int max_span_len() const { return max_len_; }

 private:
  /// Classifier logits for fragment [i, j).
  Var FragmentLogits(const Var& encodings, int i, int j) const;

  std::vector<std::string> entity_types_;
  int max_len_;
  Float alpha_;
  std::unique_ptr<Linear> hidden_;  // 4*in_dim -> hidden
  std::unique_ptr<Linear> out_;     // hidden -> Y+1 (0 = NONE)
};

}  // namespace dlner::decoders

#endif  // DLNER_DECODERS_FOFE_H_
