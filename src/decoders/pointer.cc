#include "decoders/pointer.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::decoders {

PointerDecoder::PointerDecoder(int in_dim,
                               std::vector<std::string> entity_types,
                               int max_segment_len, int hidden_dim, Rng* rng,
                               const std::string& name)
    : entity_types_(std::move(entity_types)), max_len_(max_segment_len) {
  DLNER_CHECK(!entity_types_.empty());
  DLNER_CHECK_GE(max_len_, 1);
  cell_ = std::make_unique<LstmCell>(in_dim, hidden_dim, rng, name + ".cell");
  ptr_enc_ =
      std::make_unique<Linear>(in_dim, hidden_dim, rng, name + ".ptr_enc");
  ptr_dec_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng,
                                      name + ".ptr_dec");
  ptr_v_ = Parameter(UniformVector(hidden_dim, 0.5, rng), name + ".ptr_v");
  const int num_labels = static_cast<int>(entity_types_.size()) + 1;
  label_out_ = std::make_unique<Linear>(in_dim + hidden_dim, num_labels, rng,
                                        name + ".label_out");
}

std::vector<Var> PointerDecoder::Parameters() const {
  std::vector<Var> all = JoinParameters(
      {cell_.get(), ptr_enc_.get(), ptr_dec_.get(), label_out_.get()});
  all.push_back(ptr_v_);
  return all;
}

Var PointerDecoder::EndLogits(const Var& encodings, const Var& hidden,
                              int start, int limit) const {
  Var dec_part = ptr_dec_->ApplyVec(hidden);  // [h]
  std::vector<Var> scores;
  scores.reserve(limit - start);
  for (int q = start; q < limit; ++q) {
    Var enc_part = ptr_enc_->ApplyVec(Row(encodings, q));  // [h]
    scores.push_back(Dot(ptr_v_, Tanh(Add(enc_part, dec_part))));
  }
  return ConcatVecs(scores);  // [limit - start]
}

Var PointerDecoder::LabelLogits(const Var& encodings, const Var& hidden,
                                int start, int end) const {
  std::vector<int> rows(end - start);
  for (int t = 0; t < end - start; ++t) rows[t] = start + t;
  Var seg_rep = MeanOverRows(Rows(encodings, rows));  // [in_dim]
  return label_out_->ApplyVec(ConcatVecs({seg_rep, hidden}));
}

Var PointerDecoder::Loss(const Var& encodings, const text::Sentence& gold) {
  obs::ScopedSpan span("loss/pointer");
  const int t_len = encodings->value.rows();
  DLNER_CHECK_EQ(t_len, gold.size());

  // Gold segmentation: entity spans + length-1 O segments, left to right.
  std::vector<text::Span> spans = gold.spans;
  std::sort(spans.begin(), spans.end());
  auto label_of = [this](const std::string& type) {
    for (size_t i = 0; i < entity_types_.size(); ++i) {
      if (entity_types_[i] == type) return static_cast<int>(i) + 1;
    }
    DLNER_CHECK_MSG(false, "unknown entity type: " << type);
  };

  RnnState state = cell_->InitialState();
  std::vector<Var> terms;
  int pos = 0;
  size_t span_idx = 0;
  while (pos < t_len) {
    int seg_end;
    int label;
    if (span_idx < spans.size() && spans[span_idx].start == pos) {
      seg_end = spans[span_idx].end;
      label = label_of(spans[span_idx].type);
      ++span_idx;
    } else {
      seg_end = pos + 1;
      label = 0;
    }
    DLNER_CHECK_LE(seg_end - pos, max_len_);

    state = cell_->Step(Row(encodings, pos), state);
    const int limit = std::min(pos + max_len_, t_len);
    Var end_logits = EndLogits(encodings, state.h, pos, limit);
    terms.push_back(CrossEntropyWithLogits(end_logits, seg_end - 1 - pos));
    Var label_logits = LabelLogits(encodings, state.h, pos, seg_end);
    terms.push_back(CrossEntropyWithLogits(label_logits, label));
    pos = seg_end;
  }
  return Scale(Sum(ConcatVecs(terms)),
               1.0 / static_cast<int>(terms.size()));
}

std::vector<text::Span> PointerDecoder::Predict(const Var& encodings) const {
  obs::ScopedSpan span("decode/pointer");
  const int t_len = encodings->value.rows();
  RnnState state = cell_->InitialState();
  std::vector<text::Span> spans;
  int pos = 0;
  while (pos < t_len) {
    state = cell_->Step(Row(encodings, pos), state);
    const int limit = std::min(pos + max_len_, t_len);
    Var end_logits = EndLogits(encodings, state.h, pos, limit);
    int best_off = 0;
    for (int i = 1; i < end_logits->value.size(); ++i) {
      if (end_logits->value[i] > end_logits->value[best_off]) best_off = i;
    }
    const int seg_end = pos + best_off + 1;
    Var label_logits = LabelLogits(encodings, state.h, pos, seg_end);
    int best_label = 0;
    for (int l = 1; l < label_logits->value.size(); ++l) {
      if (label_logits->value[l] > label_logits->value[best_label]) {
        best_label = l;
      }
    }
    if (best_label > 0) {
      spans.push_back({pos, seg_end, entity_types_[best_label - 1]});
    }
    pos = seg_end;
  }
  return spans;
}

}  // namespace dlner::decoders
