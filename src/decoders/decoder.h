// Tag decoder interface (survey Section 3.4, Fig. 12): the final stage of
// the taxonomy, mapping context-dependent token representations [T, d] to a
// loss at training time and to entity spans at inference time.
//
// Decoders return *spans* from Predict rather than raw tags so that
// tag-sequence decoders (softmax, CRF, RNN) and segment decoders (semi-CRF,
// pointer network) share one interface and one span-level evaluation path.
#ifndef DLNER_DECODERS_DECODER_H_
#define DLNER_DECODERS_DECODER_H_

#include "tensor/nn.h"
#include "text/types.h"

namespace dlner::decoders {

class TagDecoder : public Module {
 public:
  /// Scalar training loss for one sentence. `encodings` is [T, d] with T
  /// equal to gold.size(); gold spans must be flat.
  virtual Var Loss(const Var& encodings, const text::Sentence& gold) = 0;

  /// Decodes entity spans from [T, d] encodings.
  virtual std::vector<text::Span> Predict(const Var& encodings) const = 0;
};

}  // namespace dlner::decoders

#endif  // DLNER_DECODERS_DECODER_H_
