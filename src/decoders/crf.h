// Linear-chain CRF tag decoder (survey Section 3.4.2) — the most common
// decoder of Table 3 (Huang et al., Lample et al., Ma & Hovy, Akbik et
// al.). Emission scores come from a linear projection of the encodings;
// learned transition, start, and end scores capture tag-sequence structure.
//
// Training maximizes the conditional log likelihood via the forward
// algorithm, built from differentiable log-sum-exp ops so gradients flow
// through the dynamic program. Inference is (optionally scheme-constrained)
// Viterbi.
#ifndef DLNER_DECODERS_CRF_H_
#define DLNER_DECODERS_CRF_H_

#include <memory>
#include <string>
#include <vector>

#include "decoders/decoder.h"
#include "text/tagging.h"

namespace dlner::decoders {

class CrfDecoder : public TagDecoder {
 public:
  /// When `constrained_decoding` is true, Viterbi forbids transitions that
  /// are invalid under the tag scheme (e.g. O -> I-PER in BIO).
  CrfDecoder(int in_dim, const text::TagSet* tags, Rng* rng,
             bool constrained_decoding = true,
             const std::string& name = "crf_dec");

  Var Loss(const Var& encodings, const text::Sentence& gold) override;
  std::vector<text::Span> Predict(const Var& encodings) const override;
  std::vector<Var> Parameters() const override;

  /// Sequence log partition function (exposed for tests against brute
  /// force enumeration).
  Var LogPartition(const Var& emissions) const;
  /// Unnormalized score of a specific tag path.
  Var PathScore(const Var& emissions, const std::vector<int>& path) const;
  /// Emission matrix [T, K] for the given encodings.
  Var Emissions(const Var& encodings) const { return proj_->Apply(encodings); }
  /// Best tag path under the model (Viterbi).
  std::vector<int> ViterbiPath(const Tensor& emissions) const;

  /// Posterior tag marginals p(y_t = k | x) via the forward-backward
  /// algorithm -> [T, K] (rows sum to 1). Value-only (no gradients); used
  /// for uncertainty estimates (token entropy, Shen et al.).
  Tensor Marginals(const Tensor& emissions) const;

  const text::TagSet& tags() const { return *tags_; }
  const Linear& proj() const { return *proj_; }

 private:
  const text::TagSet* tags_;  // not owned
  bool constrained_;
  std::unique_ptr<Linear> proj_;
  Var transitions_;  // [K, K]: score of tag j following tag i
  Var start_;        // [K]
  Var end_;          // [K]
};

}  // namespace dlner::decoders

#endif  // DLNER_DECODERS_CRF_H_
