#include "decoders/softmax.h"

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::decoders {

SoftmaxDecoder::SoftmaxDecoder(int in_dim, const text::TagSet* tags, Rng* rng,
                               const std::string& name)
    : tags_(tags),
      proj_(std::make_unique<Linear>(in_dim, tags->size(), rng, name)) {
  DLNER_CHECK(tags_ != nullptr);
}

Var SoftmaxDecoder::Loss(const Var& encodings, const text::Sentence& gold) {
  obs::ScopedSpan span("loss/softmax");
  const int t_len = encodings->value.rows();
  DLNER_CHECK_EQ(t_len, gold.size());
  const std::vector<int> gold_ids = tags_->SpansToTagIds(gold.spans, t_len);
  Var logits = proj_->Apply(encodings);  // [T, K]
  std::vector<Var> terms;
  terms.reserve(t_len);
  for (int t = 0; t < t_len; ++t) {
    terms.push_back(CrossEntropyWithLogits(Row(logits, t), gold_ids[t]));
  }
  return Scale(Sum(ConcatVecs(terms)), 1.0 / t_len);
}

std::vector<text::Span> SoftmaxDecoder::Predict(const Var& encodings) const {
  obs::ScopedSpan span("decode/softmax");
  Var logits = proj_->Apply(encodings);
  const int t_len = logits->value.rows();
  const int k = logits->value.cols();
  std::vector<int> best(t_len);
  for (int t = 0; t < t_len; ++t) {
    int arg = 0;
    for (int j = 1; j < k; ++j) {
      if (logits->value.at(t, j) > logits->value.at(t, arg)) arg = j;
    }
    best[t] = arg;
  }
  return tags_->TagIdsToSpans(best);
}

}  // namespace dlner::decoders
