#include "decoders/rnn_decoder.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::decoders {

RnnDecoder::RnnDecoder(int in_dim, const text::TagSet* tags,
                       int tag_embed_dim, int hidden_dim, Rng* rng,
                       const std::string& name)
    : tags_(tags),
      tag_embedding_(std::make_unique<Embedding>(
          tags->size() + 1, tag_embed_dim, rng, name + ".tag_emb")),
      cell_(std::make_unique<LstmCell>(in_dim + tag_embed_dim, hidden_dim,
                                       rng, name + ".cell")),
      out_(std::make_unique<Linear>(hidden_dim, tags->size(), rng,
                                    name + ".out")) {
  DLNER_CHECK(tags_ != nullptr);
}

std::vector<Var> RnnDecoder::Parameters() const {
  return JoinParameters({tag_embedding_.get(), cell_.get(), out_.get()});
}

Var RnnDecoder::Loss(const Var& encodings, const text::Sentence& gold) {
  obs::ScopedSpan span("loss/rnn");
  const int t_len = encodings->value.rows();
  DLNER_CHECK_EQ(t_len, gold.size());
  const std::vector<int> gold_ids = tags_->SpansToTagIds(gold.spans, t_len);

  RnnState state = cell_->InitialState();
  std::vector<Var> terms;
  terms.reserve(t_len);
  int prev_tag = GoId();
  for (int t = 0; t < t_len; ++t) {
    Var input =
        ConcatVecs({Row(encodings, t), tag_embedding_->LookupOne(prev_tag)});
    state = cell_->Step(input, state);
    Var logits = out_->ApplyVec(state.h);
    terms.push_back(CrossEntropyWithLogits(logits, gold_ids[t]));
    prev_tag = gold_ids[t];  // teacher forcing
  }
  return Scale(Sum(ConcatVecs(terms)), 1.0 / t_len);
}

std::vector<text::Span> RnnDecoder::PredictBeam(const Var& encodings,
                                                int beam_width) const {
  DLNER_CHECK_GE(beam_width, 1);
  const int t_len = encodings->value.rows();
  const int k = tags_->size();

  struct Hypothesis {
    RnnState state;
    std::vector<int> tags;
    int prev_tag;
    Float log_prob;
  };
  std::vector<Hypothesis> beam;
  beam.push_back({cell_->InitialState(), {}, GoId(), 0.0});

  for (int t = 0; t < t_len; ++t) {
    struct Expansion {
      int hyp;
      int tag;
      Float log_prob;
      RnnState state;
    };
    std::vector<Expansion> expansions;
    for (size_t h = 0; h < beam.size(); ++h) {
      Var input = ConcatVecs(
          {Row(encodings, t), tag_embedding_->LookupOne(beam[h].prev_tag)});
      RnnState state = cell_->Step(input, beam[h].state);
      Var log_probs = LogSoftmax(out_->ApplyVec(state.h));
      for (int tag = 0; tag < k; ++tag) {
        expansions.push_back({static_cast<int>(h), tag,
                              beam[h].log_prob + log_probs->value[tag],
                              state});
      }
    }
    std::sort(expansions.begin(), expansions.end(),
              [](const Expansion& a, const Expansion& b) {
                return a.log_prob > b.log_prob;
              });
    std::vector<Hypothesis> next;
    for (size_t e = 0;
         e < expansions.size() && next.size() < static_cast<size_t>(beam_width);
         ++e) {
      const Expansion& x = expansions[e];
      Hypothesis hyp;
      hyp.state = x.state;
      hyp.tags = beam[x.hyp].tags;
      hyp.tags.push_back(x.tag);
      hyp.prev_tag = x.tag;
      hyp.log_prob = x.log_prob;
      next.push_back(std::move(hyp));
    }
    beam = std::move(next);
  }
  return tags_->TagIdsToSpans(beam.front().tags);
}

std::vector<text::Span> RnnDecoder::Predict(const Var& encodings) const {
  obs::ScopedSpan span("decode/rnn");
  const int t_len = encodings->value.rows();
  RnnState state = cell_->InitialState();
  std::vector<int> predicted(t_len);
  int prev_tag = GoId();
  for (int t = 0; t < t_len; ++t) {
    Var input =
        ConcatVecs({Row(encodings, t), tag_embedding_->LookupOne(prev_tag)});
    state = cell_->Step(input, state);
    Var logits = out_->ApplyVec(state.h);
    int arg = 0;
    for (int j = 1; j < tags_->size(); ++j) {
      if (logits->value[j] > logits->value[arg]) arg = j;
    }
    predicted[t] = arg;
    prev_tag = arg;
  }
  return tags_->TagIdsToSpans(predicted);
}

}  // namespace dlner::decoders
