// Pointer-network segment decoder (survey Section 3.4.4, Fig. 12d; Zhai et
// al.): alternates two decisions — point at the end position of the next
// segment starting at the current cursor (softmax over candidate positions
// via additive attention), then classify the segment's label (entity types
// + O, with O segments fixed to length 1). The cursor jumps past the
// segment and the process repeats until the sentence is consumed.
#ifndef DLNER_DECODERS_POINTER_H_
#define DLNER_DECODERS_POINTER_H_

#include <memory>
#include <string>
#include <vector>

#include "decoders/decoder.h"
#include "tensor/rnn.h"

namespace dlner::decoders {

class PointerDecoder : public TagDecoder {
 public:
  PointerDecoder(int in_dim, std::vector<std::string> entity_types,
                 int max_segment_len, int hidden_dim, Rng* rng,
                 const std::string& name = "pointer_dec");

  Var Loss(const Var& encodings, const text::Sentence& gold) override;
  std::vector<text::Span> Predict(const Var& encodings) const override;
  std::vector<Var> Parameters() const override;

  const std::vector<std::string>& entity_types() const {
    return entity_types_;
  }

 private:
  /// Pointer scores over candidate end positions [start, limit) given the
  /// decoder hidden state; returns logits [limit - start].
  Var EndLogits(const Var& encodings, const Var& hidden, int start,
                int limit) const;
  /// Label logits for segment [start, end) given the decoder hidden state.
  Var LabelLogits(const Var& encodings, const Var& hidden, int start,
                  int end) const;

  std::vector<std::string> entity_types_;
  int max_len_;
  std::unique_ptr<LstmCell> cell_;      // input: encoder row at the cursor
  std::unique_ptr<Linear> ptr_enc_;     // additive attention: encoder side
  std::unique_ptr<Linear> ptr_dec_;     // additive attention: decoder side
  Var ptr_v_;                           // attention scorer vector
  std::unique_ptr<Linear> label_out_;   // [seg_rep + hidden] -> Y
};

}  // namespace dlner::decoders

#endif  // DLNER_DECODERS_POINTER_H_
