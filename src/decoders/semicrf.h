// Semi-Markov CRF tag decoder (survey Section 3.4.2; Zhuo et al., Ye &
// Ling): models labeled *segments* directly instead of per-token tags, so
// segment-level features (here: summed emissions plus a learned
// length-by-label bias) inform both scoring and transition structure.
//
// Labels are the entity types plus O; O segments are restricted to length 1
// so entity boundaries stay sharp. Training uses a differentiable segmental
// forward algorithm; inference is segmental Viterbi.
#ifndef DLNER_DECODERS_SEMICRF_H_
#define DLNER_DECODERS_SEMICRF_H_

#include <memory>
#include <string>
#include <vector>

#include "decoders/decoder.h"

namespace dlner::decoders {

class SemiCrfDecoder : public TagDecoder {
 public:
  SemiCrfDecoder(int in_dim, std::vector<std::string> entity_types,
                 int max_segment_len, Rng* rng,
                 const std::string& name = "semicrf_dec");

  Var Loss(const Var& encodings, const text::Sentence& gold) override;
  std::vector<text::Span> Predict(const Var& encodings) const override;
  std::vector<Var> Parameters() const override;

  /// Log partition over all segmentations (exposed for brute-force tests).
  Var LogPartition(const Var& encodings) const;
  /// Unnormalized score of a specific segmentation. Segments must tile
  /// [0, T) and use label indexes (0 = O).
  struct Segment {
    int start;
    int end;
    int label;  // 0 = O, 1.. = entity_types()[label-1]

    friend bool operator==(const Segment& a, const Segment& b) {
      return a.start == b.start && a.end == b.end && a.label == b.label;
    }
  };
  Var SegmentationScore(const Var& encodings,
                        const std::vector<Segment>& segments) const;

  /// Gold segmentation of a sentence (spans + length-1 O segments).
  std::vector<Segment> GoldSegmentation(const text::Sentence& gold) const;

  /// Segmental Viterbi: the complete argmax segmentation, including O
  /// segments, in left-to-right order. Predict() returns its entity spans;
  /// exposed separately so the full decode can be checked against
  /// brute-force enumeration over all segmentations.
  std::vector<Segment> ViterbiSegments(const Var& encodings) const;

  const std::vector<std::string>& entity_types() const {
    return entity_types_;
  }
  int num_labels() const { return static_cast<int>(entity_types_.size()) + 1; }
  int max_segment_len() const { return max_len_; }

 private:
  // Differentiable segment score vector [Y] for tokens [i, j).
  Var SegScore(const Var& emissions, int i, int j) const;

  std::vector<std::string> entity_types_;
  int max_len_;
  std::unique_ptr<Linear> proj_;  // in_dim -> Y per-token emissions
  Var length_bias_;               // [max_len, Y]
  Var transitions_;               // [Y, Y]
  Var start_;                     // [Y]
  Var end_;                       // [Y]
};

}  // namespace dlner::decoders

#endif  // DLNER_DECODERS_SEMICRF_H_
