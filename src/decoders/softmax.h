// MLP + softmax tag decoder (survey Section 3.4.1): each token's tag is
// predicted independently — no transition modeling. The baseline that CRF
// decoders are compared against throughout Table 3.
#ifndef DLNER_DECODERS_SOFTMAX_H_
#define DLNER_DECODERS_SOFTMAX_H_

#include <memory>
#include <string>

#include "decoders/decoder.h"
#include "text/tagging.h"

namespace dlner::decoders {

class SoftmaxDecoder : public TagDecoder {
 public:
  SoftmaxDecoder(int in_dim, const text::TagSet* tags, Rng* rng,
                 const std::string& name = "softmax_dec");

  Var Loss(const Var& encodings, const text::Sentence& gold) override;
  std::vector<text::Span> Predict(const Var& encodings) const override;
  std::vector<Var> Parameters() const override { return proj_->Parameters(); }
  const text::TagSet& tags() const { return *tags_; }
  const Linear& proj() const { return *proj_; }

 private:
  const text::TagSet* tags_;  // not owned
  std::unique_ptr<Linear> proj_;
};

}  // namespace dlner::decoders

#endif  // DLNER_DECODERS_SOFTMAX_H_
