#include "decoders/crf.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::decoders {
namespace {
constexpr Float kNegInf = -1e9;
}  // namespace

CrfDecoder::CrfDecoder(int in_dim, const text::TagSet* tags, Rng* rng,
                       bool constrained_decoding, const std::string& name)
    : tags_(tags),
      constrained_(constrained_decoding),
      proj_(std::make_unique<Linear>(in_dim, tags->size(), rng,
                                     name + ".proj")),
      transitions_(Parameter(
          UniformMatrix(tags->size(), tags->size(), 0.1, rng),
          name + ".trans")),
      start_(Parameter(UniformVector(tags->size(), 0.1, rng),
                       name + ".start")),
      end_(Parameter(UniformVector(tags->size(), 0.1, rng), name + ".end")) {
  DLNER_CHECK(tags_ != nullptr);
}

std::vector<Var> CrfDecoder::Parameters() const {
  std::vector<Var> all = proj_->Parameters();
  all.push_back(transitions_);
  all.push_back(start_);
  all.push_back(end_);
  return all;
}

Var CrfDecoder::LogPartition(const Var& emissions) const {
  const int t_len = emissions->value.rows();
  DLNER_CHECK_EQ(emissions->value.cols(), tags_->size());
  Var alpha = Add(Row(emissions, 0), start_);  // [K]
  for (int t = 1; t < t_len; ++t) {
    // alpha'[j] = logsumexp_i(alpha[i] + trans[i][j]) + emit[t][j]
    Var broadcast = AddColBroadcast(transitions_, alpha);  // [K, K]
    alpha = Add(LogSumExpOverRows(broadcast), Row(emissions, t));
  }
  return LogSumExp(Add(alpha, end_));
}

Var CrfDecoder::PathScore(const Var& emissions,
                          const std::vector<int>& path) const {
  const int t_len = emissions->value.rows();
  DLNER_CHECK_EQ(static_cast<int>(path.size()), t_len);
  std::vector<Var> terms;
  terms.reserve(2 * t_len + 1);
  terms.push_back(Pick(start_, path[0]));
  for (int t = 0; t < t_len; ++t) {
    terms.push_back(PickAt(emissions, t, path[t]));
    if (t > 0) terms.push_back(PickAt(transitions_, path[t - 1], path[t]));
  }
  terms.push_back(Pick(end_, path[t_len - 1]));
  return Sum(ConcatVecs(terms));
}

Var CrfDecoder::Loss(const Var& encodings, const text::Sentence& gold) {
  obs::ScopedSpan span("loss/crf");
  const int t_len = encodings->value.rows();
  DLNER_CHECK_EQ(t_len, gold.size());
  const std::vector<int> gold_ids = tags_->SpansToTagIds(gold.spans, t_len);
  Var emissions = Emissions(encodings);
  Var nll = Sub(LogPartition(emissions), PathScore(emissions, gold_ids));
  return Scale(nll, 1.0 / t_len);
}

std::vector<int> CrfDecoder::ViterbiPath(const Tensor& emissions) const {
  const int t_len = emissions.rows();
  const int k = tags_->size();
  DLNER_CHECK_EQ(emissions.cols(), k);

  auto start_score = [&](int j) {
    if (constrained_ && !tags_->IsValidStart(j)) return kNegInf;
    return start_->value[j];
  };
  auto trans_score = [&](int i, int j) {
    if (constrained_ && !tags_->IsValidTransition(i, j)) return kNegInf;
    return transitions_->value.at(i, j);
  };
  auto end_score = [&](int j) {
    if (constrained_ && !tags_->IsValidEnd(j)) return kNegInf;
    return end_->value[j];
  };

  std::vector<std::vector<Float>> dp(t_len, std::vector<Float>(k));
  std::vector<std::vector<int>> parent(t_len, std::vector<int>(k, -1));
  for (int j = 0; j < k; ++j) dp[0][j] = start_score(j) + emissions.at(0, j);
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < k; ++j) {
      Float best = kNegInf * 2;
      int arg = 0;
      for (int i = 0; i < k; ++i) {
        const Float s = dp[t - 1][i] + trans_score(i, j);
        if (s > best) {
          best = s;
          arg = i;
        }
      }
      dp[t][j] = best + emissions.at(t, j);
      parent[t][j] = arg;
    }
  }
  int best_tag = 0;
  Float best = kNegInf * 2;
  for (int j = 0; j < k; ++j) {
    const Float s = dp[t_len - 1][j] + end_score(j);
    if (s > best) {
      best = s;
      best_tag = j;
    }
  }
  std::vector<int> path(t_len);
  path[t_len - 1] = best_tag;
  for (int t = t_len - 1; t > 0; --t) path[t - 1] = parent[t][path[t]];
  return path;
}

Tensor CrfDecoder::Marginals(const Tensor& emissions) const {
  const int t_len = emissions.rows();
  const int k = tags_->size();
  DLNER_CHECK_EQ(emissions.cols(), k);

  auto log_sum_exp = [](const std::vector<Float>& v) {
    Float mx = v[0];
    for (Float x : v) mx = std::max(mx, x);
    Float s = 0.0;
    for (Float x : v) s += std::exp(x - mx);
    return mx + std::log(s);
  };

  // Forward: alpha[t][j] = log sum over prefixes ending in tag j at t.
  std::vector<std::vector<Float>> alpha(t_len, std::vector<Float>(k));
  for (int j = 0; j < k; ++j) {
    alpha[0][j] = start_->value[j] + emissions.at(0, j);
  }
  std::vector<Float> scratch(k);
  for (int t = 1; t < t_len; ++t) {
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < k; ++i) {
        scratch[i] = alpha[t - 1][i] + transitions_->value.at(i, j);
      }
      alpha[t][j] = log_sum_exp(scratch) + emissions.at(t, j);
    }
  }
  // Backward: beta[t][i] = log sum over suffixes starting after tag i at t.
  std::vector<std::vector<Float>> beta(t_len, std::vector<Float>(k));
  for (int i = 0; i < k; ++i) beta[t_len - 1][i] = end_->value[i];
  for (int t = t_len - 2; t >= 0; --t) {
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        scratch[j] = transitions_->value.at(i, j) + emissions.at(t + 1, j) +
                     beta[t + 1][j];
      }
      beta[t][i] = log_sum_exp(scratch);
    }
  }
  for (int j = 0; j < k; ++j) scratch[j] = alpha[t_len - 1][j] + end_->value[j];
  const Float log_z = log_sum_exp(scratch);

  Tensor marginals({t_len, k});
  for (int t = 0; t < t_len; ++t) {
    for (int j = 0; j < k; ++j) {
      marginals.at(t, j) = std::exp(alpha[t][j] + beta[t][j] - log_z);
    }
  }
  return marginals;
}

std::vector<text::Span> CrfDecoder::Predict(const Var& encodings) const {
  obs::ScopedSpan span("decode/crf");
  Var emissions = Emissions(encodings);
  return tags_->TagIdsToSpans(ViterbiPath(emissions->value));
}

}  // namespace dlner::decoders
