// Transformer context encoder (survey Section 3.3.5; Vaswani et al.).
//
// Sinusoidal position encodings, multi-head scaled dot-product
// self-attention, position-wise feed-forward blocks, residual connections
// and layer normalization (post-norm). Self-attention cost is O(n^2 * d)
// versus O(n * d^2) for recurrence — the complexity trade-off the survey
// highlights in Section 3.5 and that bench_complexity_crossover measures.
#ifndef DLNER_ENCODERS_TRANSFORMER_H_
#define DLNER_ENCODERS_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "encoders/encoder.h"

namespace dlner::encoders {

/// Multi-head scaled dot-product self-attention over [T, model_dim].
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int model_dim, int num_heads, Rng* rng,
                     const std::string& name = "mha");

  /// Self-attention: queries, keys, and values all come from `x`.
  Var Apply(const Var& x) const;

  std::vector<Var> Parameters() const override;
  int model_dim() const { return model_dim_; }
  int num_heads() const { return num_heads_; }

 private:
  int model_dim_;
  int num_heads_;
  int head_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

class TransformerEncoder : public ContextEncoder {
 public:
  TransformerEncoder(int in_dim, int model_dim, int num_heads, int ffn_dim,
                     int num_layers, Float dropout, Rng* rng,
                     const std::string& name = "transformer");

  Var Encode(const Var& input, bool training) const override;
  int out_dim() const override { return model_dim_; }
  std::vector<Var> Parameters() const override;

 private:
  struct Block {
    std::unique_ptr<MultiHeadAttention> attention;
    std::unique_ptr<Linear> ffn1;
    std::unique_ptr<Linear> ffn2;
    std::unique_ptr<LayerNorm> norm1;
    std::unique_ptr<LayerNorm> norm2;
  };

  /// Sinusoidal position encodings [t_len, model_dim].
  Tensor PositionEncodings(int t_len) const;

  int model_dim_;
  Float dropout_;
  Rng* rng_;  // not owned
  std::unique_ptr<Linear> input_proj_;
  std::vector<Block> blocks_;
};

}  // namespace dlner::encoders

#endif  // DLNER_ENCODERS_TRANSFORMER_H_
