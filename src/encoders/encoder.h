// Context encoder interface (survey Section 3.3, the middle stage of the
// Fig. 2 taxonomy): consumes the [T, d_in] input representation and produces
// context-dependent token representations [T, d_out].
#ifndef DLNER_ENCODERS_ENCODER_H_
#define DLNER_ENCODERS_ENCODER_H_

#include <memory>
#include <string>

#include "tensor/nn.h"

namespace dlner::encoders {

class ContextEncoder : public Module {
 public:
  /// Input [T, in_dim] -> output [T, out_dim]. Const so a shared model can
  /// run concurrent forward passes; implementations must not mutate state.
  virtual Var Encode(const Var& input, bool training) const = 0;
  virtual int out_dim() const = 0;
};

/// No-context baseline: a per-token MLP (tanh). Equivalent to tagging each
/// token from its own representation only — the degenerate taxonomy cell
/// used by FOFE-style local detection models.
class MlpEncoder : public ContextEncoder {
 public:
  MlpEncoder(int in_dim, int hidden_dim, Rng* rng,
             const std::string& name = "mlp_enc");

  Var Encode(const Var& input, bool training) const override;
  int out_dim() const override { return hidden_->out_dim(); }
  std::vector<Var> Parameters() const override { return hidden_->Parameters(); }
  const Linear& hidden() const { return *hidden_; }

 private:
  std::unique_ptr<Linear> hidden_;
};

}  // namespace dlner::encoders

#endif  // DLNER_ENCODERS_ENCODER_H_
