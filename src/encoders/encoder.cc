#include "encoders/encoder.h"

#include "obs/trace.h"

namespace dlner::encoders {

MlpEncoder::MlpEncoder(int in_dim, int hidden_dim, Rng* rng,
                       const std::string& name)
    : hidden_(std::make_unique<Linear>(in_dim, hidden_dim, rng, name)) {}

Var MlpEncoder::Encode(const Var& input, bool /*training*/) const {
  obs::ScopedSpan span("encode/mlp");
  return hidden_->ApplyTanh(input);
}

}  // namespace dlner::encoders
