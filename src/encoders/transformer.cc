#include "encoders/transformer.h"

#include <cmath>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::encoders {
namespace {

// Column slice [start, start+len) of a matrix (local fused op).
Var SliceCols(const Var& m, int start, int len) {
  DLNER_CHECK_EQ(m->value.dim(), 2);
  const int r = m->value.rows();
  DLNER_CHECK_GE(start, 0);
  DLNER_CHECK_LE(start + len, m->value.cols());
  Tensor out({r, len});
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < len; ++j) out.at(i, j) = m->value.at(i, start + j);
  }
  return MakeNode(std::move(out), {m}, [m, start, len, r](Variable* n) {
    if (!m->requires_grad) return;
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < len; ++j) {
        m->grad.at(i, start + j) += n->grad.at(i, j);
      }
    }
  });
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(int model_dim, int num_heads, Rng* rng,
                                       const std::string& name)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      wq_(std::make_unique<Linear>(model_dim, model_dim, rng, name + ".wq")),
      wk_(std::make_unique<Linear>(model_dim, model_dim, rng, name + ".wk")),
      wv_(std::make_unique<Linear>(model_dim, model_dim, rng, name + ".wv")),
      wo_(std::make_unique<Linear>(model_dim, model_dim, rng, name + ".wo")) {
  DLNER_CHECK_EQ(model_dim % num_heads, 0);
}

Var MultiHeadAttention::Apply(const Var& x) const {
  DLNER_CHECK_EQ(x->value.cols(), model_dim_);
  Var q = wq_->Apply(x);
  Var k = wk_->Apply(x);
  Var v = wv_->Apply(x);
  const Float scale = 1.0 / std::sqrt(static_cast<Float>(head_dim_));

  std::vector<Var> heads;
  heads.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    Var qh = SliceCols(q, h * head_dim_, head_dim_);
    Var kh = SliceCols(k, h * head_dim_, head_dim_);
    Var vh = SliceCols(v, h * head_dim_, head_dim_);
    Var scores = Scale(MatMul(qh, Transpose(kh)), scale);  // [T, T]
    Var weights = SoftmaxRows(scores);
    heads.push_back(MatMul(weights, vh));  // [T, head_dim]
  }
  Var concat = num_heads_ == 1 ? heads[0] : ConcatCols(heads);
  return wo_->Apply(concat);
}

std::vector<Var> MultiHeadAttention::Parameters() const {
  return JoinParameters({wq_.get(), wk_.get(), wv_.get(), wo_.get()});
}

TransformerEncoder::TransformerEncoder(int in_dim, int model_dim,
                                       int num_heads, int ffn_dim,
                                       int num_layers, Float dropout, Rng* rng,
                                       const std::string& name)
    : model_dim_(model_dim), dropout_(dropout), rng_(rng) {
  DLNER_CHECK_GE(num_layers, 1);
  input_proj_ =
      std::make_unique<Linear>(in_dim, model_dim, rng, name + ".in_proj");
  for (int l = 0; l < num_layers; ++l) {
    const std::string prefix = name + ".block" + std::to_string(l);
    Block b;
    b.attention = std::make_unique<MultiHeadAttention>(model_dim, num_heads,
                                                       rng, prefix + ".mha");
    b.ffn1 =
        std::make_unique<Linear>(model_dim, ffn_dim, rng, prefix + ".ffn1");
    b.ffn2 =
        std::make_unique<Linear>(ffn_dim, model_dim, rng, prefix + ".ffn2");
    b.norm1 = std::make_unique<LayerNorm>(model_dim, prefix + ".norm1");
    b.norm2 = std::make_unique<LayerNorm>(model_dim, prefix + ".norm2");
    blocks_.push_back(std::move(b));
  }
}

Tensor TransformerEncoder::PositionEncodings(int t_len) const {
  Tensor pe({t_len, model_dim_});
  for (int pos = 0; pos < t_len; ++pos) {
    for (int i = 0; i < model_dim_; i += 2) {
      const Float angle =
          pos / std::pow(10000.0, static_cast<Float>(i) / model_dim_);
      pe.at(pos, i) = std::sin(angle);
      if (i + 1 < model_dim_) pe.at(pos, i + 1) = std::cos(angle);
    }
  }
  return pe;
}

Var TransformerEncoder::Encode(const Var& input, bool training) const {
  obs::ScopedSpan span("encode/transformer");
  Var h = input_proj_->Apply(input);
  h = Add(h, Constant(PositionEncodings(h->value.rows())));
  h = Dropout(h, dropout_, rng_, training);
  for (const Block& b : blocks_) {
    Var attended = b.attention->Apply(h);
    attended = Dropout(attended, dropout_, rng_, training);
    h = b.norm1->Apply(Add(h, attended));
    Var ffn = b.ffn2->Apply(Relu(b.ffn1->Apply(h)));
    ffn = Dropout(ffn, dropout_, rng_, training);
    h = b.norm2->Apply(Add(h, ffn));
  }
  return h;
}

std::vector<Var> TransformerEncoder::Parameters() const {
  std::vector<Var> all = input_proj_->Parameters();
  for (const Block& b : blocks_) {
    for (const Module* m :
         {static_cast<const Module*>(b.attention.get()),
          static_cast<const Module*>(b.ffn1.get()),
          static_cast<const Module*>(b.ffn2.get()),
          static_cast<const Module*>(b.norm1.get()),
          static_cast<const Module*>(b.norm2.get())}) {
      for (const Var& p : m->Parameters()) all.push_back(p);
    }
  }
  return all;
}

}  // namespace dlner::encoders
