#include "encoders/rnn_encoder.h"

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::encoders {

RnnEncoder::RnnEncoder(const std::string& kind, int in_dim, int hidden_dim,
                       int num_layers, Float dropout, Rng* rng,
                       const std::string& name)
    : hidden_dim_(hidden_dim), dropout_(dropout), rng_(rng) {
  DLNER_CHECK_GE(num_layers, 1);
  int d = in_dim;
  for (int l = 0; l < num_layers; ++l) {
    layers_.push_back(std::make_unique<BiRnn>(
        kind, d, hidden_dim, rng, name + ".layer" + std::to_string(l)));
    d = 2 * hidden_dim;
  }
}

Var RnnEncoder::Encode(const Var& input, bool training) const {
  obs::ScopedSpan span("encode/rnn");
  Var h = input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->Apply(h);
    if (l + 1 < layers_.size()) {
      h = Dropout(h, dropout_, rng_, training);
    }
  }
  return h;
}

std::vector<Var> RnnEncoder::Parameters() const {
  std::vector<Var> all;
  for (const auto& l : layers_) {
    for (const Var& p : l->Parameters()) all.push_back(p);
  }
  return all;
}

}  // namespace dlner::encoders
