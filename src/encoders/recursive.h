// Bidirectional recursive neural network over constituency-like structure
// (survey Section 3.3.3, Fig. 8; Li et al. 2017).
//
// The bottom-up direction computes the semantic composition of each node's
// subtree; the top-down direction propagates to each node the structure
// containing it; each token's representation concatenates its leaf's
// bottom-up and top-down states.
//
// Substitution note (DESIGN.md Section 2): Li et al. traverse gold
// constituency parses. With no parser in scope, trees come from a
// deterministic heuristic bracketing — sentences split at punctuation into
// segments, each segment covered by a balanced binary tree — which
// preserves the mechanism under study (recursive composition over a
// hierarchy) without requiring parsed data.
#ifndef DLNER_ENCODERS_RECURSIVE_H_
#define DLNER_ENCODERS_RECURSIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "encoders/encoder.h"

namespace dlner::encoders {

/// A binary bracketing over [0, num_tokens). Node 0..num_tokens-1 are
/// leaves; internal nodes follow. The root is the last node.
struct BinaryTree {
  struct Node {
    int left = -1;    // child node index (-1 for leaves)
    int right = -1;
    int parent = -1;  // -1 for the root
    int start = 0;    // covered token span [start, end)
    int end = 0;
  };
  std::vector<Node> nodes;
  int num_tokens = 0;

  int root() const { return static_cast<int>(nodes.size()) - 1; }
  bool IsLeaf(int i) const { return nodes[i].left < 0; }
};

/// Heuristic bracketing: punctuation-delimited segments, balanced within.
BinaryTree BuildHeuristicTree(const std::vector<std::string>& tokens);

/// Balanced binary tree over n tokens (structure-agnostic fallback and
/// test fixture).
BinaryTree BuildBalancedTree(int num_tokens);

/// The Fig. 8 encoder. Output per token: [bottom_up_leaf, top_down_leaf]
/// -> [T, 2*hidden].
class RecursiveEncoder : public ContextEncoder {
 public:
  RecursiveEncoder(int in_dim, int hidden_dim, Rng* rng,
                   const std::string& name = "brnn_enc");

  /// Encodes with the heuristic tree built from token count alone (the
  /// ContextEncoder interface carries no strings, so bracketing uses the
  /// balanced fallback).
  Var Encode(const Var& input, bool training) const override;

  /// Encodes over an explicit tree (used by NerModel, which has tokens and
  /// can call BuildHeuristicTree).
  Var EncodeTree(const Var& input, const BinaryTree& tree) const;

  int out_dim() const override { return 2 * hidden_dim_; }
  std::vector<Var> Parameters() const override;

 private:
  int hidden_dim_;
  std::unique_ptr<Linear> leaf_;       // in_dim -> hidden (bottom-up leaf)
  std::unique_ptr<Linear> compose_;    // [2*hidden] -> hidden (bottom-up)
  std::unique_ptr<Linear> root_top_;   // hidden -> hidden (top-down seed)
  std::unique_ptr<Linear> down_left_;  // [hidden(td parent)+hidden(bu)] -> hidden
  std::unique_ptr<Linear> down_right_;
};

}  // namespace dlner::encoders

#endif  // DLNER_ENCODERS_RECURSIVE_H_
