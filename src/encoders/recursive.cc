#include "encoders/recursive.h"

#include <functional>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::encoders {
namespace {

bool IsPunct(const std::string& tok) {
  return tok == "." || tok == "," || tok == ";" || tok == ":" ||
         tok == "!" || tok == "?";
}

// Builds a balanced tree over leaves [start, end) that already exist as
// nodes 0..n-1; returns the covering node index.
int BuildBalancedRange(BinaryTree* tree, int start, int end) {
  DLNER_CHECK_LT(start, end);
  if (end - start == 1) return start;
  const int mid = (start + end) / 2;
  const int left = BuildBalancedRange(tree, start, mid);
  const int right = BuildBalancedRange(tree, mid, end);
  BinaryTree::Node node;
  node.left = left;
  node.right = right;
  node.start = tree->nodes[left].start;
  node.end = tree->nodes[right].end;
  const int idx = static_cast<int>(tree->nodes.size());
  tree->nodes.push_back(node);
  tree->nodes[left].parent = idx;
  tree->nodes[right].parent = idx;
  return idx;
}

void AddLeaves(BinaryTree* tree, int num_tokens) {
  tree->num_tokens = num_tokens;
  for (int t = 0; t < num_tokens; ++t) {
    BinaryTree::Node leaf;
    leaf.start = t;
    leaf.end = t + 1;
    tree->nodes.push_back(leaf);
  }
}

// Joins a list of subtree roots left-to-right into one root.
int JoinRoots(BinaryTree* tree, const std::vector<int>& roots) {
  DLNER_CHECK(!roots.empty());
  int acc = roots[0];
  for (size_t i = 1; i < roots.size(); ++i) {
    BinaryTree::Node node;
    node.left = acc;
    node.right = roots[i];
    node.start = tree->nodes[acc].start;
    node.end = tree->nodes[roots[i]].end;
    const int idx = static_cast<int>(tree->nodes.size());
    tree->nodes.push_back(node);
    tree->nodes[acc].parent = idx;
    tree->nodes[roots[i]].parent = idx;
    acc = idx;
  }
  return acc;
}

}  // namespace

BinaryTree BuildBalancedTree(int num_tokens) {
  DLNER_CHECK_GT(num_tokens, 0);
  BinaryTree tree;
  AddLeaves(&tree, num_tokens);
  BuildBalancedRange(&tree, 0, num_tokens);
  return tree;
}

BinaryTree BuildHeuristicTree(const std::vector<std::string>& tokens) {
  const int n = static_cast<int>(tokens.size());
  DLNER_CHECK_GT(n, 0);
  BinaryTree tree;
  AddLeaves(&tree, n);
  // Segment at punctuation (the punctuation token closes its segment).
  std::vector<int> roots;
  int seg_start = 0;
  for (int t = 0; t < n; ++t) {
    if (IsPunct(tokens[t]) || t == n - 1) {
      roots.push_back(BuildBalancedRange(&tree, seg_start, t + 1));
      seg_start = t + 1;
    }
  }
  JoinRoots(&tree, roots);
  return tree;
}

RecursiveEncoder::RecursiveEncoder(int in_dim, int hidden_dim, Rng* rng,
                                   const std::string& name)
    : hidden_dim_(hidden_dim),
      leaf_(std::make_unique<Linear>(in_dim, hidden_dim, rng,
                                     name + ".leaf")),
      compose_(std::make_unique<Linear>(2 * hidden_dim, hidden_dim, rng,
                                        name + ".compose")),
      root_top_(std::make_unique<Linear>(hidden_dim, hidden_dim, rng,
                                         name + ".root_top")),
      down_left_(std::make_unique<Linear>(2 * hidden_dim, hidden_dim, rng,
                                          name + ".down_left")),
      down_right_(std::make_unique<Linear>(2 * hidden_dim, hidden_dim, rng,
                                           name + ".down_right")) {}

Var RecursiveEncoder::Encode(const Var& input, bool /*training*/) const {
  return EncodeTree(input, BuildBalancedTree(input->value.rows()));
}

Var RecursiveEncoder::EncodeTree(const Var& input,
                                 const BinaryTree& tree) const {
  obs::ScopedSpan span("encode/brnn");
  const int t_len = input->value.rows();
  DLNER_CHECK_EQ(t_len, tree.num_tokens);
  const int num_nodes = static_cast<int>(tree.nodes.size());

  // Bottom-up: children before parents. Nodes are created in exactly that
  // order by construction (leaves first, parents appended after children).
  std::vector<Var> up(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    const auto& node = tree.nodes[i];
    if (tree.IsLeaf(i)) {
      up[i] = Tanh(leaf_->ApplyVec(Row(input, node.start)));
    } else {
      up[i] = Tanh(
          compose_->ApplyVec(ConcatVecs({up[node.left], up[node.right]})));
    }
  }
  // Top-down: parents before children (reverse order).
  std::vector<Var> down(num_nodes);
  down[tree.root()] = Tanh(root_top_->ApplyVec(up[tree.root()]));
  for (int i = num_nodes - 1; i >= 0; --i) {
    const auto& node = tree.nodes[i];
    if (tree.IsLeaf(i)) continue;
    down[node.left] = Tanh(
        down_left_->ApplyVec(ConcatVecs({down[i], up[node.left]})));
    down[node.right] = Tanh(
        down_right_->ApplyVec(ConcatVecs({down[i], up[node.right]})));
  }
  // Leaf outputs, aligned with token positions.
  std::vector<Var> rows(t_len);
  for (int t = 0; t < t_len; ++t) {
    rows[t] = ConcatVecs({up[t], down[t]});
  }
  return StackRows(rows);
}

std::vector<Var> RecursiveEncoder::Parameters() const {
  return JoinParameters({leaf_.get(), compose_.get(), root_top_.get(),
                         down_left_.get(), down_right_.get()});
}

}  // namespace dlner::encoders
