// Convolutional context encoders (survey Section 3.3.1).
//
// CnnEncoder is Collobert et al.'s sentence approach network (Fig. 5):
// stacked same-length convolutions produce local features, and a global
// max-pooled sentence vector is concatenated to every position so each
// token is tagged "with the consideration of the whole sentence".
//
// IdCnnEncoder is Strubell et al.'s Iterated Dilated CNN (Fig. 6): a block
// of dilated convolutions (dilation 1, 2, 4, ...) applied repeatedly with
// shared parameters, giving exponentially growing receptive fields with
// fixed depth — the architecture behind the paper's 14-20x test-time
// speedup claim over BiLSTMs.
#ifndef DLNER_ENCODERS_CNN_H_
#define DLNER_ENCODERS_CNN_H_

#include <memory>
#include <string>
#include <vector>

#include "encoders/encoder.h"

namespace dlner::encoders {

class CnnEncoder : public ContextEncoder {
 public:
  /// `num_layers` stacked width-3 convolutions with ReLU. When
  /// `global_feature` is true, the max-pooled sentence vector is appended
  /// to every token representation (doubling out_dim).
  CnnEncoder(int in_dim, int hidden_dim, int num_layers, bool global_feature,
             Rng* rng, const std::string& name = "cnn_enc");

  Var Encode(const Var& input, bool training) const override;
  int out_dim() const override;
  std::vector<Var> Parameters() const override;
  int hidden_dim() const { return hidden_dim_; }
  bool global_feature() const { return global_feature_; }
  const std::vector<std::unique_ptr<Conv1d>>& layers() const { return layers_; }

 private:
  int hidden_dim_;
  bool global_feature_;
  std::vector<std::unique_ptr<Conv1d>> layers_;
};

class IdCnnEncoder : public ContextEncoder {
 public:
  /// One block = dilated width-3 convolutions with the given dilations;
  /// the block is applied `iterations` times with shared parameters.
  IdCnnEncoder(int in_dim, int hidden_dim, std::vector<int> dilations,
               int iterations, Rng* rng, const std::string& name = "idcnn");

  Var Encode(const Var& input, bool training) const override;
  int out_dim() const override { return hidden_dim_; }
  std::vector<Var> Parameters() const override;
  int iterations() const { return iterations_; }
  const Linear& project() const { return *project_; }
  const std::vector<std::unique_ptr<Conv1d>>& block() const { return block_; }
  const std::vector<std::unique_ptr<LayerNorm>>& norms() const {
    return norms_;
  }

 private:
  int hidden_dim_;
  int iterations_;
  std::unique_ptr<Linear> project_;  // in_dim -> hidden
  std::vector<std::unique_ptr<Conv1d>> block_;
  // One LayerNorm per block conv (shared across iterations, like the conv
  // weights): keeps the deep iterated ReLU stack trainable at normal
  // learning rates.
  std::vector<std::unique_ptr<LayerNorm>> norms_;
};

}  // namespace dlner::encoders

#endif  // DLNER_ENCODERS_CNN_H_
