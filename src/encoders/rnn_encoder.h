// Recurrent context encoders (survey Section 3.3.2, Fig. 7): stacked
// bidirectional LSTM/GRU layers, the de-facto standard encoder of the
// Table 3 systems (Huang et al., Lample et al., Ma & Hovy).
#ifndef DLNER_ENCODERS_RNN_ENCODER_H_
#define DLNER_ENCODERS_RNN_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "encoders/encoder.h"
#include "tensor/rnn.h"

namespace dlner::encoders {

class RnnEncoder : public ContextEncoder {
 public:
  /// `kind` is "lstm" or "gru"; `num_layers` stacked BiRNNs with inter-layer
  /// dropout.
  RnnEncoder(const std::string& kind, int in_dim, int hidden_dim,
             int num_layers, Float dropout, Rng* rng,
             const std::string& name = "rnn_enc");

  Var Encode(const Var& input, bool training) const override;
  int out_dim() const override { return 2 * hidden_dim_; }
  std::vector<Var> Parameters() const override;
  const std::vector<std::unique_ptr<BiRnn>>& layers() const { return layers_; }

 private:
  int hidden_dim_;
  Float dropout_;
  Rng* rng_;  // not owned
  std::vector<std::unique_ptr<BiRnn>> layers_;
};

}  // namespace dlner::encoders

#endif  // DLNER_ENCODERS_RNN_ENCODER_H_
