#include "encoders/cnn.h"

#include "obs/trace.h"
#include "tensor/ops.h"

namespace dlner::encoders {

CnnEncoder::CnnEncoder(int in_dim, int hidden_dim, int num_layers,
                       bool global_feature, Rng* rng, const std::string& name)
    : hidden_dim_(hidden_dim), global_feature_(global_feature) {
  DLNER_CHECK_GE(num_layers, 1);
  int d = in_dim;
  for (int l = 0; l < num_layers; ++l) {
    layers_.push_back(std::make_unique<Conv1d>(
        d, hidden_dim, /*width=*/3, /*dilation=*/1, rng,
        name + ".conv" + std::to_string(l)));
    d = hidden_dim;
  }
}

Var CnnEncoder::Encode(const Var& input, bool /*training*/) const {
  obs::ScopedSpan span("encode/cnn");
  Var h = input;
  for (const auto& layer : layers_) h = Relu(layer->Apply(h));
  if (!global_feature_) return h;
  // Global sentence vector broadcast to every position (Fig. 5's fixed-size
  // global feature).
  Var global = MaxOverRows(h);  // [hidden]
  const int t_len = h->value.rows();
  std::vector<Var> rows;
  rows.reserve(t_len);
  for (int t = 0; t < t_len; ++t) {
    rows.push_back(ConcatVecs({Row(h, t), global}));
  }
  return StackRows(rows);
}

int CnnEncoder::out_dim() const {
  return global_feature_ ? 2 * hidden_dim_ : hidden_dim_;
}

std::vector<Var> CnnEncoder::Parameters() const {
  std::vector<Var> all;
  for (const auto& l : layers_) {
    for (const Var& p : l->Parameters()) all.push_back(p);
  }
  return all;
}

IdCnnEncoder::IdCnnEncoder(int in_dim, int hidden_dim,
                           std::vector<int> dilations, int iterations,
                           Rng* rng, const std::string& name)
    : hidden_dim_(hidden_dim), iterations_(iterations) {
  DLNER_CHECK(!dilations.empty());
  DLNER_CHECK_GE(iterations, 1);
  project_ =
      std::make_unique<Linear>(in_dim, hidden_dim, rng, name + ".proj");
  for (size_t i = 0; i < dilations.size(); ++i) {
    block_.push_back(std::make_unique<Conv1d>(
        hidden_dim, hidden_dim, /*width=*/3, dilations[i], rng,
        name + ".dil" + std::to_string(dilations[i]) + "_" +
            std::to_string(i)));
    norms_.push_back(std::make_unique<LayerNorm>(
        hidden_dim, name + ".norm" + std::to_string(i)));
  }
}

Var IdCnnEncoder::Encode(const Var& input, bool /*training*/) const {
  obs::ScopedSpan span("encode/idcnn");
  Var h = Relu(project_->Apply(input));
  // The same block (shared parameters) is iterated, which is what lets
  // ID-CNNs cover large contexts without parameter growth.
  for (int it = 0; it < iterations_; ++it) {
    for (size_t i = 0; i < block_.size(); ++i) {
      h = norms_[i]->Apply(Relu(block_[i]->Apply(h)));
    }
  }
  return h;
}

std::vector<Var> IdCnnEncoder::Parameters() const {
  std::vector<Var> all = project_->Parameters();
  for (const auto& c : block_) {
    for (const Var& p : c->Parameters()) all.push_back(p);
  }
  for (const auto& n : norms_) {
    for (const Var& p : n->Parameters()) all.push_back(p);
  }
  return all;
}

}  // namespace dlner::encoders
