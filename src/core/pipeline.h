// Pipeline: the end-user facade of the toolkit (survey Section 5.2's
// "easy-to-use toolkit ... with standardized modules"): train a model on an
// annotated corpus, tag new text, and persist/restore the whole system.
#ifndef DLNER_CORE_PIPELINE_H_
#define DLNER_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"

namespace dlner::core {

class Pipeline {
 public:
  /// Trains a fresh model. `dev` may be null. Resources are borrowed and
  /// only needed while the pipeline is alive.
  static std::unique_ptr<Pipeline> Train(
      const NerConfig& config, const TrainConfig& train_config,
      const text::Corpus& train, const text::Corpus* dev,
      std::vector<std::string> entity_types,
      const Resources& resources = {});

  /// Tags a pre-tokenized sentence.
  std::vector<text::Span> Tag(const std::vector<std::string>& tokens) const;

  /// Whitespace-tokenizes and tags a raw string.
  text::Sentence TagText(const std::string& raw) const;

  /// Tags every sentence of a corpus in parallel (see
  /// NerModel::PredictCorpus); predictions are returned in corpus order.
  std::vector<std::vector<text::Span>> TagCorpus(
      const text::Corpus& corpus) const;

  /// Exact-match evaluation on a corpus (parallel over sentences).
  eval::ExactResult Evaluate(const text::Corpus& corpus) const;

  /// Persists config + entity types + vocabularies + parameters. Only
  /// self-contained models can be saved: models that reference external
  /// resources (gazetteer, char/token LM) return false, since the external
  /// state is not owned by the pipeline.
  bool Save(const std::string& path) const;

  /// Restores a pipeline saved with Save(). Returns null on failure.
  static std::unique_ptr<Pipeline> Load(const std::string& path);

  NerModel* model() { return model_.get(); }
  const TrainResult& train_result() const { return train_result_; }

 private:
  Pipeline() = default;

  std::unique_ptr<NerModel> model_;
  TrainResult train_result_;
};

}  // namespace dlner::core

#endif  // DLNER_CORE_PIPELINE_H_
