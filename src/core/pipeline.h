// Pipeline: the end-user facade of the toolkit (survey Section 5.2's
// "easy-to-use toolkit ... with standardized modules"): train a model on an
// annotated corpus, tag new text, and persist/restore the whole system.
#ifndef DLNER_CORE_PIPELINE_H_
#define DLNER_CORE_PIPELINE_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"

namespace dlner::core {

class Pipeline {
 public:
  /// Trains a fresh model. `dev` may be null. Resources are borrowed and
  /// only needed while the pipeline is alive.
  static std::unique_ptr<Pipeline> Train(
      const NerConfig& config, const TrainConfig& train_config,
      const text::Corpus& train, const text::Corpus* dev,
      std::vector<std::string> entity_types,
      const Resources& resources = {});

  /// Tags a pre-tokenized sentence.
  std::vector<text::Span> Tag(const std::vector<std::string>& tokens) const;

  /// Whitespace-tokenizes and tags a raw string.
  text::Sentence TagText(const std::string& raw) const;

  /// Tags every sentence of a corpus in parallel (see
  /// NerModel::PredictCorpus); predictions are returned in corpus order.
  std::vector<std::vector<text::Span>> TagCorpus(
      const text::Corpus& corpus) const;

  /// Exact-match evaluation on a corpus (parallel over sentences).
  eval::ExactResult Evaluate(const text::Corpus& corpus) const;

  /// Persists config + entity types + vocabularies + external resources +
  /// parameters (checkpoint format v2, see docs/EXTENDING.md). Models that
  /// use a gazetteer, char-LM, or token-LM serialize those resources into
  /// the checkpoint, so every taxonomy cell round-trips. Pre-trained word
  /// vectors (Resources::sgns) need no block of their own: they only
  /// initialize the word embedding, which is saved as a parameter.
  bool Save(const std::string& path) const;

  /// Stream variant of Save(). The file overload delegates here; exposed so
  /// checkpoints can be written to in-memory buffers (tests, fuzzers,
  /// network transports) without touching the filesystem.
  bool Save(std::ostream& os) const;

  /// Restores a pipeline saved with Save(), reconstructing a self-contained
  /// copy of any serialized resources (owned by the pipeline). Returns null
  /// on any malformed, truncated, or version-mismatched checkpoint; no
  /// failure mode crashes or allocates unbounded memory.
  static std::unique_ptr<Pipeline> Load(const std::string& path);

  /// Stream variant of Load(); same rejection guarantees.
  static std::unique_ptr<Pipeline> Load(std::istream& is);

  NerModel* model() { return model_.get(); }
  const NerModel* model() const { return model_.get(); }
  const TrainResult& train_result() const { return train_result_; }

  /// The resources the model was built with (borrowed at Train time, owned
  /// after Load). Pointers are null for unused resource kinds.
  const Resources& resources() const { return resources_; }

 private:
  Pipeline() = default;

  // Owned reconstructions of checkpointed resources (set by Load). Declared
  // before model_: the model borrows them, so they must outlive it.
  std::unique_ptr<data::Gazetteer> owned_gazetteer_;
  std::unique_ptr<embeddings::CharLm> owned_char_lm_;
  std::unique_ptr<embeddings::TokenLm> owned_token_lm_;
  Resources resources_;

  std::unique_ptr<NerModel> model_;
  TrainResult train_result_;
};

}  // namespace dlner::core

#endif  // DLNER_CORE_PIPELINE_H_
