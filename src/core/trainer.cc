#include "core/trainer.h"

#include <cstdio>

namespace dlner::core {

Trainer::Trainer(NerModel* model, const TrainConfig& config)
    : model_(model), config_(config), shuffle_rng_(config.shuffle_seed) {
  DLNER_CHECK(model_ != nullptr);
  optimizer_ =
      MakeOptimizer(config_.optimizer, model_->Parameters(), config_.lr);
}

double Trainer::RunEpoch(const text::Corpus& train) {
  std::vector<int> order(train.sentences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  shuffle_rng_.Shuffle(&order);

  double total_loss = 0.0;
  for (int idx : order) {
    const text::Sentence& sentence = train.sentences[idx];
    if (sentence.size() == 0) continue;
    optimizer_->ZeroGrad();
    Var loss = model_->Loss(sentence, /*training=*/true);
    Backward(loss);
    optimizer_->ClipGradNorm(config_.clip_norm);
    optimizer_->Step();
    total_loss += loss->value[0];
  }
  return train.sentences.empty()
             ? 0.0
             : total_loss / static_cast<double>(train.sentences.size());
}

TrainResult Trainer::Train(const text::Corpus& train,
                           const text::Corpus* dev) {
  TrainResult result;
  int epochs_since_best = 0;
  // Snapshot of every parameter tensor at the best dev epoch, restored
  // before returning so the caller gets best-epoch weights even when a
  // patience break (or a worse final epoch) ends the run later.
  const std::vector<Var> params = model_->Parameters();
  std::vector<Tensor> best_params;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = RunEpoch(train);
    result.final_train_loss = stats.train_loss;
    if (dev != nullptr) {
      stats.dev_f1 = model_->Evaluate(*dev).micro.f1();
      if (stats.dev_f1 > result.best_dev_f1) {
        result.best_dev_f1 = stats.dev_f1;
        result.best_epoch = epoch;
        epochs_since_best = 0;
        best_params.clear();
        best_params.reserve(params.size());
        for (const Var& p : params) best_params.push_back(p->value);
      } else {
        ++epochs_since_best;
      }
    }
    if (config_.verbose) {
      std::fprintf(stderr, "epoch %d: loss=%.4f dev_f1=%.4f\n", epoch,
                   stats.train_loss, stats.dev_f1);
    }
    result.history.push_back(stats);
    if (dev != nullptr && config_.patience > 0 &&
        epochs_since_best >= config_.patience) {
      break;
    }
  }
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_params[i];
    }
  }
  return result;
}

double Trainer::TrainEpochs(const text::Corpus& train, int epochs) {
  double loss = 0.0;
  for (int e = 0; e < epochs; ++e) loss = RunEpoch(train);
  return loss;
}

}  // namespace dlner::core
