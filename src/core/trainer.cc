#include "core/trainer.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dlner::core {

Trainer::Trainer(NerModel* model, const TrainConfig& config)
    : model_(model), config_(config), shuffle_rng_(config.shuffle_seed) {
  DLNER_CHECK(model_ != nullptr);
  optimizer_ =
      MakeOptimizer(config_.optimizer, model_->Parameters(), config_.lr);
}

double Trainer::RunEpoch(const text::Corpus& train) {
  std::vector<int> order(train.sentences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  shuffle_rng_.Shuffle(&order);

  double total_loss = 0.0;
  for (int idx : order) {
    const text::Sentence& sentence = train.sentences[idx];
    if (sentence.size() == 0) continue;
    optimizer_->ZeroGrad();
    Var loss = model_->Loss(sentence, /*training=*/true);
    {
      obs::ScopedSpan span("backward");
      Backward(loss);
    }
    {
      obs::ScopedSpan span("optimizer");
      optimizer_->ClipGradNorm(config_.clip_norm);
      optimizer_->Step();
    }
    total_loss += loss->value[0];
  }
  return train.sentences.empty()
             ? 0.0
             : total_loss / static_cast<double>(train.sentences.size());
}

TrainResult Trainer::Train(const text::Corpus& train,
                           const text::Corpus* dev) {
  TrainResult result;
  int epochs_since_best = 0;
  // Snapshot of every parameter tensor at the best dev epoch, restored
  // before returning so the caller gets best-epoch weights even when a
  // patience break (or a worse final epoch) ends the run later.
  const std::vector<Var> params = model_->Parameters();
  std::vector<Tensor> best_params;
  std::int64_t train_tokens = 0;
  for (const auto& s : train.sentences) {
    train_tokens += static_cast<std::int64_t>(s.tokens.size());
  }
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::ScopedSpan span("epoch");
    obs::Stopwatch epoch_sw;
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = RunEpoch(train);
    const double train_seconds = epoch_sw.Seconds();
    stats.tokens_per_sec = train_seconds > 0.0
                               ? static_cast<double>(train_tokens) /
                                     train_seconds
                               : 0.0;
    result.final_train_loss = stats.train_loss;
    if (dev != nullptr) {
      stats.dev_f1 = model_->Evaluate(*dev).micro.f1();
      if (stats.dev_f1 > result.best_dev_f1) {
        result.best_dev_f1 = stats.dev_f1;
        result.best_epoch = epoch;
        epochs_since_best = 0;
        best_params.clear();
        best_params.reserve(params.size());
        for (const Var& p : params) best_params.push_back(p->value);
      } else {
        ++epochs_since_best;
      }
    }
    stats.wall_seconds = epoch_sw.Seconds();
    if (obs::MetricsEnabled()) {
      obs::Metrics& m = obs::Metrics::Get();
      const double step = static_cast<double>(epoch);
      m.series("train.loss")->Append(step, stats.train_loss);
      m.series("train.lr")->Append(step, config_.lr);
      m.series("train.epoch_wall_s")->Append(step, stats.wall_seconds);
      m.series("train.tokens_per_sec")->Append(step, stats.tokens_per_sec);
      if (dev != nullptr) m.series("train.dev_f1")->Append(step, stats.dev_f1);
      m.counter("train.epochs")->Add(1);
      m.counter("train.sentences")
          ->Add(static_cast<std::int64_t>(train.sentences.size()));
      m.counter("train.tokens")->Add(train_tokens);
    }
    // Structured per-epoch record; `verbose` keeps its historical contract
    // of always printing, regardless of the process-wide log level.
    if (config_.verbose || obs::LogEnabled(obs::LogLevel::kInfo)) {
      obs::ForceLog(obs::LogLevel::kInfo, "epoch",
                    {{"epoch", stats.epoch},
                     {"loss", stats.train_loss},
                     {"dev_f1", stats.dev_f1},
                     {"lr", config_.lr},
                     {"wall_s", stats.wall_seconds},
                     {"tokens_per_sec", stats.tokens_per_sec}});
    }
    result.history.push_back(stats);
    if (dev != nullptr && config_.patience > 0 &&
        epochs_since_best >= config_.patience) {
      break;
    }
  }
  if (!best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_params[i];
    }
  }
  return result;
}

double Trainer::TrainEpochs(const text::Corpus& train, int epochs) {
  double loss = 0.0;
  for (int e = 0; e < epochs; ++e) loss = RunEpoch(train);
  return loss;
}

}  // namespace dlner::core
