// NerModel: the composed NER system of the survey's Fig. 2 taxonomy —
// distributed input representation -> context encoder -> tag decoder —
// assembled from a NerConfig. This is the toolkit's central class.
#ifndef DLNER_CORE_MODEL_H_
#define DLNER_CORE_MODEL_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "data/gazetteer.h"
#include "decoders/decoder.h"
#include "embeddings/features.h"
#include "embeddings/lm.h"
#include "embeddings/sgns.h"
#include "encoders/encoder.h"
#include "encoders/recursive.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "text/tagging.h"
#include "text/vocab.h"

namespace dlner::core {

/// External pre-trained resources a model may consume. All pointers are
/// borrowed; the caller keeps them alive for the model's lifetime.
struct Resources {
  const embeddings::SkipGramModel* sgns = nullptr;  // pre-trained word vecs
  const embeddings::CharLm* char_lm = nullptr;      // contextual string emb
  const embeddings::TokenLm* token_lm = nullptr;    // token LM embeddings
  const data::Gazetteer* gazetteer = nullptr;       // typed phrase lists
};

class NerModel : public Module {
 public:
  /// Builds vocabularies from `train` and assembles the architecture
  /// selected by `config`. `entity_types` fixes the label inventory.
  NerModel(const NerConfig& config, const text::Corpus& train,
           std::vector<std::string> entity_types,
           const Resources& resources = {});

  /// Variant with explicit vocabularies (used by Pipeline::Load).
  NerModel(const NerConfig& config, text::Vocabulary word_vocab,
           text::Vocabulary char_vocab,
           std::vector<std::string> entity_types,
           const Resources& resources = {});

  ~NerModel() override = default;

  /// Training loss for one annotated sentence. Virtual so applied-DL
  /// wrappers (multi-task, adversarial) can extend it.
  virtual Var Loss(const text::Sentence& sentence, bool training = true);

  /// Predicted entity spans for a token sequence. Runs under NoGradGuard
  /// (value-only graph, in-place kernels) and is safe to call concurrently
  /// from multiple threads on a shared model.
  std::vector<text::Span> Predict(const std::vector<std::string>& tokens) const;

  /// Predictions for every sentence of a corpus, in corpus order. With plan
  /// inference enabled (the default) sentences run through the compiled
  /// batched plan in packed micro-batches; otherwise per-sentence Predict
  /// calls are sharded across the thread pool. Both paths produce results
  /// identical to calling Predict sequentially.
  std::vector<std::vector<text::Span>> PredictCorpus(
      const text::Corpus& corpus) const;

  /// Exact-match evaluation over a corpus. Parallel over sentences; the
  /// per-shard statistics are merged in shard order, so the result is
  /// bit-identical across thread counts.
  eval::ExactResult Evaluate(const text::Corpus& corpus) const;

  std::vector<Var> Parameters() const override;

  // --- Hooks for applied-DL techniques (Section 4) ---
  /// Input representation [T, rep_dim]; the node is retained so callers can
  /// read its gradient after Backward (adversarial training).
  Var Represent(const std::vector<std::string>& tokens, bool training) const;
  /// Encoder output for a representation matrix. For the recursive ("brnn")
  /// encoder this uses a structure-agnostic balanced bracketing; prefer
  /// EncodeTokens when the token strings are available.
  Var Encode(const Var& representation, bool training) const;
  /// Encoder output with token strings available: the recursive encoder
  /// brackets with the punctuation heuristic; all other encoders ignore
  /// the tokens.
  Var EncodeTokens(const Var& representation,
                   const std::vector<std::string>& tokens,
                   bool training) const;
  /// Loss computed from an externally supplied (possibly perturbed)
  /// representation.
  Var LossFromRepresentation(const Var& representation,
                             const text::Sentence& gold, bool training) const;

  const NerConfig& config() const { return config_; }
  const text::Vocabulary& word_vocab() const { return word_vocab_; }
  const text::Vocabulary& char_vocab() const { return char_vocab_; }
  const std::vector<std::string>& entity_types() const {
    return entity_types_;
  }
  /// Tag set; null for segment-level decoders (semicrf, pointer).
  const text::TagSet* tag_set() const { return tags_.get(); }
  embeddings::ComposedRepresentation* representation() {
    return representation_.get();
  }
  encoders::ContextEncoder* encoder() { return encoder_.get(); }
  decoders::TagDecoder* decoder() { return decoder_.get(); }
  Rng* rng() { return &rng_; }

  /// Toggles the compiled batched path for corpus-level inference at
  /// runtime (e.g. to use eager as a differential oracle). Single-sentence
  /// Predict always runs eager.
  void set_plan_inference(bool enabled) { plan_inference_ = enabled; }
  bool plan_inference() const { return plan_inference_; }

  /// The compiled inference plan for this model's architecture. Built
  /// lazily on first use (under a "plan/compile" span) and cached.
  const plan::InferencePlan& plan() const;

  // --- Int8 quantized inference (docs/PERFORMANCE.md) ---
  /// Toggles the quantized planned path. Takes effect only once a
  /// calibration is installed; Predict (single-sentence eager) and
  /// training always stay f32.
  void set_quantized_inference(bool enabled) {
    quantized_inference_ = enabled;
  }
  bool quantized_inference() const { return quantized_inference_; }

  /// Installs activation-scale calibration (e.g. loaded from a
  /// `<model>.quant` sidecar). Must be called before the first quantized
  /// prediction; the quantized plan is compiled lazily from this data.
  void SetQuantCalibration(quant::Calibration calib);
  bool has_quant_calibration() const { return has_quant_calib_; }
  const quant::Calibration& quant_calibration() const { return quant_calib_; }

  /// Runs the f32 plan over `corpus` recording per-op activation ranges,
  /// merged into the model's calibration (replacing any prior one).
  /// Returns the number of quantizable op sites in this architecture.
  int CalibrateQuantization(const text::Corpus& corpus);

  /// The int8-quantized twin of plan(): compiled lazily from the installed
  /// calibration and cached separately. Requires has_quant_calibration().
  const plan::InferencePlan& quantized_plan() const;

 private:
  void Build(const Resources& resources);

  /// Packed micro-batch prediction through the compiled plan. Returns one
  /// span vector per corpus sentence (empty sentences yield empty vectors).
  std::vector<std::vector<text::Span>> PredictPlanned(
      const text::Corpus& corpus) const;

  NerConfig config_;
  Rng rng_;
  text::Vocabulary word_vocab_;
  text::Vocabulary char_vocab_;
  std::vector<std::string> entity_types_;
  std::unique_ptr<text::TagSet> tags_;
  std::unique_ptr<embeddings::ComposedRepresentation> representation_;
  std::unique_ptr<encoders::ContextEncoder> encoder_;
  // Set when encoder_ is a RecursiveEncoder (non-owning view) so encoding
  // can use heuristic trees built from token strings.
  encoders::RecursiveEncoder* recursive_encoder_ = nullptr;
  std::unique_ptr<decoders::TagDecoder> decoder_;

  bool plan_inference_ = true;
  mutable std::once_flag plan_once_;
  mutable std::unique_ptr<plan::InferencePlan> plan_;

  // Quantized twin of the plan cache. A separate once_flag: the f32 plan
  // may already be compiled (plan_once_ consumed) when calibration arrives.
  bool quantized_inference_ = false;
  bool has_quant_calib_ = false;
  quant::Calibration quant_calib_;
  mutable std::once_flag qplan_once_;
  mutable std::unique_ptr<plan::InferencePlan> qplan_;

  // Per-module wall-time instruments, registered once in Build under names
  // carrying the configured module kinds (e.g. "encoder.bilstm.forward_us")
  // and observed only while obs::MetricsEnabled().
  obs::Histogram* repr_forward_us_ = nullptr;
  obs::Histogram* encoder_forward_us_ = nullptr;
  obs::Histogram* decoder_loss_us_ = nullptr;
  obs::Histogram* decoder_decode_us_ = nullptr;
};

}  // namespace dlner::core

#endif  // DLNER_CORE_MODEL_H_
