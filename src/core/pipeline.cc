#include "core/pipeline.h"

#include <fstream>
#include <sstream>

#include "tensor/serialize.h"

namespace dlner::core {
namespace {

constexpr char kMagic[] = "DLNERPIPE1";

}  // namespace

std::unique_ptr<Pipeline> Pipeline::Train(
    const NerConfig& config, const TrainConfig& train_config,
    const text::Corpus& train, const text::Corpus* dev,
    std::vector<std::string> entity_types, const Resources& resources) {
  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->model_ = std::make_unique<NerModel>(
      config, train, std::move(entity_types), resources);
  Trainer trainer(pipeline->model_.get(), train_config);
  pipeline->train_result_ = trainer.Train(train, dev);
  return pipeline;
}

std::vector<text::Span> Pipeline::Tag(
    const std::vector<std::string>& tokens) const {
  return model_->Predict(tokens);
}

text::Sentence Pipeline::TagText(const std::string& raw) const {
  text::Sentence s;
  std::istringstream ss(raw);
  std::string tok;
  while (ss >> tok) s.tokens.push_back(tok);
  if (!s.tokens.empty()) s.spans = model_->Predict(s.tokens);
  return s;
}

std::vector<std::vector<text::Span>> Pipeline::TagCorpus(
    const text::Corpus& corpus) const {
  return model_->PredictCorpus(corpus);
}

eval::ExactResult Pipeline::Evaluate(const text::Corpus& corpus) const {
  return model_->Evaluate(corpus);
}

bool Pipeline::Save(const std::string& path) const {
  const NerConfig& config = model_->config();
  if (config.use_gazetteer || config.use_char_lm || config.use_token_lm) {
    return false;  // externally-owned resources cannot be persisted
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));
  WriteConfig(os, config);
  // Entity types.
  const auto& types = model_->entity_types();
  const uint32_t n_types = static_cast<uint32_t>(types.size());
  os.write(reinterpret_cast<const char*>(&n_types), sizeof(n_types));
  for (const std::string& t : types) {
    const uint32_t len = static_cast<uint32_t>(t.size());
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(t.data(), len);
  }
  // Vocabularies (text blocks framed by length).
  for (const text::Vocabulary* vocab :
       {&model_->word_vocab(), &model_->char_vocab()}) {
    std::ostringstream block;
    vocab->Save(block);
    const std::string data = block.str();
    const uint32_t len = static_cast<uint32_t>(data.size());
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(data.data(), len);
  }
  SaveParameters(os, model_->Parameters());
  return static_cast<bool>(os);
}

std::unique_ptr<Pipeline> Pipeline::Load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return nullptr;
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::string(magic, sizeof(magic)) !=
                 std::string(kMagic, sizeof(kMagic))) {
    return nullptr;
  }
  NerConfig config;
  if (!ReadConfig(is, &config)) return nullptr;
  uint32_t n_types = 0;
  is.read(reinterpret_cast<char*>(&n_types), sizeof(n_types));
  if (!is || n_types == 0 || n_types > 4096) return nullptr;
  std::vector<std::string> types(n_types);
  for (uint32_t i = 0; i < n_types; ++i) {
    uint32_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!is || len > 4096) return nullptr;
    types[i].assign(len, '\0');
    is.read(types[i].data(), len);
    if (!is) return nullptr;
  }
  text::Vocabulary vocabs[2];
  for (auto& vocab : vocabs) {
    uint32_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!is) return nullptr;
    std::string data(len, '\0');
    is.read(data.data(), len);
    if (!is) return nullptr;
    std::istringstream block(data);
    if (!text::Vocabulary::Load(block, &vocab)) return nullptr;
  }

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->model_ = std::make_unique<NerModel>(
      config, std::move(vocabs[0]), std::move(vocabs[1]), std::move(types));
  if (!LoadParameters(is, pipeline->model_->Parameters())) return nullptr;
  return pipeline;
}

}  // namespace dlner::core
