#include "core/pipeline.h"

#include <fstream>
#include <sstream>

#include "tensor/serialize.h"

namespace dlner::core {
namespace {

// Checkpoint format v2 ("DLNERPIPE2"): v1 plus embedded resource blocks
// (gazetteer, char-LM, token-LM) after the vocabulary blocks. v1 files
// ("DLNERPIPE1") are rejected cleanly by the magic comparison.
constexpr char kMagic[] = "DLNERPIPE2";

// Deserialization caps: streams exceeding them are corrupt, not large.
constexpr uint32_t kMaxEntityTypes = 4096;
constexpr uint32_t kMaxEntityTypeLen = 4096;
constexpr uint32_t kMaxVocabBlock = 1u << 26;  // 64 MB of vocab text

}  // namespace

std::unique_ptr<Pipeline> Pipeline::Train(
    const NerConfig& config, const TrainConfig& train_config,
    const text::Corpus& train, const text::Corpus* dev,
    std::vector<std::string> entity_types, const Resources& resources) {
  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  pipeline->resources_ = resources;
  pipeline->model_ = std::make_unique<NerModel>(
      config, train, std::move(entity_types), resources);
  Trainer trainer(pipeline->model_.get(), train_config);
  pipeline->train_result_ = trainer.Train(train, dev);
  return pipeline;
}

std::vector<text::Span> Pipeline::Tag(
    const std::vector<std::string>& tokens) const {
  return model_->Predict(tokens);
}

text::Sentence Pipeline::TagText(const std::string& raw) const {
  text::Sentence s;
  std::istringstream ss(raw);
  std::string tok;
  while (ss >> tok) s.tokens.push_back(tok);
  if (!s.tokens.empty()) s.spans = model_->Predict(s.tokens);
  return s;
}

std::vector<std::vector<text::Span>> Pipeline::TagCorpus(
    const text::Corpus& corpus) const {
  return model_->PredictCorpus(corpus);
}

eval::ExactResult Pipeline::Evaluate(const text::Corpus& corpus) const {
  return model_->Evaluate(corpus);
}

bool Pipeline::Save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  return Save(os);
}

bool Pipeline::Save(std::ostream& os) const {
  const NerConfig& config = model_->config();
  // Every enabled resource must still be reachable to be checkpointed.
  if (config.use_gazetteer && resources_.gazetteer == nullptr) return false;
  if (config.use_char_lm && resources_.char_lm == nullptr) return false;
  if (config.use_token_lm && resources_.token_lm == nullptr) return false;
  os.write(kMagic, sizeof(kMagic));
  WriteConfig(os, config);
  // Entity types.
  const auto& types = model_->entity_types();
  WriteU32(os, static_cast<uint32_t>(types.size()));
  for (const std::string& t : types) WriteLenString(os, t);
  // Vocabularies (text blocks framed by length).
  for (const text::Vocabulary* vocab :
       {&model_->word_vocab(), &model_->char_vocab()}) {
    std::ostringstream block;
    vocab->Save(block);
    WriteLenString(os, block.str());
  }
  // Resource blocks, in fixed order, present iff the config enables them.
  if (config.use_gazetteer) resources_.gazetteer->Save(os);
  if (config.use_char_lm) resources_.char_lm->Save(os);
  if (config.use_token_lm) resources_.token_lm->Save(os);
  SaveParameters(os, model_->Parameters());
  return static_cast<bool>(os);
}

std::unique_ptr<Pipeline> Pipeline::Load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return nullptr;
  return Load(is);
}

std::unique_ptr<Pipeline> Pipeline::Load(std::istream& is) {
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::string(magic, sizeof(magic)) !=
                 std::string(kMagic, sizeof(kMagic))) {
    return nullptr;
  }
  NerConfig config;
  if (!ReadConfig(is, &config) || !config.Valid()) return nullptr;
  uint32_t n_types = 0;
  if (!ReadU32(is, &n_types) || n_types == 0 || n_types > kMaxEntityTypes) {
    return nullptr;
  }
  std::vector<std::string> types(n_types);
  for (uint32_t i = 0; i < n_types; ++i) {
    if (!ReadLenString(is, &types[i], kMaxEntityTypeLen)) return nullptr;
    if (types[i].empty()) return nullptr;
  }
  text::Vocabulary vocabs[2];
  for (auto& vocab : vocabs) {
    std::string data;
    if (!ReadLenString(is, &data, kMaxVocabBlock)) return nullptr;
    std::istringstream block(data);
    if (!text::Vocabulary::Load(block, &vocab)) return nullptr;
  }

  auto pipeline = std::unique_ptr<Pipeline>(new Pipeline());
  // Reconstruct the serialized resources; the pipeline owns them and the
  // model borrows them, making a loaded pipeline fully self-contained.
  if (config.use_gazetteer) {
    pipeline->owned_gazetteer_ = std::make_unique<data::Gazetteer>();
    if (!data::Gazetteer::Load(is, pipeline->owned_gazetteer_.get())) {
      return nullptr;
    }
    pipeline->resources_.gazetteer = pipeline->owned_gazetteer_.get();
  }
  if (config.use_char_lm) {
    pipeline->owned_char_lm_ = embeddings::CharLm::Load(is);
    if (pipeline->owned_char_lm_ == nullptr) return nullptr;
    pipeline->resources_.char_lm = pipeline->owned_char_lm_.get();
  }
  if (config.use_token_lm) {
    pipeline->owned_token_lm_ = embeddings::TokenLm::Load(is);
    if (pipeline->owned_token_lm_ == nullptr) return nullptr;
    pipeline->resources_.token_lm = pipeline->owned_token_lm_.get();
  }
  pipeline->model_ = std::make_unique<NerModel>(
      config, std::move(vocabs[0]), std::move(vocabs[1]), std::move(types),
      pipeline->resources_);
  if (!LoadParameters(is, pipeline->model_->Parameters())) return nullptr;
  return pipeline;
}

}  // namespace dlner::core
