#include "core/flags.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace dlner::core {

namespace {

bool LooksLikeFlag(const char* s) {
  return s[0] == '-' && s[1] == '-';
}

// strto* skip leading whitespace (so " -1" would sneak past ParseUInt64's
// sign check); whole-string parsing means no whitespace anywhere.
bool HasLeadingSpace(const std::string& s) {
  return !s.empty() && std::isspace(static_cast<unsigned char>(s[0])) != 0;
}

}  // namespace

bool ParseInt64(const std::string& s, std::int64_t* out) {
  if (s.empty() || HasLeadingSpace(s)) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  std::int64_t v = 0;
  if (!ParseInt64(s, &v)) return false;
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseUInt64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || HasLeadingSpace(s)) return false;
  // strtoull silently wraps negative input ("-1" -> UINT64_MAX); reject any
  // sign up front so a seed is always the literal digits given.
  if (s[0] == '-' || s[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty() || HasLeadingSpace(s)) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) return false;
  if (std::isnan(v)) return false;
  *out = v;
  return true;
}

bool Args::Parse(int argc, char* const* argv, int start, const FlagSpec& spec) {
  for (int i = start; i < argc; ++i) {
    const char* arg = argv[i];
    if (!LooksLikeFlag(arg) || arg[2] == '\0') {
      error_ = std::string("unexpected argument \"") + arg + "\"";
      return false;
    }
    const std::string name(arg + 2);
    const auto it = spec.find(name);
    if (it == spec.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    switch (it->second) {
      case FlagKind::kBool:
        values_[name] = "true";
        break;
      case FlagKind::kValue:
        if (i + 1 >= argc || LooksLikeFlag(argv[i + 1])) {
          error_ = "flag --" + name + " requires a value";
          return false;
        }
        values_[name] = argv[++i];
        break;
      case FlagKind::kOptionalValue:
        if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "true";
        }
        break;
    }
  }
  return true;
}

std::string Args::Get(const std::string& key, const std::string& dflt) const {
  const auto it = values_.find(key);
  return it == values_.end() ? dflt : it->second;
}

namespace {

[[noreturn]] void FailFlag(const std::string& key, const std::string& value,
                           const char* expected) {
  std::fprintf(stderr, "dlner: --%s: invalid %s \"%s\"\n", key.c_str(),
               expected, value.c_str());
  std::exit(1);
}

}  // namespace

int Args::GetInt(const std::string& key, int dflt) const {
  if (!Has(key)) return dflt;
  int v = 0;
  if (!ParseInt(Get(key), &v)) FailFlag(key, Get(key), "integer");
  return v;
}

std::uint64_t Args::GetUInt64(const std::string& key,
                              std::uint64_t dflt) const {
  if (!Has(key)) return dflt;
  std::uint64_t v = 0;
  if (!ParseUInt64(Get(key), &v)) {
    FailFlag(key, Get(key), "unsigned integer");
  }
  return v;
}

double Args::GetDouble(const std::string& key, double dflt) const {
  if (!Has(key)) return dflt;
  double v = 0.0;
  if (!ParseDouble(Get(key), &v)) FailFlag(key, Get(key), "number");
  return v;
}

}  // namespace dlner::core
