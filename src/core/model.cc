#include "core/model.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "runtime/runtime.h"

#include "decoders/crf.h"
#include "decoders/fofe.h"
#include "decoders/pointer.h"
#include "decoders/rnn_decoder.h"
#include "decoders/semicrf.h"
#include "decoders/softmax.h"
#include "embeddings/char_features.h"
#include "encoders/cnn.h"
#include "encoders/rnn_encoder.h"
#include "encoders/transformer.h"

namespace dlner::core {

NerModel::NerModel(const NerConfig& config, const text::Corpus& train,
                   std::vector<std::string> entity_types,
                   const Resources& resources)
    : NerModel(config, text::Vocabulary::FromCorpus(train),
               text::Vocabulary::CharsFromCorpus(train),
               std::move(entity_types), resources) {}

NerModel::NerModel(const NerConfig& config, text::Vocabulary word_vocab,
                   text::Vocabulary char_vocab,
                   std::vector<std::string> entity_types,
                   const Resources& resources)
    : config_(config),
      rng_(config.seed),
      word_vocab_(std::move(word_vocab)),
      char_vocab_(std::move(char_vocab)),
      entity_types_(std::move(entity_types)) {
  DLNER_CHECK(!entity_types_.empty());
  if (config_.threads >= 0) runtime::Runtime::Get().SetThreads(config_.threads);
  // Observability knobs mirror `threads`: they configure process-wide
  // state at construction and -1 leaves the current setting alone.
  if (config_.log_level >= 0) {
    obs::SetLogLevel(static_cast<obs::LogLevel>(config_.log_level));
  }
  if (config_.collect_traces >= 0) {
    obs::EnableTracing(config_.collect_traces != 0);
  }
  if (config_.collect_metrics >= 0) {
    obs::EnableMetrics(config_.collect_metrics != 0);
  }
  plan_inference_ = config_.plan_inference;
  quantized_inference_ = config_.quantized_inference;
  Build(resources);
}

void NerModel::Build(const Resources& resources) {
  // --- Input representation ---
  std::vector<std::unique_ptr<embeddings::TokenFeature>> features;
  if (config_.use_word) {
    auto word = std::make_unique<embeddings::WordEmbeddingFeature>(
        &word_vocab_, config_.word_dim, &rng_, config_.word_unk_dropout,
        "word_emb");
    if (resources.sgns != nullptr) {
      DLNER_CHECK_EQ(resources.sgns->dim(), config_.word_dim);
      resources.sgns->CopyInto(word_vocab_, word->embedding());
    }
    if (config_.freeze_word) word->embedding()->set_trainable(false);
    features.push_back(std::move(word));
  }
  if (config_.use_char_cnn) {
    features.push_back(std::make_unique<embeddings::CharCnnFeature>(
        &char_vocab_, config_.char_dim, config_.char_filters, &rng_));
  }
  if (config_.use_char_rnn) {
    features.push_back(std::make_unique<embeddings::CharRnnFeature>(
        &char_vocab_, config_.char_dim, config_.char_hidden, &rng_));
  }
  if (config_.use_shape) {
    features.push_back(std::make_unique<embeddings::WordShapeFeature>());
  }
  if (config_.use_gazetteer) {
    DLNER_CHECK_MSG(resources.gazetteer != nullptr,
                    "config.use_gazetteer requires Resources::gazetteer");
    features.push_back(
        std::make_unique<embeddings::GazetteerFeature>(resources.gazetteer));
  }
  if (config_.use_char_lm) {
    DLNER_CHECK_MSG(resources.char_lm != nullptr,
                    "config.use_char_lm requires Resources::char_lm");
    features.push_back(
        std::make_unique<embeddings::CharLmFeature>(resources.char_lm));
  }
  if (config_.use_token_lm) {
    DLNER_CHECK_MSG(resources.token_lm != nullptr,
                    "config.use_token_lm requires Resources::token_lm");
    features.push_back(
        std::make_unique<embeddings::TokenLmFeature>(resources.token_lm));
  }
  DLNER_CHECK_MSG(!features.empty(), "no input features enabled");
  representation_ = std::make_unique<embeddings::ComposedRepresentation>(
      std::move(features), config_.input_dropout, &rng_);

  // --- Context encoder ---
  const int rep_dim = representation_->dim();
  if (config_.encoder == "mlp") {
    encoder_ = std::make_unique<encoders::MlpEncoder>(rep_dim,
                                                      config_.hidden_dim,
                                                      &rng_);
  } else if (config_.encoder == "cnn") {
    encoder_ = std::make_unique<encoders::CnnEncoder>(
        rep_dim, config_.hidden_dim, config_.cnn_layers, config_.cnn_global,
        &rng_);
  } else if (config_.encoder == "idcnn") {
    encoder_ = std::make_unique<encoders::IdCnnEncoder>(
        rep_dim, config_.hidden_dim, config_.idcnn_dilations,
        config_.idcnn_iterations, &rng_);
  } else if (config_.encoder == "bilstm") {
    encoder_ = std::make_unique<encoders::RnnEncoder>(
        "lstm", rep_dim, config_.hidden_dim, config_.encoder_layers,
        config_.encoder_dropout, &rng_);
  } else if (config_.encoder == "bigru") {
    encoder_ = std::make_unique<encoders::RnnEncoder>(
        "gru", rep_dim, config_.hidden_dim, config_.encoder_layers,
        config_.encoder_dropout, &rng_);
  } else if (config_.encoder == "brnn") {
    auto recursive = std::make_unique<encoders::RecursiveEncoder>(
        rep_dim, config_.hidden_dim, &rng_);
    recursive_encoder_ = recursive.get();
    encoder_ = std::move(recursive);
  } else if (config_.encoder == "transformer") {
    encoder_ = std::make_unique<encoders::TransformerEncoder>(
        rep_dim, config_.hidden_dim, config_.transformer_heads,
        config_.transformer_ffn, config_.encoder_layers,
        config_.encoder_dropout, &rng_);
  } else {
    DLNER_CHECK_MSG(false, "unknown encoder kind: " << config_.encoder);
  }

  // --- Tag decoder ---
  const int enc_dim = encoder_->out_dim();
  if (config_.decoder == "softmax" || config_.decoder == "crf" ||
      config_.decoder == "rnn") {
    tags_ = std::make_unique<text::TagSet>(
        entity_types_, text::TagSchemeFromString(config_.scheme));
  }
  if (config_.decoder == "softmax") {
    decoder_ = std::make_unique<decoders::SoftmaxDecoder>(enc_dim,
                                                          tags_.get(), &rng_);
  } else if (config_.decoder == "crf") {
    decoder_ = std::make_unique<decoders::CrfDecoder>(
        enc_dim, tags_.get(), &rng_, config_.constrained_decoding);
  } else if (config_.decoder == "semicrf") {
    decoder_ = std::make_unique<decoders::SemiCrfDecoder>(
        enc_dim, entity_types_, config_.max_segment_len, &rng_);
  } else if (config_.decoder == "rnn") {
    decoder_ = std::make_unique<decoders::RnnDecoder>(
        enc_dim, tags_.get(), config_.tag_embed_dim, config_.decoder_hidden,
        &rng_);
  } else if (config_.decoder == "fofe") {
    decoder_ = std::make_unique<decoders::FofeDecoder>(
        enc_dim, entity_types_, config_.max_segment_len,
        config_.fofe_alpha, &rng_);
  } else if (config_.decoder == "pointer") {
    decoder_ = std::make_unique<decoders::PointerDecoder>(
        enc_dim, entity_types_, config_.max_segment_len,
        config_.decoder_hidden, &rng_);
  } else {
    DLNER_CHECK_MSG(false, "unknown decoder kind: " << config_.decoder);
  }

  // Per-module timing instruments (survey Section 5.2's "effectiveness
  // measure" extended to cost: the encoder/decoder latency accounting the
  // ID-CNN line of work argues for). Pointers are process-stable.
  obs::Metrics& metrics = obs::Metrics::Get();
  repr_forward_us_ = metrics.histogram("representation.forward_us");
  encoder_forward_us_ =
      metrics.histogram("encoder." + config_.encoder + ".forward_us");
  decoder_loss_us_ =
      metrics.histogram("decoder." + config_.decoder + ".loss_us");
  decoder_decode_us_ =
      metrics.histogram("decoder." + config_.decoder + ".decode_us");
}

namespace {

// Runs `fn`, recording its wall time into `hist` when metric collection is
// on. The disabled path is one relaxed load.
template <typename Fn>
auto Timed(obs::Histogram* hist, Fn&& fn) {
  if (!obs::MetricsEnabled() || hist == nullptr) return fn();
  obs::Stopwatch sw;
  auto out = fn();
  hist->Observe(sw.Micros());
  return out;
}

}  // namespace

Var NerModel::Represent(const std::vector<std::string>& tokens,
                        bool training) const {
  obs::ScopedSpan span("embed");
  return Timed(repr_forward_us_,
               [&] { return representation_->Forward(tokens, training); });
}

Var NerModel::Encode(const Var& representation, bool training) const {
  obs::ScopedSpan span("encode");
  return Timed(encoder_forward_us_, [&] {
    return encoder_->Encode(representation, training);
  });
}

Var NerModel::EncodeTokens(const Var& representation,
                           const std::vector<std::string>& tokens,
                           bool training) const {
  obs::ScopedSpan span("encode");
  return Timed(encoder_forward_us_, [&]() -> Var {
    if (recursive_encoder_ != nullptr) {
      return recursive_encoder_->EncodeTree(
          representation, encoders::BuildHeuristicTree(tokens));
    }
    return encoder_->Encode(representation, training);
  });
}

Var NerModel::LossFromRepresentation(const Var& representation,
                                     const text::Sentence& gold,
                                     bool training) const {
  Var encoded = EncodeTokens(representation, gold.tokens, training);
  obs::ScopedSpan span("loss");
  return Timed(decoder_loss_us_,
               [&] { return decoder_->Loss(encoded, gold); });
}

Var NerModel::Loss(const text::Sentence& sentence, bool training) {
  DLNER_CHECK_GT(sentence.size(), 0);
  return LossFromRepresentation(Represent(sentence.tokens, training),
                                sentence, training);
}

std::vector<text::Span> NerModel::Predict(
    const std::vector<std::string>& tokens) const {
  DLNER_CHECK(!tokens.empty());
  NoGradGuard no_grad;
  Var rep = Represent(tokens, /*training=*/false);
  Var encoded = EncodeTokens(rep, tokens, /*training=*/false);
  obs::ScopedSpan span("decode");
  return Timed(decoder_decode_us_,
               [&] { return decoder_->Predict(encoded); });
}

namespace {

// Shard granularity for corpus-level parallelism: coarse enough to
// amortize dispatch, fine enough to balance uneven sentence lengths.
constexpr std::int64_t kSentenceGrain = 8;

// Micro-batch size for the compiled plan: large enough that one blocked
// GEMM amortizes dispatch across sentences, small enough that ragged tail
// batches still balance across the thread pool.
constexpr std::int64_t kPlanBatch = 16;

std::int64_t CountTokens(const text::Corpus& corpus) {
  std::int64_t tokens = 0;
  for (const auto& s : corpus.sentences) {
    tokens += static_cast<std::int64_t>(s.tokens.size());
  }
  return tokens;
}

// Publishes corpus-pass throughput under `prefix` (e.g. "eval"):
// cumulative sentence/token/wall counters plus latest-rate gauges.
void RecordCorpusThroughput(const char* prefix, const text::Corpus& corpus,
                            double seconds) {
  const std::string p(prefix);
  const std::int64_t tokens = CountTokens(corpus);
  obs::Metrics& m = obs::Metrics::Get();
  m.counter(p + ".sentences")->Add(corpus.sentences.size());
  m.counter(p + ".tokens")->Add(tokens);
  m.counter(p + ".wall_us")
      ->Add(static_cast<std::int64_t>(seconds * 1e6));
  if (seconds > 0.0) {
    m.gauge(p + ".sentences_per_sec")
        ->Set(static_cast<double>(corpus.sentences.size()) / seconds);
    m.gauge(p + ".tokens_per_sec")
        ->Set(static_cast<double>(tokens) / seconds);
  }
}

}  // namespace

const plan::InferencePlan& NerModel::plan() const {
  std::call_once(plan_once_, [&] {
    obs::ScopedSpan span("plan/compile");
    plan::PlanModules modules;
    modules.representation = representation_.get();
    modules.encoder = encoder_.get();
    modules.recursive = recursive_encoder_;
    modules.decoder = decoder_.get();
    plan_ = std::make_unique<plan::InferencePlan>(modules);
  });
  return *plan_;
}

const plan::InferencePlan& NerModel::quantized_plan() const {
  DLNER_CHECK(has_quant_calib_);
  std::call_once(qplan_once_, [&] {
    obs::ScopedSpan span("plan/compile");
    plan::PlanModules modules;
    modules.representation = representation_.get();
    modules.encoder = encoder_.get();
    modules.recursive = recursive_encoder_;
    modules.decoder = decoder_.get();
    qplan_ = std::make_unique<plan::InferencePlan>(modules, &quant_calib_);
  });
  return *qplan_;
}

void NerModel::SetQuantCalibration(quant::Calibration calib) {
  // qplan_once_ may already be consumed; callers install calibration once,
  // before the first quantized prediction (enforced here).
  DLNER_CHECK(qplan_ == nullptr);
  quant_calib_ = std::move(calib);
  has_quant_calib_ = true;
}

int NerModel::CalibrateQuantization(const text::Corpus& corpus) {
  DLNER_CHECK(qplan_ == nullptr);
  const plan::InferencePlan& p = plan();
  quant_calib_.max_abs.clear();
  // Serial batches: Calibrate merges via max into one shared Calibration,
  // and calibration is a one-time offline pass, so no parallelism needed.
  std::vector<const std::vector<std::string>*> tokens;
  for (const auto& sentence : corpus.sentences) {
    if (sentence.tokens.empty()) continue;
    tokens.push_back(&sentence.tokens);
    if (static_cast<std::int64_t>(tokens.size()) == kPlanBatch) {
      p.Calibrate(tokens, &quant_calib_);
      tokens.clear();
    }
  }
  if (!tokens.empty()) p.Calibrate(tokens, &quant_calib_);
  quant_calib_.max_abs.resize(p.quantizable_ops(), 0.0);
  has_quant_calib_ = true;
  return p.quantizable_ops();
}

std::vector<std::vector<text::Span>> NerModel::PredictPlanned(
    const text::Corpus& corpus) const {
  const plan::InferencePlan& p = (quantized_inference_ && has_quant_calib_)
                                     ? quantized_plan()
                                     : plan();
  const auto& sentences = corpus.sentences;
  std::vector<std::vector<text::Span>> predicted(sentences.size());
  // Non-empty sentences map to contiguous batch slots; empty ones keep
  // their (empty) result vector, matching the eager path.
  std::vector<std::size_t> slots;
  slots.reserve(sentences.size());
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    if (!sentences[i].tokens.empty()) slots.push_back(i);
  }
  const std::int64_t batches =
      (static_cast<std::int64_t>(slots.size()) + kPlanBatch - 1) / kPlanBatch;
  runtime::ParallelFor(
      batches, /*grain=*/1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t batch = begin; batch < end; ++batch) {
          const std::size_t lo = static_cast<std::size_t>(batch * kPlanBatch);
          const std::size_t hi =
              std::min(lo + static_cast<std::size_t>(kPlanBatch),
                       slots.size());
          std::vector<const std::vector<std::string>*> tokens;
          tokens.reserve(hi - lo);
          for (std::size_t s = lo; s < hi; ++s) {
            tokens.push_back(&sentences[slots[s]].tokens);
          }
          std::vector<std::vector<text::Span>> out(hi - lo);
          p.Execute(tokens, &out);
          for (std::size_t s = lo; s < hi; ++s) {
            predicted[slots[s]] = std::move(out[s - lo]);
          }
        }
      });
  return predicted;
}

std::vector<std::vector<text::Span>> NerModel::PredictCorpus(
    const text::Corpus& corpus) const {
  obs::ScopedSpan span("predict_corpus");
  const bool timed = obs::MetricsEnabled();
  obs::Stopwatch sw;
  const auto& sentences = corpus.sentences;
  std::vector<std::vector<text::Span>> predicted;
  if (plan_inference_) {
    predicted = PredictPlanned(corpus);
  } else {
    predicted.resize(sentences.size());
    runtime::ParallelFor(
        static_cast<std::int64_t>(sentences.size()), kSentenceGrain,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            if (!sentences[i].tokens.empty()) {
              predicted[i] = Predict(sentences[i].tokens);
            }
          }
        });
  }
  if (timed) RecordCorpusThroughput("tag", corpus, sw.Seconds());
  return predicted;
}

eval::ExactResult NerModel::Evaluate(const text::Corpus& corpus) const {
  obs::ScopedSpan span("evaluate");
  const bool timed = obs::MetricsEnabled();
  obs::Stopwatch sw;
  const auto& sentences = corpus.sentences;
  eval::ExactMatchEvaluator ev;
  if (plan_inference_) {
    const std::vector<std::vector<text::Span>> predicted =
        PredictPlanned(corpus);
    for (std::size_t i = 0; i < sentences.size(); ++i) {
      ev.Add(sentences[i].spans, predicted[i]);
    }
  } else {
    const std::int64_t total = static_cast<std::int64_t>(sentences.size());
    // One evaluator per fixed-boundary shard; ParallelFor guarantees chunk
    // c covers [c*grain, (c+1)*grain), so shard index = begin / grain.
    // Merging in shard order makes the result independent of thread count.
    const std::int64_t shards =
        total == 0 ? 0 : (total + kSentenceGrain - 1) / kSentenceGrain;
    std::vector<eval::ExactMatchEvaluator> shard_evs(shards);
    runtime::ParallelFor(
        total, kSentenceGrain, [&](std::int64_t begin, std::int64_t end) {
          eval::ExactMatchEvaluator& shard_ev =
              shard_evs[begin / kSentenceGrain];
          for (std::int64_t i = begin; i < end; ++i) {
            const text::Sentence& s = sentences[i];
            std::vector<text::Span> spans;
            if (!s.tokens.empty()) spans = Predict(s.tokens);
            shard_ev.Add(s.spans, spans);
          }
        });
    for (const eval::ExactMatchEvaluator& shard : shard_evs) ev.Merge(shard);
  }
  if (timed) RecordCorpusThroughput("eval", corpus, sw.Seconds());
  return ev.Result();
}

std::vector<Var> NerModel::Parameters() const {
  return JoinParameters(
      {representation_.get(), encoder_.get(), decoder_.get()});
}

}  // namespace dlner::core
