// Training loop: shuffled per-sentence SGD with gradient clipping, optional
// dev-set early stopping — the recipe shared by every Table 3 system.
#ifndef DLNER_CORE_TRAINER_H_
#define DLNER_CORE_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "tensor/optim.h"

namespace dlner::core {

struct TrainConfig {
  int epochs = 10;
  double lr = 0.01;
  std::string optimizer = "adam";  // sgd|adagrad|adam
  double clip_norm = 5.0;
  uint64_t shuffle_seed = 7;
  /// Early stopping: stop after `patience` epochs without dev-F1
  /// improvement (0 disables; requires a dev corpus).
  int patience = 0;
  bool verbose = false;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double dev_f1 = -1.0;  // -1 when no dev corpus
  /// Wall time of the whole epoch (training pass + dev evaluation).
  double wall_seconds = 0.0;
  /// Training throughput of this epoch (tokens in the training pass over
  /// the training-pass wall time only).
  double tokens_per_sec = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double best_dev_f1 = -1.0;
  int best_epoch = -1;
  double final_train_loss = 0.0;
};

class Trainer {
 public:
  /// The trainer borrows the model and owns the optimizer over its current
  /// parameter set. Parameters frozen after construction are not updated.
  Trainer(NerModel* model, const TrainConfig& config);

  /// Full training run over `train`, optionally evaluating on `dev` each
  /// epoch for early stopping and history. With a dev corpus the model's
  /// parameters are restored to the best-dev-F1 epoch before returning, so
  /// the trained model always carries best-epoch (not last-epoch) weights.
  TrainResult Train(const text::Corpus& train, const text::Corpus* dev);

  /// One incremental pass of `epochs` epochs (used by deep active learning,
  /// Section 4.3: "mix newly annotated samples ... update for a small
  /// number of epochs" instead of retraining from scratch).
  /// Returns the mean train loss of the last epoch.
  double TrainEpochs(const text::Corpus& train, int epochs);

  Optimizer* optimizer() { return optimizer_.get(); }

 private:
  double RunEpoch(const text::Corpus& train);

  NerModel* model_;  // not owned
  TrainConfig config_;
  Rng shuffle_rng_;
  std::unique_ptr<Optimizer> optimizer_;
};

}  // namespace dlner::core

#endif  // DLNER_CORE_TRAINER_H_
