// Checked command-line flag parsing shared by the dlner and dlner_serve
// tools.
//
// This replaces the tools' original ad-hoc parser, which had three classes
// of silent failure on untrusted input: numeric values went through
// atoi/atof (so "--threads abc" became 0 and "--epochs 12x" became 12),
// 64-bit seeds were truncated through int, and unknown flags or flags with
// a missing value were accepted without complaint. Here every subcommand
// declares the flags it accepts (a FlagSpec); anything outside the spec,
// any value-taking flag without a value, and any malformed number is a
// loud error instead of a default.
#ifndef DLNER_CORE_FLAGS_H_
#define DLNER_CORE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace dlner::core {

// Whole-string checked numeric parsing: the entire string must be one
// number of the target type, in range; anything else (empty string,
// trailing garbage, overflow, a sign on an unsigned, nan) returns false
// and leaves *out untouched. These are the testable primitives under the
// Args typed accessors below.
bool ParseInt(const std::string& s, int* out);
bool ParseInt64(const std::string& s, std::int64_t* out);
bool ParseUInt64(const std::string& s, std::uint64_t* out);
bool ParseDouble(const std::string& s, double* out);

/// How a flag consumes command-line arguments.
enum class FlagKind {
  kBool,           // --verbose            (never takes a value)
  kValue,          // --epochs 12          (next argv entry, required)
  kOptionalValue,  // --gazetteer [0.7]    (next entry iff it is not a flag)
};

/// The flags one subcommand accepts: name (without the "--") -> kind.
using FlagSpec = std::map<std::string, FlagKind>;

class Args {
 public:
  Args() = default;

  /// Parses argv[start..argc). Returns false (with error() describing the
  /// offending argument) on an unknown flag, a kValue flag with no value
  /// (end of argv or a "--"-prefixed token where the value should be), or
  /// a stray positional argument. Repeated flags keep the last occurrence.
  bool Parse(int argc, char* const* argv, int start, const FlagSpec& spec);
  const std::string& error() const { return error_; }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt = "") const;

  /// Checked typed accessors: a malformed value prints the offending flag
  /// and value to stderr and exits 1 — garbage never silently becomes 0
  /// (the old atoi behavior) and seeds above INT_MAX survive (GetUInt64
  /// never round-trips through int).
  int GetInt(const std::string& key, int dflt) const;
  std::uint64_t GetUInt64(const std::string& key, std::uint64_t dflt) const;
  double GetDouble(const std::string& key, double dflt) const;

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

}  // namespace dlner::core

#endif  // DLNER_CORE_FLAGS_H_
