#include "core/config.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "tensor/serialize.h"

namespace dlner::core {
namespace {

void WriteString(std::ostream& os, const std::string& s) {
  WriteLenString(os, s);
}

bool ReadString(std::istream& is, std::string* s) {
  return ReadLenString(is, s, 1u << 20);
}

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

// Bools are framed as one 0/1 byte. Reading a raw byte straight into a
// bool would be undefined behavior for corrupt values (anything but 0/1),
// so decode via uint8_t and reject other values outright.
void WritePod(std::ostream& os, const bool& v) {
  const uint8_t b = v ? 1 : 0;
  os.write(reinterpret_cast<const char*>(&b), sizeof(b));
}

bool ReadPod(std::istream& is, bool* v) {
  uint8_t b = 0;
  is.read(reinterpret_cast<char*>(&b), sizeof(b));
  if (!is || b > 1) return false;
  *v = b != 0;
  return true;
}

}  // namespace

std::string NerConfig::Describe() const {
  std::ostringstream oss;
  bool first = true;
  auto add = [&](const std::string& part) {
    if (!first) oss << "+";
    oss << part;
    first = false;
  };
  if (use_word) add(freeze_word ? "word(frozen)" : "word");
  if (use_char_cnn) add("charCNN");
  if (use_char_rnn) add("charLSTM");
  if (use_shape) add("shape");
  if (use_gazetteer) add("gaz");
  if (use_char_lm) add("charLM");
  if (use_token_lm) add("tokenLM");
  oss << " / " << encoder << " / " << decoder;
  return oss.str();
}

bool NerConfig::Valid() const {
  const auto dim_ok = [](int d) { return d >= 1 && d <= 4096; };
  const auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!use_word && !use_char_cnn && !use_char_rnn && !use_shape &&
      !use_gazetteer && !use_char_lm && !use_token_lm) {
    return false;
  }
  if (!dim_ok(word_dim) || !dim_ok(char_dim) || !dim_ok(char_filters) ||
      !dim_ok(char_hidden) || !dim_ok(hidden_dim) || !dim_ok(tag_embed_dim) ||
      !dim_ok(decoder_hidden) || !dim_ok(transformer_ffn)) {
    return false;
  }
  if (!prob_ok(word_unk_dropout) || !prob_ok(input_dropout) ||
      !prob_ok(encoder_dropout)) {
    return false;
  }
  if (encoder != "mlp" && encoder != "cnn" && encoder != "idcnn" &&
      encoder != "bilstm" && encoder != "bigru" && encoder != "brnn" &&
      encoder != "transformer") {
    return false;
  }
  if (encoder_layers < 1 || encoder_layers > 64) return false;
  if (cnn_layers < 1 || cnn_layers > 64) return false;
  if (idcnn_dilations.empty() || idcnn_dilations.size() > 16) return false;
  for (int d : idcnn_dilations) {
    if (d < 1 || d > 1024) return false;
  }
  if (idcnn_iterations < 1 || idcnn_iterations > 64) return false;
  if (transformer_heads < 1 || transformer_heads > 64) return false;
  // Gated on use so unused fields cannot invalidate a trained config.
  if (encoder == "transformer" && hidden_dim % transformer_heads != 0) {
    return false;
  }
  if (decoder != "softmax" && decoder != "crf" && decoder != "semicrf" &&
      decoder != "rnn" && decoder != "pointer" && decoder != "fofe") {
    return false;
  }
  if (scheme != "io" && scheme != "bio" && scheme != "bioes") return false;
  if (max_segment_len < 1 || max_segment_len > 1024) return false;
  if (decoder == "fofe" && (!(fofe_alpha > 0.0) || !(fofe_alpha < 1.0))) {
    return false;
  }
  return true;
}

void WriteConfig(std::ostream& os, const NerConfig& c) {
  WritePod(os, c.use_word);
  WritePod(os, c.word_dim);
  WritePod(os, c.freeze_word);
  WritePod(os, c.word_unk_dropout);
  WritePod(os, c.use_char_cnn);
  WritePod(os, c.char_dim);
  WritePod(os, c.char_filters);
  WritePod(os, c.use_char_rnn);
  WritePod(os, c.char_hidden);
  WritePod(os, c.use_shape);
  WritePod(os, c.use_gazetteer);
  WritePod(os, c.use_char_lm);
  WritePod(os, c.use_token_lm);
  WritePod(os, c.input_dropout);
  WriteString(os, c.encoder);
  WritePod(os, c.hidden_dim);
  WritePod(os, c.encoder_layers);
  WritePod(os, c.encoder_dropout);
  WritePod(os, c.cnn_layers);
  WritePod(os, c.cnn_global);
  WritePod(os, static_cast<uint32_t>(c.idcnn_dilations.size()));
  for (int d : c.idcnn_dilations) WritePod(os, d);
  WritePod(os, c.idcnn_iterations);
  WritePod(os, c.transformer_heads);
  WritePod(os, c.transformer_ffn);
  WriteString(os, c.decoder);
  WriteString(os, c.scheme);
  WritePod(os, c.max_segment_len);
  WritePod(os, c.fofe_alpha);
  WritePod(os, c.tag_embed_dim);
  WritePod(os, c.decoder_hidden);
  WritePod(os, c.constrained_decoding);
  WritePod(os, c.seed);
}

bool ReadConfig(std::istream& is, NerConfig* c) {
  if (!ReadPod(is, &c->use_word)) return false;
  if (!ReadPod(is, &c->word_dim)) return false;
  if (!ReadPod(is, &c->freeze_word)) return false;
  if (!ReadPod(is, &c->word_unk_dropout)) return false;
  if (!ReadPod(is, &c->use_char_cnn)) return false;
  if (!ReadPod(is, &c->char_dim)) return false;
  if (!ReadPod(is, &c->char_filters)) return false;
  if (!ReadPod(is, &c->use_char_rnn)) return false;
  if (!ReadPod(is, &c->char_hidden)) return false;
  if (!ReadPod(is, &c->use_shape)) return false;
  if (!ReadPod(is, &c->use_gazetteer)) return false;
  if (!ReadPod(is, &c->use_char_lm)) return false;
  if (!ReadPod(is, &c->use_token_lm)) return false;
  if (!ReadPod(is, &c->input_dropout)) return false;
  if (!ReadString(is, &c->encoder)) return false;
  if (!ReadPod(is, &c->hidden_dim)) return false;
  if (!ReadPod(is, &c->encoder_layers)) return false;
  if (!ReadPod(is, &c->encoder_dropout)) return false;
  if (!ReadPod(is, &c->cnn_layers)) return false;
  if (!ReadPod(is, &c->cnn_global)) return false;
  uint32_t n_dil = 0;
  if (!ReadPod(is, &n_dil) || n_dil > 16) return false;
  c->idcnn_dilations.resize(n_dil);
  for (uint32_t i = 0; i < n_dil; ++i) {
    if (!ReadPod(is, &c->idcnn_dilations[i])) return false;
  }
  if (!ReadPod(is, &c->idcnn_iterations)) return false;
  if (!ReadPod(is, &c->transformer_heads)) return false;
  if (!ReadPod(is, &c->transformer_ffn)) return false;
  if (!ReadString(is, &c->decoder)) return false;
  if (!ReadString(is, &c->scheme)) return false;
  if (!ReadPod(is, &c->max_segment_len)) return false;
  if (!ReadPod(is, &c->fofe_alpha)) return false;
  if (!ReadPod(is, &c->tag_embed_dim)) return false;
  if (!ReadPod(is, &c->decoder_hidden)) return false;
  if (!ReadPod(is, &c->constrained_decoding)) return false;
  if (!ReadPod(is, &c->seed)) return false;
  return true;
}

}  // namespace dlner::core
