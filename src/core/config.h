// Model configuration: one struct whose fields select a cell in each axis of
// the survey's taxonomy (Fig. 2) — input representation, context encoder,
// tag decoder — plus the training-relevant hyperparameters. The factory in
// model.h turns a config into a runnable NerModel, which is how the
// "easy-to-use toolkit" (survey Section 5.2) assembles any of the Table 3
// architectures by name.
#ifndef DLNER_CORE_CONFIG_H_
#define DLNER_CORE_CONFIG_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dlner::core {

struct NerConfig {
  // --- Distributed representations for input (Section 3.2) ---
  bool use_word = true;
  int word_dim = 24;
  bool freeze_word = false;     // keep pre-trained vectors fixed
  /// Word-level UNK dropout (Lample et al.): forces reliance on char /
  /// context features and is what makes them generalize to unseen words.
  double word_unk_dropout = 0.0;
  bool use_char_cnn = false;    // Fig. 3a
  int char_dim = 12;
  int char_filters = 16;
  bool use_char_rnn = false;    // Fig. 3b
  int char_hidden = 12;
  bool use_shape = false;       // word-shape features (hybrid)
  bool use_gazetteer = false;   // requires Resources::gazetteer
  bool use_char_lm = false;     // contextual string embeddings (Fig. 4)
  bool use_token_lm = false;    // TagLM/ELMo-style embeddings
  double input_dropout = 0.25;

  // --- Context encoder (Section 3.3) ---
  std::string encoder = "bilstm";  // mlp|cnn|idcnn|bilstm|bigru|transformer
  int hidden_dim = 24;             // per direction (rnn) / model dim (others)
  int encoder_layers = 1;
  double encoder_dropout = 0.1;
  int cnn_layers = 2;              // CnnEncoder depth
  bool cnn_global = true;          // Collobert global feature
  std::vector<int> idcnn_dilations = {1, 2, 4};
  int idcnn_iterations = 2;
  int transformer_heads = 2;
  int transformer_ffn = 48;

  // --- Tag decoder (Section 3.4) ---
  std::string decoder = "crf";  // softmax|crf|semicrf|rnn|pointer
  std::string scheme = "bioes";  // io|bio|bioes (tag decoders)
  int max_segment_len = 8;       // semicrf/pointer/fofe span cap
  double fofe_alpha = 0.5;       // FOFE forgetting factor
  int tag_embed_dim = 8;         // rnn decoder
  int decoder_hidden = 24;       // rnn/pointer decoder state size
  bool constrained_decoding = true;

  uint64_t seed = 42;

  // --- Runtime (not part of the architecture) ---
  /// Worker threads for corpus-level operations (Evaluate, PredictCorpus).
  /// -1 leaves the process-wide runtime untouched; 0 means hardware
  /// concurrency; N > 0 pins the count. Deliberately NOT serialized: a
  /// saved model must load identically regardless of the machine that
  /// trained it, and appending fields would break the binary format.
  int threads = -1;

  /// Routes corpus-level inference (PredictCorpus, Evaluate) through the
  /// compiled batched plan (src/plan/) instead of per-sentence eager
  /// forwards. Results are identical either way (the plan is validated
  /// against eager by the differential suite); this only trades schedule.
  /// Like `threads`, an execution knob — deliberately NOT serialized.
  bool plan_inference = true;

  /// Enables document-level entity-consistency state in the streaming
  /// tagger (src/stream/): spans emitted earlier in a document bias the
  /// tagging of later exact surface repetitions (majority-vote type memory,
  /// survey's document-level-context thread). Off, the streaming path is
  /// bit-identical to sentence-at-a-time TagCorpus. Consulted only by
  /// stream::StreamTagger as its default; sentence-level APIs ignore it.
  /// Like `threads`, an execution knob — deliberately NOT serialized.
  bool doc_context = false;

  /// Routes planned inference through the int8 quantized kernels
  /// (tensor/quant.h) when a quantization calibration has been installed
  /// on the model (NerModel::SetQuantCalibration, typically loaded from
  /// the `<model>.quant` sidecar written by `dlner quantize`). Training
  /// and the eager path stay f32. Like `threads`, NOT serialized.
  bool quantized_inference = false;

  // --- Observability (see docs/OBSERVABILITY.md) ---
  // Like `threads`, these act on the process-wide state at model
  // construction and are deliberately NOT serialized: checkpoints
  // round-trip untouched and the v2 binary format is unchanged. -1 always
  // means "leave the current process-wide setting alone".
  /// Structured-log threshold: 0=debug 1=info 2=warn 3=error 4=off.
  int log_level = -1;
  /// Span tracing (obs::Tracer): 0 disables, 1 enables.
  int collect_traces = -1;
  /// Metric collection (obs::Metrics): 0 disables, 1 enables.
  int collect_metrics = -1;

  /// Short human-readable architecture label, e.g.
  /// "word+charCNN / BiLSTM / CRF".
  std::string Describe() const;

  /// True when every field names a known module and sits in a sane range,
  /// so NerModel construction cannot CHECK-fail. Pipeline::Load rejects
  /// checkpoints whose deserialized config is not Valid() — corrupt files
  /// must fail by return value, never by crash.
  bool Valid() const;
};

/// Binary (de)serialization used by Pipeline::Save/Load.
void WriteConfig(std::ostream& os, const NerConfig& config);
bool ReadConfig(std::istream& is, NerConfig* config);

}  // namespace dlner::core

#endif  // DLNER_CORE_CONFIG_H_
