#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "obs/obs.h"
#include "obs/trace.h"
#include "tensor/check.h"

namespace dlner::runtime {

// Shared between the caller and helper tasks of one ParallelFor. Helpers
// hold a shared_ptr, so a straggler that wakes up after every chunk is done
// can still touch the state safely; the caller only waits for `done` to
// reach `chunks`, never for the helpers themselves, which keeps nested
// ParallelFor calls deadlock-free even when all workers are busy.
struct ThreadPool::ForState {
  std::function<void(std::int64_t, std::int64_t)> body;
  std::int64_t total = 0;
  std::int64_t grain = 1;
  std::int64_t chunks = 0;
  /// The caller's trace context at fork time; helper threads adopt it so
  /// spans they record (e.g. plan/batch under the serve batcher) carry the
  /// same "ctx" annotation as spans on the calling thread.
  std::uint64_t trace_ctx = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int workers) {
  DLNER_CHECK_GE(workers, 0);
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DLNER_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    DLNER_CHECK_MSG(!stop_, "Submit on a stopped ThreadPool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      // Idle time (blocked on the queue) is only clocked while metric
      // collection is on; the steady-state cost is one relaxed load.
      const bool timed = obs::MetricsEnabled();
      const std::uint64_t wait_start = timed ? obs::NowMicros() : 0;
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (timed) {
        idle_wait_us_.fetch_add(
            static_cast<std::int64_t>(obs::NowMicros() - wait_start),
            std::memory_order_relaxed);
      }
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    jobs_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.jobs_executed = jobs_executed_.load(std::memory_order_relaxed);
  s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  s.chunks_caller = chunks_caller_.load(std::memory_order_relaxed);
  s.chunks_helper = chunks_helper_.load(std::memory_order_relaxed);
  s.idle_wait_us = idle_wait_us_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::RunChunks(const std::shared_ptr<ForState>& state,
                           bool caller) {
  // Helpers inherit the forking thread's trace context for the duration of
  // this ParallelFor; the caller already has it set.
  obs::ScopedTraceContext ctx(caller ? obs::CurrentTraceContext()
                                     : state->trace_ctx);
  std::atomic<std::int64_t>& chunk_counter =
      caller ? chunks_caller_ : chunks_helper_;
  for (;;) {
    const std::int64_t c = state->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->chunks) return;
    chunk_counter.fetch_add(1, std::memory_order_relaxed);
    if (!state->failed.load(std::memory_order_relaxed)) {
      const std::int64_t begin = c * state->grain;
      const std::int64_t end = std::min(state->total, begin + state->grain);
      try {
        state->body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->error == nullptr) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->chunks) {
      // Lock before notifying so the caller cannot miss the final wakeup
      // between checking the predicate and blocking.
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::int64_t total, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (total <= 0) return;
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (total + grain - 1) / grain;
  if (workers() == 0 || chunks == 1) {
    // Serial path: identical chunk boundaries, same exception behavior.
    chunks_caller_.fetch_add(chunks, std::memory_order_relaxed);
    for (std::int64_t c = 0; c < chunks; ++c) {
      body(c * grain, std::min(total, (c + 1) * grain));
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->body = body;
  state->total = total;
  state->grain = grain;
  state->chunks = chunks;
  state->trace_ctx = obs::CurrentTraceContext();

  const int helpers =
      static_cast<int>(std::min<std::int64_t>(chunks - 1, workers()));
  for (int h = 0; h < helpers; ++h) {
    Submit([this, state] { RunChunks(state, /*caller=*/false); });
  }
  RunChunks(state, /*caller=*/true);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->chunks;
  });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

}  // namespace dlner::runtime
