// Fixed-size worker pool with a deterministic parallel-for.
//
// ParallelFor cuts [0, total) into fixed chunks of `grain` indices: chunk c
// always covers [c*grain, min((c+1)*grain, total)), no matter which thread
// executes it or in which order chunks are claimed. Callers that write one
// output slot per index (or one accumulator per chunk) therefore get
// bit-identical results at any thread count — the property the parallel
// evaluation path relies on.
#ifndef DLNER_RUNTIME_THREAD_POOL_H_
#define DLNER_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dlner::runtime {

class ThreadPool {
 public:
  /// Spawns `workers` background threads. Zero workers is valid: every
  /// ParallelFor then runs inline on the calling thread.
  explicit ThreadPool(int workers);

  /// Drains any queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs body(begin, end) over every chunk of [0, total); blocks until all
  /// chunks completed. The calling thread participates, so this is safe to
  /// call from inside a pool task (nested calls simply run on the threads
  /// already available). The first exception thrown by `body` is rethrown
  /// here; remaining chunks are skipped.
  void ParallelFor(std::int64_t total, std::int64_t grain,
                   const std::function<void(std::int64_t, std::int64_t)>& body);

 private:
  struct ForState;

  // Claims and runs chunks of `state` until none remain.
  static void RunChunks(const std::shared_ptr<ForState>& state);

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace dlner::runtime

#endif  // DLNER_RUNTIME_THREAD_POOL_H_
