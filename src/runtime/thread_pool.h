// Fixed-size worker pool with a deterministic parallel-for.
//
// ParallelFor cuts [0, total) into fixed chunks of `grain` indices: chunk c
// always covers [c*grain, min((c+1)*grain, total)), no matter which thread
// executes it or in which order chunks are claimed. Callers that write one
// output slot per index (or one accumulator per chunk) therefore get
// bit-identical results at any thread count — the property the parallel
// evaluation path relies on.
#ifndef DLNER_RUNTIME_THREAD_POOL_H_
#define DLNER_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dlner::runtime {

/// Execution statistics accumulated over a pool's lifetime. The ratio
/// chunks_total() / chunks_caller approximates the effective parallelism
/// actually achieved: with no workers (or no helper ever claiming a chunk)
/// it is exactly 1.
struct PoolStats {
  std::int64_t jobs_executed = 0;   // Submit() tasks run by workers
  std::int64_t parallel_fors = 0;   // ParallelFor calls (incl. serial path)
  std::int64_t chunks_caller = 0;   // chunks run on the calling thread
  std::int64_t chunks_helper = 0;   // chunks run on pool workers
  std::int64_t idle_wait_us = 0;    // worker time blocked awaiting work
                                    // (collected only while obs metrics on)

  std::int64_t chunks_total() const { return chunks_caller + chunks_helper; }
};

class ThreadPool {
 public:
  /// Spawns `workers` background threads. Zero workers is valid: every
  /// ParallelFor then runs inline on the calling thread.
  explicit ThreadPool(int workers);

  /// Drains any queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Logical thread count of a ParallelFor: the workers plus the calling
  /// thread, which always participates.
  int num_threads() const { return workers() + 1; }

  /// Snapshot of the pool's execution counters.
  PoolStats stats() const;

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs body(begin, end) over every chunk of [0, total); blocks until all
  /// chunks completed. The calling thread participates, so this is safe to
  /// call from inside a pool task (nested calls simply run on the threads
  /// already available). The first exception thrown by `body` is rethrown
  /// here; remaining chunks are skipped.
  void ParallelFor(std::int64_t total, std::int64_t grain,
                   const std::function<void(std::int64_t, std::int64_t)>& body);

 private:
  struct ForState;

  // Claims and runs chunks of `state` until none remain; `caller` selects
  // which chunk counter the work is attributed to.
  void RunChunks(const std::shared_ptr<ForState>& state, bool caller);

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;

  std::atomic<std::int64_t> jobs_executed_{0};
  std::atomic<std::int64_t> parallel_fors_{0};
  std::atomic<std::int64_t> chunks_caller_{0};
  std::atomic<std::int64_t> chunks_helper_{0};
  std::atomic<std::int64_t> idle_wait_us_{0};
};

}  // namespace dlner::runtime

#endif  // DLNER_RUNTIME_THREAD_POOL_H_
