#include "runtime/runtime.h"

#include <cstdlib>
#include <thread>

#include "obs/metrics.h"

namespace dlner::runtime {
namespace {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

// Resolves the initial thread count from DLNER_THREADS (0, unset, or
// unparsable values fall back to hardware concurrency).
int InitialThreads() {
  const char* env = std::getenv("DLNER_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return HardwareThreads();
}

}  // namespace

Runtime::Runtime() : threads_(InitialThreads()) {}

Runtime& Runtime::Get() {
  static Runtime* instance = new Runtime();  // leaked: lives until exit
  return *instance;
}

void Runtime::SetThreads(int n) {
  if (n <= 0) n = HardwareThreads();
  std::lock_guard<std::mutex> lock(mu_);
  if (n == threads_ && pool_ != nullptr) return;
  pool_.reset();  // joins the old workers before the new size takes effect
  threads_ = n;
}

int Runtime::threads() {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_;
}

ThreadPool& Runtime::pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  return *pool_;
}

void Runtime::PublishMetrics() {
  PoolStats stats;
  int workers = 0;
  int threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads = threads_;
    if (pool_ != nullptr) {
      stats = pool_->stats();
      workers = pool_->workers();
    }
  }
  obs::Metrics& m = obs::Metrics::Get();
  m.gauge("runtime.threads")->Set(threads);
  m.gauge("runtime.pool.workers")->Set(workers);
  m.gauge("runtime.pool.jobs")->Set(static_cast<double>(stats.jobs_executed));
  m.gauge("runtime.pool.parallel_fors")
      ->Set(static_cast<double>(stats.parallel_fors));
  m.gauge("runtime.pool.chunks_caller")
      ->Set(static_cast<double>(stats.chunks_caller));
  m.gauge("runtime.pool.chunks_helper")
      ->Set(static_cast<double>(stats.chunks_helper));
  m.gauge("runtime.pool.idle_wait_us")
      ->Set(static_cast<double>(stats.idle_wait_us));
  m.gauge("runtime.pool.effective_parallelism")
      ->Set(stats.chunks_caller > 0
                ? static_cast<double>(stats.chunks_total()) /
                      static_cast<double>(stats.chunks_caller)
                : 1.0);
}

void ParallelFor(std::int64_t total, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& body) {
  Runtime::Get().pool().ParallelFor(total, grain, body);
}

}  // namespace dlner::runtime
