#include "runtime/runtime.h"

#include <cstdlib>
#include <thread>

namespace dlner::runtime {
namespace {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

// Resolves the initial thread count from DLNER_THREADS (0, unset, or
// unparsable values fall back to hardware concurrency).
int InitialThreads() {
  const char* env = std::getenv("DLNER_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return HardwareThreads();
}

}  // namespace

Runtime::Runtime() : threads_(InitialThreads()) {}

Runtime& Runtime::Get() {
  static Runtime* instance = new Runtime();  // leaked: lives until exit
  return *instance;
}

void Runtime::SetThreads(int n) {
  if (n <= 0) n = HardwareThreads();
  std::lock_guard<std::mutex> lock(mu_);
  if (n == threads_ && pool_ != nullptr) return;
  pool_.reset();  // joins the old workers before the new size takes effect
  threads_ = n;
}

int Runtime::threads() {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_;
}

ThreadPool& Runtime::pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  return *pool_;
}

void ParallelFor(std::int64_t total, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& body) {
  Runtime::Get().pool().ParallelFor(total, grain, body);
}

}  // namespace dlner::runtime
