// Process-wide execution resources.
//
// The Runtime owns one lazily-created ThreadPool shared by every
// corpus-level parallel operation (evaluation, batch tagging, benchmarks).
// The logical thread count is resolved in precedence order:
//   1. Runtime::Get().SetThreads(n)   — programmatic (NerConfig::threads,
//                                       dlner_cli --threads)
//   2. DLNER_THREADS environment variable
//   3. std::thread::hardware_concurrency()
// A count of 0 in any of these means "use hardware concurrency". The count
// includes the calling thread, so a Runtime configured for N threads keeps
// N-1 pool workers.
#ifndef DLNER_RUNTIME_RUNTIME_H_
#define DLNER_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "runtime/thread_pool.h"

namespace dlner::runtime {

class Runtime {
 public:
  /// The process-wide instance.
  static Runtime& Get();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Sets the logical thread count (0 = hardware concurrency). Rebuilds the
  /// pool on change; must not be called while a ParallelFor is in flight.
  void SetThreads(int n);

  /// Configured logical thread count (always >= 1).
  int threads();

  /// The shared pool (created on first use).
  ThreadPool& pool();

  /// Publishes the runtime's observable state into the obs metrics
  /// registry as gauges (runtime.threads, runtime.pool.jobs,
  /// runtime.pool.chunks_*, runtime.pool.idle_wait_us,
  /// runtime.pool.effective_parallelism). Call before exporting metrics;
  /// gauges carry the latest snapshot, so repeated calls never
  /// double-count. A never-used pool publishes zeros.
  void PublishMetrics();

 private:
  Runtime();

  std::mutex mu_;
  int threads_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Convenience wrapper: Runtime::Get().pool().ParallelFor(...).
void ParallelFor(std::int64_t total, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace dlner::runtime

#endif  // DLNER_RUNTIME_RUNTIME_H_
