// Compiled inference plans: ahead-of-time schedules for batched prediction.
//
// NerModel's eager path rebuilds a define-by-run graph per sentence; fine
// for training, wasteful for corpus-scale inference where the architecture
// never changes. An InferencePlan flattens the module tree (representation
// -> encoder -> decoder) ONCE into a static list of steps that run over a
// *packed* micro-batch of sentences (tensor/batched.h): one blocked GEMM
// spans the whole batch, and every intermediate lives in a bump-pointer
// Arena, so the steady-state hot path performs zero per-sentence heap
// allocation.
//
// Modules with a batched emitter (mlp/cnn/idcnn/bilstm/bigru encoders,
// softmax/crf decoders, word/shape/gazetteer features) compile to packed
// kernels that are bit-identical to eager (see tensor/batched.h). Every
// other module compiles to an *eager bridge* step that calls the module's
// normal const forward per sentence under NoGradGuard — identical values by
// construction — so all taxonomy cells run through one entry point and the
// planned-vs-eager differential suite can cover the full grid.
//
// The plan borrows the model's modules and parameters; the owning NerModel
// must outlive it. Execute is const and uses a thread_local arena, so a
// shared plan is safe to run from multiple threads at once.
#ifndef DLNER_PLAN_PLAN_H_
#define DLNER_PLAN_PLAN_H_

#include <functional>
#include <string>
#include <vector>

#include "decoders/decoder.h"
#include "embeddings/features.h"
#include "encoders/encoder.h"
#include "encoders/recursive.h"
#include "tensor/arena.h"
#include "tensor/batched.h"
#include "tensor/quant.h"
#include "text/types.h"

namespace dlner::plan {

/// Borrowed views of the modules a plan is compiled from. `recursive` is
/// non-null only when `encoder` is a RecursiveEncoder (it needs token
/// strings to build its heuristic bracketing).
struct PlanModules {
  const embeddings::ComposedRepresentation* representation = nullptr;
  const encoders::ContextEncoder* encoder = nullptr;
  const encoders::RecursiveEncoder* recursive = nullptr;
  const decoders::TagDecoder* decoder = nullptr;
};

/// Mutable state threaded through the steps of one micro-batch execution.
struct ExecContext {
  Arena* arena = nullptr;
  const batched::BatchLayout* layout = nullptr;
  /// Token sequences, one per batch slot (all non-empty).
  const std::vector<const std::vector<std::string>*>* sentences = nullptr;
  /// Current packed activation buffer [layout->rows(), cur_dim].
  const Float* cur = nullptr;
  int cur_dim = 0;
  /// Decoded spans, one slot per sentence (filled by the decode step).
  std::vector<std::vector<text::Span>>* out = nullptr;
  /// Non-null only during InferencePlan::Calibrate: f32 quantizable steps
  /// record max|input| into max_abs[their op index] (merged via max, so
  /// calibration accumulates across batches).
  quant::Calibration* calib = nullptr;
};

class InferencePlan {
 public:
  /// Compiles the schedule. Cheap (no weight copies: steps reference the
  /// modules' parameter tensors in place). With a calibration, every
  /// quantizable op (the packed Affine/ConvSegments sites of the
  /// mlp/cnn/idcnn encoders and softmax/crf decoders) that has a
  /// calibrated activation bound compiles to the int8 kernels instead
  /// (tensor/quant.h); this copy does quantize the weights once.
  explicit InferencePlan(const PlanModules& modules,
                         const quant::Calibration* calib = nullptr);

  InferencePlan(const InferencePlan&) = delete;
  InferencePlan& operator=(const InferencePlan&) = delete;

  /// Runs the compiled schedule over one packed micro-batch. Every entry of
  /// `sentences` must be non-empty; `out` must have sentences.size() slots.
  /// Thread-safe: scratch comes from a per-thread arena.
  void Execute(const std::vector<const std::vector<std::string>*>& sentences,
               std::vector<std::vector<text::Span>>* out) const;

  /// Runs the f32 schedule over one micro-batch while recording, per
  /// quantizable op, the max |activation| flowing into it. Merges into
  /// `calib` (call over many batches to cover a dev corpus). Must not be
  /// called on a quantized plan — calibration reads f32 activations.
  void Calibrate(
      const std::vector<const std::vector<std::string>*>& sentences,
      quant::Calibration* calib) const;

  /// True when representation, encoder, and decoder all compiled to packed
  /// batch kernels (no per-sentence eager bridge on the hot path).
  bool fully_batched() const { return fully_batched_; }

  /// True when at least one op compiled to the int8 kernels.
  bool quantized() const { return quantized_; }

  /// Number of quantizable op sites in this architecture (the length a
  /// full Calibration should have).
  int quantizable_ops() const { return quantizable_ops_; }

  /// One-line schedule summary, e.g.
  /// "plan[embed=batched encoder=cnn:batched decoder=crf:batched]".
  const std::string& Describe() const { return description_; }

 private:
  struct Step {
    // Static literals, emitted as nested spans around the step so planned
    // runs keep the documented span vocabulary ("embed", "encode/<kind>",
    // ...) while everything stays nested under "plan/batch". `detail` is
    // null for eager-bridge steps — the bridged module emits its own
    // detail span per sentence.
    const char* name;
    const char* detail;
    std::function<void(ExecContext&)> run;
  };

  void Compile(const PlanModules& modules, const quant::Calibration* calib);
  void RunSteps(ExecContext& ctx) const;

  std::vector<Step> steps_;
  bool fully_batched_ = true;
  bool quantized_ = false;
  int quantizable_ops_ = 0;
  std::string description_;
};

}  // namespace dlner::plan

#endif  // DLNER_PLAN_PLAN_H_
