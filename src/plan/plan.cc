#include "plan/plan.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "decoders/crf.h"
#include "decoders/softmax.h"
#include "encoders/cnn.h"
#include "encoders/rnn_encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/rnn.h"
#include "tensor/simd/simd.h"
#include "tensor/variable.h"

namespace dlner::plan {
namespace {

constexpr std::size_t kF = sizeof(Float);

// ---------------------------------------------------------------------------
// Representation step: one column-slice fill per feature.
// ---------------------------------------------------------------------------

// Writes one feature's [rows, dim] block into the packed representation
// buffer at a fixed column offset (`dst` already points at the offset;
// `stride` is the full representation width).
using FeatureFill = std::function<void(ExecContext&, Float*, int)>;

FeatureFill WordFill(const embeddings::WordEmbeddingFeature* f) {
  return [f](ExecContext& ctx, Float* dst, int stride) {
    const Tensor& table = f->embedding().table()->value;
    const int d = f->dim();
    for (int b = 0; b < ctx.layout->batch(); ++b) {
      const std::vector<int> ids = f->vocab().Encode(*(*ctx.sentences)[b]);
      const int off = ctx.layout->offset(b);
      for (int t = 0; t < ctx.layout->len(b); ++t) {
        std::memcpy(dst + static_cast<std::size_t>(off + t) * stride,
                    table.data() + static_cast<std::size_t>(ids[t]) * d,
                    d * kF);
      }
    }
  };
}

FeatureFill ShapeFill() {
  return [](ExecContext& ctx, Float* dst, int stride) {
    for (int b = 0; b < ctx.layout->batch(); ++b) {
      const auto& tokens = *(*ctx.sentences)[b];
      const int off = ctx.layout->offset(b);
      for (int t = 0; t < ctx.layout->len(b); ++t) {
        const std::vector<Float> shape =
            embeddings::WordShapeFeature::ShapeOf(tokens[t]);
        std::memcpy(dst + static_cast<std::size_t>(off + t) * stride,
                    shape.data(), shape.size() * kF);
      }
    }
  };
}

FeatureFill GazetteerFill(const embeddings::GazetteerFeature* f) {
  return [f](ExecContext& ctx, Float* dst, int stride) {
    for (int b = 0; b < ctx.layout->batch(); ++b) {
      const auto rows = f->gazetteer().MatchFeatures(*(*ctx.sentences)[b]);
      const int off = ctx.layout->offset(b);
      for (int t = 0; t < ctx.layout->len(b); ++t) {
        std::memcpy(dst + static_cast<std::size_t>(off + t) * stride,
                    rows[t].data(), rows[t].size() * kF);
      }
    }
  };
}

// Fallback for features without a packed emitter (char CNN/RNN, LM
// embeddings, plugins): run the module's normal const forward per sentence
// and copy the rows out. Identical values by construction.
FeatureFill BridgeFill(const embeddings::TokenFeature* f) {
  return [f](ExecContext& ctx, Float* dst, int stride) {
    const int d = f->dim();
    for (int b = 0; b < ctx.layout->batch(); ++b) {
      const Var v = f->Forward(*(*ctx.sentences)[b], /*training=*/false);
      const Tensor& m = v->value;
      const int off = ctx.layout->offset(b);
      for (int t = 0; t < ctx.layout->len(b); ++t) {
        std::memcpy(dst + static_cast<std::size_t>(off + t) * stride,
                    m.data() + static_cast<std::size_t>(t) * d, d * kF);
      }
    }
  };
}

// ---------------------------------------------------------------------------
// Encoder helpers.
// ---------------------------------------------------------------------------

struct ConvRef {
  const Tensor* w = nullptr;  // [width*in, out]
  const Tensor* b = nullptr;  // [out]
  int width = 0;
  int dilation = 0;
};

ConvRef MakeConvRef(const Conv1d& conv) {
  return {&conv.weight()->value, &conv.bias()->value, conv.width(),
          conv.dilation()};
}

// A conv site with its quantization state: `qidx` is the op's slot in the
// calibration vector (assigned in compile order, which is deterministic per
// architecture), `qm` is set iff this plan compiled the site to int8.
struct ConvOp {
  ConvRef ref;
  int qidx = -1;
  std::shared_ptr<quant::QuantizedMatrix> qm;
};

// True when `calib` provides an activation bound for quantizable op `idx`.
bool HasCalib(const quant::Calibration* calib, int idx) {
  return calib != nullptr && idx >= 0 &&
         idx < static_cast<int>(calib->max_abs.size());
}

// Calibration recording inside a quantizable op's f32 step: merge
// max|input| into the op's slot. No-op outside InferencePlan::Calibrate.
void RecordCalib(ExecContext& ctx, int idx, const Float* x, int count) {
  if (ctx.calib == nullptr) return;
  auto& v = ctx.calib->max_abs;
  if (static_cast<int>(v.size()) <= idx) v.resize(idx + 1, 0.0);
  v[idx] = std::max(v[idx], simd::Active::MaxAbs(x, count));
}

struct RnnLayerRef {
  bool is_lstm = false;
  int hidden = 0;
  batched::LstmDir lstm_fwd, lstm_bwd;
  batched::GruDir gru_fwd, gru_bwd;
};

bool MakeRnnLayerRef(const BiRnn& layer, RnnLayerRef* out) {
  if (const auto* fl = dynamic_cast<const LstmCell*>(&layer.forward_cell())) {
    const auto* bl = dynamic_cast<const LstmCell*>(&layer.backward_cell());
    if (bl == nullptr) return false;
    out->is_lstm = true;
    out->hidden = fl->hidden_dim();
    out->lstm_fwd = {&fl->gates().weight()->value, &fl->gates().bias()->value};
    out->lstm_bwd = {&bl->gates().weight()->value, &bl->gates().bias()->value};
    return true;
  }
  if (const auto* fg = dynamic_cast<const GruCell*>(&layer.forward_cell())) {
    const auto* bg = dynamic_cast<const GruCell*>(&layer.backward_cell());
    if (bg == nullptr) return false;
    out->is_lstm = false;
    out->hidden = fg->hidden_dim();
    out->gru_fwd = {&fg->rz().weight()->value, &fg->rz().bias()->value,
                    &fg->candidate().weight()->value,
                    &fg->candidate().bias()->value};
    out->gru_bwd = {&bg->rz().weight()->value, &bg->rz().bias()->value,
                    &bg->candidate().weight()->value,
                    &bg->candidate().bias()->value};
    return true;
  }
  return false;
}

}  // namespace

InferencePlan::InferencePlan(const PlanModules& modules,
                             const quant::Calibration* calib) {
  Compile(modules, calib);
}

void InferencePlan::Compile(const PlanModules& modules,
                            const quant::Calibration* calib) {
  DLNER_CHECK(modules.representation != nullptr);
  DLNER_CHECK(modules.encoder != nullptr);
  DLNER_CHECK(modules.decoder != nullptr);

  // --- Representation: per-feature column fills into one packed buffer ---
  struct Slice {
    int col;
    FeatureFill fill;
  };
  auto slices = std::make_shared<std::vector<Slice>>();
  bool features_batched = true;
  int col = 0;
  for (const auto& feature : modules.representation->features()) {
    FeatureFill fill;
    if (const auto* w = dynamic_cast<const embeddings::WordEmbeddingFeature*>(
            feature.get())) {
      fill = WordFill(w);
    } else if (dynamic_cast<const embeddings::WordShapeFeature*>(
                   feature.get()) != nullptr) {
      fill = ShapeFill();
    } else if (const auto* g = dynamic_cast<const embeddings::GazetteerFeature*>(
                   feature.get())) {
      fill = GazetteerFill(g);
    } else {
      fill = BridgeFill(feature.get());
      features_batched = false;
    }
    slices->push_back({col, std::move(fill)});
    col += feature->dim();
  }
  const int rep_dim = modules.representation->dim();
  DLNER_CHECK_EQ(col, rep_dim);
  steps_.push_back({"embed", nullptr, [slices, rep_dim](ExecContext& ctx) {
                      Float* rep = ctx.arena->Alloc(
                          static_cast<std::size_t>(ctx.layout->rows()) *
                          rep_dim);
                      for (const Slice& s : *slices) {
                        s.fill(ctx, rep + s.col, rep_dim);
                      }
                      ctx.cur = rep;
                      ctx.cur_dim = rep_dim;
                    }});

  // --- Encoder ---
  std::string encoder_desc;
  bool encoder_batched = true;
  const int enc_dim = modules.encoder->out_dim();
  if (const auto* mlp =
          dynamic_cast<const encoders::MlpEncoder*>(modules.encoder)) {
    encoder_desc = "mlp";
    const Tensor* w = &mlp->hidden().weight()->value;
    const Tensor* b = &mlp->hidden().bias()->value;
    const int qidx = quantizable_ops_++;
    if (HasCalib(calib, qidx)) {
      quantized_ = true;
      auto qm = std::make_shared<quant::QuantizedMatrix>(
          quant::QuantizeMatrix(*w, calib->max_abs[qidx]));
      steps_.push_back(
          {"encode", "encode/mlp", [qm, b, enc_dim](ExecContext& ctx) {
             const int rows = ctx.layout->rows();
             Float* out =
                 ctx.arena->Alloc(static_cast<std::size_t>(rows) * enc_dim);
             quant::QAffine(ctx.cur, rows, *qm, *b, out, batched::Act::kTanh);
             ctx.cur = out;
             ctx.cur_dim = enc_dim;
           }});
    } else {
      steps_.push_back(
          {"encode", "encode/mlp", [w, b, enc_dim, qidx](ExecContext& ctx) {
             const int rows = ctx.layout->rows();
             RecordCalib(ctx, qidx, ctx.cur, rows * ctx.cur_dim);
             Float* out =
                 ctx.arena->Alloc(static_cast<std::size_t>(rows) * enc_dim);
             batched::Affine(ctx.cur, rows, *w, *b, out, batched::Act::kTanh);
             ctx.cur = out;
             ctx.cur_dim = enc_dim;
           }});
    }
  } else if (const auto* cnn =
                 dynamic_cast<const encoders::CnnEncoder*>(modules.encoder)) {
    encoder_desc = "cnn";
    auto convs = std::make_shared<std::vector<ConvOp>>();
    for (const auto& layer : cnn->layers()) {
      ConvOp op;
      op.ref = MakeConvRef(*layer);
      op.qidx = quantizable_ops_++;
      if (HasCalib(calib, op.qidx)) {
        quantized_ = true;
        op.qm = std::make_shared<quant::QuantizedMatrix>(
            quant::QuantizeMatrix(*op.ref.w, calib->max_abs[op.qidx]));
      }
      convs->push_back(std::move(op));
    }
    const int hidden = cnn->hidden_dim();
    const bool global = cnn->global_feature();
    steps_.push_back(
        {"encode", "encode/cnn", [convs, hidden, global](ExecContext& ctx) {
           const int rows = ctx.layout->rows();
           const Float* cur = ctx.cur;
           int d = ctx.cur_dim;
           for (const ConvOp& op : *convs) {
             Float* h =
                 ctx.arena->Alloc(static_cast<std::size_t>(rows) * hidden);
             if (op.qm != nullptr) {
               quant::QConvSegments(cur, d, *ctx.layout, op.ref.width,
                                    op.ref.dilation, *op.qm, *op.ref.b, h,
                                    batched::Act::kRelu);
             } else {
               RecordCalib(ctx, op.qidx, cur, rows * d);
               batched::ConvSegments(cur, d, *ctx.layout, op.ref.width,
                                     op.ref.dilation, *op.ref.w, *op.ref.b, h,
                                     batched::Act::kRelu);
             }
             cur = h;
             d = hidden;
           }
           if (global) {
             Float* g =
                 ctx.arena->Alloc(static_cast<std::size_t>(rows) * 2 * hidden);
             batched::GlobalMaxConcat(cur, hidden, *ctx.layout, g);
             cur = g;
             d = 2 * hidden;
           }
           ctx.cur = cur;
           ctx.cur_dim = d;
         }});
  } else if (const auto* idcnn = dynamic_cast<const encoders::IdCnnEncoder*>(
                 modules.encoder)) {
    encoder_desc = "idcnn";
    const Tensor* pw = &idcnn->project().weight()->value;
    const Tensor* pb = &idcnn->project().bias()->value;
    // The projection and each block conv are quantizable sites. A block
    // conv runs `iterations` times with the same weights; it gets ONE
    // calibration slot whose bound is the max over all iterations, and the
    // quantized plan reuses one int8 matrix across iterations.
    const int pqidx = quantizable_ops_++;
    std::shared_ptr<quant::QuantizedMatrix> pqm;
    if (HasCalib(calib, pqidx)) {
      quantized_ = true;
      pqm = std::make_shared<quant::QuantizedMatrix>(
          quant::QuantizeMatrix(*pw, calib->max_abs[pqidx]));
    }
    auto convs = std::make_shared<std::vector<ConvOp>>();
    auto norms = std::make_shared<std::vector<std::pair<const Tensor*,
                                                        const Tensor*>>>();
    for (const auto& conv : idcnn->block()) {
      ConvOp op;
      op.ref = MakeConvRef(*conv);
      op.qidx = quantizable_ops_++;
      if (HasCalib(calib, op.qidx)) {
        quantized_ = true;
        op.qm = std::make_shared<quant::QuantizedMatrix>(
            quant::QuantizeMatrix(*op.ref.w, calib->max_abs[op.qidx]));
      }
      convs->push_back(std::move(op));
    }
    for (const auto& norm : idcnn->norms()) {
      norms->push_back({&norm->gain()->value, &norm->bias()->value});
    }
    DLNER_CHECK_EQ(convs->size(), norms->size());
    const int hidden = enc_dim;
    const int iterations = idcnn->iterations();
    steps_.push_back(
        {"encode", "encode/idcnn", [pw, pb, pqm, pqidx, convs, norms, hidden,
                         iterations](ExecContext& ctx) {
           const int rows = ctx.layout->rows();
           Float* h = ctx.arena->Alloc(static_cast<std::size_t>(rows) * hidden);
           if (pqm != nullptr) {
             quant::QAffine(ctx.cur, rows, *pqm, *pb, h, batched::Act::kRelu);
           } else {
             RecordCalib(ctx, pqidx, ctx.cur, rows * ctx.cur_dim);
             batched::Affine(ctx.cur, rows, *pw, *pb, h, batched::Act::kRelu);
           }
           for (int it = 0; it < iterations; ++it) {
             for (std::size_t i = 0; i < convs->size(); ++i) {
               const ConvOp& op = (*convs)[i];
               Float* c =
                   ctx.arena->Alloc(static_cast<std::size_t>(rows) * hidden);
               if (op.qm != nullptr) {
                 quant::QConvSegments(h, hidden, *ctx.layout, op.ref.width,
                                      op.ref.dilation, *op.qm, *op.ref.b, c,
                                      batched::Act::kRelu);
               } else {
                 RecordCalib(ctx, op.qidx, h, rows * hidden);
                 batched::ConvSegments(h, hidden, *ctx.layout, op.ref.width,
                                       op.ref.dilation, *op.ref.w, *op.ref.b,
                                       c, batched::Act::kRelu);
               }
               Float* normed =
                   ctx.arena->Alloc(static_cast<std::size_t>(rows) * hidden);
               batched::LayerNormRows(c, rows, hidden, *(*norms)[i].first,
                                      *(*norms)[i].second, normed);
               h = normed;
             }
           }
           ctx.cur = h;
           ctx.cur_dim = hidden;
         }});
  } else if (const auto* rnn =
                 dynamic_cast<const encoders::RnnEncoder*>(modules.encoder)) {
    auto layers = std::make_shared<std::vector<RnnLayerRef>>();
    bool ok = true;
    for (const auto& layer : rnn->layers()) {
      RnnLayerRef ref;
      if (!MakeRnnLayerRef(*layer, &ref)) {
        ok = false;
        break;
      }
      layers->push_back(ref);
    }
    if (ok && !layers->empty()) {
      encoder_desc = layers->front().is_lstm ? "bilstm" : "bigru";
      steps_.push_back({"encode", "encode/rnn", [layers](ExecContext& ctx) {
                          const int rows = ctx.layout->rows();
                          const Float* cur = ctx.cur;
                          int d = ctx.cur_dim;
                          for (const RnnLayerRef& layer : *layers) {
                            Float* out = ctx.arena->Alloc(
                                static_cast<std::size_t>(rows) * 2 *
                                layer.hidden);
                            if (layer.is_lstm) {
                              batched::BiLstm(cur, d, layer.hidden,
                                              *ctx.layout, layer.lstm_fwd,
                                              layer.lstm_bwd, out, ctx.arena);
                            } else {
                              batched::BiGru(cur, d, layer.hidden, *ctx.layout,
                                             layer.gru_fwd, layer.gru_bwd, out,
                                             ctx.arena);
                            }
                            cur = out;
                            d = 2 * layer.hidden;
                          }
                          ctx.cur = cur;
                          ctx.cur_dim = d;
                        }});
    } else {
      encoder_desc = "rnn";
      encoder_batched = false;
    }
  } else {
    encoder_batched = false;
    encoder_desc = modules.recursive != nullptr ? "brnn" : "eager";
  }
  if (!encoder_batched) {
    // Eager bridge: wrap each segment's packed rows in a constant Tensor and
    // run the encoder's normal const forward. Covers transformer, the
    // recursive encoder (which needs token strings for its bracketing), and
    // any future encoder without a packed emitter.
    const encoders::ContextEncoder* enc = modules.encoder;
    const encoders::RecursiveEncoder* rec = modules.recursive;
    steps_.push_back({"encode", nullptr, [enc, rec, enc_dim](ExecContext& ctx) {
                        const int rows = ctx.layout->rows();
                        Float* out = ctx.arena->Alloc(
                            static_cast<std::size_t>(rows) * enc_dim);
                        for (int b = 0; b < ctx.layout->batch(); ++b) {
                          const int off = ctx.layout->offset(b);
                          const int len = ctx.layout->len(b);
                          if (len == 0) continue;
                          Tensor in({len, ctx.cur_dim});
                          std::memcpy(
                              in.data(),
                              ctx.cur + static_cast<std::size_t>(off) *
                                            ctx.cur_dim,
                              static_cast<std::size_t>(len) * ctx.cur_dim *
                                  kF);
                          const Var input = Constant(std::move(in));
                          const Var encoded =
                              rec != nullptr
                                  ? rec->EncodeTree(
                                        input, encoders::BuildHeuristicTree(
                                                   *(*ctx.sentences)[b]))
                                  : enc->Encode(input, /*training=*/false);
                          std::memcpy(
                              out + static_cast<std::size_t>(off) * enc_dim,
                              encoded->value.data(),
                              static_cast<std::size_t>(len) * enc_dim * kF);
                        }
                        ctx.cur = out;
                        ctx.cur_dim = enc_dim;
                      }});
  }

  // --- Decoder ---
  std::string decoder_desc;
  bool decoder_batched = true;
  if (const auto* softmax =
          dynamic_cast<const decoders::SoftmaxDecoder*>(modules.decoder)) {
    decoder_desc = "softmax";
    const Tensor* w = &softmax->proj().weight()->value;
    const Tensor* b = &softmax->proj().bias()->value;
    const int k = softmax->proj().out_dim();
    const int qidx = quantizable_ops_++;
    std::shared_ptr<quant::QuantizedMatrix> qm;
    if (HasCalib(calib, qidx)) {
      quantized_ = true;
      qm = std::make_shared<quant::QuantizedMatrix>(
          quant::QuantizeMatrix(*w, calib->max_abs[qidx]));
    }
    steps_.push_back({"decode", "decode/softmax", [softmax, w, b, qm, qidx,
                                                   k](ExecContext& ctx) {
                        const int rows = ctx.layout->rows();
                        Float* logits =
                            ctx.arena->Alloc(static_cast<std::size_t>(rows) * k);
                        if (qm != nullptr) {
                          quant::QAffine(ctx.cur, rows, *qm, *b, logits,
                                         batched::Act::kNone);
                        } else {
                          RecordCalib(ctx, qidx, ctx.cur,
                                      rows * ctx.cur_dim);
                          batched::Affine(ctx.cur, rows, *w, *b, logits);
                        }
                        std::vector<int> best;
                        for (int s = 0; s < ctx.layout->batch(); ++s) {
                          const int off = ctx.layout->offset(s);
                          const int len = ctx.layout->len(s);
                          best.assign(len, 0);
                          for (int t = 0; t < len; ++t) {
                            const Float* row =
                                logits + static_cast<std::size_t>(off + t) * k;
                            int arg = 0;
                            for (int j = 1; j < k; ++j) {
                              if (row[j] > row[arg]) arg = j;
                            }
                            best[t] = arg;
                          }
                          (*ctx.out)[s] = softmax->tags().TagIdsToSpans(best);
                        }
                      }});
  } else if (const auto* crf =
                 dynamic_cast<const decoders::CrfDecoder*>(modules.decoder)) {
    decoder_desc = "crf";
    const Tensor* w = &crf->proj().weight()->value;
    const Tensor* b = &crf->proj().bias()->value;
    const int k = crf->proj().out_dim();
    const int qidx = quantizable_ops_++;
    std::shared_ptr<quant::QuantizedMatrix> qm;
    if (HasCalib(calib, qidx)) {
      quantized_ = true;
      qm = std::make_shared<quant::QuantizedMatrix>(
          quant::QuantizeMatrix(*w, calib->max_abs[qidx]));
    }
    steps_.push_back({"decode", "decode/crf", [crf, w, b, qm, qidx,
                                               k](ExecContext& ctx) {
                        const int rows = ctx.layout->rows();
                        Float* em =
                            ctx.arena->Alloc(static_cast<std::size_t>(rows) * k);
                        if (qm != nullptr) {
                          quant::QAffine(ctx.cur, rows, *qm, *b, em,
                                         batched::Act::kNone);
                        } else {
                          RecordCalib(ctx, qidx, ctx.cur,
                                      rows * ctx.cur_dim);
                          batched::Affine(ctx.cur, rows, *w, *b, em);
                        }
                        for (int s = 0; s < ctx.layout->batch(); ++s) {
                          const int off = ctx.layout->offset(s);
                          const int len = ctx.layout->len(s);
                          if (len == 0) continue;
                          Tensor emissions({len, k});
                          std::memcpy(emissions.data(),
                                      em + static_cast<std::size_t>(off) * k,
                                      static_cast<std::size_t>(len) * k * kF);
                          (*ctx.out)[s] = crf->tags().TagIdsToSpans(
                              crf->ViterbiPath(emissions));
                        }
                      }});
  } else {
    // Eager bridge for segment-level and autoregressive decoders (semicrf,
    // rnn, pointer, fofe): per segment, hand the packed encodings to the
    // decoder's normal Predict.
    decoder_desc = "eager";
    decoder_batched = false;
    const decoders::TagDecoder* dec = modules.decoder;
    steps_.push_back({"decode", nullptr, [dec](ExecContext& ctx) {
                        for (int s = 0; s < ctx.layout->batch(); ++s) {
                          const int off = ctx.layout->offset(s);
                          const int len = ctx.layout->len(s);
                          if (len == 0) continue;
                          Tensor enc({len, ctx.cur_dim});
                          std::memcpy(
                              enc.data(),
                              ctx.cur + static_cast<std::size_t>(off) *
                                            ctx.cur_dim,
                              static_cast<std::size_t>(len) * ctx.cur_dim *
                                  kF);
                          (*ctx.out)[s] =
                              dec->Predict(Constant(std::move(enc)));
                        }
                      }});
  }

  fully_batched_ = features_batched && encoder_batched && decoder_batched;
  description_ = "plan[embed=" +
                 std::string(features_batched ? "batched" : "mixed") +
                 " encoder=" + encoder_desc +
                 (encoder_batched ? ":batched" : ":eager") +
                 " decoder=" + decoder_desc +
                 (decoder_batched ? ":batched" : ":eager") +
                 (quantized_ ? " quant=int8" : "") + "]";
}

void InferencePlan::RunSteps(ExecContext& ctx) const {
  for (const Step& step : steps_) {
    obs::ScopedSpan step_span(step.name);
    if (step.detail != nullptr) {
      obs::ScopedSpan detail_span(step.detail);
      step.run(ctx);
    } else {
      step.run(ctx);
    }
  }
}

void InferencePlan::Execute(
    const std::vector<const std::vector<std::string>*>& sentences,
    std::vector<std::vector<text::Span>>* out) const {
  DLNER_CHECK_EQ(sentences.size(), out->size());
  if (sentences.empty()) return;
  NoGradGuard no_grad;
  obs::ScopedSpan span("plan/batch");
  // One arena per worker thread: capacity persists across batches, so after
  // warm-up the packed path allocates nothing from the heap.
  thread_local Arena arena;
  arena.Reset();
  batched::BatchLayout layout;
  for (const auto* tokens : sentences) {
    layout.Add(static_cast<int>(tokens->size()));
  }
  ExecContext ctx;
  ctx.arena = &arena;
  ctx.layout = &layout;
  ctx.sentences = &sentences;
  ctx.out = out;
  if (quantized_) {
    obs::ScopedSpan qspan("plan/quantized_batch");
    RunSteps(ctx);
    if (obs::MetricsEnabled()) {
      obs::Metrics::Get().counter("plan.quantized_batches")->Add(1);
    }
  } else {
    RunSteps(ctx);
  }
  if (obs::MetricsEnabled()) {
    obs::Metrics& m = obs::Metrics::Get();
    m.gauge("tensor.arena.bytes_reserved")
        ->SetMax(static_cast<double>(arena.bytes_reserved()));
    m.gauge("tensor.arena.high_water")
        ->SetMax(static_cast<double>(arena.high_water()));
    m.counter("plan.batches")->Add(1);
    m.counter("plan.sentences")->Add(static_cast<std::int64_t>(sentences.size()));
  }
}

void InferencePlan::Calibrate(
    const std::vector<const std::vector<std::string>*>& sentences,
    quant::Calibration* calib) const {
  DLNER_CHECK(!quantized_);
  DLNER_CHECK(calib != nullptr);
  if (static_cast<int>(calib->max_abs.size()) < quantizable_ops_) {
    calib->max_abs.resize(quantizable_ops_, 0.0);
  }
  if (sentences.empty()) return;
  NoGradGuard no_grad;
  obs::ScopedSpan span("plan/calibrate");
  thread_local Arena arena;
  arena.Reset();
  batched::BatchLayout layout;
  for (const auto* tokens : sentences) {
    layout.Add(static_cast<int>(tokens->size()));
  }
  std::vector<std::vector<text::Span>> out(sentences.size());
  ExecContext ctx;
  ctx.arena = &arena;
  ctx.layout = &layout;
  ctx.sentences = &sentences;
  ctx.out = &out;
  ctx.calib = calib;
  RunSteps(ctx);
}

}  // namespace dlner::plan
