// E10 — Section 4.1: multi-task learning with an auxiliary LM objective.
//
// Rei (2017), quoted by the survey: "by including an unsupervised language
// modeling objective in the training process, the sequence labeling model
// achieves consistent performance improvement". The regularization effect
// is strongest when the labeled set is small, so we sweep training size.
#include "bench/bench_common.h"

#include "applied/multitask.h"

int main() {
  using namespace dlner;
  using namespace dlner::bench;

  PrintHeader("E10: auxiliary LM objective (survey Section 4.1, Fig. 9)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);
  BenchData bd = MakeBenchData(genre, 300, 120, 91, /*test_oov=*/0.3);

  // Both variants train with dev-based early stopping to their own best
  // epoch (the auxiliary objective changes convergence speed, so a fixed
  // epoch budget would conflate regularization with undertraining).
  core::TrainConfig tc;
  tc.epochs = 16;
  tc.lr = 0.015;
  tc.patience = 4;

  std::printf("%8s %14s %18s %8s\n", "#train", "NER only F1",
              "NER + LM obj F1", "delta");
  for (int size : {25, 50, 100, 200, 300}) {
    text::Corpus small;
    for (int i = 0; i < size && i < bd.train.size(); ++i) {
      small.sentences.push_back(bd.train.sentences[i]);
    }

    core::NerConfig config;
    config.seed = 100 + size;
    core::NerModel plain(config, small, types);
    {
      core::Trainer trainer(&plain, tc);
      trainer.Train(small, &bd.dev);
    }
    const double f1_plain = plain.Evaluate(bd.test).micro.f1();

    applied::MultiTaskLmModel mtl(config, small, types, /*lm_weight=*/0.1);
    {
      core::Trainer trainer(&mtl, tc);
      trainer.Train(small, &bd.dev);
    }
    const double f1_mtl = mtl.Evaluate(bd.test).micro.f1();

    std::printf("%8d %14.3f %18.3f %+8.3f\n", size, f1_plain, f1_mtl,
                f1_mtl - f1_plain);
  }
  std::printf(
      "\nShape check vs the paper: the LM-augmented model matches or beats\n"
      "the plain model, with the largest gains at the smallest training\n"
      "sizes (survey Section 4.1 / Rei 2017).\n");
  return 0;
}
