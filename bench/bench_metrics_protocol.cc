// E7 — Section 2.3: the evaluation protocol itself.
//
// Applies controlled corruptions to gold annotations and reports how the
// exact-match and relaxed (MUC-style) scores react, plus the micro/macro
// divergence under class imbalance — the protocol properties the survey
// explains in Sections 2.3.1-2.3.2.
#include "bench/bench_common.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

// Returns predictions derived from gold by applying one corruption kind at
// the given rate.
std::vector<std::vector<text::Span>> Corrupt(const text::Corpus& corpus,
                                             const std::string& kind,
                                             double rate, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<text::Span>> pred;
  for (const text::Sentence& s : corpus.sentences) {
    std::vector<text::Span> spans;
    for (text::Span sp : s.spans) {
      if (rng.Bernoulli(rate)) {
        if (kind == "boundary") {
          if (sp.end < s.size()) {
            ++sp.end;
          } else if (sp.start > 0) {
            --sp.start;
          }
        } else if (kind == "type") {
          sp.type = sp.type + "_X";  // guaranteed-wrong type
        } else if (kind == "drop") {
          continue;
        }
      }
      spans.push_back(sp);
    }
    pred.push_back(std::move(spans));
  }
  return pred;
}

std::vector<std::vector<text::Span>> GoldLists(const text::Corpus& corpus) {
  std::vector<std::vector<text::Span>> gold;
  for (const auto& s : corpus.sentences) gold.push_back(s.spans);
  return gold;
}

}  // namespace

int main() {
  PrintHeader("E7: exact vs relaxed match evaluation (survey Section 2.3)");

  data::GenOptions opts;
  opts.num_sentences = 400;
  opts.seed = 41;
  text::Corpus corpus = data::GenerateCorpus(data::Genre::kNews, opts);
  auto gold = GoldLists(corpus);

  std::printf("%-22s %10s %10s %10s %10s\n", "corruption (30%)", "exact F1",
              "MUC F1", "type-dim F1", "text-dim F1");
  for (const std::string kind : {"none", "boundary", "type", "drop"}) {
    auto pred = Corrupt(corpus, kind, kind == "none" ? 0.0 : 0.3, 43);
    eval::ExactResult exact = eval::EvaluateExact(gold, pred);
    eval::RelaxedResult relaxed = eval::EvaluateRelaxed(gold, pred);
    std::printf("%-22s %10.3f %10.3f %10.3f %10.3f\n", kind.c_str(),
                exact.micro.f1(), relaxed.muc_f1, relaxed.type.f1(),
                relaxed.text.f1());
  }

  // Micro vs macro under imbalance: corrupt only the rarest type.
  data::CorpusStats stats = data::ComputeStats(corpus);
  std::string rarest;
  int best = 1 << 30;
  for (const auto& [type, count] : stats.per_type) {
    if (count < best) {
      best = count;
      rarest = type;
    }
  }
  std::vector<std::vector<text::Span>> pred;
  for (const auto& s : corpus.sentences) {
    std::vector<text::Span> spans;
    for (const text::Span& sp : s.spans) {
      if (sp.type != rarest) spans.push_back(sp);  // miss every rare entity
    }
    pred.push_back(std::move(spans));
  }
  eval::ExactResult skewed = eval::EvaluateExact(gold, pred);
  std::printf(
      "\nmissing every '%s' entity (%d of %d): micro-F1=%.3f macro-F1=%.3f\n",
      rarest.c_str(), best, stats.entities, skewed.micro.f1(),
      skewed.macro_f1);
  std::printf(
      "\nShape check vs the paper: boundary errors zero the exact score but\n"
      "keep relaxed type-dimension credit; type errors keep text-dimension\n"
      "credit; micro-F1 hides rare-class failure while macro-F1 drops\n"
      "(survey Sections 2.3.1-2.3.2).\n");
  return 0;
}
