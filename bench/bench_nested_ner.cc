// E14 — Sections 3.3.2 and 5.1: nested named entities.
//
// The survey cites nesting prevalence (17% of GENIA entities, 30% of ACE
// sentences) and Ju et al.'s layered flat-NER solution. We compare a single
// flat model (outermost annotations only — all a flat tagger can encode)
// against the layered stack, on a nested corpus, reporting overall F1 plus
// recall split into innermost vs. outer mentions.
#include <set>

#include "bench/bench_common.h"

#include "applied/nested.h"
#include "core/trainer.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

// Recall over a subset of gold spans (level 0 = innermost).
double LevelRecall(const text::Corpus& test,
                   const std::vector<text::Corpus>& levels, int level,
                   const std::function<std::vector<text::Span>(
                       const std::vector<std::string>&)>& predict) {
  int tp = 0, total = 0;
  for (size_t i = 0; i < test.sentences.size(); ++i) {
    const auto& gold_level = levels[level].sentences[i].spans;
    if (gold_level.empty()) continue;
    std::vector<text::Span> pred = predict(test.sentences[i].tokens);
    std::set<text::Span> pred_set(pred.begin(), pred.end());
    for (const text::Span& g : gold_level) {
      ++total;
      if (pred_set.count(g) > 0) ++tp;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(tp) / total;
}

}  // namespace

int main() {
  PrintHeader("E14: nested NER via layered flat models (survey Section 5.1)");

  text::Corpus corpus = data::MakeDataset("nested-like", 400, 141);
  data::DataSplit split = data::SplitCorpus(corpus, 0.75, 0.0, 142);
  const auto& types = data::EntityTypesFor(data::Genre::kNested);

  data::CorpusStats stats = data::ComputeStats(split.test);
  std::printf("test: %d sentences, %.0f%% with nested mentions\n",
              stats.sentences, 100.0 * stats.nested_fraction);

  core::NerConfig config;
  config.use_char_cnn = true;
  config.seed = 143;
  core::TrainConfig tc;
  tc.epochs = 8;
  tc.lr = 0.015;

  // Flat baseline: trained on outermost annotations only.
  auto train_levels = applied::SplitNestingLevels(split.train);
  text::Corpus outer_only;
  outer_only.sentences.resize(split.train.sentences.size());
  for (size_t i = 0; i < outer_only.sentences.size(); ++i) {
    outer_only.sentences[i].tokens = split.train.sentences[i].tokens;
    for (int l = static_cast<int>(train_levels.size()) - 1; l >= 0; --l) {
      if (!train_levels[l].sentences[i].spans.empty()) {
        outer_only.sentences[i].spans = train_levels[l].sentences[i].spans;
        break;
      }
    }
  }
  core::NerModel flat(config, split.train, types);
  {
    core::Trainer trainer(&flat, tc);
    trainer.Train(outer_only, nullptr);
  }

  applied::LayeredNerModel layered(config, types);
  layered.Train(split.train, tc);

  auto test_levels = applied::SplitNestingLevels(split.test);
  auto flat_predict = [&](const std::vector<std::string>& tokens) {
    return flat.Predict(tokens);
  };
  auto layered_predict = [&](const std::vector<std::string>& tokens) {
    return layered.Predict(tokens);
  };

  eval::ExactMatchEvaluator flat_ev, layered_ev;
  for (const auto& s : split.test.sentences) {
    flat_ev.Add(s.spans, flat.Predict(s.tokens));
    layered_ev.Add(s.spans, layered.Predict(s.tokens));
  }

  std::printf("\n%-26s %10s %14s %14s\n", "model", "micro-F1",
              "inner recall", "outer recall");
  std::printf("%-26s %10.3f %14.3f %14.3f\n", "flat (outermost only)",
              flat_ev.Result().micro.f1(),
              LevelRecall(split.test, test_levels, 0, flat_predict),
              LevelRecall(split.test, test_levels, 1, flat_predict));
  std::printf("%-26s %10.3f %14.3f %14.3f   (%d levels)\n",
              "layered flat NER (Ju et al.)",
              layered_ev.Result().micro.f1(),
              LevelRecall(split.test, test_levels, 0, layered_predict),
              LevelRecall(split.test, test_levels, 1, layered_predict),
              layered.num_levels());
  std::printf(
      "\nShape check vs the paper: the flat model's innermost-mention recall\n"
      "collapses (it never predicts overlapping spans), while the layered\n"
      "stack recovers both levels (survey Sections 3.3.2 and 5.1).\n");
  return 0;
}
