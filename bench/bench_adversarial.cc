// E11 — Section 4.5: adversarial training (DATNet-style FGSM perturbation).
//
// The survey: "the classifier is trained on the mixture of original and
// adversarial examples to improve generalization". We compare clean
// training with adversarial training, evaluating on a clean test split and
// on a character-noised split (typos + lowercasing), where robustness to
// input perturbation matters most.
#include "bench/bench_common.h"

#include "applied/adversarial.h"

int main() {
  using namespace dlner;
  using namespace dlner::bench;

  PrintHeader("E11: adversarial training (survey Section 4.5)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);

  data::GenOptions train_opts;
  train_opts.num_sentences = 200;
  train_opts.seed = 111;
  text::Corpus train = data::GenerateCorpus(genre, train_opts);

  data::GenOptions clean_opts = train_opts;
  clean_opts.num_sentences = 120;
  clean_opts.seed = 112;
  clean_opts.oov_entity_fraction = 0.3;
  text::Corpus clean_test = data::GenerateCorpus(genre, clean_opts);

  data::GenOptions noisy_opts = clean_opts;
  noisy_opts.seed = 113;
  noisy_opts.typo_prob = 0.06;
  noisy_opts.lowercase_prob = 0.3;
  text::Corpus noisy_test = data::GenerateCorpus(genre, noisy_opts);

  const int epochs = 8;
  core::TrainConfig tc;
  tc.lr = 0.015;
  tc.epochs = epochs;

  core::NerConfig config;
  config.use_char_cnn = true;
  config.word_unk_dropout = 0.2;
  config.seed = 114;

  // Clean training.
  core::NerModel clean_model(config, train, types);
  {
    core::Trainer trainer(&clean_model, tc);
    trainer.Train(train, nullptr);
  }

  // Adversarial training (same budget of epochs).
  core::NerConfig adv_config = config;
  adv_config.seed = 115;
  core::NerModel adv_model(adv_config, train, types);
  applied::AdversarialConfig adv;
  adv.epsilon = 0.6;
  adv.adv_weight = 1.0;
  applied::AdversarialTrainer adv_trainer(&adv_model, tc, adv);
  adv_trainer.Train(train, epochs);

  std::printf("%-24s %12s %14s\n", "training", "clean F1", "noised F1");
  std::printf("%-24s %12.3f %14.3f\n", "standard",
              clean_model.Evaluate(clean_test).micro.f1(),
              clean_model.Evaluate(noisy_test).micro.f1());
  std::printf("%-24s %12.3f %14.3f\n", "adversarial (FGSM)",
              adv_model.Evaluate(clean_test).micro.f1(),
              adv_model.Evaluate(noisy_test).micro.f1());
  std::printf(
      "\nShape check vs the paper: adversarial training keeps clean\n"
      "accuracy comparable while improving the perturbed-input score\n"
      "(survey Section 4.5 / DATNet).\n");
  return 0;
}
