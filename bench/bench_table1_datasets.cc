// E1 — Table 1 of the survey: the annotated-corpus inventory.
//
// Generates each synthetic corpus family with its genre defaults and prints
// the Table-1 columns (#tags, source genre) plus the corpus properties the
// survey's analysis leans on (entity density, OOV rate of a fresh test
// draw, nested fraction). Absolute sizes are configurable stand-ins; the
// tag-set sizes mirror the real corpora (4 CoNLL03, 18 OntoNotes, 6 W-NUT,
// 30 fine-grained, 3 BC5CDR).
#include "bench/bench_common.h"

int main() {
  using namespace dlner;
  using namespace dlner::bench;

  PrintHeader("E1: dataset inventory (survey Table 1 stand-ins)");
  std::printf("%-18s %-38s %5s %6s %7s %8s %7s %7s %7s\n", "name",
              "stands in for", "#tags", "#sent", "#tok", "#ent", "density",
              "nested", "oov");
  for (const data::DatasetSpec& spec : data::StandardDatasets()) {
    data::GenOptions opts = data::DefaultOptionsFor(spec.genre);
    opts.num_sentences = 600;
    opts.seed = 101;
    text::Corpus corpus = data::GenerateCorpus(spec.genre, opts);

    data::GenOptions test_opts = opts;
    test_opts.num_sentences = 200;
    test_opts.seed = 102;
    test_opts.oov_entity_fraction = 0.3;
    text::Corpus test = data::GenerateCorpus(spec.genre, test_opts);

    data::CorpusStats stats = data::ComputeStats(corpus);
    std::printf("%-18s %-38s %5d %6d %7d %8d %6.1f%% %6.1f%% %6.1f%%\n",
                spec.name.c_str(), spec.stands_in_for.c_str(),
                static_cast<int>(data::EntityTypesFor(spec.genre).size()),
                stats.sentences, stats.tokens, stats.entities,
                100.0 * stats.entity_density, 100.0 * stats.nested_fraction,
                100.0 * data::OovEntityTokenRate(corpus, test));
  }
  std::printf(
      "\nShape check vs the paper: tag inventories span 3..30 types;\n"
      "only the GENIA/ACE-like family has nested mentions; the W-NUT-like\n"
      "family is the noisy genre.\n");
  return 0;
}
