// E6 — Section 3.4.3 decoder-scaling claim (Shen et al.): "RNN tag decoders
// outperform CRF and are faster to train when the number of entity types is
// large" — the CRF forward/Viterbi recursions cost O(K^2) per token in the
// tag-set size K, the greedy RNN decoder O(K).
//
// We time one training step (loss + backward) and one decode over growing
// tag sets, with the encoder held fixed.
#include "bench/bench_common.h"
#include "decoders/crf.h"
#include "decoders/rnn_decoder.h"
#include "decoders/softmax.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

constexpr int kSeqLen = 24;
constexpr int kEncDim = 32;

// Builds a synthetic BIOES tag set with the requested entity-type count.
std::vector<std::string> SyntheticTypes(int count) {
  std::vector<std::string> types;
  for (int i = 0; i < count; ++i) types.push_back("T" + std::to_string(i));
  return types;
}

text::Sentence SyntheticGold(int num_types, Rng* rng) {
  text::Sentence s;
  for (int t = 0; t < kSeqLen; ++t) s.tokens.push_back("w");
  int pos = 0;
  while (pos + 2 < kSeqLen) {
    const int len = rng->UniformInt(1, 2);
    s.spans.push_back(
        {pos, pos + len, "T" + std::to_string(rng->UniformInt(0, num_types - 1))});
    pos += len + rng->UniformInt(1, 3);
  }
  return s;
}

struct Timing {
  double train_ms;
  double decode_ms;
};

template <typename MakeDecoder>
Timing Time(MakeDecoder make, const text::Sentence& gold) {
  Rng data_rng(5);
  Tensor enc_t({kSeqLen, kEncDim});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = data_rng.Uniform(-1, 1);
  Var enc = Constant(enc_t);

  auto decoder = make();
  // Warm-up.
  Backward(decoder->Loss(enc, gold));
  decoder->Predict(enc);

  const int reps = 30;
  Stopwatch train_sw;
  for (int r = 0; r < reps; ++r) Backward(decoder->Loss(enc, gold));
  const double train_ms = 1000.0 * train_sw.Seconds() / reps;
  Stopwatch decode_sw;
  for (int r = 0; r < reps; ++r) decoder->Predict(enc);
  const double decode_ms = 1000.0 * decode_sw.Seconds() / reps;
  return {train_ms, decode_ms};
}

}  // namespace

int main() {
  PrintHeader("E6: decoder cost vs tag-set size (survey Section 3.4)");
  std::printf("%8s %6s | %12s %12s %12s | %12s %12s %12s\n", "#types",
              "#tags", "sm train", "crf train", "rnn train", "sm dec",
              "crf dec", "rnn dec");
  std::printf("%15s | %38s | %38s\n", "", "ms per sentence (loss+backward)",
              "ms per sentence (decode)");

  for (int num_types : {1, 2, 4, 8, 16, 32, 64}) {
    auto types = SyntheticTypes(num_types);
    text::TagSet tags(types, text::TagScheme::kBioes);
    Rng gold_rng(7);
    text::Sentence gold = SyntheticGold(num_types, &gold_rng);

    Rng rng(11);
    Timing sm = Time(
        [&] {
          return std::make_unique<decoders::SoftmaxDecoder>(kEncDim, &tags,
                                                            &rng);
        },
        gold);
    Timing crf = Time(
        [&] {
          return std::make_unique<decoders::CrfDecoder>(kEncDim, &tags, &rng);
        },
        gold);
    Timing rnn = Time(
        [&] {
          return std::make_unique<decoders::RnnDecoder>(kEncDim, &tags, 8, 24,
                                                        &rng);
        },
        gold);
    std::printf("%8d %6d | %12.3f %12.3f %12.3f | %12.3f %12.3f %12.3f\n",
                num_types, tags.size(), sm.train_ms, crf.train_ms,
                rnn.train_ms, sm.decode_ms, crf.decode_ms, rnn.decode_ms);
  }
  std::printf(
      "\nShape check vs the paper: CRF time grows quadratically with the\n"
      "tag count and overtakes the RNN decoder for large tag sets, while\n"
      "softmax/RNN grow roughly linearly (survey Sections 3.4.3 and 3.5:\n"
      "\"CRF could be computationally expensive when the number of entity\n"
      "types is large\").\n");
  return 0;
}
