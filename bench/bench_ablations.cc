// Ablations over the design choices the survey's Section 3.5 discussion
// singles out: the tag scheme (BIO vs BIOES vs IO), input dropout, word-
// level UNK dropout, scheme-constrained vs unconstrained CRF decoding, and
// the ID-CNN iteration count (more context at zero extra parameters).
#include "bench/bench_common.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

double Run(core::NerConfig config, const BenchData& bd,
           const std::vector<std::string>& types, uint64_t seed,
           double lr = 0.015, int epochs = 8) {
  config.seed = seed;
  return TrainAndScore(config, bd, types, {}, epochs, lr);
}

}  // namespace

int main() {
  PrintHeader("Ablations (survey Section 3.5 design choices)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);
  BenchData bd = MakeBenchData(genre, 250, 120, 201);

  core::NerConfig base;
  base.use_char_cnn = true;
  base.word_unk_dropout = 0.2;

  std::printf("baseline: %s, BIOES, input dropout 0.25\n\n",
              base.Describe().c_str());

  {
    std::printf("%-34s %10s\n", "tag scheme", "test F1");
    for (const std::string scheme : {"io", "bio", "bioes"}) {
      core::NerConfig c = base;
      c.scheme = scheme;
      std::printf("%-34s %10.3f\n", scheme.c_str(), Run(c, bd, types, 301));
    }
  }
  {
    std::printf("\n%-34s %10s\n", "input dropout", "test F1");
    for (double d : {0.0, 0.25, 0.5}) {
      core::NerConfig c = base;
      c.input_dropout = d;
      char label[32];
      std::snprintf(label, sizeof(label), "p = %.2f", d);
      std::printf("%-34s %10.3f\n", label, Run(c, bd, types, 302));
    }
  }
  {
    std::printf("\n%-34s %10s\n", "word-level UNK dropout", "test F1");
    for (double d : {0.0, 0.2, 0.4}) {
      core::NerConfig c = base;
      c.word_unk_dropout = d;
      char label[32];
      std::snprintf(label, sizeof(label), "p = %.2f", d);
      std::printf("%-34s %10.3f\n", label, Run(c, bd, types, 303));
    }
  }
  {
    std::printf("\n%-34s %10s\n", "CRF decoding constraints", "test F1");
    for (bool constrained : {false, true}) {
      core::NerConfig c = base;
      c.constrained_decoding = constrained;
      std::printf("%-34s %10.3f\n",
                  constrained ? "scheme-constrained Viterbi"
                              : "unconstrained Viterbi",
                  Run(c, bd, types, 304));
    }
  }
  {
    // The deep iterated ReLU conv stack trains at its own stable learning
    // rate (0.008, matching E4/E2); at normal rates deeper iteration
    // diverges, which is itself an instructive ablation result.
    std::printf("\n%-34s %10s\n", "ID-CNN block iterations (shared "
                                  "params, lr 0.008)", "test F1");
    for (int iters : {1, 2, 3}) {
      core::NerConfig c = base;
      c.encoder = "idcnn";
      c.idcnn_iterations = iters;
      char label[32];
      std::snprintf(label, sizeof(label), "%d iteration(s)", iters);
      std::printf("%-34s %10.3f\n", label,
                  Run(c, bd, types, 305, /*lr=*/0.008, /*epochs=*/10));
    }
  }
  std::printf(
      "\nNotes: BIOES/BIO behave comparably and beat IO when adjacent\n"
      "same-type mentions occur; word-level UNK dropout is the single\n"
      "biggest win; constrained decoding never hurts; the shared ID-CNN\n"
      "block widens context at zero parameter cost but needs its stable\n"
      "learning rate as depth grows.\n");
  return 0;
}
