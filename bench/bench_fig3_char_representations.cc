// E3 — Fig. 3 / Section 3.2.2: character-level word representations.
//
// The survey's claim: char-CNN (Fig. 3a) and char-RNN (Fig. 3b)
// representations "naturally handle out-of-vocabulary" words and "share
// information of morpheme-level regularities". We train word-only,
// +char-CNN, and +char-RNN models (all with Lample-style word-level UNK
// dropout) and evaluate on an in-vocabulary split and on a split whose
// entities are unseen surface forms sharing the training names' morphology.
// Alongside overall F1 we report recall restricted to the unseen-entity
// mentions, where the effect concentrates.
#include <set>
#include <unordered_set>

#include "bench/bench_common.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

// Recall over gold mentions that contain at least one token unseen in
// training.
double OovEntityRecall(core::NerModel* model, const text::Corpus& test,
                       const std::unordered_set<std::string>& train_tokens) {
  int tp = 0, total = 0;
  for (const text::Sentence& s : test.sentences) {
    std::vector<text::Span> pred = model->Predict(s.tokens);
    std::set<text::Span> pred_set(pred.begin(), pred.end());
    for (const text::Span& g : s.spans) {
      bool oov = false;
      for (int t = g.start; t < g.end; ++t) {
        if (train_tokens.count(s.tokens[t]) == 0) oov = true;
      }
      if (!oov) continue;
      ++total;
      if (pred_set.count(g) > 0) ++tp;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(tp) / total;
}

}  // namespace

int main() {
  PrintHeader("E3: character-level representations (survey Fig. 3)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);

  data::GenOptions train_opts;
  train_opts.num_sentences = 250;
  train_opts.seed = 7;
  text::Corpus train = data::GenerateCorpus(genre, train_opts);
  std::unordered_set<std::string> train_tokens;
  for (const auto& s : train.sentences) {
    for (const auto& w : s.tokens) train_tokens.insert(w);
  }

  data::GenOptions easy_opts = train_opts;
  easy_opts.num_sentences = 150;
  easy_opts.seed = 8;
  text::Corpus easy_test = data::GenerateCorpus(genre, easy_opts);

  data::GenOptions oov_opts = easy_opts;
  oov_opts.seed = 9;
  oov_opts.oov_entity_fraction = 0.8;  // unseen surface forms
  text::Corpus oov_test = data::GenerateCorpus(genre, oov_opts);

  std::printf("OOV entity-token rate: easy=%.1f%%  oov=%.1f%%\n",
              100.0 * data::OovEntityTokenRate(train, easy_test),
              100.0 * data::OovEntityTokenRate(train, oov_test));

  struct Variant {
    const char* name;
    bool char_cnn;
    bool char_rnn;
  };
  const Variant variants[] = {
      {"word only", false, false},
      {"word + char-CNN (Fig. 3a)", true, false},
      {"word + char-RNN (Fig. 3b)", false, true},
  };

  std::printf("\n%-28s %9s %9s %18s\n", "representation", "easy F1",
              "OOV F1", "OOV-entity recall");
  for (const Variant& v : variants) {
    core::NerConfig config;
    config.use_char_cnn = v.char_cnn;
    config.use_char_rnn = v.char_rnn;
    config.word_unk_dropout = 0.3;  // Lample et al.'s word-level dropout
    config.seed = 50;
    core::NerModel model(config, train, types);
    core::TrainConfig tc;
    tc.epochs = 10;
    tc.lr = 0.015;
    core::Trainer trainer(&model, tc);
    trainer.Train(train, nullptr);
    std::printf("%-28s %9.3f %9.3f %18.3f\n", v.name,
                model.Evaluate(easy_test).micro.f1(),
                model.Evaluate(oov_test).micro.f1(),
                OovEntityRecall(&model, oov_test, train_tokens));
  }
  std::printf(
      "\nShape check vs the paper: both char-level variants beat the\n"
      "word-only model on the unseen-entity split, most visibly on the\n"
      "OOV-entity recall column: the word-only model can only guess unseen\n"
      "mentions from context, while char features read their morphology\n"
      "(survey Section 3.2.2).\n");
  return 0;
}
