// E5 — Section 3.5 complexity claim (via Vaswani et al.): self-attention
// costs O(n^2 * d) per layer against O(n * d^2) for recurrence, so the
// Transformer is "faster than recursive layers when the sequence length n
// is smaller than the representation dimensionality d".
//
// On a scalar CPU backend the claim manifests as per-token scaling: the
// recurrent encoder's items_per_second stays flat in n (O(d^2) per token,
// independent of n), while the self-attention encoder's per-token
// throughput decays linearly in n (the O(n^2 d) term). The paper's
// absolute crossover at n < d additionally relies on parallelizing the
// attention matrix products across time steps, which a sequential LSTM
// cannot do on parallel hardware — the same caveat as the ID-CNN speedup
// (E4).
#include <cstdio>

#include <benchmark/benchmark.h>

#include "encoders/rnn_encoder.h"
#include "encoders/transformer.h"
#include "tensor/ops.h"

namespace {

using namespace dlner;

constexpr int kDim = 64;  // representation dimensionality d

Var MakeInput(int n) {
  Rng rng(n * 977 + 3);
  Tensor t({n, kDim});
  for (int i = 0; i < t.size(); ++i) t[i] = rng.Uniform(-1.0, 1.0);
  return Constant(std::move(t));
}

void BM_BiLstmEncoder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  // Hidden d/2 per direction -> output dim d; per-step cost ~ O(d^2).
  encoders::RnnEncoder enc("lstm", kDim, kDim / 2, 1, 0.0, &rng);
  Var x = MakeInput(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Encode(x, false)->value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_TransformerEncoder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  encoders::TransformerEncoder enc(kDim, kDim, 4, 2 * kDim, 1, 0.0, &rng);
  Var x = MakeInput(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Encode(x, false)->value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_BiLstmEncoder)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_TransformerEncoder)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "\n=== E5: self-attention O(n^2 d) vs recurrence O(n d^2) "
      "(survey Section 3.5) ===\n"
      "d = %d fixed; watch items_per_second (tokens/s):\n"
      "  * BiLSTM: flat in n (per-token cost O(d^2), independent of n)\n"
      "  * Transformer: decays with n (the O(n^2 d) attention term)\n\n",
      kDim);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nShape check vs the paper: the scaling exponents match the quoted\n"
      "complexities. The absolute 'Transformer faster when n < d' crossover\n"
      "additionally requires parallelizing attention across time steps\n"
      "(GPU batching), which a scalar CPU backend cannot express.\n");
  return 0;
}
