// E9 — Section 4.2: deep transfer learning under low-resource conditions.
//
// Yang et al. (quoted by the survey) report "significant improvements on
// various datasets under low-resource conditions" from parameter-sharing
// transfer. Source domain: formal news. Target domain: noisy social media
// with a different label set (so decoder parameters cannot transfer —
// Yang's non-mappable case). We sweep the target training size and compare
// from-scratch, fine-tuned, and frozen-encoder variants.
#include "bench/bench_common.h"

#include "applied/transfer.h"

int main() {
  using namespace dlner;
  using namespace dlner::bench;

  PrintHeader("E9: cross-domain transfer learning (survey Section 4.2)");

  core::NerConfig config;
  config.use_char_cnn = true;
  config.word_unk_dropout = 0.2;
  config.seed = 81;
  core::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 0.015;

  // Source model on abundant news data.
  text::Corpus source_corpus = data::MakeDataset("conll-like", 400, 82);
  core::NerModel source(config, source_corpus,
                        data::EntityTypesFor(data::Genre::kNews));
  {
    core::Trainer trainer(&source, tc);
    trainer.Train(source_corpus, nullptr);
  }

  BenchData target = MakeBenchData(data::Genre::kSocial, 200, 120, 83,
                                   /*test_oov=*/0.2);
  const auto& target_types = data::EntityTypesFor(data::Genre::kSocial);

  std::printf("%8s %12s %12s %16s\n", "#target", "scratch", "fine-tune",
              "frozen-encoder");
  for (int size : {10, 25, 50, 100, 200}) {
    text::Corpus small;
    for (int i = 0; i < size && i < target.train.size(); ++i) {
      small.sentences.push_back(target.train.sentences[i]);
    }

    core::NerConfig scratch_config = config;
    scratch_config.seed = 90 + size;
    core::NerModel scratch(scratch_config, small, target_types);
    {
      core::Trainer trainer(&scratch, tc);
      trainer.Train(small, nullptr);
    }

    auto tuned = applied::MakeFineTuneModel(source, config, target_types);
    {
      core::Trainer trainer(tuned.get(), tc);
      trainer.Train(small, nullptr);
    }

    auto frozen = applied::MakeFineTuneModel(source, config, target_types);
    applied::FreezeModules(frozen.get(), /*freeze_representation=*/false,
                           /*freeze_encoder=*/true);
    {
      core::Trainer trainer(frozen.get(), tc);
      trainer.Train(small, nullptr);
    }

    std::printf("%8d %12.3f %12.3f %16.3f\n", size,
                scratch.Evaluate(target.test).micro.f1(),
                tuned->Evaluate(target.test).micro.f1(),
                frozen->Evaluate(target.test).micro.f1());
  }
  std::printf(
      "\nShape check vs the paper: transfer dominates at the smallest\n"
      "target sizes and the advantage shrinks as target data grows; full\n"
      "fine-tuning beats a frozen encoder once enough target data exists\n"
      "(survey Section 4.2).\n");
  return 0;
}
