// Serving latency benchmark: an open-loop load generator against an
// in-process dlner_serve Server (src/serve/), recording latency vs offered
// load (ROADMAP item 1's "latency-vs-offered-load curve").
//
// A tiny cnn+softmax model is trained in-process and served over real
// localhost sockets. The generator first measures closed-loop capacity
// (one connection, one request in flight), then replays >= 2 open-loop
// points at fixed fractions of that capacity: requests are sent on a fixed
// schedule across several connections regardless of response progress, the
// way real traffic arrives, so queueing delay shows up in the tail instead
// of being absorbed by the sender (closed-loop coordinated omission).
//
// Recorded gauges (dlner-metrics-v1 snapshot, written to --out, default
// BENCH_serve.json, intended to be run from the repo root and committed):
//   bench.serve.capacity_rps            closed-loop sentences/sec ceiling
//   bench.serve.point<i>.offered_rps    the schedule's request rate
//   bench.serve.point<i>.load_factor    offered_rps / capacity_rps
//   bench.serve.point<i>.p50_us         response latency percentiles
//   bench.serve.point<i>.p99_us           (exact, from sorted samples)
//   bench.serve.point<i>.sentences_per_sec  sustained completion rate
//   bench.serve.point<i>.rejected       429 backpressure rejections
//   bench.serve.point<i>.<stage>_p50_us / _p99_us  server-side stage
//       breakdown for stage in {queue_wait, batch_wait, compute, write},
//       taken as the delta of the server's serve.stage.* histograms across
//       the point, so coordinated-omission effects are attributable: under
//       overload the client-side p99 decomposes into queue-wait vs
//       batch-wait vs compute instead of being a single opaque number.
//   bench.serve.responses_total         total tagged responses, all points
//
// After the f32 sweep, one extra frontier point is replayed at the highest
// load factor against a quantized-serving registry (int8 planned path, see
// docs/PERFORMANCE.md) and recorded under bench.serve.quantized.* (including
// the same stage breakdown).
//
// The whole sweep runs with metrics collection on and request tracing
// enabled at --trace-sample-rate (default 0.01), so the recorded numbers
// include the observability tax a production deployment would pay.
//
// Flags: --out FILE, --duration SECS (per point), --conns N,
//        --loads F1,F2,... (load factors, default 0.5,1.0,2.0,8.0),
//        --trace-sample-rate F (default 0.01),
//        --quantized (serve the int8 path for the MAIN sweep instead; the
//        extra frontier point is skipped since everything is already int8)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "core/flags.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tensor/quant.h"

namespace {

using namespace dlner;

// One benchmark connection: schedule-driven sends, a reader thread that
// timestamps completions.
class BenchConn {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }
  ~BenchConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Reads response lines until EOF, reporting each to `on_line`.
  template <typename Fn>
  void ReadLoop(Fn on_line) {
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buf.find('\n')) != std::string::npos) {
        on_line(buf.substr(0, nl));
        buf.erase(0, nl + 1);
      }
    }
  }

  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
};

// Server-side stage names, in pipeline order; each has a lifetime
// histogram serve.stage.<name>_us maintained by the server.
constexpr const char* kStages[] = {"queue_wait", "batch_wait", "compute",
                                   "write"};
constexpr int kNumStages = 4;

struct PointResult {
  double offered_rps = 0.0;
  double load_factor = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double sentences_per_sec = 0.0;
  std::int64_t responses = 0;
  std::int64_t rejected = 0;
  // Per-stage server-side percentiles over this point only.
  double stage_p50_us[kNumStages] = {};
  double stage_p99_us[kNumStages] = {};
};

obs::HistogramSnapshot StageSnapshot(int stage) {
  return obs::Metrics::Get()
      .histogram(std::string("serve.stage.") + kStages[stage] + "_us")
      ->Snapshot();
}

// Percentiles of the observations recorded between `before` and `after`.
// min/max are lifetime values (they only clamp the interpolation), which is
// fine: each point's observations dominate its own delta buckets.
void StageDelta(const obs::HistogramSnapshot& before,
                const obs::HistogramSnapshot& after, double* p50_us,
                double* p99_us) {
  obs::HistogramSnapshot d = after;
  d.count -= before.count;
  d.sum -= before.sum;
  for (int b = 0; b < obs::HistogramSnapshot::kBuckets; ++b) {
    d.buckets[b] -= before.buckets[b];
  }
  if (d.count <= 0) {
    *p50_us = 0.0;
    *p99_us = 0.0;
    return;
  }
  *p50_us = d.Percentile(0.50);
  *p99_us = d.Percentile(0.99);
}

std::int64_t IdOf(const std::string& line) {
  const std::size_t pos = line.find("\"id\":");
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + 5);
}

double Percentile(std::vector<double>* sorted_inout, double p) {
  if (sorted_inout->empty()) return 0.0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  const std::size_t idx = std::min(
      sorted_inout->size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_inout->size())));
  return (*sorted_inout)[idx];
}

// Pre-rendered request lines for a sentence pool; ids are assigned at send
// time so every request is unique and traceable.
std::vector<std::string> RequestBodies(const text::Corpus& corpus) {
  std::vector<std::string> bodies;
  for (const auto& s : corpus.sentences) {
    if (s.tokens.empty()) continue;
    std::string body = ",\"tokens\":[";
    for (std::size_t i = 0; i < s.tokens.size(); ++i) {
      if (i > 0) body.push_back(',');
      body += serve::JsonQuote(s.tokens[i]);
    }
    body += "]}";
    bodies.push_back(std::move(body));
  }
  return bodies;
}

// Closed-loop capacity: one connection, one request in flight, ~min_seconds
// of wall clock. The open-loop points are scheduled as fractions of this.
double MeasureCapacity(int port, const std::vector<std::string>& bodies,
                       double min_seconds) {
  BenchConn conn;
  if (!conn.Connect(port)) return 0.0;
  std::atomic<std::int64_t> done{0};
  std::thread reader([&] {
    conn.ReadLoop([&](const std::string&) { done.fetch_add(1); });
  });
  bench::Stopwatch sw;
  std::int64_t sent = 0;
  while (sw.Seconds() < min_seconds) {
    conn.SendLine("{\"id\":" + std::to_string(sent) +
                  bodies[static_cast<std::size_t>(sent) % bodies.size()]);
    ++sent;
    while (done.load() < sent) std::this_thread::yield();
  }
  const double elapsed = sw.Seconds();
  conn.CloseWrite();
  reader.join();
  return static_cast<double>(sent) / elapsed;
}

// One open-loop point: send on a fixed schedule across `n_conns`
// connections for `duration` seconds, then drain.
PointResult RunPoint(int port, const std::vector<std::string>& bodies,
                     double offered_rps, double capacity_rps, double duration,
                     int n_conns) {
  PointResult result;
  result.offered_rps = offered_rps;
  result.load_factor = capacity_rps > 0.0 ? offered_rps / capacity_rps : 0.0;

  obs::HistogramSnapshot stage_before[kNumStages];
  for (int s = 0; s < kNumStages; ++s) stage_before[s] = StageSnapshot(s);

  std::vector<std::unique_ptr<BenchConn>> conns;
  for (int i = 0; i < n_conns; ++i) {
    auto conn = std::make_unique<BenchConn>();
    if (!conn->Connect(port)) return result;
    conns.push_back(std::move(conn));
  }

  std::mutex mu;  // guards send_us and latencies
  std::unordered_map<std::int64_t, std::uint64_t> send_us;
  std::vector<double> latencies;
  std::atomic<std::int64_t> responses{0};
  std::atomic<std::int64_t> rejected{0};

  std::vector<std::thread> readers;
  for (auto& conn : conns) {
    readers.emplace_back([&, c = conn.get()] {
      c->ReadLoop([&](const std::string& line) {
        const std::uint64_t now = obs::NowMicros();
        const std::int64_t id = IdOf(line);
        if (line.find("\"error\"") != std::string::npos) {
          rejected.fetch_add(1);
          return;
        }
        responses.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        const auto it = send_us.find(id);
        if (it != send_us.end()) {
          latencies.push_back(static_cast<double>(now - it->second));
          send_us.erase(it);
        }
      });
    });
  }

  // Open-loop sender: each request goes out at its scheduled time (or as
  // soon as we are able, if the schedule slipped), regardless of how far
  // behind the responses are.
  const double interval_us = 1e6 / offered_rps;
  const std::uint64_t start = obs::NowMicros();
  const std::uint64_t end =
      start + static_cast<std::uint64_t>(duration * 1e6);
  std::int64_t sent = 0;
  for (;;) {
    const std::uint64_t due =
        start + static_cast<std::uint64_t>(static_cast<double>(sent) *
                                           interval_us);
    if (due >= end) break;
    std::uint64_t now = obs::NowMicros();
    while (now < due) {
      std::this_thread::sleep_for(std::chrono::microseconds(due - now));
      now = obs::NowMicros();
    }
    const std::string line =
        "{\"id\":" + std::to_string(sent) +
        bodies[static_cast<std::size_t>(sent) % bodies.size()];
    {
      std::lock_guard<std::mutex> lock(mu);
      send_us[sent] = obs::NowMicros();
    }
    if (!conns[static_cast<std::size_t>(sent) % conns.size()]->SendLine(
            line)) {
      break;
    }
    ++sent;
  }
  const std::uint64_t send_done = obs::NowMicros();

  // Drain: every request must resolve to a response or a rejection.
  while (responses.load() + rejected.load() < sent &&
         obs::NowMicros() - send_done < 30u * 1000u * 1000u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t drain_done = obs::NowMicros();
  for (auto& conn : conns) conn->CloseWrite();
  for (std::thread& t : readers) t.join();

  result.responses = responses.load();
  result.rejected = rejected.load();
  result.p50_us = Percentile(&latencies, 0.50);
  result.p99_us = Percentile(&latencies, 0.99);
  for (int s = 0; s < kNumStages; ++s) {
    StageDelta(stage_before[s], StageSnapshot(s), &result.stage_p50_us[s],
               &result.stage_p99_us[s]);
  }
  const double elapsed = static_cast<double>(drain_done - start) / 1e6;
  result.sentences_per_sec =
      elapsed > 0.0 ? static_cast<double>(result.responses) / elapsed : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  core::FlagSpec spec{{"out", core::FlagKind::kValue},
                      {"duration", core::FlagKind::kValue},
                      {"conns", core::FlagKind::kValue},
                      {"loads", core::FlagKind::kValue},
                      {"trace-sample-rate", core::FlagKind::kValue},
                      {"quantized", core::FlagKind::kBool}};
  core::Args args;
  if (!args.Parse(argc, argv, 1, spec)) {
    std::fprintf(stderr, "bench_serve: %s\n", args.error().c_str());
    return 1;
  }
  const std::string out_path = args.Get("out", "BENCH_serve.json");
  const double duration = args.GetDouble("duration", 2.0);
  const int n_conns = args.GetInt("conns", 4);
  const double sample_rate = args.GetDouble("trace-sample-rate", 0.01);
  std::vector<double> loads;
  {
    // Closed-loop capacity is deflated by the batch deadline (one request
    // in flight waits out batch_delay_us every round trip), so open-loop
    // micro-batched throughput typically exceeds 1.0x; the high multiplier
    // probes actual saturation.
    const std::string spec_str = args.Get("loads", "0.5,1.0,2.0,8.0");
    std::size_t pos = 0;
    while (pos < spec_str.size()) {
      std::size_t comma = spec_str.find(',', pos);
      if (comma == std::string::npos) comma = spec_str.size();
      double f = 0.0;
      if (!core::ParseDouble(spec_str.substr(pos, comma - pos), &f) ||
          f <= 0.0) {
        std::fprintf(stderr, "bench_serve: bad --loads entry\n");
        return 1;
      }
      loads.push_back(f);
      pos = comma + 1;
    }
  }

  bench::PrintHeader("Serving latency vs offered load (dlner_serve)");

  // Train and checkpoint a tiny model, then serve it the way dlner_serve
  // does: through a registry-loaded Pipeline.
  const text::Corpus corpus = data::MakeDataset("conll-like", 120, 23);
  core::NerConfig config;
  config.encoder = "cnn";
  config.decoder = "softmax";
  config.word_dim = 16;
  config.hidden_dim = 16;
  config.seed = 7;
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.lr = 0.02;
  std::vector<std::string> types;
  for (const auto& s : corpus.sentences) {
    for (const auto& sp : s.spans) {
      if (std::find(types.begin(), types.end(), sp.type) == types.end()) {
        types.push_back(sp.type);
      }
    }
  }
  std::sort(types.begin(), types.end());
  const std::string model_path = "/tmp/bench_serve_model.bin";
  core::Pipeline::Train(config, tc, corpus, nullptr, types)->Save(model_path);

  // Calibrate on the training pool and write the sidecar the serve path
  // expects, so both the optional --quantized main sweep and the int8
  // frontier point below can load the model quantized.
  {
    std::unique_ptr<core::Pipeline> calib_pipe =
        core::Pipeline::Load(model_path);
    if (calib_pipe == nullptr ||
        calib_pipe->model()->CalibrateQuantization(corpus) <= 0 ||
        !quant::WriteCalibrationFile(model_path + ".quant",
                                     calib_pipe->model()->quant_calibration())) {
      std::fprintf(stderr, "bench_serve: quantization calibration failed\n");
      return 1;
    }
  }

  const bool quantized_main = args.Has("quantized");
  serve::ModelRegistry registry;
  registry.set_quantized(quantized_main);
  if (!registry.Load("default", model_path)) {
    std::fprintf(stderr, "bench_serve: cannot load %s\n", model_path.c_str());
    return 1;
  }
  serve::ServeConfig serve_config;
  serve_config.cache_capacity = 0;  // measure inference, not memoization
  serve_config.trace_sample_rate = sample_rate;
  // The sweep pays the production observability tax: metrics collection on
  // (feeds the serve.stage.* histograms the breakdown is read from) and
  // request tracing sampled at serve_config.trace_sample_rate.
  obs::EnableMetrics(true);
  obs::EnableTracing(sample_rate > 0.0);
  serve::Server server(&registry, serve_config);
  if (!server.Start()) {
    std::fprintf(stderr, "bench_serve: cannot start server\n");
    return 1;
  }

  const std::vector<std::string> bodies = RequestBodies(corpus);
  const double capacity = MeasureCapacity(server.port(), bodies, 1.0);
  std::printf("closed-loop capacity: %.1f req/s\n\n", capacity);
  if (capacity <= 0.0) {
    std::fprintf(stderr, "bench_serve: capacity measurement failed\n");
    return 1;
  }

  std::printf("%-8s %12s %10s %10s %12s %9s\n", "load", "offered_rps",
              "p50_ms", "p99_ms", "sent/s", "rejected");
  std::vector<PointResult> points;
  for (const double f : loads) {
    PointResult r = RunPoint(server.port(), bodies, f * capacity, capacity,
                             duration, n_conns);
    std::printf("%-8.2f %12.1f %10.2f %10.2f %12.1f %9lld\n", f,
                r.offered_rps, r.p50_us / 1e3, r.p99_us / 1e3,
                r.sentences_per_sec, static_cast<long long>(r.rejected));
    std::printf("         server stage p99 (ms): queue %.2f  batch %.2f  "
                "compute %.2f  write %.2f\n",
                r.stage_p99_us[0] / 1e3, r.stage_p99_us[1] / 1e3,
                r.stage_p99_us[2] / 1e3, r.stage_p99_us[3] / 1e3);
    points.push_back(r);
  }
  server.Stop();

  // Int8 frontier: replay the highest load factor against a fresh server
  // whose registry serves the quantized plan. One line, same open-loop
  // methodology, so the committed JSON carries an f32-vs-int8 comparison at
  // saturation. Skipped under --quantized (the sweep above already is int8).
  PointResult qpoint;
  double qcapacity = 0.0;
  if (!quantized_main) {
    serve::ModelRegistry qregistry;
    qregistry.set_quantized(true);
    serve::Server qserver(&qregistry, serve_config);
    if (!qregistry.Load("default", model_path) || !qserver.Start()) {
      std::fprintf(stderr, "bench_serve: quantized server setup failed\n");
      return 1;
    }
    qcapacity = MeasureCapacity(qserver.port(), bodies, 1.0);
    const double f = loads.back();
    qpoint = RunPoint(qserver.port(), bodies, f * qcapacity, qcapacity,
                      duration, n_conns);
    std::printf("%-8s %12.1f %10.2f %10.2f %12.1f %9lld  (int8 frontier, "
                "capacity %.1f req/s)\n",
                "int8", qpoint.offered_rps, qpoint.p50_us / 1e3,
                qpoint.p99_us / 1e3, qpoint.sentences_per_sec,
                static_cast<long long>(qpoint.rejected), qcapacity);
    qserver.Stop();
  }

  obs::Metrics& m = obs::Metrics::Get();
  m.gauge("bench.serve.capacity_rps")->Set(capacity);
  m.gauge("bench.serve.trace_sample_rate")->Set(sample_rate);
  m.gauge("bench.serve.load_points")
      ->Set(static_cast<double>(points.size()));
  std::int64_t total_responses = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    const std::string prefix = "bench.serve.point" + std::to_string(i) + ".";
    m.gauge(prefix + "offered_rps")->Set(r.offered_rps);
    m.gauge(prefix + "load_factor")->Set(r.load_factor);
    m.gauge(prefix + "p50_us")->Set(r.p50_us);
    m.gauge(prefix + "p99_us")->Set(r.p99_us);
    m.gauge(prefix + "sentences_per_sec")->Set(r.sentences_per_sec);
    m.gauge(prefix + "rejected")->Set(static_cast<double>(r.rejected));
    for (int s = 0; s < kNumStages; ++s) {
      m.gauge(prefix + kStages[s] + "_p50_us")->Set(r.stage_p50_us[s]);
      m.gauge(prefix + kStages[s] + "_p99_us")->Set(r.stage_p99_us[s]);
    }
    total_responses += r.responses;
  }
  m.gauge("bench.serve.responses_total")
      ->Set(static_cast<double>(total_responses));
  if (!quantized_main) {
    m.gauge("bench.serve.quantized.capacity_rps")->Set(qcapacity);
    m.gauge("bench.serve.quantized.offered_rps")->Set(qpoint.offered_rps);
    m.gauge("bench.serve.quantized.load_factor")->Set(qpoint.load_factor);
    m.gauge("bench.serve.quantized.p50_us")->Set(qpoint.p50_us);
    m.gauge("bench.serve.quantized.p99_us")->Set(qpoint.p99_us);
    m.gauge("bench.serve.quantized.sentences_per_sec")
        ->Set(qpoint.sentences_per_sec);
    m.gauge("bench.serve.quantized.rejected")
        ->Set(static_cast<double>(qpoint.rejected));
    for (int s = 0; s < kNumStages; ++s) {
      m.gauge(std::string("bench.serve.quantized.") + kStages[s] + "_p50_us")
          ->Set(qpoint.stage_p50_us[s]);
      m.gauge(std::string("bench.serve.quantized.") + kStages[s] + "_p99_us")
          ->Set(qpoint.stage_p99_us[s]);
    }
  }
  server.PublishMetrics();
  obs::MetricsJsonOptions json_options;
  json_options.skip_empty_histograms = true;
  if (!m.WriteJson(out_path, json_options)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
