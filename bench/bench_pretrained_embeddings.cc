// E13 — Sections 3.2.1 and 3.5: the pre-trained-embedding ladder.
//
// The survey: "recent studies have shown the importance of such pre-trained
// word embeddings"; "integrating or fine-tuning pre-trained language model
// embeddings is becoming a new paradigm ... significant performance
// improvements". We hold the downstream model fixed and swap only the input
// representation: random init -> SGNS (frozen) -> SGNS (fine-tuned) ->
// + contextual char-LM embeddings -> + token-LM embeddings.
#include "bench/bench_common.h"

int main() {
  using namespace dlner;
  using namespace dlner::bench;

  PrintHeader("E13: pre-trained input ladder (survey Sections 3.2.1/3.5)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);
  // Two labeled-data regimes: freezing-vs-fine-tuning flips between them.
  BenchData small_bd = MakeBenchData(genre, 100, 120, 131, /*test_oov=*/0.4);
  BenchData large_bd = MakeBenchData(genre, 300, 120, 136, /*test_oov=*/0.4);

  // Pretraining corpus is much larger than the labeled set (the survey's
  // setting for Word2Vec/ELMo-style inputs).
  auto unlabeled = data::GenerateUnlabeledText(genre, 2500, 132);

  embeddings::SkipGramModel::Config sgns_cfg;
  sgns_cfg.dim = 24;
  sgns_cfg.epochs = 3;
  sgns_cfg.seed = 133;
  auto sgns = embeddings::SkipGramModel::Train(unlabeled, sgns_cfg);

  embeddings::CharLm::Config char_cfg;
  char_cfg.hidden_dim = 24;
  char_cfg.epochs = 2;
  char_cfg.seed = 134;
  embeddings::CharLm char_lm(char_cfg);
  char_lm.Train({unlabeled.begin(), unlabeled.begin() + 250});

  embeddings::TokenLm::Config tok_cfg;
  tok_cfg.hidden_dim = 20;
  tok_cfg.epochs = 2;
  tok_cfg.seed = 135;
  embeddings::TokenLm token_lm(tok_cfg);
  token_lm.Train({unlabeled.begin(), unlabeled.begin() + 500});

  struct Rung {
    const char* name;
    core::NerConfig config;
    core::Resources resources;
  };
  std::vector<Rung> ladder;
  core::NerConfig base;
  base.word_dim = 24;
  {
    Rung r{"random init word vectors", base, {}};
    ladder.push_back(r);
  }
  {
    Rung r{"SGNS pre-trained (frozen)", base, {}};
    r.config.freeze_word = true;
    r.resources.sgns = &sgns;
    ladder.push_back(r);
  }
  {
    Rung r{"SGNS pre-trained (fine-tuned)", base, {}};
    r.resources.sgns = &sgns;
    ladder.push_back(r);
  }
  {
    Rung r{"SGNS + contextual char-LM", base, {}};
    r.config.use_char_lm = true;
    r.resources.sgns = &sgns;
    r.resources.char_lm = &char_lm;
    ladder.push_back(r);
  }
  {
    Rung r{"SGNS + token-LM (TagLM-style)", base, {}};
    r.config.use_token_lm = true;
    r.resources.sgns = &sgns;
    r.resources.token_lm = &token_lm;
    ladder.push_back(r);
  }

  std::printf("%-34s %12s %12s\n", "input representation",
              "F1 @100 sent", "F1 @300 sent");
  for (size_t i = 0; i < ladder.size(); ++i) {
    ladder[i].config.seed = 140 + i;
    const double f1_small = TrainAndScore(ladder[i].config, small_bd, types,
                                          ladder[i].resources, /*epochs=*/10);
    const double f1_large = TrainAndScore(ladder[i].config, large_bd, types,
                                          ladder[i].resources, /*epochs=*/10);
    std::printf("%-34s %12.3f %12.3f\n", ladder[i].name, f1_small, f1_large);
  }
  std::printf(
      "\nShape check vs the paper: pre-trained vectors beat random init;\n"
      "freezing protects the pre-trained structure when labeled data is\n"
      "tiny while fine-tuning catches up with more labels (the \"fixed or\n"
      "further fine-tuned\" choice of Section 3.2.1); LM embeddings give a\n"
      "further lift (Section 3.5's new paradigm).\n");
  return 0;
}
