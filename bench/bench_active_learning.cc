// E8 — Section 4.3: deep active learning.
//
// Shen et al.'s result quoted by the survey: uncertainty-sampling active
// learning "achieves 99% of the best deep model's performance using only
// 24.9% of the training data". We run least-confidence acquisition against
// a random-sampling baseline and report each budget's F1 as a percentage
// of the full-data model's.
#include "bench/bench_common.h"

#include "applied/active.h"

int main() {
  using namespace dlner;
  using namespace dlner::bench;

  PrintHeader("E8: deep active learning (survey Section 4.3)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);
  BenchData bd = MakeBenchData(genre, 400, 120, 51, /*test_oov=*/0.2);

  // Full-data reference.
  core::NerConfig config;
  config.seed = 60;
  core::TrainConfig full_tc;
  full_tc.epochs = 10;
  full_tc.lr = 0.015;
  core::NerModel full(config, bd.train, types);
  {
    core::Trainer trainer(&full, full_tc);
    trainer.Train(bd.train, nullptr);
  }
  const double full_f1 = full.Evaluate(bd.test).micro.f1();
  std::printf("full-data model (%d sentences): F1=%.3f\n\n", bd.train.size(),
              full_f1);

  std::printf("%8s | %21s | %21s | %21s\n", "", "least confidence",
              "token entropy", "random sampling");
  std::printf("%8s | %10s %10s | %10s %10s | %10s %10s\n", "%labeled", "F1",
              "%of full", "F1", "%of full", "F1", "%of full");

  applied::ActiveConfig base;
  base.seed_size = 20;
  base.batch_size = 40;
  base.rounds = 6;
  base.epochs_per_round = 4;
  base.train.lr = 0.015;

  std::vector<applied::ActiveRound> curves[3];
  const char* strategies[3] = {"least_confidence", "entropy", "random"};
  for (int k = 0; k < 3; ++k) {
    applied::ActiveConfig cfg = base;
    cfg.strategy = strategies[k];
    core::NerConfig model_config = config;
    model_config.seed = 70 + k;
    core::NerModel model(model_config, bd.train, types);
    applied::ActiveLearner learner(&model, cfg);
    curves[k] = learner.Run(bd.train, bd.test);
  }
  const size_t rounds = std::min(
      {curves[0].size(), curves[1].size(), curves[2].size()});
  for (size_t r = 0; r < rounds; ++r) {
    std::printf("%7.1f%% | %10.3f %9.1f%% | %10.3f %9.1f%% | %10.3f %9.1f%%\n",
                100.0 * curves[0][r].labeled_fraction, curves[0][r].test_f1,
                100.0 * curves[0][r].test_f1 / full_f1, curves[1][r].test_f1,
                100.0 * curves[1][r].test_f1 / full_f1, curves[2][r].test_f1,
                100.0 * curves[2][r].test_f1 / full_f1);
  }
  std::printf(
      "\nShape check vs the paper: both uncertainty curves reach the\n"
      "high-90s%% of the full-data F1 within roughly the first quarter-to-\n"
      "half of the pool and dominate random sampling at equal budgets\n"
      "(survey Section 4.3: 99%% at 24.9%% of data).\n");
  return 0;
}
