// Inference throughput benchmark: compiled-plan (packed batch) vs eager
// per-sentence corpus inference, for the softmax/CRF decoders crossed with
// the BiLSTM/CNN encoders, plus a single-thread MatMul kernel
// microbenchmark (blocked raw-pointer kernel vs the bounds-checked triple
// loop it replaced).
//
// Recorded series (dlner-metrics-v1 snapshot, written to --out, default
// BENCH_throughput.json, intended to be run from the repo root and
// committed):
//   bench.eager.<model>.sentences_per_sec    eager path, 1 thread
//   bench.planned.<model>.sentences_per_sec  plan path, thread sweep 1..8
//   bench.throughput.<model>.sentences_per_sec  alias of the planned sweep
//   bench.plan_speedup.<model>               planned(1t) / eager(1t)
//   bench.throughput.<model>.speedup_4t      only when the host has >1 core
// On a single-core host the 4-thread speedup is unmeasurable (the sweep
// just adds scheduling noise), so speedup_4t is skipped and
// bench.multithread_unmeasurable = 1 is recorded instead.
//
// Timing loops run with collection disabled so the numbers measure the
// zero-overhead path; the registry is populated afterwards.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

std::vector<std::string> EntityTypesOf(const text::Corpus& corpus) {
  std::vector<std::string> types;
  for (const auto& s : corpus.sentences) {
    for (const auto& sp : s.spans) {
      if (std::find(types.begin(), types.end(), sp.type) == types.end()) {
        types.push_back(sp.type);
      }
    }
  }
  std::sort(types.begin(), types.end());
  return types;
}

// Runs Evaluate repeatedly for >= min_seconds (after one warmup pass) and
// returns sentences/sec.
double MeasureThroughput(const core::NerModel& model,
                         const text::Corpus& corpus, double min_seconds) {
  model.Evaluate(corpus);  // warmup: faults pages, primes arena/allocator
  int repeats = 0;
  Stopwatch sw;
  do {
    model.Evaluate(corpus);
    ++repeats;
  } while (sw.Seconds() < min_seconds);
  return repeats * static_cast<double>(corpus.size()) / sw.Seconds();
}

// The MatMul forward kernel this repo replaced: Tensor::at() is bounds-
// checked on every access even in Release builds, which is exactly what the
// raw-pointer blocked kernel avoids.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const Float av = a.at(i, p);
      if (av == 0.0) continue;
      for (int j = 0; j < n; ++j) out.at(i, j) += av * b.at(p, j);
    }
  }
  return out;
}

struct MatMulResult {
  double naive_gflops = 0.0;
  double kernel_gflops = 0.0;
  double speedup = 0.0;
};

MatMulResult MeasureMatMul(int m, int k, int n, double min_seconds) {
  Rng rng(99);
  Tensor ta({m, k}), tb({k, n});
  for (int i = 0; i < ta.size(); ++i) ta[i] = rng.Uniform(-1.0, 1.0);
  for (int i = 0; i < tb.size(); ++i) tb[i] = rng.Uniform(-1.0, 1.0);
  const double flops_per_call = 2.0 * m * k * n;

  MatMulResult result;
  {
    volatile Float sink = 0.0;
    int repeats = 0;
    Stopwatch sw;
    do {
      Tensor c = NaiveMatMul(ta, tb);
      sink = sink + c[0];
      ++repeats;
    } while (sw.Seconds() < min_seconds);
    result.naive_gflops = repeats * flops_per_call / sw.Seconds() / 1e9;
  }
  {
    NoGradGuard no_grad;
    Var va = Constant(ta);
    Var vb = Constant(tb);
    volatile Float sink = 0.0;
    int repeats = 0;
    Stopwatch sw;
    do {
      Var c = MatMul(va, vb);
      sink = sink + c->value[0];
      ++repeats;
    } while (sw.Seconds() < min_seconds);
    result.kernel_gflops = repeats * flops_per_call / sw.Seconds() / 1e9;
  }
  result.speedup = result.kernel_gflops / result.naive_gflops;
  return result;
}

struct ModelRun {
  std::string name;
  double eager_1t = 0.0;  // eager path, single thread
  std::vector<int> threads;
  std::vector<double> planned;  // plan path, one entry per thread count
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  double min_seconds = 1.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    if (std::string(argv[i]) == "--min-seconds") {
      min_seconds = std::atof(argv[i + 1]);
    }
  }

  PrintHeader("Inference throughput (compiled plan vs eager)");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency = %u\n", hw);
  if (hw <= 1) {
    std::printf("single-core host: 4-thread speedup unmeasurable, "
                "speedup_4t gauges skipped\n");
  }
  std::printf("\n");

  const text::Corpus corpus = data::MakeDataset("conll-like", 300, 17);
  const auto types = EntityTypesOf(corpus);
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::vector<ModelRun> runs;
  for (const std::string encoder : {"bilstm", "cnn"}) {
    for (const std::string decoder : {"softmax", "crf"}) {
      core::NerConfig config;
      config.encoder = encoder;
      config.decoder = decoder;
      config.seed = 31;
      core::NerModel model(config, corpus, types);

      ModelRun run;
      run.name = encoder + "+" + decoder;

      runtime::Runtime::Get().SetThreads(1);
      model.set_plan_inference(false);
      run.eager_1t = MeasureThroughput(model, corpus, min_seconds);

      model.set_plan_inference(true);
      for (const int t : thread_counts) {
        runtime::Runtime::Get().SetThreads(t);
        run.threads.push_back(t);
        run.planned.push_back(MeasureThroughput(model, corpus, min_seconds));
      }

      std::printf("%-16s eager 1t: %7.1f  plan 1t: %7.1f (%.2fx)",
                  run.name.c_str(), run.eager_1t, run.planned[0],
                  run.eager_1t > 0.0 ? run.planned[0] / run.eager_1t : 0.0);
      for (std::size_t i = 1; i < run.threads.size(); ++i) {
        std::printf("  %dt: %7.1f", run.threads[i], run.planned[i]);
      }
      std::printf(" sent/s\n");
      runs.push_back(std::move(run));
    }
  }
  runtime::Runtime::Get().SetThreads(1);

  std::printf("\nMatMul kernel microbenchmark (single thread)\n");
  const MatMulResult mm = MeasureMatMul(40, 48, 96, min_seconds);
  std::printf("  naive .at() kernel : %6.3f GFLOP/s\n", mm.naive_gflops);
  std::printf("  blocked raw kernel : %6.3f GFLOP/s\n", mm.kernel_gflops);
  std::printf("  speedup            : %6.2fx\n", mm.speedup);

  // Publish everything through the metrics registry and snapshot it.
  // Collection was off during the timing loops; flipping it on now only
  // affects bookkeeping done below.
  obs::EnableMetrics(true);
  obs::Metrics& m = obs::Metrics::Get();
  m.gauge("bench.hardware_concurrency")->Set(static_cast<double>(hw));
  m.gauge("bench.corpus_sentences")->Set(static_cast<double>(corpus.size()));
  if (hw <= 1) m.gauge("bench.multithread_unmeasurable")->Set(1.0);
  for (const ModelRun& run : runs) {
    m.series("bench.eager." + run.name + ".sentences_per_sec")
        ->Append(1.0, run.eager_1t);
    obs::Series* planned =
        m.series("bench.planned." + run.name + ".sentences_per_sec");
    obs::Series* legacy =
        m.series("bench.throughput." + run.name + ".sentences_per_sec");
    double t1 = 0.0, t4 = 0.0;
    for (std::size_t i = 0; i < run.threads.size(); ++i) {
      planned->Append(static_cast<double>(run.threads[i]), run.planned[i]);
      legacy->Append(static_cast<double>(run.threads[i]), run.planned[i]);
      if (run.threads[i] == 1) t1 = run.planned[i];
      if (run.threads[i] == 4) t4 = run.planned[i];
    }
    m.gauge("bench.plan_speedup." + run.name)
        ->Set(run.eager_1t > 0.0 ? run.planned[0] / run.eager_1t : 0.0);
    // A 4-thread speedup measured on a single hardware thread is pure
    // scheduler noise (always < 1x); record it only when it means something.
    if (hw > 1) {
      m.gauge("bench.throughput." + run.name + ".speedup_4t")
          ->Set(t1 > 0.0 ? t4 / t1 : 0.0);
    }
  }
  m.gauge("bench.matmul.naive_gflops")->Set(mm.naive_gflops);
  m.gauge("bench.matmul.kernel_gflops")->Set(mm.kernel_gflops);
  m.gauge("bench.matmul.speedup")->Set(mm.speedup);
  // Thread-pool counters from the measured Evaluate runs.
  runtime::Runtime::Get().PublishMetrics();
  obs::MetricsJsonOptions json_options;
  json_options.skip_empty_histograms = true;  // benches never fill them
  if (!m.WriteJson(out_path, json_options)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
