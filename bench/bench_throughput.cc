// Inference throughput benchmark: compiled-plan (packed batch) vs eager
// per-sentence corpus inference, for the softmax/CRF decoders crossed with
// the BiLSTM/CNN encoders, plus a single-thread MatMul kernel
// microbenchmark (blocked raw-pointer kernel vs the bounds-checked triple
// loop it replaced).
//
// Recorded series (dlner-metrics-v1 snapshot, written to --out, default
// BENCH_throughput.json, intended to be run from the repo root and
// committed):
//   bench.eager.<model>.sentences_per_sec    eager path, 1 thread
//   bench.planned.<model>.sentences_per_sec  plan path, thread sweep 1..8
//   bench.throughput.<model>.sentences_per_sec  alias of the planned sweep
//   bench.plan_speedup.<model>               planned(1t) / eager(1t)
//   bench.throughput.<model>.speedup_4t      only when the host has >1 core
// On a single-core host the 4-thread speedup is unmeasurable (the sweep
// just adds scheduling noise), so speedup_4t is skipped and
// bench.multithread_unmeasurable = 1 is recorded instead.
//
// SIMD / quantization series (docs/PERFORMANCE.md):
//   bench.simd_isa                           0=scalar 1=avx2 2=neon
//   bench.simd.<kernel>_gflops               explicit-ISA microkernels,
//   bench.scalar.<kernel>_gflops             vs the true-scalar reference
//                                            (kernel in gemm, affine,
//                                            qaffine; x = reduction dim k)
//   bench.planned_scalar.<model>.sentences_per_sec  plan, scalar-forced, 1t
//   bench.simd_speedup.<model>               planned(1t) / scalar-forced(1t)
//   bench.quantized.<model>.sentences_per_sec  int8 planned path, 1t
//   bench.quant_speedup.<model>              quantized(1t) / planned(1t)
//
// Timing loops run with collection disabled so the numbers measure the
// zero-overhead path; the registry is populated afterwards.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "tensor/batched.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/simd/simd.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

std::vector<std::string> EntityTypesOf(const text::Corpus& corpus) {
  std::vector<std::string> types;
  for (const auto& s : corpus.sentences) {
    for (const auto& sp : s.spans) {
      if (std::find(types.begin(), types.end(), sp.type) == types.end()) {
        types.push_back(sp.type);
      }
    }
  }
  std::sort(types.begin(), types.end());
  return types;
}

// Runs Evaluate repeatedly for >= min_seconds (after one warmup pass) and
// returns sentences/sec.
double MeasureThroughput(const core::NerModel& model,
                         const text::Corpus& corpus, double min_seconds) {
  model.Evaluate(corpus);  // warmup: faults pages, primes arena/allocator
  int repeats = 0;
  Stopwatch sw;
  do {
    model.Evaluate(corpus);
    ++repeats;
  } while (sw.Seconds() < min_seconds);
  return repeats * static_cast<double>(corpus.size()) / sw.Seconds();
}

// The MatMul forward kernel this repo replaced: Tensor::at() is bounds-
// checked on every access even in Release builds, which is exactly what the
// raw-pointer blocked kernel avoids.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const Float av = a.at(i, p);
      if (av == 0.0) continue;
      for (int j = 0; j < n; ++j) out.at(i, j) += av * b.at(p, j);
    }
  }
  return out;
}

struct MatMulResult {
  double naive_gflops = 0.0;
  double kernel_gflops = 0.0;
  double speedup = 0.0;
};

MatMulResult MeasureMatMul(int m, int k, int n, double min_seconds) {
  Rng rng(99);
  Tensor ta({m, k}), tb({k, n});
  for (int i = 0; i < ta.size(); ++i) ta[i] = rng.Uniform(-1.0, 1.0);
  for (int i = 0; i < tb.size(); ++i) tb[i] = rng.Uniform(-1.0, 1.0);
  const double flops_per_call = 2.0 * m * k * n;

  MatMulResult result;
  {
    volatile Float sink = 0.0;
    int repeats = 0;
    Stopwatch sw;
    do {
      Tensor c = NaiveMatMul(ta, tb);
      sink = sink + c[0];
      ++repeats;
    } while (sw.Seconds() < min_seconds);
    result.naive_gflops = repeats * flops_per_call / sw.Seconds() / 1e9;
  }
  {
    NoGradGuard no_grad;
    Var va = Constant(ta);
    Var vb = Constant(tb);
    volatile Float sink = 0.0;
    int repeats = 0;
    Stopwatch sw;
    do {
      Var c = MatMul(va, vb);
      sink = sink + c->value[0];
      ++repeats;
    } while (sw.Seconds() < min_seconds);
    result.kernel_gflops = repeats * flops_per_call / sw.Seconds() / 1e9;
  }
  result.speedup = result.kernel_gflops / result.naive_gflops;
  return result;
}

struct ModelRun {
  std::string name;
  double eager_1t = 0.0;  // eager path, single thread
  std::vector<int> threads;
  std::vector<double> planned;  // plan path, one entry per thread count
  double planned_scalar_1t = 0.0;  // plan path, ForceScalarKernels, 1 thread
  double quantized_1t = 0.0;       // int8 planned path, 1 thread
};

// One microkernel shape: C[m,n] += A[m,k] . B[k,n].
struct KernelShape {
  int m, k, n;
};

constexpr KernelShape kKernelShapes[] = {{64, 48, 96}, {256, 96, 96},
                                         {64, 300, 48}};

// GFLOP/s of gemm::GemmAccum on one shape for one ISA (counting 2*m*k*n
// flops per call, the dense-GEMM convention also used by MeasureMatMul).
template <class Isa>
double MeasureGemmKernel(const KernelShape& s, double min_seconds) {
  Rng rng(7);
  std::vector<Float> a(static_cast<std::size_t>(s.m) * s.k);
  std::vector<Float> b(static_cast<std::size_t>(s.k) * s.n);
  std::vector<Float> c(static_cast<std::size_t>(s.m) * s.n, 0.0);
  for (Float& v : a) v = rng.Uniform(-1.0, 1.0);
  for (Float& v : b) v = rng.Uniform(-1.0, 1.0);
  volatile Float sink = 0.0;
  int repeats = 0;
  Stopwatch sw;
  do {
    gemm::GemmAccum<Isa>(a.data(), b.data(), c.data(), s.m, s.k, s.n);
    sink = sink + c[0];
    ++repeats;
  } while (sw.Seconds() < min_seconds);
  return repeats * 2.0 * s.m * s.k * s.n / sw.Seconds() / 1e9;
}

// GFLOP/s of the fused batched::Affine (GEMM + bias + ReLU epilogue).
template <class Isa>
double MeasureAffineKernel(const KernelShape& s, double min_seconds) {
  Rng rng(7);
  std::vector<Float> x(static_cast<std::size_t>(s.m) * s.k);
  std::vector<Float> out(static_cast<std::size_t>(s.m) * s.n);
  Tensor w({s.k, s.n}), bias({s.n});
  for (Float& v : x) v = rng.Uniform(-1.0, 1.0);
  for (int i = 0; i < w.size(); ++i) w[i] = rng.Uniform(-1.0, 1.0);
  for (int i = 0; i < bias.size(); ++i) bias[i] = rng.Uniform(-1.0, 1.0);
  volatile Float sink = 0.0;
  int repeats = 0;
  Stopwatch sw;
  do {
    batched::AffineT<Isa>(x.data(), s.m, w, bias, out.data(),
                          batched::Act::kRelu);
    sink = sink + out[0];
    ++repeats;
  } while (sw.Seconds() < min_seconds);
  return repeats * 2.0 * s.m * s.k * s.n / sw.Seconds() / 1e9;
}

// Effective GFLOP/s of the int8 QAffine (quantize + int8 GEMM + dequant),
// counted against the same 2*m*k*n useful flops so the three series are
// directly comparable.
template <class Isa>
double MeasureQAffineKernel(const KernelShape& s, double min_seconds) {
  Rng rng(7);
  std::vector<Float> x(static_cast<std::size_t>(s.m) * s.k);
  std::vector<Float> out(static_cast<std::size_t>(s.m) * s.n);
  Tensor w({s.k, s.n}), bias({s.n});
  for (Float& v : x) v = rng.Uniform(-1.0, 1.0);
  for (int i = 0; i < w.size(); ++i) w[i] = rng.Uniform(-1.0, 1.0);
  for (int i = 0; i < bias.size(); ++i) bias[i] = rng.Uniform(-1.0, 1.0);
  const quant::QuantizedMatrix qm = quant::QuantizeMatrix(w, 1.0);
  volatile Float sink = 0.0;
  int repeats = 0;
  Stopwatch sw;
  do {
    quant::QAffineT<Isa>(x.data(), s.m, qm, bias, out.data(),
                         batched::Act::kRelu);
    sink = sink + out[0];
    ++repeats;
  } while (sw.Seconds() < min_seconds);
  return repeats * 2.0 * s.m * s.k * s.n / sw.Seconds() / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  double min_seconds = 1.0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    if (std::string(argv[i]) == "--min-seconds") {
      min_seconds = std::atof(argv[i + 1]);
    }
  }

  PrintHeader("Inference throughput (compiled plan vs eager)");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency = %u\n", hw);
  std::printf("simd_isa = %s (id %d)\n", simd::kIsaName, simd::kIsaId);
  if (hw <= 1) {
    std::printf("single-core host: 4-thread speedup unmeasurable, "
                "speedup_4t gauges skipped\n");
  }
  std::printf("\n");

  const text::Corpus corpus = data::MakeDataset("conll-like", 300, 17);
  const auto types = EntityTypesOf(corpus);
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  // The four survey-taxonomy cells at the toolkit's default (tiny) dims,
  // plus one serving-sized CNN cell: at width 24 the packed GEMMs are only
  // a fraction of end-to-end time (embedding fill, layout, and decode
  // bookkeeping bound the rest), so the wide cell is where kernel-level
  // SIMD/int8 wins show up at full strength in sentences/sec.
  struct Cell {
    const char* name;
    const char* encoder;
    const char* decoder;
    int word_dim;
    int hidden_dim;
  };
  const Cell cells[] = {{"bilstm+softmax", "bilstm", "softmax", 24, 24},
                        {"bilstm+crf", "bilstm", "crf", 24, 24},
                        {"cnn+softmax", "cnn", "softmax", 24, 24},
                        {"cnn+crf", "cnn", "crf", 24, 24},
                        {"cnn-wide+softmax", "cnn", "softmax", 64, 96}};

  std::vector<ModelRun> runs;
  {
    for (const Cell& cell : cells) {
      core::NerConfig config;
      config.encoder = cell.encoder;
      config.decoder = cell.decoder;
      config.word_dim = cell.word_dim;
      config.hidden_dim = cell.hidden_dim;
      config.seed = 31;
      core::NerModel model(config, corpus, types);

      ModelRun run;
      run.name = cell.name;

      runtime::Runtime::Get().SetThreads(1);
      model.set_plan_inference(false);
      run.eager_1t = MeasureThroughput(model, corpus, min_seconds);

      model.set_plan_inference(true);
      for (const int t : thread_counts) {
        runtime::Runtime::Get().SetThreads(t);
        run.threads.push_back(t);
        run.planned.push_back(MeasureThroughput(model, corpus, min_seconds));
      }

      // Same compiled plan, explicit-ISA vs true-scalar kernels: the SIMD
      // contribution isolated from everything else.
      runtime::Runtime::Get().SetThreads(1);
      batched::ForceScalarKernels(true);
      run.planned_scalar_1t = MeasureThroughput(model, corpus, min_seconds);
      batched::ForceScalarKernels(false);

      // Int8 planned path: calibrate on the bench corpus itself (this is a
      // throughput bench; accuracy bounds live in the differential suite).
      model.CalibrateQuantization(corpus);
      model.set_quantized_inference(true);
      run.quantized_1t = MeasureThroughput(model, corpus, min_seconds);
      model.set_quantized_inference(false);

      std::printf("%-16s eager 1t: %7.1f  plan 1t: %7.1f (%.2fx)",
                  run.name.c_str(), run.eager_1t, run.planned[0],
                  run.eager_1t > 0.0 ? run.planned[0] / run.eager_1t : 0.0);
      for (std::size_t i = 1; i < run.threads.size(); ++i) {
        std::printf("  %dt: %7.1f", run.threads[i], run.planned[i]);
      }
      std::printf(" sent/s\n");
      std::printf(
          "%-16s scalar 1t: %7.1f (simd %.2fx)  int8 1t: %7.1f "
          "(quant %.2fx) sent/s\n",
          "", run.planned_scalar_1t,
          run.planned_scalar_1t > 0.0 ? run.planned[0] / run.planned_scalar_1t
                                      : 0.0,
          run.quantized_1t,
          run.planned[0] > 0.0 ? run.quantized_1t / run.planned[0] : 0.0);
      runs.push_back(std::move(run));
    }
  }
  runtime::Runtime::Get().SetThreads(1);

  std::printf("\nMatMul kernel microbenchmark (single thread)\n");
  const MatMulResult mm = MeasureMatMul(40, 48, 96, min_seconds);
  std::printf("  naive .at() kernel : %6.3f GFLOP/s\n", mm.naive_gflops);
  std::printf("  blocked raw kernel : %6.3f GFLOP/s\n", mm.kernel_gflops);
  std::printf("  speedup            : %6.2fx\n", mm.speedup);

  // Per-kernel GFLOP/s, explicit ISA vs true-scalar reference, over the
  // microkernel shapes (x axis of each series = reduction dim k). Each
  // shape gets min_seconds/3 so the section costs about as much as one
  // model cell.
  std::printf("\nSIMD microkernels (%s vs scalar, GFLOP/s by k)\n",
              simd::kIsaName);
  const double kernel_seconds = min_seconds / 3.0;
  struct KernelSeries {
    const char* name;
    std::vector<double> simd, scalar;  // one entry per kKernelShapes
  };
  std::vector<KernelSeries> kernels = {{"gemm", {}, {}},
                                       {"affine", {}, {}},
                                       {"qaffine", {}, {}}};
  for (const KernelShape& s : kKernelShapes) {
    kernels[0].simd.push_back(
        MeasureGemmKernel<simd::Active>(s, kernel_seconds));
    kernels[0].scalar.push_back(
        MeasureGemmKernel<simd::Scalar>(s, kernel_seconds));
    kernels[1].simd.push_back(
        MeasureAffineKernel<simd::Active>(s, kernel_seconds));
    kernels[1].scalar.push_back(
        MeasureAffineKernel<simd::Scalar>(s, kernel_seconds));
    kernels[2].simd.push_back(
        MeasureQAffineKernel<simd::Active>(s, kernel_seconds));
    kernels[2].scalar.push_back(
        MeasureQAffineKernel<simd::Scalar>(s, kernel_seconds));
  }
  for (const KernelSeries& ks : kernels) {
    std::printf("  %-8s", ks.name);
    for (std::size_t i = 0; i < ks.simd.size(); ++i) {
      std::printf("  k=%-3d %6.3f vs %6.3f (%4.2fx)", kKernelShapes[i].k,
                  ks.simd[i], ks.scalar[i],
                  ks.scalar[i] > 0.0 ? ks.simd[i] / ks.scalar[i] : 0.0);
    }
    std::printf("\n");
  }

  // Publish everything through the metrics registry and snapshot it.
  // Collection was off during the timing loops; flipping it on now only
  // affects bookkeeping done below.
  obs::EnableMetrics(true);
  obs::Metrics& m = obs::Metrics::Get();
  m.gauge("bench.hardware_concurrency")->Set(static_cast<double>(hw));
  m.gauge("bench.simd_isa")->Set(static_cast<double>(simd::kIsaId));
  m.gauge("bench.corpus_sentences")->Set(static_cast<double>(corpus.size()));
  if (hw <= 1) m.gauge("bench.multithread_unmeasurable")->Set(1.0);
  for (const ModelRun& run : runs) {
    m.series("bench.eager." + run.name + ".sentences_per_sec")
        ->Append(1.0, run.eager_1t);
    obs::Series* planned =
        m.series("bench.planned." + run.name + ".sentences_per_sec");
    obs::Series* legacy =
        m.series("bench.throughput." + run.name + ".sentences_per_sec");
    double t1 = 0.0, t4 = 0.0;
    for (std::size_t i = 0; i < run.threads.size(); ++i) {
      planned->Append(static_cast<double>(run.threads[i]), run.planned[i]);
      legacy->Append(static_cast<double>(run.threads[i]), run.planned[i]);
      if (run.threads[i] == 1) t1 = run.planned[i];
      if (run.threads[i] == 4) t4 = run.planned[i];
    }
    m.gauge("bench.plan_speedup." + run.name)
        ->Set(run.eager_1t > 0.0 ? run.planned[0] / run.eager_1t : 0.0);
    m.series("bench.planned_scalar." + run.name + ".sentences_per_sec")
        ->Append(1.0, run.planned_scalar_1t);
    m.gauge("bench.simd_speedup." + run.name)
        ->Set(run.planned_scalar_1t > 0.0
                  ? run.planned[0] / run.planned_scalar_1t
                  : 0.0);
    m.series("bench.quantized." + run.name + ".sentences_per_sec")
        ->Append(1.0, run.quantized_1t);
    m.gauge("bench.quant_speedup." + run.name)
        ->Set(run.planned[0] > 0.0 ? run.quantized_1t / run.planned[0] : 0.0);
    // A 4-thread speedup measured on a single hardware thread is pure
    // scheduler noise (always < 1x); record it only when it means something.
    if (hw > 1) {
      m.gauge("bench.throughput." + run.name + ".speedup_4t")
          ->Set(t1 > 0.0 ? t4 / t1 : 0.0);
    }
  }
  m.gauge("bench.matmul.naive_gflops")->Set(mm.naive_gflops);
  m.gauge("bench.matmul.kernel_gflops")->Set(mm.kernel_gflops);
  m.gauge("bench.matmul.speedup")->Set(mm.speedup);
  for (const KernelSeries& ks : kernels) {
    obs::Series* simd_series =
        m.series(std::string("bench.simd.") + ks.name + "_gflops");
    obs::Series* scalar_series =
        m.series(std::string("bench.scalar.") + ks.name + "_gflops");
    for (std::size_t i = 0; i < ks.simd.size(); ++i) {
      simd_series->Append(static_cast<double>(kKernelShapes[i].k),
                          ks.simd[i]);
      scalar_series->Append(static_cast<double>(kKernelShapes[i].k),
                            ks.scalar[i]);
    }
  }
  // Thread-pool counters from the measured Evaluate runs.
  runtime::Runtime::Get().PublishMetrics();
  obs::MetricsJsonOptions json_options;
  json_options.skip_empty_histograms = true;  // benches never fill them
  if (!m.WriteJson(out_path, json_options)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
