// E4 — Fig. 6 / Section 3.3.1: ID-CNN test-time speedup over BiLSTM-CRF.
//
// Strubell et al.'s claim, quoted by the survey: "ID-CNNs achieve 14-20x
// test-time speedups compared to Bi-LSTM-CRF while retaining comparable
// accuracy", because "fixed-depth convolutions run in parallel across
// entire documents" while the LSTM's recurrence is strictly sequential.
//
// The speedup is a *parallelism* result: on GPU hardware the convolution
// at every position executes simultaneously, so latency is governed by
// the length of the longest chain of dependent operations. A scalar CPU
// backend executes the same arithmetic either way, so wall-clock
// throughput is roughly even — the honest measurable counterpart of the
// claim here is the SEQUENTIAL CRITICAL-PATH LENGTH of the computation
// graph: O(depth) for the ID-CNN versus O(T) for the BiLSTM. We report
// both (wall time for transparency, critical path for the claim), plus
// the accuracy parity after identical training budgets.
#include <unordered_map>

#include "bench/bench_common.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

// Longest chain of dependent ops from graph leaves to `node` — the number
// of sequential steps a maximally parallel device would need.
int CriticalPathDepth(const Var& node,
                      std::unordered_map<Variable*, int>* memo) {
  auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;
  int best = 0;
  for (const Var& p : node->parents) {
    best = std::max(best, CriticalPathDepth(p, memo));
  }
  const int depth = best + 1;
  (*memo)[node.get()] = depth;
  return depth;
}

double Throughput(core::NerModel* model, const std::vector<std::string>& doc,
                  int repeats) {
  model->Predict(doc);  // warm-up
  Stopwatch sw;
  for (int r = 0; r < repeats; ++r) model->Predict(doc);
  return repeats * static_cast<double>(doc.size()) / sw.Seconds();
}

}  // namespace

int main() {
  PrintHeader("E4: ID-CNN vs BiLSTM-CRF test-time speed (survey Fig. 6)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);
  BenchData bd = MakeBenchData(genre, 200, 100, 31);

  core::NerConfig lstm_config;
  lstm_config.encoder = "bilstm";
  lstm_config.hidden_dim = 48;
  lstm_config.decoder = "crf";
  core::NerConfig idcnn_config = lstm_config;
  idcnn_config.encoder = "idcnn";
  idcnn_config.idcnn_dilations = {1, 2, 4};
  idcnn_config.idcnn_iterations = 2;

  // Per-architecture learning rates, as in the original works: the stacked
  // ReLU dilated convolutions need a smaller step than the gated LSTM.
  core::TrainConfig lstm_tc;
  lstm_tc.epochs = 10;
  lstm_tc.lr = 0.015;
  core::TrainConfig idcnn_tc = lstm_tc;
  idcnn_tc.lr = 0.008;

  core::NerModel lstm(lstm_config, bd.train, types);
  core::NerModel idcnn(idcnn_config, bd.train, types);
  {
    core::Trainer t1(&lstm, lstm_tc);
    t1.Train(bd.train, nullptr);
    core::Trainer t2(&idcnn, idcnn_tc);
    t2.Train(bd.train, nullptr);
  }
  const double f1_lstm = lstm.Evaluate(bd.test).micro.f1();
  const double f1_idcnn = idcnn.Evaluate(bd.test).micro.f1();

  auto sentences = data::GenerateUnlabeledText(genre, 200, 33);
  std::vector<std::string> words;
  for (const auto& s : sentences) {
    for (const auto& w : s) words.push_back(w);
  }

  std::printf(
      "accuracy: BiLSTM-CRF F1=%.3f  ID-CNN-CRF F1=%.3f (delta %+.3f)\n\n",
      f1_lstm, f1_idcnn, f1_idcnn - f1_lstm);
  std::printf("%8s | %12s %12s | %11s %11s %9s\n", "doc len", "LSTM tok/s",
              "IDCNN tok/s", "LSTM depth", "IDCNN depth", "parallel");
  std::printf("%8s | %25s | %23s %9s\n", "", "scalar-CPU wall clock",
              "sequential critical path", "speedup");
  for (int len : {32, 64, 128, 256, 512}) {
    std::vector<std::string> doc(words.begin(), words.begin() + len);
    const int repeats = std::max(2, 1024 / len);
    const double tps_lstm = Throughput(&lstm, doc, repeats);
    const double tps_idcnn = Throughput(&idcnn, doc, repeats);

    // Critical path of the encoder graph (the component the claim is
    // about; the CRF decode is shared by both systems).
    Var rep_l = lstm.Represent(doc, false);
    std::unordered_map<Variable*, int> memo_l;
    const int depth_lstm =
        CriticalPathDepth(lstm.Encode(rep_l, false), &memo_l);
    Var rep_i = idcnn.Represent(doc, false);
    std::unordered_map<Variable*, int> memo_i;
    const int depth_idcnn =
        CriticalPathDepth(idcnn.Encode(rep_i, false), &memo_i);

    std::printf("%8d | %12.0f %12.0f | %11d %11d %8.1fx\n", len, tps_lstm,
                tps_idcnn, depth_lstm, depth_idcnn,
                static_cast<double>(depth_lstm) / depth_idcnn);
  }
  std::printf(
      "\nShape check vs the paper: accuracy is comparable, and the ID-CNN's\n"
      "sequential critical path is constant in document length while the\n"
      "BiLSTM's grows linearly — the depth ratio (the upper bound a\n"
      "time-parallel device can exploit) passes the paper's 14-20x band\n"
      "within a few dozen tokens and keeps growing. Scalar-CPU wall clock\n"
      "is roughly even because it executes the same arithmetic either way;\n"
      "the 14-20x claim is a parallel-hardware result (substitution note\n"
      "in DESIGN.md).\n");
  return 0;
}
