// Hostile-input scenario benchmark (Table-1-style grid): every architecture
// cell gets an exact-match micro-F1 on every scenario corpus from
// src/data/scenarios.h, plus a doc-context on/off comparison on the
// entity-consistency scenario run through the streaming tagger.
//
// Recorded series (dlner-metrics-v1 snapshot, written to --out, default
// BENCH_scenarios.json, intended to be run from the repo root and
// committed):
//   bench.scenarios.<cell>.<scenario>.f1   test-set micro-F1 (x = scenario
//                                          index in data::AllScenarios())
//   bench.scenarios.doc_context.off        streaming F1, stateless
//   bench.scenarios.doc_context.on         streaming F1, entity memory on
//   bench.scenarios.doc_context.delta      on - off
//   bench.scenarios.count                  scenarios evaluated
//
// Each scenario trains on its matched clean split (MakeScenarioSplit): the
// realistic setting where the hostile property appears only at test time.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "applied/nested.h"
#include "bench/bench_common.h"
#include "core/pipeline.h"
#include "data/scenarios.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "stream/stream_tagger.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

struct Cell {
  const char* name;
  const char* encoder;
  const char* decoder;
  bool shape;
};

// Taxonomy cells spanning both encoder families and both tag-decoder
// families, plus a shape-feature hybrid (the survey's Table 3 axes).
constexpr Cell kCells[] = {
    {"cnn+softmax", "cnn", "softmax", false},
    {"cnn+crf", "cnn", "crf", false},
    {"bilstm+softmax", "bilstm", "softmax", false},
    {"bilstm+crf", "bilstm", "crf", false},
    {"bilstm+crf+shape", "bilstm", "crf", true},
};

core::NerConfig CellConfig(const Cell& cell, uint64_t seed) {
  core::NerConfig config;
  config.encoder = cell.encoder;
  config.decoder = cell.decoder;
  config.use_shape = cell.shape;
  config.word_dim = 16;
  config.hidden_dim = 16;
  config.word_unk_dropout = 0.2;
  config.seed = seed;
  return config;
}

double TrainAndScoreScenario(const core::NerConfig& config,
                             data::Scenario scenario,
                             const data::ScenarioSplit& split,
                             const std::vector<std::string>& types,
                             int epochs) {
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 0.015;
  if (scenario == data::Scenario::kDiscontinuous) {
    // Component spans of a discontinuous mention overlap its coordinated
    // sibling, so flat tag decoding does not apply; the layered nested-NER
    // decomposition (applied/nested.h) trains one flat model per level and
    // evaluates against the overlapping gold.
    applied::LayeredNerModel model(config, types);
    model.Train(split.train, tc);
    return model.Evaluate(split.test).micro.f1();
  }
  core::NerModel model(config, split.train, types);
  core::Trainer trainer(&model, tc);
  trainer.Train(split.train, nullptr);
  return model.Evaluate(split.test).micro.f1();
}

// Streams every document of `corpus` through a StreamTagger and returns
// micro-F1 against the gold spans. The scenario generators follow the
// streaming sentence conventions, so the emitted sentence split must match
// the corpus 1:1 — anything else is a bug worth crashing on.
double StreamF1(const core::Pipeline& pipeline, const text::Corpus& corpus,
                bool doc_context) {
  std::vector<std::vector<text::Span>> gold, predicted;
  for (int d = 0; d < corpus.DocCount(); ++d) {
    stream::StreamOptions opts;
    opts.doc_context = doc_context ? 1 : 0;
    stream::StreamTagger tagger(&pipeline, opts);
    std::vector<stream::TaggedSentence> emitted;
    const std::string raw = data::RenderDocument(corpus, d);
    for (stream::TaggedSentence& ts : tagger.Feed(raw)) {
      emitted.push_back(std::move(ts));
    }
    for (stream::TaggedSentence& ts : tagger.Flush()) {
      emitted.push_back(std::move(ts));
    }
    const auto [first, last] = corpus.DocRange(d);
    if (static_cast<int>(emitted.size()) != last - first) {
      std::fprintf(stderr,
                   "stream/corpus sentence mismatch in doc %d: %zu vs %d\n", d,
                   emitted.size(), last - first);
      std::exit(1);
    }
    for (int i = first; i < last; ++i) {
      gold.push_back(corpus.sentences[static_cast<size_t>(i)].spans);
      predicted.push_back(std::move(emitted[static_cast<size_t>(i - first)].spans));
    }
  }
  return eval::EvaluateExact(gold, predicted).micro.f1();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scenarios.json";
  int epochs = 8;
  int num_sentences = 140;
  int min_doc_tokens = 10000;
  uint64_t seed = 5;
  for (int i = 1; i < argc - 1; ++i) {
    const std::string flag = argv[i];
    if (flag == "--out") out_path = argv[i + 1];
    if (flag == "--epochs") epochs = std::atoi(argv[i + 1]);
    if (flag == "--sentences") num_sentences = std::atoi(argv[i + 1]);
    if (flag == "--min-doc-tokens") min_doc_tokens = std::atoi(argv[i + 1]);
    if (flag == "--seed") {
      seed = static_cast<uint64_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }

  PrintHeader("Hostile-input scenarios (architecture cells x scenarios)");

  obs::Metrics& m = obs::Metrics::Get();
  std::printf("%-18s", "cell");
  for (const data::Scenario sc : data::AllScenarios()) {
    std::printf(" %14s", data::ScenarioToString(sc).c_str());
  }
  std::printf("\n");

  std::vector<double> cell_f1;  // filled row-major for the metrics pass
  for (const Cell& cell : kCells) {
    std::printf("%-18s", cell.name);
    for (const data::Scenario sc : data::AllScenarios()) {
      data::ScenarioOptions opts;
      opts.seed = seed;
      opts.num_sentences = num_sentences;
      opts.min_doc_tokens = min_doc_tokens;
      const data::ScenarioSplit split = data::MakeScenarioSplit(sc, opts);
      const double f1 = TrainAndScoreScenario(
          CellConfig(cell, seed + 31), sc, split,
          data::ScenarioEntityTypes(sc), epochs);
      cell_f1.push_back(f1);
      std::printf(" %14.3f", f1);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // Doc-context differential: one pipeline trained on the cue-rich
  // consistency training split, then the SAME pipeline streams the test
  // documents with the entity memory off vs on. The only variable is the
  // document state.
  PrintHeader("Doc-context differential (entity-consistency scenario)");
  data::ScenarioOptions copts;
  copts.seed = seed;
  copts.num_sentences = std::max(num_sentences, 60);
  const data::ScenarioSplit consistency =
      data::MakeScenarioSplit(data::Scenario::kEntityConsistency, copts);
  core::NerConfig config;
  config.encoder = "bilstm";
  config.decoder = "crf";
  config.word_dim = 16;
  config.hidden_dim = 16;
  config.word_unk_dropout = 0.2;
  config.seed = seed + 97;
  core::TrainConfig tc;
  tc.epochs = std::max(epochs, 8);
  tc.lr = 0.015;
  const auto pipeline = core::Pipeline::Train(
      config, tc, consistency.train, nullptr,
      data::ScenarioEntityTypes(data::Scenario::kEntityConsistency));
  const double off_f1 = StreamF1(*pipeline, consistency.test, false);
  const double on_f1 = StreamF1(*pipeline, consistency.test, true);
  std::printf("doc_context off: F1 = %.3f\n", off_f1);
  std::printf("doc_context on : F1 = %.3f  (delta %+.3f)\n", on_f1,
              on_f1 - off_f1);

  obs::EnableMetrics(true);
  std::size_t row = 0;
  for (const Cell& cell : kCells) {
    int x = 0;
    for (const data::Scenario sc : data::AllScenarios()) {
      m.series("bench.scenarios." + std::string(cell.name) + "." +
               data::ScenarioToString(sc) + ".f1")
          ->Append(static_cast<double>(x++), cell_f1[row++]);
    }
  }
  m.gauge("bench.scenarios.count")
      ->Set(static_cast<double>(data::AllScenarios().size()));
  m.gauge("bench.scenarios.doc_context.off")->Set(off_f1);
  m.gauge("bench.scenarios.doc_context.on")->Set(on_f1);
  m.gauge("bench.scenarios.doc_context.delta")->Set(on_f1 - off_f1);
  obs::MetricsJsonOptions json_options;
  json_options.skip_empty_histograms = true;
  if (!m.WriteJson(out_path, json_options)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
