// Shared helpers for the benchmark harnesses (one binary per table/figure
// of the survey; see DESIGN.md Section 4 for the experiment index).
#ifndef DLNER_BENCH_BENCH_COMMON_H_
#define DLNER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "core/trainer.h"
#include "data/dataset.h"
#include "data/gazetteer.h"
#include "embeddings/lm.h"
#include "embeddings/sgns.h"
#include "obs/obs.h"

namespace dlner::bench {

/// Train/test pair where the test split injects out-of-vocabulary entities
/// and genre-typical noise, so architectures differentiate the way they do
/// on real corpora (memorizable synthetic data would saturate at F1=1).
/// The generator lives in data::MakeOovSplit so the correctness harness
/// (tests/support/) draws from exactly the same distribution.
using BenchData = data::DataSplit;

inline BenchData MakeBenchData(data::Genre genre, int train_size,
                               int test_size, uint64_t seed,
                               double test_oov = 0.35) {
  return data::MakeOovSplit(genre, train_size, test_size, seed, test_oov);
}

/// Trains a model described by `config` and returns its exact-match test
/// micro-F1.
inline double TrainAndScore(const core::NerConfig& config,
                            const BenchData& data,
                            const std::vector<std::string>& types,
                            const core::Resources& resources = {},
                            int epochs = 8, double lr = 0.015) {
  core::NerModel model(config, data.train, types, resources);
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = lr;
  core::Trainer trainer(&model, tc);
  trainer.Train(data.train, nullptr);
  return model.Evaluate(data.test).micro.f1();
}

/// Wall-clock helper — the observability subsystem's monotonic stopwatch,
/// re-exported under the historical bench name.
using Stopwatch = obs::Stopwatch;

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace dlner::bench

#endif  // DLNER_BENCH_BENCH_COMMON_H_
