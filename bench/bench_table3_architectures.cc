// E2 — Table 3 of the survey: the architecture sweep over the taxonomy.
//
// Reproduces the *shape* of Table 3 on synthetic stand-in corpora: for a
// representative subset of the surveyed systems (identified by their
// reference number in the paper), instantiate the same (input
// representation, context encoder, tag decoder) cell in this toolkit,
// train under a shared budget, and report exact-match micro-F1 on a test
// split with unseen entities.
//
// Expected shape (paper Section 3.5): CRF > softmax with non-contextual
// embeddings; char+word hybrids > word-only; contextualized LM embeddings
// on top; W-NUT-like noisy text dramatically lower than newswire.
#include <functional>
#include <optional>

#include "bench/bench_common.h"

namespace {

using namespace dlner;
using namespace dlner::bench;

struct Row {
  std::string paper_ref;   // survey citation this row approximates
  core::NerConfig config;
  bool needs_gazetteer = false;
  bool needs_sgns = false;
  bool needs_char_lm = false;
  bool needs_token_lm = false;
  double lr = 0.015;       // per-architecture, as in the original works
};

std::vector<Row> MakeRows() {
  std::vector<Row> rows;
  auto base = [] {
    core::NerConfig c;
    c.word_dim = 24;
    c.hidden_dim = 24;
    c.word_unk_dropout = 0.2;  // Lample et al.'s word-level dropout
    return c;
  };

  {  // [17] Collobert et al.: sentence-approach CNN + CRF, random word vecs.
    Row r{"[17] Collobert  word+shape / CNN / CRF"};
    r.config = base();
    r.config.use_shape = true;
    r.config.encoder = "cnn";
    r.config.decoder = "crf";
    rows.push_back(r);
  }
  {  // [18] Huang et al.: BiLSTM-CRF with spelling + gazetteer features.
    Row r{"[18] Huang      word*+shape+gaz / BiLSTM / CRF"};
    r.config = base();
    r.config.use_shape = true;
    r.config.use_gazetteer = true;
    r.needs_gazetteer = true;
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [19] Lample et al.: char-BiLSTM + pretrained word, BiLSTM-CRF.
    Row r{"[19] Lample     word*+charLSTM / BiLSTM / CRF"};
    r.config = base();
    r.config.use_char_rnn = true;
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [96] Ma & Hovy: char-CNN + pretrained word, BiLSTM-CRF.
    Row r{"[96] Ma&Hovy    word*+charCNN / BiLSTM / CRF"};
    r.config = base();
    r.config.use_char_cnn = true;
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [20] Chiu & Nichols: char-CNN + caps/lexicon features.
    Row r{"[20] Chiu&Nich. word*+charCNN+shape / BiLSTM / CRF"};
    r.config = base();
    r.config.use_char_cnn = true;
    r.config.use_shape = true;
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [90] Strubell et al.: ID-CNN-CRF with word-shape vector.
    Row r{"[90] Strubell   word*+shape / ID-CNN / CRF"};
    r.config = base();
    r.config.use_shape = true;
    r.config.encoder = "idcnn";
    r.lr = 0.008;  // the deep ReLU conv stack needs a smaller step
    rows.push_back(r);
    rows.back().needs_sgns = true;
  }
  {  // [105] Yang et al.: char-GRU + word, BiGRU-CRF.
    Row r{"[105] Yang      word*+charRNN / BiGRU / CRF"};
    r.config = base();
    r.config.use_char_rnn = true;
    r.config.encoder = "bigru";
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [87] Shen et al.: CNN chars + LSTM decoder.
    Row r{"[87] Shen       word+charCNN / BiLSTM / RNN"};
    r.config = base();
    r.config.use_char_cnn = true;
    r.config.decoder = "rnn";
    rows.push_back(r);
  }
  {  // [94] Zhai et al.: pointer-network chunk-and-label.
    Row r{"[94] Zhai       word / BiLSTM / Pointer"};
    r.config = base();
    r.config.decoder = "pointer";
    rows.push_back(r);
  }
  {  // [141] Zhuo et al.: gated recursive semi-CRF over CNN features.
    Row r{"[141] Zhuo      word*+gaz / CNN / Semi-CRF"};
    r.config = base();
    r.config.use_gazetteer = true;
    r.config.encoder = "cnn";
    r.config.decoder = "semicrf";
    r.needs_gazetteer = true;
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [142] Ye & Ling: hybrid semi-CRF over BiLSTM.
    Row r{"[142] Ye&Ling   word*+charLSTM / BiLSTM / Semi-CRF"};
    r.config = base();
    r.config.use_char_rnn = true;
    r.config.decoder = "semicrf";
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [106] Akbik et al.: contextual string embeddings, BiLSTM-CRF.
    // Flair stacks classic word vectors with the char-LM embeddings.
    Row r{"[106] Akbik     word*+charLM / BiLSTM / CRF"};
    r.config = base();
    r.config.use_char_lm = true;
    r.needs_sgns = true;
    r.needs_char_lm = true;
    rows.push_back(r);
  }
  {  // [21] Peters et al. TagLM: word + bidirectional token-LM embeddings.
    Row r{"[21] TagLM      word*+tokenLM / BiGRU / CRF"};
    r.config = base();
    r.config.use_token_lm = true;
    r.config.encoder = "bigru";
    r.needs_sgns = true;
    r.needs_token_lm = true;
    rows.push_back(r);
  }
  {  // [118] Devlin et al. (BERT-style): pretrained-LM-only + transformer
     //  encoder + independent softmax. Handicapped relative to the real
     //  BERT by construction: the substitute is a small LSTM token-LM
     //  feeding an untrained (not pre-trained) transformer, so this row
     //  lands mid-pack rather than at the top the way [118] does in the
     //  survey's Table 3.
    Row r{"[118] BERT-ish  tokenLM / Transformer / Softmax"};
    r.config = base();
    r.config.use_word = false;
    r.config.use_token_lm = true;
    r.config.encoder = "transformer";
    r.config.encoder_layers = 1;
    r.config.decoder = "softmax";
    r.lr = 0.008;  // transformer stability on small data
    r.needs_token_lm = true;
    rows.push_back(r);
  }
  {  // [97] Li et al.: bidirectional recursive network over constituency
     //  structure, softmax per node (Fig. 8); heuristic bracketing stands
     //  in for the parser (see src/encoders/recursive.h).
    Row r{"[97] Li         word*+charCNN / BRNN / Softmax"};
    r.config = base();
    r.config.use_char_cnn = true;
    r.config.encoder = "brnn";
    r.config.decoder = "softmax";
    r.needs_sgns = true;
    rows.push_back(r);
  }
  {  // [115] Xu et al.: FOFE span classification (local detection).
    Row r{"[115] Xu        word+shape / MLP / FOFE"};
    r.config = base();
    r.config.use_shape = true;
    r.config.encoder = "mlp";
    r.config.decoder = "fofe";
    rows.push_back(r);
  }
  {  // Matched-input decoder contrast (Section 3.5): CRF vs softmax on the
     //  identical word/BiLSTM stack.
    Row r{"[--] baseline   word / BiLSTM / CRF"};
    r.config = base();
    rows.push_back(r);
  }
  {  // Softmax ablation baseline (the decoder contrast of Section 3.5).
    Row r{"[--] baseline   word / BiLSTM / Softmax"};
    r.config = base();
    r.config.decoder = "softmax";
    rows.push_back(r);
  }
  return rows;
}

struct DatasetResources {
  std::optional<embeddings::SkipGramModel> sgns;
  std::unique_ptr<embeddings::CharLm> char_lm;
  std::unique_ptr<embeddings::TokenLm> token_lm;
  data::Gazetteer gazetteer;
};

DatasetResources PretrainResources(data::Genre genre, const BenchData& bd,
                                   uint64_t seed) {
  DatasetResources res;
  // Unlabeled text: the "large corpus" all pre-trained inputs come from.
  auto unlabeled = data::GenerateUnlabeledText(genre, 2500, seed + 10);

  embeddings::SkipGramModel::Config sgns_cfg;
  sgns_cfg.dim = 24;
  sgns_cfg.epochs = 3;
  sgns_cfg.seed = seed + 11;
  res.sgns = embeddings::SkipGramModel::Train(unlabeled, sgns_cfg);

  std::vector<std::vector<std::string>> lm_text(unlabeled.begin(),
                                                unlabeled.begin() + 250);
  embeddings::CharLm::Config char_cfg;
  char_cfg.hidden_dim = 24;
  char_cfg.epochs = 2;
  char_cfg.seed = seed + 12;
  res.char_lm = std::make_unique<embeddings::CharLm>(char_cfg);
  res.char_lm->Train(lm_text);

  std::vector<std::vector<std::string>> tok_text(unlabeled.begin(),
                                                 unlabeled.begin() + 800);
  embeddings::TokenLm::Config tok_cfg;
  tok_cfg.hidden_dim = 24;
  tok_cfg.epochs = 3;
  tok_cfg.seed = seed + 13;
  res.token_lm = std::make_unique<embeddings::TokenLm>(tok_cfg);
  res.token_lm->Train(tok_text);

  res.gazetteer = data::Gazetteer::FromCorpus(bd.train, 0.8, seed + 14);
  return res;
}

void RunDataset(const std::string& label, data::Genre genre, uint64_t seed,
                const std::vector<int>& row_filter, double test_oov) {
  BenchData bd = MakeBenchData(genre, 250, 120, seed, test_oov);
  DatasetResources shared = PretrainResources(genre, bd, seed);
  const auto& types = data::EntityTypesFor(genre);

  std::printf("\n--- %s ---\n", label.c_str());
  std::printf("%-48s %8s\n", "system (survey ref / taxonomy cell)",
              "micro-F1");
  std::vector<Row> rows = MakeRows();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!row_filter.empty() &&
        std::find(row_filter.begin(), row_filter.end(), static_cast<int>(i)) ==
            row_filter.end()) {
      continue;
    }
    Row& row = rows[i];
    row.config.seed = seed + 100 + i;
    core::Resources resources;
    if (row.needs_sgns) resources.sgns = &*shared.sgns;
    if (row.needs_char_lm) resources.char_lm = shared.char_lm.get();
    if (row.needs_token_lm) resources.token_lm = shared.token_lm.get();
    if (row.needs_gazetteer) resources.gazetteer = &shared.gazetteer;
    Stopwatch sw;
    const double f1 = TrainAndScore(row.config, bd, types, resources,
                                    /*epochs=*/8, row.lr);
    std::printf("%-48s %8.3f   (%.1fs)\n", row.paper_ref.c_str(), f1,
                sw.Seconds());
  }
}

}  // namespace

int main() {
  PrintHeader("E2: architecture sweep (survey Table 3)");
  // Full sweep on the CoNLL03-like corpus; representative subsets on the
  // OntoNotes-like and W-NUT-like corpora (matching the columns the paper
  // reports per system).
  RunDataset("CoNLL03-like (news, 4 types)", data::Genre::kNews, 1, {},
             /*test_oov=*/0.35);
  RunDataset("OntoNotes-like (18 types)", data::Genre::kOnto, 2,
             {0, 4, 5, 11, 17}, /*test_oov=*/0.35);
  // W-NUT targets *emerging* entities: its test split is dominated by
  // surface forms never seen in training, on top of the genre noise.
  RunDataset("W-NUT-like (noisy social, 6 types)", data::Genre::kSocial, 3,
             {0, 4, 5, 11, 17}, /*test_oov=*/0.85);
  std::printf(
      "\nShape check vs the paper (Table 3 / Section 3.5): on matched\n"
      "inputs the CRF beats the softmax decoder; the strongest rows are\n"
      "char+word hybrids and stacked LM-embedding systems; and the noisy\n"
      "unseen-entity W-NUT-like column falls far below the newswire\n"
      "column for every architecture.\n");
  return 0;
}
