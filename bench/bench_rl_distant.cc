// E12 — Section 4.4: reinforcement-learned instance selection for
// distantly supervised NER (Yang et al. 2018).
//
// Distant supervision: annotate raw text by gazetteer matching with partial
// coverage, producing noisy labels (missed entities + additional corruption).
// The RL instance selector learns to keep sentences whose noisy labels are
// trustworthy, "reducing the effect of noisy annotation".
#include "bench/bench_common.h"

#include "applied/distant.h"

int main() {
  using namespace dlner;
  using namespace dlner::bench;

  PrintHeader("E12: RL instance selection for distant supervision "
              "(survey Section 4.4)");

  const auto genre = data::Genre::kNews;
  const auto& types = data::EntityTypesFor(genre);

  // Clean corpora for dev/test and as the distant-supervision source.
  BenchData bd = MakeBenchData(genre, 300, 120, 121, /*test_oov=*/0.2);

  // Distant supervision: a 55%-coverage gazetteer annotates raw training
  // text; remaining gold structure is discarded.
  data::Gazetteer gazetteer =
      data::Gazetteer::FromCorpus(bd.train, /*coverage=*/0.55, 122);
  text::Corpus noisy;
  for (const text::Sentence& s : bd.train.sentences) {
    text::Sentence distant;
    distant.tokens = s.tokens;
    distant.spans = gazetteer.Annotate(s.tokens);
    noisy.sentences.push_back(std::move(distant));
  }
  // Additional boundary/type corruption on top of the coverage gaps.
  noisy = data::CorruptLabels(noisy, 0.15, types, 123);

  eval::ExactMatchEvaluator noise_ev;
  for (size_t i = 0; i < noisy.sentences.size(); ++i) {
    noise_ev.Add(bd.train.sentences[i].spans, noisy.sentences[i].spans);
  }
  std::printf("noisy-label quality vs gold: F1=%.3f\n\n",
              noise_ev.Result().micro.f1());

  // Clean-data upper bound.
  core::NerConfig config;
  config.seed = 124;
  core::TrainConfig tc;
  tc.epochs = 8;
  tc.lr = 0.015;
  double clean_f1;
  {
    core::NerModel model(config, bd.train, types);
    core::Trainer trainer(&model, tc);
    trainer.Train(bd.train, nullptr);
    clean_f1 = model.Evaluate(bd.test).micro.f1();
  }

  applied::DistantConfig dcfg;
  dcfg.episodes = 8;
  dcfg.warmup_epochs = 4;
  dcfg.episode_epochs = 3;
  dcfg.final_epochs = 8;
  dcfg.policy_lr = 0.3;
  dcfg.model_config = config;
  dcfg.train = tc;
  applied::InstanceSelector selector(dcfg);
  applied::DistantResult result = selector.Run(noisy, bd.dev, bd.test, types);

  std::printf("%-36s %10s\n", "training data", "test F1");
  std::printf("%-36s %10.3f\n", "clean gold labels (upper bound)", clean_f1);
  std::printf("%-36s %10.3f\n", "all noisy distant labels",
              result.f1_all_data);
  std::printf("%-36s %10.3f\n", "RL-selected noisy subset",
              result.f1_selected);
  std::printf("\nepisodes: ");
  for (size_t e = 0; e < result.episode_rewards.size(); ++e) {
    std::printf("[R=%.3f keep=%.0f%%] ", result.episode_rewards[e],
                100.0 * result.keep_fractions[e]);
  }
  std::printf(
      "\n\nShape check vs the paper: the dev-gated selection trains a tagger\n"
      "at or above the all-noisy baseline and below the clean upper bound\n"
      "(survey Section 4.4).\n");
  return 0;
}
