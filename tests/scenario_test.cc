// Tests for the hostile-input scenario generators (src/data/scenarios.h):
// the determinism contract (same options -> byte-identical corpus), the
// calibration of the OCR/ASR noise channels against their exact reported
// stats, the structural guarantees of each scenario (long-doc token floor,
// discontinuous overlap, consistency document layout), and the round-trip
// of rendered documents through the streaming tokenizer.
//
// Labeled `scenario` in tests/CMakeLists.txt; the sanitizer preset runs this
// slice so every generator and channel is asan-checked.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/scenarios.h"
#include "eval/metrics.h"
#include "text/stream_tokenizer.h"
#include "text/types.h"

namespace dlner::data {
namespace {

bool SameCorpus(const text::Corpus& a, const text::Corpus& b) {
  if (a.size() != b.size() || a.doc_starts != b.doc_starts) return false;
  for (int i = 0; i < a.size(); ++i) {
    const text::Sentence& sa = a.sentences[static_cast<size_t>(i)];
    const text::Sentence& sb = b.sentences[static_cast<size_t>(i)];
    if (sa.tokens != sb.tokens) return false;
    if (sa.spans.size() != sb.spans.size()) return false;
    for (size_t s = 0; s < sa.spans.size(); ++s) {
      if (sa.spans[s].start != sb.spans[s].start ||
          sa.spans[s].end != sb.spans[s].end ||
          sa.spans[s].type != sb.spans[s].type) {
        return false;
      }
    }
  }
  return true;
}

// Structural sanity every generator must satisfy: non-empty, no empty
// tokens, spans in bounds with known types.
void CheckWellFormed(const text::Corpus& corpus, Scenario sc) {
  ASSERT_GT(corpus.size(), 0) << ScenarioToString(sc);
  const std::vector<std::string>& types = ScenarioEntityTypes(sc);
  for (const text::Sentence& sentence : corpus.sentences) {
    ASSERT_FALSE(sentence.tokens.empty());
    for (const std::string& tok : sentence.tokens) {
      EXPECT_FALSE(tok.empty());
    }
    for (const text::Span& span : sentence.spans) {
      EXPECT_GE(span.start, 0);
      EXPECT_LT(span.start, span.end);
      EXPECT_LE(span.end, static_cast<int>(sentence.tokens.size()));
      EXPECT_NE(std::find(types.begin(), types.end(), span.type), types.end())
          << ScenarioToString(sc) << " unknown type " << span.type;
    }
  }
  for (size_t d = 0; d + 1 < corpus.doc_starts.size(); ++d) {
    EXPECT_LT(corpus.doc_starts[d], corpus.doc_starts[d + 1]);
  }
}

TEST(ScenarioTest, NamesRoundTrip) {
  for (const Scenario sc : AllScenarios()) {
    EXPECT_EQ(ScenarioFromString(ScenarioToString(sc)), sc);
  }
  EXPECT_EQ(AllScenarios().size(), 6u);
}

// The determinism contract: every generator is a pure function of its
// options. Same seed -> byte-identical corpus; different seed -> different
// corpus.
TEST(ScenarioTest, GeneratorsAreSeedDeterministic) {
  for (const Scenario sc : AllScenarios()) {
    ScenarioOptions opts;
    opts.seed = 77;
    opts.num_sentences = 40;
    opts.min_doc_tokens = 800;
    const text::Corpus a = GenerateScenario(sc, opts);
    const text::Corpus b = GenerateScenario(sc, opts);
    EXPECT_TRUE(SameCorpus(a, b)) << ScenarioToString(sc);
    CheckWellFormed(a, sc);

    opts.seed = 78;
    const text::Corpus c = GenerateScenario(sc, opts);
    EXPECT_FALSE(SameCorpus(a, c))
        << ScenarioToString(sc) << " ignores its seed";
  }
}

TEST(ScenarioTest, SplitsAreSeedDeterministicAndTrainIsClean) {
  for (const Scenario sc : AllScenarios()) {
    ScenarioOptions opts;
    opts.seed = 13;
    opts.num_sentences = 40;
    opts.min_doc_tokens = 800;
    const ScenarioSplit a = MakeScenarioSplit(sc, opts);
    const ScenarioSplit b = MakeScenarioSplit(sc, opts);
    EXPECT_TRUE(SameCorpus(a.train, b.train)) << ScenarioToString(sc);
    EXPECT_TRUE(SameCorpus(a.test, b.test)) << ScenarioToString(sc);
    ASSERT_GT(a.train.size(), 0) << ScenarioToString(sc);
    CheckWellFormed(a.train, sc);
  }
}

TEST(ScenarioTest, CodeSwitchedNeverTouchesEntityTokens) {
  ScenarioOptions opts;
  opts.seed = 5;
  opts.num_sentences = 60;
  opts.code_switch_rate = 1.0;  // force every eligible token to switch
  const text::Corpus hostile = GenerateScenario(Scenario::kCodeSwitched, opts);
  // With rate 1.0 every non-entity non-punctuation token is replaced by an
  // L2 word, so at least one multi-byte UTF-8 token must appear...
  bool saw_multibyte = false;
  for (const text::Sentence& sentence : hostile.sentences) {
    std::vector<bool> in_span(sentence.tokens.size(), false);
    for (const text::Span& span : sentence.spans) {
      for (int i = span.start; i < span.end; ++i) in_span[static_cast<size_t>(i)] = true;
    }
    for (size_t i = 0; i < sentence.tokens.size(); ++i) {
      const std::string& tok = sentence.tokens[i];
      const bool multibyte =
          std::any_of(tok.begin(), tok.end(),
                      [](char c) { return static_cast<unsigned char>(c) >= 0x80; });
      if (multibyte) {
        saw_multibyte = true;
        // ...and entity tokens must never be among them (spans stay gold).
        EXPECT_FALSE(in_span[i]) << "entity token replaced: " << tok;
      }
    }
  }
  EXPECT_TRUE(saw_multibyte);
}

// The OCR channel's reported corruption rate must match the requested rate
// within a binomial-confidence tolerance, and must never produce empty
// tokens or invalid UTF-8.
TEST(ScenarioTest, OcrChannelIsCalibrated) {
  ScenarioOptions opts;
  opts.seed = 21;
  opts.num_sentences = 200;
  text::Corpus corpus = GenerateScenario(Scenario::kCodeSwitched, opts);

  const double rate = 0.08;
  NoiseChannelStats stats;
  ApplyOcrChannel(&corpus, rate, 99, &stats);
  ASSERT_GT(stats.chars_eligible, 2000);
  const double observed = static_cast<double>(stats.chars_corrupted) /
                          static_cast<double>(stats.chars_eligible);
  // ~4-sigma band for a binomial with n >= 2000, p = 0.08.
  EXPECT_NEAR(observed, rate, 0.025);

  for (const text::Sentence& sentence : corpus.sentences) {
    for (const std::string& tok : sentence.tokens) {
      ASSERT_FALSE(tok.empty());
      // Multi-byte sequences are never touched, so UTF-8 stays valid:
      // every continuation byte must follow a lead byte.
      for (size_t i = 0; i < tok.size(); ++i) {
        const unsigned char c = static_cast<unsigned char>(tok[i]);
        if ((c & 0xC0) == 0x80) {
          ASSERT_GT(i, 0u);
          const unsigned char prev = static_cast<unsigned char>(tok[i - 1]);
          EXPECT_TRUE(prev >= 0x80) << tok;
        }
      }
    }
  }

  // Rate 0 is the identity and reports zero corruptions.
  text::Corpus clean = GenerateScenario(Scenario::kCodeSwitched, opts);
  NoiseChannelStats zero;
  ApplyOcrChannel(&clean, 0.0, 99, &zero);
  EXPECT_EQ(zero.chars_corrupted, 0);
  EXPECT_TRUE(SameCorpus(clean, GenerateScenario(Scenario::kCodeSwitched, opts)));
}

TEST(ScenarioTest, AsrChannelLowercasesAndKeepsSpansValid) {
  ScenarioOptions opts;
  opts.seed = 33;
  opts.num_sentences = 120;
  const text::Corpus hostile = GenerateScenario(Scenario::kAsrNoise, opts);
  for (const text::Sentence& sentence : hostile.sentences) {
    for (const std::string& tok : sentence.tokens) {
      for (char c : tok) {
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)))
            << "ASR output must be lowercase: " << tok;
      }
    }
    for (const text::Span& span : sentence.spans) {
      EXPECT_GE(span.start, 0);
      EXPECT_LT(span.start, span.end);
      EXPECT_LE(span.end, static_cast<int>(sentence.tokens.size()));
    }
  }
}

TEST(ScenarioTest, LongDocMeetsTokenFloorWithRecurringEntities) {
  ScenarioOptions opts;
  opts.seed = 3;
  opts.min_doc_tokens = 10000;
  const text::Corpus doc = GenerateScenario(Scenario::kLongDoc, opts);
  int64_t tokens = 0;
  for (const text::Sentence& sentence : doc.sentences) {
    tokens += static_cast<int64_t>(sentence.tokens.size());
  }
  EXPECT_GE(tokens, 10000);
  ASSERT_EQ(doc.DocCount(), 1);
  const auto [first, last] = doc.DocRange(0);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, doc.size());

  // The recurring cast must actually recur: some entity surface appears in
  // many distinct sentences.
  std::map<std::string, int> surface_sentences;
  for (const text::Sentence& sentence : doc.sentences) {
    std::set<std::string> here;
    for (const text::Span& span : sentence.spans) {
      std::string surface;
      for (int i = span.start; i < span.end; ++i) {
        if (!surface.empty()) surface.push_back(' ');
        surface += sentence.tokens[static_cast<size_t>(i)];
      }
      here.insert(surface);
    }
    for (const std::string& s : here) ++surface_sentences[s];
  }
  int max_recurrence = 0;
  for (const auto& [surface, count] : surface_sentences) {
    max_recurrence = std::max(max_recurrence, count);
  }
  EXPECT_GE(max_recurrence, 10);
}

// Discontinuous mentions are represented as overlapping component spans;
// they must survive a round-trip through the exact-match scorer (perfect
// self-score, imperfect when a component is dropped).
TEST(ScenarioTest, DiscontinuousSpansRoundTripThroughScorer) {
  ScenarioOptions opts;
  opts.seed = 9;
  opts.num_sentences = 60;
  const text::Corpus corpus = GenerateScenario(Scenario::kDiscontinuous, opts);

  bool saw_overlap = false;
  std::vector<std::vector<text::Span>> gold, dropped;
  for (const text::Sentence& sentence : corpus.sentences) {
    gold.push_back(sentence.spans);
    std::vector<text::Span> partial = sentence.spans;
    if (partial.size() > 1) partial.pop_back();
    dropped.push_back(partial);
    for (size_t a = 0; a < sentence.spans.size(); ++a) {
      for (size_t b = a + 1; b < sentence.spans.size(); ++b) {
        const text::Span& x = sentence.spans[a];
        const text::Span& y = sentence.spans[b];
        if (x.start < y.end && y.start < x.end) saw_overlap = true;
      }
    }
  }
  ASSERT_TRUE(saw_overlap) << "no discontinuous (overlapping) annotation";
  EXPECT_DOUBLE_EQ(eval::EvaluateExact(gold, gold).micro.f1(), 1.0);
  const double partial_f1 = eval::EvaluateExact(gold, dropped).micro.f1();
  EXPECT_LT(partial_f1, 1.0);
  EXPECT_GT(partial_f1, 0.0);
}

TEST(ScenarioTest, ConsistencyDocsRepeatTheirPersonAcrossSentences) {
  ScenarioOptions opts;
  opts.seed = 17;
  opts.num_sentences = 50;
  opts.sentences_per_doc = 5;
  const text::Corpus corpus =
      GenerateScenario(Scenario::kEntityConsistency, opts);
  ASSERT_GT(corpus.DocCount(), 1);
  for (int d = 0; d < corpus.DocCount(); ++d) {
    const auto [first, last] = corpus.DocRange(d);
    ASSERT_LT(first, last);
    // Every PER mention inside one document is the same surface form, and it
    // appears in at least two sentences (that is what makes document context
    // worth anything).
    std::set<std::string> per_surfaces;
    int per_sentences = 0;
    for (int i = first; i < last; ++i) {
      const text::Sentence& sentence = corpus.sentences[static_cast<size_t>(i)];
      bool has_per = false;
      for (const text::Span& span : sentence.spans) {
        if (span.type != "PER") continue;
        has_per = true;
        ASSERT_EQ(span.end - span.start, 1);
        per_surfaces.insert(sentence.tokens[static_cast<size_t>(span.start)]);
      }
      if (has_per) ++per_sentences;
    }
    EXPECT_EQ(per_surfaces.size(), 1u) << "doc " << d;
    EXPECT_GE(per_sentences, 2) << "doc " << d;
  }
}

// RenderDocument must reproduce the corpus sentence split exactly when fed
// back through the streaming tokenizer — the invariant the streaming
// benchmark and the doc-context differential rely on.
TEST(ScenarioTest, RenderedDocumentsRetokenizeToTheSameSplit) {
  for (const Scenario sc :
       {Scenario::kEntityConsistency, Scenario::kLongDoc,
        Scenario::kCodeSwitched}) {
    ScenarioOptions opts;
    opts.seed = 29;
    opts.num_sentences = 30;
    opts.min_doc_tokens = 600;
    const text::Corpus corpus = GenerateScenario(sc, opts);
    for (int d = 0; d < corpus.DocCount(); ++d) {
      const std::string raw = RenderDocument(corpus, d);
      text::StreamTokenizer tokenizer;
      tokenizer.Feed(raw);
      tokenizer.Flush();
      const auto [first, last] = corpus.DocRange(d);
      for (int i = first; i < last; ++i) {
        ASSERT_TRUE(tokenizer.HasSentence())
            << ScenarioToString(sc) << " doc " << d << " sentence " << i;
        EXPECT_EQ(tokenizer.NextSentence(),
                  corpus.sentences[static_cast<size_t>(i)].tokens);
      }
      EXPECT_FALSE(tokenizer.HasSentence()) << ScenarioToString(sc);
    }
  }
}

}  // namespace
}  // namespace dlner::data
