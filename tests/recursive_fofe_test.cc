// Tests for the two late-added taxonomy cells: the bidirectional recursive
// encoder over heuristic constituency structure (survey Fig. 8, [97]) and
// the FOFE span-classification decoder ([115]).
#include <cmath>

#include <gtest/gtest.h>

#include "decoders/fofe.h"
#include "encoders/recursive.h"
#include "tensor/gradcheck.h"
#include "tensor/optim.h"
#include "tensor/ops.h"

namespace dlner {
namespace {

using decoders::FofeDecoder;
using encoders::BinaryTree;
using encoders::BuildBalancedTree;
using encoders::BuildHeuristicTree;
using encoders::RecursiveEncoder;

Var RandomInput(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t({rows, cols});
  for (int i = 0; i < t.size(); ++i) t[i] = rng.Uniform(-1.0, 1.0);
  return Parameter(std::move(t));
}

// --- Trees ---

TEST(TreeTest, BalancedTreeCoversAllTokens) {
  for (int n : {1, 2, 3, 7, 12}) {
    BinaryTree tree = BuildBalancedTree(n);
    EXPECT_EQ(tree.num_tokens, n);
    // Exactly 2n-1 nodes for a full binary tree over n leaves.
    EXPECT_EQ(static_cast<int>(tree.nodes.size()), 2 * n - 1);
    const auto& root = tree.nodes[tree.root()];
    EXPECT_EQ(root.start, 0);
    EXPECT_EQ(root.end, n);
    EXPECT_EQ(root.parent, -1);
    // Every non-root node has a parent that covers it.
    for (int i = 0; i < tree.root(); ++i) {
      const auto& node = tree.nodes[i];
      ASSERT_GE(node.parent, 0);
      EXPECT_LE(tree.nodes[node.parent].start, node.start);
      EXPECT_GE(tree.nodes[node.parent].end, node.end);
    }
  }
}

TEST(TreeTest, InternalNodesFollowChildren) {
  // The encoder relies on children having smaller indexes than parents.
  BinaryTree tree = BuildHeuristicTree(
      {"John", "slept", ".", "Mary", "ran", "."});
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const auto& node = tree.nodes[i];
    if (node.left >= 0) {
      EXPECT_LT(node.left, static_cast<int>(i));
      EXPECT_LT(node.right, static_cast<int>(i));
    }
  }
}

TEST(TreeTest, HeuristicTreeSegmentsAtPunctuation) {
  BinaryTree tree = BuildHeuristicTree(
      {"John", "slept", ".", "Mary", "ran", "."});
  // Some internal node must cover exactly the first segment [0, 3).
  bool found_first_segment = false;
  for (const auto& node : tree.nodes) {
    if (node.start == 0 && node.end == 3 && node.left >= 0) {
      found_first_segment = true;
    }
  }
  EXPECT_TRUE(found_first_segment);
}

// --- Recursive encoder ---

TEST(RecursiveEncoderTest, OutputShape) {
  Rng rng(1);
  RecursiveEncoder enc(5, 7, &rng);
  Var x = Constant(Tensor({9, 5}));
  Var out = enc.Encode(x, false);
  EXPECT_EQ(out->value.rows(), 9);
  EXPECT_EQ(out->value.cols(), 14);
  EXPECT_EQ(enc.out_dim(), 14);
}

TEST(RecursiveEncoderTest, GradCheck) {
  Rng rng(2);
  RecursiveEncoder enc(3, 4, &rng);
  Var x = RandomInput(5, 3, 3);
  std::vector<Var> inputs = enc.Parameters();
  inputs.push_back(x);
  EXPECT_LT(
      MaxGradError([&] { return Mean(Tanh(enc.Encode(x, false))); }, inputs),
      2e-5);
}

TEST(RecursiveEncoderTest, TopDownPropagatesGlobalContext) {
  // Changing the last token must change the first token's representation
  // (through the root's top-down path).
  Rng rng(4);
  RecursiveEncoder enc(2, 4, &rng);
  Rng data_rng(5);
  Tensor base({8, 2});
  for (int i = 0; i < base.size(); ++i) base[i] = data_rng.Uniform(-1, 1);
  Tensor modified = base;
  modified.at(7, 0) += 2.0;
  Var out_a = enc.Encode(Constant(base), false);
  Var out_b = enc.Encode(Constant(modified), false);
  bool changed = false;
  for (int j = 0; j < enc.out_dim(); ++j) {
    if (out_a->value.at(0, j) != out_b->value.at(0, j)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(RecursiveEncoderTest, BottomUpHalfIsLocalToSubtree) {
  // With a balanced tree over 8 tokens, token 0's bottom-up leaf state
  // depends only on token 0 itself (the first out_dim/2 columns).
  Rng rng(6);
  RecursiveEncoder enc(2, 4, &rng);
  Tensor base({8, 2});
  Tensor modified = base;
  modified.at(7, 0) = 3.0;
  Var out_a = enc.Encode(Constant(base), false);
  Var out_b = enc.Encode(Constant(modified), false);
  for (int j = 0; j < 4; ++j) {  // bottom-up half
    EXPECT_DOUBLE_EQ(out_a->value.at(0, j), out_b->value.at(0, j));
  }
}

TEST(RecursiveEncoderTest, SingleTokenSentence) {
  Rng rng(7);
  RecursiveEncoder enc(3, 4, &rng);
  Var out = enc.Encode(Constant(Tensor({1, 3})), false);
  EXPECT_EQ(out->value.rows(), 1);
}

// --- FOFE decoder ---

TEST(FofeTest, EncodeMatchesClosedForm) {
  Rng rng(8);
  FofeDecoder dec(2, {"X"}, 3, 0.5, &rng);
  Var m = Constant(Tensor({3, 2}, {1.0, 0.0, 2.0, 0.0, 4.0, 0.0}));
  // Forward over all rows: alpha^2*1 + alpha*2 + 4 = 0.25 + 1 + 4 = 5.25.
  Var fwd = dec.Encode(m, 0, 3, /*reverse=*/false);
  EXPECT_NEAR(fwd->value[0], 5.25, 1e-12);
  // Reverse: 1 + alpha*2 + alpha^2*4 = 1 + 1 + 1 = 3.
  Var bwd = dec.Encode(m, 0, 3, /*reverse=*/true);
  EXPECT_NEAR(bwd->value[0], 3.0, 1e-12);
  // Empty range -> zeros.
  Var empty = dec.Encode(m, 2, 2, false);
  EXPECT_EQ(empty->value.size(), 2);
  EXPECT_EQ(empty->value[0], 0.0);
}

TEST(FofeTest, UniquenessForSmallAlpha) {
  // For alpha <= 0.5 FOFE is injective over binary sequences (Zhang et
  // al.); distinct index sequences must encode differently.
  Rng rng(9);
  FofeDecoder dec(1, {"X"}, 4, 0.5, &rng);
  Var a = Constant(Tensor({4, 1}, {1.0, 0.0, 1.0, 0.0}));
  Var b = Constant(Tensor({4, 1}, {0.0, 1.0, 0.0, 1.0}));
  EXPECT_NE(dec.Encode(a, 0, 4, false)->value[0],
            dec.Encode(b, 0, 4, false)->value[0]);
}

TEST(FofeTest, LossGradChecks) {
  Rng rng(10);
  FofeDecoder dec(3, {"PER"}, 3, 0.5, &rng);
  Var enc = RandomInput(4, 3, 11);
  text::Sentence s;
  s.tokens = {"a", "b", "c", "d"};
  s.spans = {{1, 3, "PER"}};
  std::vector<Var> inputs = dec.Parameters();
  inputs.push_back(enc);
  EXPECT_LT(MaxGradError([&] { return dec.Loss(enc, s); }, inputs), 1e-5);
}

TEST(FofeTest, OverfitsToy) {
  Rng rng(12);
  FofeDecoder dec(6, {"PER", "LOC"}, 4, 0.5, &rng);
  Var enc = Constant([&] {
    Rng r(13);
    Tensor t({5, 6});
    for (int i = 0; i < t.size(); ++i) t[i] = r.Uniform(-1, 1);
    return t;
  }());
  text::Sentence gold;
  gold.tokens = {"John", "Smith", "visited", "Paris", "."};
  gold.spans = {{0, 2, "PER"}, {3, 4, "LOC"}};
  Adam opt(dec.Parameters(), 0.03);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Backward(dec.Loss(enc, gold));
    opt.ClipGradNorm(5.0);
    opt.Step();
  }
  std::vector<text::Span> predicted = dec.Predict(enc);
  std::sort(predicted.begin(), predicted.end());
  EXPECT_EQ(predicted, gold.spans);
}

TEST(FofeTest, PredictionsAreFlat) {
  Rng rng(14);
  FofeDecoder dec(4, {"A", "B"}, 3, 0.5, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    Var enc = RandomInput(9, 4, 500 + trial);
    std::vector<text::Span> spans = dec.Predict(enc);
    EXPECT_TRUE(text::SpansAreValid(spans, 9));
    EXPECT_TRUE(text::SpansAreFlat(spans));
    for (const auto& sp : spans) EXPECT_LE(sp.end - sp.start, 3);
  }
}

}  // namespace
}  // namespace dlner
