#include "tensor/tensor.h"

#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "tensor/arena.h"

namespace dlner {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.size(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZeroFilledConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0);
}

TEST(TensorTest, ExplicitData) {
  Tensor t({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(t.at(0, 0), 1.0);
  EXPECT_EQ(t.at(0, 1), 2.0);
  EXPECT_EQ(t.at(1, 0), 3.0);
  EXPECT_EQ(t.at(1, 1), 4.0);
}

TEST(TensorTest, RowMajorLayout) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0;
  EXPECT_EQ(t[5], 7.0);
  t.at(0, 1) = 3.0;
  EXPECT_EQ(t[1], 3.0);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1.0, 2.0, 5.0});
  EXPECT_EQ(t.dim(), 1);
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t[2], 5.0);
}

TEST(TensorTest, FullFill) {
  Tensor t = Tensor::Full({3}, 2.5);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5);
  t.Fill(-1.0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t[i], -1.0);
}

TEST(TensorTest, AccumulateFrom) {
  Tensor a = Tensor::FromVector({1.0, 2.0});
  Tensor b = Tensor::FromVector({10.0, 20.0});
  a.AccumulateFrom(b);
  EXPECT_EQ(a[0], 11.0);
  EXPECT_EQ(a[1], 22.0);
}

TEST(TensorTest, Norm) {
  Tensor t = Tensor::FromVector({3.0, 4.0});
  EXPECT_DOUBLE_EQ(t.Norm(), 5.0);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2x3]");
  EXPECT_EQ(Tensor({4}).ShapeString(), "[4]");
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).SameShape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).SameShape(Tensor({3, 2})));
  EXPECT_FALSE(Tensor({6}).SameShape(Tensor({2, 3})));
}

TEST(TensorDeathTest, OutOfRangeAccessAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH(t.at(2, 0), "DLNER_CHECK");
  EXPECT_DEATH(t[4], "DLNER_CHECK");
}

TEST(TensorDeathTest, MismatchedDataSizeAborts) {
  EXPECT_DEATH(Tensor({2, 2}, {1.0}), "DLNER_CHECK");
}

// --- Bump-pointer arena (inference-plan activation buffers) ---------------

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena;
  Float* a = arena.Alloc(16);
  Float* b = arena.Alloc(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b >= a + 16 || a >= b + 16);  // no overlap
  for (int i = 0; i < 16; ++i) a[i] = 1.0;
  for (int i = 0; i < 16; ++i) b[i] = 2.0;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], 1.0);
}

TEST(ArenaTest, AllocZeroIsZeroFilled) {
  Arena arena;
  Float* a = arena.Alloc(32);
  std::memset(a, 0xff, 32 * sizeof(Float));
  arena.Reset();
  Float* z = arena.AllocZero(32);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(z[i], 0.0) << i;
}

TEST(ArenaTest, ResetReusesBlocksWithoutNewReservation) {
  Arena arena;
  arena.Alloc(100);
  arena.Alloc(200);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    arena.Alloc(100);
    arena.Alloc(200);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
  }
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena;
  const std::size_t big = 4 * Arena::kInitialFloats;
  Float* p = arena.Alloc(big);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0;
  p[big - 1] = 2.0;
  EXPECT_GE(arena.bytes_reserved(), big * sizeof(Float));
}

TEST(ArenaTest, HighWaterTracksPeakLiveBytesAcrossResets) {
  Arena arena;
  arena.Alloc(1000);
  arena.Alloc(500);
  const std::size_t peak = arena.high_water();
  EXPECT_GE(peak, 1500 * sizeof(Float));
  arena.Reset();
  arena.Alloc(10);  // smaller round must not lower the peak
  EXPECT_EQ(arena.high_water(), peak);
  arena.Reset();
  arena.Alloc(2000);
  EXPECT_GE(arena.high_water(), 2000 * sizeof(Float));
}

TEST(ArenaTest, ManySmallAllocationsSpanBlocksSafely) {
  Arena arena;
  std::set<Float*> seen;
  std::vector<Float*> ptrs;
  // Enough to force several block spills past kInitialFloats.
  for (int i = 0; i < 200; ++i) {
    Float* p = arena.Alloc(Arena::kInitialFloats / 3);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate pointer at " << i;
    p[0] = static_cast<Float>(i);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ptrs[i][0], static_cast<Float>(i)) << i;
  }
}

}  // namespace
}  // namespace dlner
