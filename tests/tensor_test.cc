#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace dlner {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.size(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZeroFilledConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0);
}

TEST(TensorTest, ExplicitData) {
  Tensor t({2, 2}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(t.at(0, 0), 1.0);
  EXPECT_EQ(t.at(0, 1), 2.0);
  EXPECT_EQ(t.at(1, 0), 3.0);
  EXPECT_EQ(t.at(1, 1), 4.0);
}

TEST(TensorTest, RowMajorLayout) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0;
  EXPECT_EQ(t[5], 7.0);
  t.at(0, 1) = 3.0;
  EXPECT_EQ(t[1], 3.0);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({1.0, 2.0, 5.0});
  EXPECT_EQ(t.dim(), 1);
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t[2], 5.0);
}

TEST(TensorTest, FullFill) {
  Tensor t = Tensor::Full({3}, 2.5);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5);
  t.Fill(-1.0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t[i], -1.0);
}

TEST(TensorTest, AccumulateFrom) {
  Tensor a = Tensor::FromVector({1.0, 2.0});
  Tensor b = Tensor::FromVector({10.0, 20.0});
  a.AccumulateFrom(b);
  EXPECT_EQ(a[0], 11.0);
  EXPECT_EQ(a[1], 22.0);
}

TEST(TensorTest, Norm) {
  Tensor t = Tensor::FromVector({3.0, 4.0});
  EXPECT_DOUBLE_EQ(t.Norm(), 5.0);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2x3]");
  EXPECT_EQ(Tensor({4}).ShapeString(), "[4]");
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).SameShape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).SameShape(Tensor({3, 2})));
  EXPECT_FALSE(Tensor({6}).SameShape(Tensor({2, 3})));
}

TEST(TensorDeathTest, OutOfRangeAccessAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH(t.at(2, 0), "DLNER_CHECK");
  EXPECT_DEATH(t[4], "DLNER_CHECK");
}

TEST(TensorDeathTest, MismatchedDataSizeAborts) {
  EXPECT_DEATH(Tensor({2, 2}, {1.0}), "DLNER_CHECK");
}

}  // namespace
}  // namespace dlner
