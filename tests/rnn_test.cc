#include "tensor/rnn.h"

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace dlner {
namespace {

Var RandomInput(std::vector<int> shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.size(); ++i) t[i] = rng->Uniform(-1.0, 1.0);
  return Parameter(std::move(t));
}

class CellTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CellTest, OutputShape) {
  Rng rng(1);
  auto cell = MakeRnnCell(GetParam(), 3, 4, &rng, "cell");
  Var x = Constant(Tensor({6, 3}));
  Var out = RunRnn(*cell, x, /*reverse=*/false);
  EXPECT_EQ(out->value.rows(), 6);
  EXPECT_EQ(out->value.cols(), 4);
}

TEST_P(CellTest, GradCheckThroughTime) {
  Rng rng(2);
  auto cell = MakeRnnCell(GetParam(), 2, 3, &rng, "cell");
  Rng data_rng(3);
  Var x = RandomInput({4, 2}, &data_rng);
  std::vector<Var> inputs = cell->Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(RunRnn(*cell, x, false)); }, inputs),
            1e-5);
}

TEST_P(CellTest, ReverseGradCheck) {
  Rng rng(4);
  auto cell = MakeRnnCell(GetParam(), 2, 2, &rng, "cell");
  Rng data_rng(5);
  Var x = RandomInput({5, 2}, &data_rng);
  std::vector<Var> inputs = cell->Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(RunRnn(*cell, x, true)); }, inputs),
            1e-5);
}

TEST_P(CellTest, ReverseAlignsOutputRows) {
  // Reversed runs must still place the representation of token t at row t.
  Rng rng(6);
  auto cell = MakeRnnCell(GetParam(), 1, 2, &rng, "cell");
  Var x = Constant(Tensor({3, 1}, {1.0, 2.0, 3.0}));
  Var out = RunRnn(*cell, x, /*reverse=*/true);
  // The last processed token in a reverse run is t=0, so row 0 depends on
  // the whole sequence; row 2 depends only on token 2. Check by zeroing
  // token 0 and confirming row 2 is unchanged.
  Var x2 = Constant(Tensor({3, 1}, {0.0, 2.0, 3.0}));
  Var out2 = RunRnn(*cell, x2, /*reverse=*/true);
  for (int j = 0; j < 2; ++j) {
    EXPECT_DOUBLE_EQ(out->value.at(2, j), out2->value.at(2, j));
  }
  // ...while row 0 does change.
  bool changed = false;
  for (int j = 0; j < 2; ++j) {
    if (out->value.at(0, j) != out2->value.at(0, j)) changed = true;
  }
  EXPECT_TRUE(changed);
}

INSTANTIATE_TEST_SUITE_P(Cells, CellTest, ::testing::Values("lstm", "gru"),
                         [](const auto& info) { return info.param; });

TEST(BiRnnTest, ConcatenatesDirections) {
  Rng rng(7);
  BiRnn bi("lstm", 3, 4, &rng);
  Var x = Constant(Tensor({5, 3}));
  Var out = bi.Apply(x);
  EXPECT_EQ(out->value.rows(), 5);
  EXPECT_EQ(out->value.cols(), 8);
  EXPECT_EQ(bi.out_dim(), 8);
}

TEST(BiRnnTest, GradCheck) {
  Rng rng(8);
  BiRnn bi("gru", 2, 2, &rng);
  Rng data_rng(9);
  Var x = RandomInput({3, 2}, &data_rng);
  std::vector<Var> inputs = bi.Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(Tanh(bi.Apply(x))); }, inputs),
            1e-5);
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
  Rng rng(10);
  LstmCell cell(2, 3, &rng);
  Var bias = cell.Parameters()[1];
  for (int j = 3; j < 6; ++j) EXPECT_DOUBLE_EQ(bias->value[j], 1.0);
  for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(bias->value[j], 0.0);
}

TEST(RnnTest, FinalStateMatchesLastOutput) {
  Rng rng(11);
  LstmCell cell(2, 3, &rng);
  Rng data_rng(12);
  Var x = RandomInput({4, 2}, &data_rng);
  auto [out, state] = RunRnnWithState(cell, x, /*reverse=*/false);
  for (int j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(out->value.at(3, j), state.h->value[j]);
  }
}

TEST(RnnDeathTest, UnknownCellKindAborts) {
  Rng rng(13);
  EXPECT_DEATH(MakeRnnCell("vanilla", 2, 2, &rng, "x"), "unknown rnn cell");
}

}  // namespace
}  // namespace dlner
