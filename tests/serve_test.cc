// Tests for the serving subsystem (src/serve/): request framing, the LRU
// response cache, the hot-reloadable model registry, and end-to-end server
// behavior over real localhost sockets — malformed and oversized request
// lines, half-closed and abruptly-closed connections, queue-full
// backpressure, hot reload under load, and the bit-identity of cached and
// served responses with the `dlner tag` prediction path.
//
// Labeled `serve fuzz` in tests/CMakeLists.txt: the framing tests double as
// the deterministic fuzz slice for the line protocol, so the sanitizer CI
// preset runs them under asan.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/scenarios.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "stream/entity_memory.h"

namespace dlner::serve {
namespace {

// ---------------------------------------------------------------------------
// Protocol framing

Request Parse(const std::string& line, bool* ok, std::string* error = nullptr,
              int* code = nullptr) {
  Request req;
  std::string err;
  int c = 0;
  *ok = ParseRequest(line, &req, &err, &c);
  if (error != nullptr) *error = err;
  if (code != nullptr) *code = c;
  return req;
}

TEST(ProtocolTest, ParsesTokensRequest) {
  bool ok = false;
  Request req =
      Parse(R"({"id":7,"model":"ner","tokens":["John","visited","Paris"]})",
            &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(req.kind, Request::Kind::kTag);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.model, "ner");
  EXPECT_EQ(req.tokens,
            (std::vector<std::string>{"John", "visited", "Paris"}));
}

TEST(ProtocolTest, TextIsWhitespaceTokenized) {
  bool ok = false;
  Request req = Parse(R"({"text":"  John\tvisited \n Paris  "})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_FALSE(req.has_id);
  EXPECT_EQ(req.model, "default");
  EXPECT_EQ(req.tokens,
            (std::vector<std::string>{"John", "visited", "Paris"}));
}

TEST(ProtocolTest, UnicodeEscapesDecodeToUtf8) {
  bool ok = false;
  Request req = Parse(R"({"tokens":["Aé€"]})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(req.tokens[0], "A\xc3\xa9\xe2\x82\xac");
}

TEST(ProtocolTest, AdminRequests) {
  bool ok = false;
  Request req = Parse(R"({"cmd":"reload","model":"ner","path":"m.bin"})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(req.kind, Request::Kind::kAdmin);
  EXPECT_EQ(req.cmd, "reload");
  EXPECT_EQ(req.model, "ner");
  EXPECT_EQ(req.path, "m.bin");
  for (const char* cmd : {"models", "stats", "metrics", "shutdown"}) {
    req = Parse(std::string("{\"cmd\":\"") + cmd + "\"}", &ok);
    EXPECT_TRUE(ok) << cmd;
    EXPECT_EQ(req.cmd, cmd);
  }
}

struct BadLine {
  const char* line;
  const char* why;
};

// Every rejected shape must fail cleanly (no crash, error + 400), which is
// what the asan run of this slice checks.
TEST(ProtocolTest, RejectsMalformedLines) {
  const BadLine kBad[] = {
      {"", "empty line"},
      {"tag John", "not JSON"},
      {"{", "truncated object"},
      {R"({"id":1)", "unterminated object"},
      {R"({"id":1} extra)", "trailing bytes"},
      {R"({"id":1,"id":2,"text":"x"})", "duplicate field"},
      {R"({"id":"seven","text":"x"})", "string id"},
      {R"({"id":1.5,"text":"x"})", "double id"},
      {R"({"id":99999999999999999999,"text":"x"})", "overflow id"},
      {R"({"text":"x","tokens":["x"]})", "both text and tokens"},
      {R"({"id":1})", "neither text nor tokens"},
      {R"({"tokens":["ok",""]})", "empty token"},
      {R"({"tokens":[1,2]})", "non-string array"},
      {R"({"tokens":{"a":1}})", "nested object"},
      {R"({"text":"x","bogus":1})", "unknown field"},
      {R"({"model":"","text":"x"})", "empty model"},
      {R"({"model":7,"text":"x"})", "non-string model"},
      {R"({"cmd":"reload"})", "reload without path"},
      {R"({"cmd":"explode"})", "unknown cmd"},
      {R"({"text":"\x"})", "bad escape"},
      {"{\"text\":\"\\ud834\\udd1e\"}", "surrogate escape"},
      {R"({"text":"\u12"})", "truncated unicode escape"},
      {"{\"text\":\"a\x01y\"}", "raw control char"},
      {R"({"text":"unterminated)", "unterminated string"},
  };
  for (const BadLine& bad : kBad) {
    bool ok = true;
    std::string error;
    int code = 0;
    Parse(bad.line, &ok, &error, &code);
    EXPECT_FALSE(ok) << bad.why;
    EXPECT_EQ(code, kBadRequest) << bad.why;
    EXPECT_FALSE(error.empty()) << bad.why;
  }
}

TEST(ProtocolTest, DocFieldParsesAndDefaultsOff) {
  bool ok = false;
  Request req = Parse(R"({"doc":true,"tokens":["Li"]})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(req.doc);
  req = Parse(R"({"doc":false,"tokens":["Li"]})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_FALSE(req.doc);
  req = Parse(R"({"tokens":["Li"]})", &ok);
  ASSERT_TRUE(ok);
  EXPECT_FALSE(req.doc);

  // Anything non-boolean is a 400, like every other typed field.
  for (const char* bad :
       {R"({"doc":1,"tokens":["Li"]})", R"({"doc":"yes","tokens":["Li"]})",
        R"({"doc":null,"tokens":["Li"]})"}) {
    std::string error;
    int code = 0;
    Parse(bad, &ok, &error, &code);
    EXPECT_FALSE(ok) << bad;
    EXPECT_EQ(code, kBadRequest) << bad;
  }
}

TEST(ProtocolTest, DocResponsesAreMarked) {
  Request req;
  req.has_id = true;
  req.id = 8;
  req.model = "ner";
  req.doc = true;
  const std::string payload = TagPayload({"Li"}, {{0, 1, "PER"}});
  EXPECT_EQ(TagResponse(req, false, payload),
            R"({"id":8,"model":"ner","cached":false,"doc":true,)" + payload +
                "}");
}

TEST(ProtocolTest, IdSurvivesSemanticErrors) {
  bool ok = true;
  Request req = Parse(R"({"id":42,"bogus":1,"text":"x"})", &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 42);
}

TEST(ProtocolTest, ResponseBuilders) {
  Request req;
  req.has_id = true;
  req.id = 3;
  req.model = "ner";
  const std::vector<std::string> tokens = {"Jo\"hn", "Paris"};
  const std::vector<text::Span> spans = {{1, 2, "LOC"}};
  const std::string payload = TagPayload(tokens, spans);
  EXPECT_EQ(payload,
            R"("tokens":["Jo\"hn","Paris"],"spans":[{"start":1,"end":2,"type":"LOC"}])");
  EXPECT_EQ(TagResponse(req, false, payload),
            R"({"id":3,"model":"ner","cached":false,)" + payload + "}");
  EXPECT_EQ(ErrorResponse(true, 3, kQueueFull, "queue full"),
            R"({"id":3,"error":{"code":429,"message":"queue full"}})");
  EXPECT_EQ(ErrorResponse(false, 0, kBadRequest, "bad"),
            R"({"error":{"code":400,"message":"bad"}})");
  EXPECT_EQ(JsonQuote("a\nb\x01"), "\"a\\nb\\u0001\"");
}

// Parse -> rebuild -> reparse for a round-trip-able subset; the asan CI run
// of this test is the line-protocol fuzz pass.
TEST(ProtocolTest, QuoteParseRoundTrip) {
  const std::vector<std::string> nasty = {
      "plain", "sp ace", "q\"uote", "back\\slash", "new\nline", "tab\tchar",
      "\xc3\xa9\xe2\x82\xac utf8", std::string("ctrl\x02x"),
  };
  for (const std::string& tok : nasty) {
    bool ok = false;
    Request req = Parse("{\"tokens\":[" + JsonQuote(tok) + "]}", &ok);
    ASSERT_TRUE(ok) << JsonQuote(tok);
    ASSERT_EQ(req.tokens.size(), 1u);
    EXPECT_EQ(req.tokens[0], tok);
  }
}

// ---------------------------------------------------------------------------
// LRU response cache

TEST(CacheTest, KeySeparatesTokenBoundaries) {
  EXPECT_NE(LruCache::Key("m", 1, {"ab", "c"}), LruCache::Key("m", 1, {"a", "bc"}));
  EXPECT_NE(LruCache::Key("m", 1, {"a"}), LruCache::Key("m", 2, {"a"}));
  EXPECT_NE(LruCache::Key("m", 1, {"a"}), LruCache::Key("n", 1, {"a"}));
  EXPECT_EQ(LruCache::Key("m", 1, {"a", "b"}), LruCache::Key("m", 1, {"a", "b"}));
}

TEST(CacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string v;
  ASSERT_TRUE(cache.Get("a", &v));  // promotes "a"
  cache.Put("c", "3");              // evicts "b"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Get("a", &v));
  EXPECT_EQ(v, "1");
  EXPECT_FALSE(cache.Get("b", &v));
  EXPECT_TRUE(cache.Get("c", &v));
}

TEST(CacheTest, PutRefreshesExistingEntry) {
  LruCache cache(2);
  cache.Put("a", "1");
  cache.Put("a", "updated");
  std::string v;
  ASSERT_TRUE(cache.Get("a", &v));
  EXPECT_EQ(v, "updated");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheTest, CapacityZeroDisables) {
  LruCache cache(0);
  cache.Put("a", "1");
  std::string v;
  EXPECT_FALSE(cache.Get("a", &v));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Shared fixture: two tiny trained checkpoints (different seeds)

struct Models {
  std::string path1;
  std::string path2;
  std::unique_ptr<core::Pipeline> pipeline1;  // loaded from path1
  std::unique_ptr<core::Pipeline> pipeline2;  // loaded from path2
  text::Corpus corpus;
};

const Models& Fixture() {
  static Models* models = [] {
    auto* m = new Models;
    data::GenOptions opts;
    opts.num_sentences = 40;
    opts.seed = 11;
    m->corpus = data::GenerateCorpus(data::Genre::kNews, opts);
    core::NerConfig config;
    config.encoder = "cnn";
    config.decoder = "softmax";
    config.word_dim = 12;
    config.hidden_dim = 10;
    config.seed = 5;
    core::TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 0.02;
    const auto types = data::EntityTypesFor(data::Genre::kNews);
    m->path1 = ::testing::TempDir() + "/serve_model1.bin";
    m->path2 = ::testing::TempDir() + "/serve_model2.bin";
    core::Pipeline::Train(config, tc, m->corpus, nullptr, types)
        ->Save(m->path1);
    config.seed = 99;
    core::Pipeline::Train(config, tc, m->corpus, nullptr, types)
        ->Save(m->path2);
    // Expected predictions come from re-loaded pipelines so any save/load
    // effects match what the server sees exactly.
    m->pipeline1 = core::Pipeline::Load(m->path1);
    m->pipeline2 = core::Pipeline::Load(m->path2);
    return m;
  }();
  return *models;
}

// ---------------------------------------------------------------------------
// Model registry

TEST(RegistryTest, LoadAndGenerations) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Get("ner").pipeline, nullptr);
  EXPECT_FALSE(registry.Load("ner", "/nonexistent/model.bin"));
  EXPECT_EQ(registry.Get("ner").pipeline, nullptr);

  ASSERT_TRUE(registry.Load("ner", Fixture().path1));
  ModelRegistry::Entry e1 = registry.Get("ner");
  ASSERT_NE(e1.pipeline, nullptr);
  EXPECT_EQ(e1.generation, 1u);

  // A failed reload leaves the previous model serving.
  EXPECT_FALSE(registry.Load("ner", "/nonexistent/model.bin"));
  EXPECT_EQ(registry.Get("ner").pipeline, e1.pipeline);
  EXPECT_EQ(registry.Get("ner").generation, 1u);

  ASSERT_TRUE(registry.Load("ner", Fixture().path2));
  ModelRegistry::Entry e2 = registry.Get("ner");
  EXPECT_NE(e2.pipeline, e1.pipeline);
  EXPECT_EQ(e2.generation, 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"ner"}));

  // The old shared_ptr keeps the evicted pipeline usable (what keeps
  // in-flight batches safe across a hot reload).
  EXPECT_NO_THROW(e1.pipeline->Tag({"John", "visited", "Paris"}));
}

// ---------------------------------------------------------------------------
// End-to-end server tests

// Minimal blocking NDJSON client over a real socket.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{20, 0};  // generous: CI runs this under asan on one core
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool ok() const { return fd_ >= 0; }

  bool SendRaw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }
  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  // Half-closes the write side; the server must still deliver responses.
  void CloseWrite() { ::shutdown(fd_, SHUT_WR); }

  // Next response line (without the newline); "" on EOF/timeout.
  std::string ReadLine() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string TokensRequest(std::int64_t id,
                          const std::vector<std::string>& tokens,
                          const std::string& model = "") {
  std::string s = "{\"id\":" + std::to_string(id);
  if (!model.empty()) s += ",\"model\":" + JsonQuote(model);
  s += ",\"tokens\":[";
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) s.push_back(',');
    s += JsonQuote(tokens[i]);
  }
  return s + "]}";
}

// The exact line the server must emit for a tagging request.
std::string ExpectedLine(std::int64_t id, const std::string& model,
                         bool cached, const std::vector<std::string>& tokens,
                         const std::vector<text::Span>& spans) {
  Request req;
  req.has_id = true;
  req.id = id;
  req.model = model;
  return TagResponse(req, cached, TagPayload(tokens, spans));
}

int ErrorCodeOf(const std::string& line) {
  const std::size_t pos = line.find("\"code\":");
  if (pos == std::string::npos) return -1;
  return std::atoi(line.c_str() + pos + 7);
}

TEST(ServerTest, ServedResponsesMatchTagCorpusBitIdentically) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  config.cache_capacity = 0;  // exercise the uncached batch path
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());
  ASSERT_GT(server.port(), 0);

  // Expected spans from the exact prediction path `dlner tag` uses.
  text::Corpus subset;
  for (int i = 0; i < 12; ++i) {
    subset.sentences.push_back(m.corpus.sentences[i]);
  }
  const std::vector<std::vector<text::Span>> expected =
      m.pipeline1->TagCorpus(subset);

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < subset.size(); ++i) {
    ASSERT_TRUE(client.SendLine(TokensRequest(i, subset.sentences[i].tokens)));
  }
  // Responses may arrive out of order (micro-batching); index by id.
  std::vector<std::string> got(subset.sentences.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const std::string line = client.ReadLine();
    ASSERT_FALSE(line.empty());
    const std::size_t id_pos = line.find("\"id\":");
    ASSERT_NE(id_pos, std::string::npos) << line;
    const int id = std::atoi(line.c_str() + id_pos + 5);
    ASSERT_GE(id, 0);
    ASSERT_LT(id, static_cast<int>(got.size()));
    got[id] = line;
  }
  for (int i = 0; i < subset.size(); ++i) {
    EXPECT_EQ(got[i], ExpectedLine(i, "default", false,
                                   subset.sentences[i].tokens, expected[i]));
  }
  EXPECT_EQ(server.responses_total(), subset.size());
  EXPECT_EQ(server.errors_total(), 0);
  server.Stop();
}

TEST(ServerTest, CacheHitIsBitIdenticalAndMarked) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());

  const std::vector<std::string>& tokens = m.corpus.sentences[0].tokens;
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.SendLine(TokensRequest(1, tokens)));
  const std::string first = client.ReadLine();
  ASSERT_TRUE(client.SendLine(TokensRequest(2, tokens)));
  const std::string second = client.ReadLine();

  const std::vector<text::Span> spans = m.pipeline1->Tag(tokens);
  EXPECT_EQ(first, ExpectedLine(1, "default", false, tokens, spans));
  EXPECT_EQ(second, ExpectedLine(2, "default", true, tokens, spans));
  EXPECT_EQ(server.cache_hits(), 1);
  EXPECT_EQ(server.cache_misses(), 1);
  server.Stop();
}

TEST(ServerTest, MalformedAndOversizedLinesKeepConnectionAlive) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  config.max_line_bytes = 256;
  config.max_tokens = 8;
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());

  // Malformed JSON -> 400, connection survives.
  ASSERT_TRUE(client.SendLine("this is not json"));
  EXPECT_EQ(ErrorCodeOf(client.ReadLine()), kBadRequest);

  // Oversized line -> 413 and the rest of the line is discarded.
  ASSERT_TRUE(client.SendLine(
      "{\"id\":1,\"text\":\"" + std::string(4096, 'x') + "\"}"));
  EXPECT_EQ(ErrorCodeOf(client.ReadLine()), kTooLarge);

  // Too many tokens -> 413.
  ASSERT_TRUE(client.SendLine(
      TokensRequest(2, std::vector<std::string>(9, "tok"))));
  EXPECT_EQ(ErrorCodeOf(client.ReadLine()), kTooLarge);

  // Unknown model -> 404.
  ASSERT_TRUE(client.SendLine(TokensRequest(3, {"John"}, "nope")));
  EXPECT_EQ(ErrorCodeOf(client.ReadLine()), kUnknownModel);

  // Tokenless request -> inline empty payload, no batch involved.
  ASSERT_TRUE(client.SendLine(R"({"id":4,"text":"   "})"));
  EXPECT_EQ(client.ReadLine(), ExpectedLine(4, "default", false, {}, {}));

  // After all of the above the same connection still serves real work
  // (kept under this server's max_tokens = 8).
  const std::vector<std::string> tokens = {"John", "visited", "Paris", "."};
  ASSERT_TRUE(client.SendLine(TokensRequest(5, tokens)));
  EXPECT_EQ(client.ReadLine(),
            ExpectedLine(5, "default", false, tokens, m.pipeline1->Tag(tokens)));
  server.Stop();
}

TEST(ServerTest, QueueFullRejectsWith429ThenRecovers) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  config.queue_capacity = 1;
  config.batch_max = 16;
  config.batch_delay_us = 300000;  // park the first request ~300ms
  config.cache_capacity = 0;
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  // Distinct sentences so no request short-circuits through the cache path.
  ASSERT_TRUE(client.SendLine(TokensRequest(0, m.corpus.sentences[0].tokens)));
  // The first request parks in the queue until the batch deadline; with
  // capacity 1 the probes below race that window, so (nearly) all of them
  // must be rejected immediately.
  const int kProbes = 12;
  for (int i = 0; i < kProbes; ++i) {
    ASSERT_TRUE(client.SendLine(
        TokensRequest(100 + i, m.corpus.sentences[1].tokens)));
  }
  // Read everything back: one eventual success for id 0, and each probe
  // either succeeded (queue had drained) or got a 429.
  int rejected = 0;
  std::vector<std::string> lines;
  for (int i = 0; i < kProbes + 1; ++i) {
    const std::string line = client.ReadLine();
    ASSERT_FALSE(line.empty());
    lines.push_back(line);
    if (ErrorCodeOf(line) == kQueueFull) ++rejected;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(server.rejected_total(), rejected);
  // The parked request was answered correctly despite the rejections.
  const std::string expected0 =
      ExpectedLine(0, "default", false, m.corpus.sentences[0].tokens,
                   m.pipeline1->Tag(m.corpus.sentences[0].tokens));
  bool saw_parked = false;
  for (const std::string& line : lines) {
    if (line == expected0) saw_parked = true;
  }
  EXPECT_TRUE(saw_parked);
  server.Stop();
}

TEST(ServerTest, HotReloadUnderLoadNeverDropsRequests) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  config.cache_capacity = 0;
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());
  const int port = server.port();

  // Hammer the server from a background connection while the reload lands.
  std::atomic<bool> stop{false};
  std::atomic<int> sent{0};
  std::atomic<int> received{0};
  std::atomic<int> bad{0};
  std::thread hammer([&] {
    TestClient client(port);
    if (!client.ok()) {
      bad.fetch_add(1);
      return;
    }
    while (!stop.load()) {
      const int id = sent.fetch_add(1);
      const auto& tokens =
          m.corpus.sentences[id % m.corpus.size()].tokens;
      if (!client.SendLine(TokensRequest(id, tokens))) break;
      const std::string line = client.ReadLine();
      if (line.empty() || line.find("\"error\"") != std::string::npos) {
        bad.fetch_add(1);
        break;
      }
      received.fetch_add(1);
    }
  });

  TestClient admin(port);
  ASSERT_TRUE(admin.ok());
  std::string reload_ack;
  for (int i = 0; i < 3; ++i) {  // several reloads while traffic flows
    const std::string& path = (i % 2 == 0) ? m.path2 : m.path1;
    ASSERT_TRUE(admin.SendLine(
        R"({"cmd":"reload","model":"default","path":)" + JsonQuote(path) +
        "}"));
    reload_ack = admin.ReadLine();
    ASSERT_NE(reload_ack.find("\"ok\":true"), std::string::npos)
        << reload_ack;
  }
  stop.store(true);
  hammer.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(received.load(), 0);
  // Last reload installed model1 again at generation 3.
  EXPECT_NE(reload_ack.find("\"generation\":4"), std::string::npos)
      << reload_ack;

  // Post-reload traffic is served by the newly-installed checkpoint.
  ASSERT_TRUE(registry.Load("default", m.path2));
  const std::vector<std::string>& tokens = m.corpus.sentences[2].tokens;
  TestClient client(port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.SendLine(TokensRequest(9, tokens)));
  EXPECT_EQ(client.ReadLine(),
            ExpectedLine(9, "default", false, tokens, m.pipeline2->Tag(tokens)));

  // A reload from a bad path answers 500 and keeps the old model serving.
  ASSERT_TRUE(admin.SendLine(
      R"({"cmd":"reload","model":"default","path":"/nonexistent.bin"})"));
  EXPECT_EQ(ErrorCodeOf(admin.ReadLine()), kInternal);
  ASSERT_TRUE(client.SendLine(TokensRequest(10, tokens)));
  EXPECT_EQ(client.ReadLine(),
            ExpectedLine(10, "default", false, tokens,
                         m.pipeline2->Tag(tokens)));
  server.Stop();
}

TEST(ServerTest, HalfClosedSocketStillReceivesResponse) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());

  const std::vector<std::string>& tokens = m.corpus.sentences[3].tokens;
  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.SendLine(TokensRequest(1, tokens)));
  client.CloseWrite();  // half-close: we will never send again
  EXPECT_EQ(client.ReadLine(),
            ExpectedLine(1, "default", false, tokens, m.pipeline1->Tag(tokens)));

  // An abrupt full close right after a request must not take the server
  // down; a fresh connection still works.
  {
    TestClient rude(server.port());
    ASSERT_TRUE(rude.ok());
    ASSERT_TRUE(rude.SendLine(TokensRequest(2, tokens)));
  }  // destructor closes the socket with the response possibly in flight
  TestClient after(server.port());
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.SendLine(TokensRequest(3, tokens)));
  EXPECT_EQ(after.ReadLine(),
            ExpectedLine(3, "default", true, tokens, m.pipeline1->Tag(tokens)));
  server.Stop();
}

// ---------------------------------------------------------------------------
// Document-mode requests ({"doc":true}): the connection is the document.
// Per-connection entity memory folds earlier responses into later ones, doc
// responses bypass the LRU cache in both directions, and a hot reload swaps
// the model without touching the connection's document state.

struct DocModels {
  std::string path1;
  std::string path2;
  std::unique_ptr<core::Pipeline> pipeline1;
  std::unique_ptr<core::Pipeline> pipeline2;
  text::Corpus docs;  // entity-consistency documents (Corpus::doc_starts)
};

const DocModels& DocFixture() {
  static DocModels* models = [] {
    auto* m = new DocModels;
    data::ScenarioOptions opts;
    opts.seed = 41;
    opts.num_sentences = 60;
    const data::ScenarioSplit split =
        data::MakeScenarioSplit(data::Scenario::kEntityConsistency, opts);
    m->docs = split.test;
    core::NerConfig config;
    config.encoder = "cnn";
    config.decoder = "softmax";
    config.word_dim = 12;
    config.hidden_dim = 12;
    config.word_unk_dropout = 0.2;
    config.seed = 7;
    core::TrainConfig tc;
    tc.epochs = 4;
    tc.lr = 0.02;
    const auto types =
        data::ScenarioEntityTypes(data::Scenario::kEntityConsistency);
    m->path1 = ::testing::TempDir() + "/serve_doc_model1.bin";
    m->path2 = ::testing::TempDir() + "/serve_doc_model2.bin";
    core::Pipeline::Train(config, tc, split.train, nullptr, types)
        ->Save(m->path1);
    config.seed = 23;
    core::Pipeline::Train(config, tc, split.train, nullptr, types)
        ->Save(m->path2);
    m->pipeline1 = core::Pipeline::Load(m->path1);
    m->pipeline2 = core::Pipeline::Load(m->path2);
    return m;
  }();
  return *models;
}

std::string DocRequest(std::int64_t id,
                       const std::vector<std::string>& tokens) {
  std::string s = "{\"id\":" + std::to_string(id) + ",\"doc\":true,\"tokens\":[";
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) s.push_back(',');
    s += JsonQuote(tokens[i]);
  }
  return s + "]}";
}

std::string ExpectedDocLine(std::int64_t id,
                            const std::vector<std::string>& tokens,
                            const std::vector<text::Span>& spans) {
  Request req;
  req.has_id = true;
  req.id = id;
  req.model = "default";
  req.doc = true;
  return TagResponse(req, false, TagPayload(tokens, spans));
}

TEST(ServerTest, DocRequestsFoldEntityMemoryPerConnection) {
  const DocModels& m = DocFixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;  // cache ON: doc responses must bypass it anyway
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());

  // Every doc response must be byte-identical to the reference fold: tag the
  // sentence, Apply the connection's memory, Observe the result — strictly
  // in arrival order. Across the fixture's documents the memory must change
  // at least one sentence vs. stateless tagging (that is the point of the
  // feature: a later mention of a remembered surface gets recovered).
  bool memory_changed_something = false;
  for (int d = 0; d < m.docs.DocCount(); ++d) {
    const auto [first, last] = m.docs.DocRange(d);
    TestClient client(server.port());  // fresh connection = fresh document
    ASSERT_TRUE(client.ok());
    stream::EntityMemory memory;
    for (int i = first; i < last; ++i) {
      const std::vector<std::string>& tokens =
          m.docs.sentences[static_cast<size_t>(i)].tokens;
      std::vector<text::Span> expected = m.pipeline1->Tag(tokens);
      const std::vector<text::Span> stateless = expected;
      memory.Apply(tokens, &expected);
      memory.Observe(tokens, expected);
      if (expected != stateless) memory_changed_something = true;
      ASSERT_TRUE(client.SendLine(DocRequest(i, tokens)));
      EXPECT_EQ(client.ReadLine(), ExpectedDocLine(i, tokens, expected))
          << "doc " << d << " sentence " << i;
    }
  }
  EXPECT_TRUE(memory_changed_something)
      << "entity memory never altered a sentence; the differential is vacuous";

  // Identical doc requests stay cache-misses ("cached":false above checks
  // the read side; repeating a sentence checks the write side too).
  const auto [first, last] = m.docs.DocRange(0);
  const std::vector<std::string>& tokens =
      m.docs.sentences[static_cast<size_t>(first)].tokens;
  TestClient repeat(server.port());
  ASSERT_TRUE(repeat.ok());
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_TRUE(repeat.SendLine(DocRequest(pass, tokens)));
    const std::string line = repeat.ReadLine();
    EXPECT_NE(line.find("\"cached\":false"), std::string::npos) << line;
    EXPECT_NE(line.find("\"doc\":true"), std::string::npos) << line;
  }

  // Malformed doc field over the wire: 400, connection survives.
  ASSERT_TRUE(repeat.SendLine(R"({"id":9,"doc":1,"tokens":["Li"]})"));
  EXPECT_EQ(ErrorCodeOf(repeat.ReadLine()), kBadRequest);
  ASSERT_TRUE(repeat.SendLine(DocRequest(10, tokens)));
  EXPECT_NE(repeat.ReadLine().find("\"doc\":true"), std::string::npos);
  server.Stop();
}

TEST(ServerTest, HotReloadMidDocumentKeepsConnectionState) {
  const DocModels& m = DocFixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());

  const auto [first, last] = m.docs.DocRange(0);
  ASSERT_GE(last - first, 2);
  const std::vector<std::string>& s0 =
      m.docs.sentences[static_cast<size_t>(first)].tokens;
  const std::vector<std::string>& s1 =
      m.docs.sentences[static_cast<size_t>(first + 1)].tokens;

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  stream::EntityMemory memory;

  // First sentence tagged by model 1 and observed into the connection.
  std::vector<text::Span> expected0 = m.pipeline1->Tag(s0);
  memory.Apply(s0, &expected0);
  memory.Observe(s0, expected0);
  ASSERT_TRUE(client.SendLine(DocRequest(0, s0)));
  ASSERT_EQ(client.ReadLine(), ExpectedDocLine(0, s0, expected0));

  // Hot reload swaps in model 2 mid-document.
  TestClient admin(server.port());
  ASSERT_TRUE(admin.ok());
  ASSERT_TRUE(admin.SendLine(
      R"({"cmd":"reload","model":"default","path":)" + JsonQuote(m.path2) +
      "}"));
  ASSERT_NE(admin.ReadLine().find("\"ok\":true"), std::string::npos);

  // Second sentence: model 2 tags it, but the votes collected from model 1's
  // output must still apply — the document belongs to the connection, not to
  // the model generation.
  std::vector<text::Span> expected1 = m.pipeline2->Tag(s1);
  memory.Apply(s1, &expected1);
  memory.Observe(s1, expected1);
  ASSERT_TRUE(client.SendLine(DocRequest(1, s1)));
  EXPECT_EQ(client.ReadLine(), ExpectedDocLine(1, s1, expected1));
  server.Stop();
}

TEST(ServerTest, AdminModelsStatsAndShutdown) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ASSERT_TRUE(registry.Load("alt", m.path2));
  ServeConfig config;
  Server server(&registry, config);
  ASSERT_TRUE(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.SendLine(R"({"cmd":"models"})"));
  EXPECT_EQ(client.ReadLine(), R"({"models":["alt","default"]})");

  ASSERT_TRUE(client.SendLine(TokensRequest(1, m.corpus.sentences[0].tokens,
                                            "alt")));
  ASSERT_FALSE(client.ReadLine().empty());

  ASSERT_TRUE(client.SendLine(R"({"cmd":"stats"})"));
  const std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("\"responses\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"requests\":"), std::string::npos) << stats;

  // {"cmd":"shutdown"} acks, then wakes a blocked Wait().
  std::atomic<bool> wait_returned{false};
  std::thread waiter([&] {
    server.Wait();
    wait_returned.store(true);
  });
  ASSERT_TRUE(client.SendLine(R"({"cmd":"shutdown"})"));
  EXPECT_EQ(client.ReadLine(), R"({"ok":true})");
  waiter.join();
  EXPECT_TRUE(wait_returned.load());
  server.Stop();

  // A stopped server refuses new connections.
  TestClient late(server.port());
  if (late.ok()) {
    late.SendLine(TokensRequest(1, {"x"}));
    EXPECT_TRUE(late.ReadLine().empty());
  }
}

// ---------------------------------------------------------------------------
// Live serving observability: windowed stats in `stats`, the `metrics` admin
// command, the --metrics-port Prometheus scrape, and request-scoped stage
// tracing. These tests also double as the "collection on does not change the
// served bytes" differential for the serve path.

// The 64-bit request id a serve span's args carry, or -1.
std::int64_t ArgsReqId(const std::string& args) {
  const std::size_t pos = args.find("\"req\":");
  if (pos == std::string::npos) return -1;
  return std::atoll(args.c_str() + pos + 6);
}

// Blocking HTTP GET against the metrics listener; returns the full response
// (status line + headers + body) read to EOF.
std::string HttpGet(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  timeval tv{20, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServerTest, AdminStatsWindowBlockAndMetricsCommand) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  config.slo_us = 10'000'000;   // generous: everything attains
  config.slow_request_us = 1;   // everything is "slow": exercises the log
  Server server(&registry, config);
  obs::Metrics::Get().ResetAll();
  obs::EnableMetrics(true);
  ASSERT_TRUE(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  const std::vector<std::string>& tokens = m.corpus.sentences[5].tokens;
  ASSERT_TRUE(client.SendLine(TokensRequest(1, tokens)));
  ASSERT_FALSE(client.ReadLine().empty());
  ASSERT_TRUE(client.SendLine(TokensRequest(2, tokens)));  // cache hit
  ASSERT_FALSE(client.ReadLine().empty());

  ASSERT_TRUE(client.SendLine(R"({"cmd":"stats"})"));
  const std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("\"queue_depth\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"window\":{"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"responses\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_hits\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_misses\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"p99_us\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"slo_attainment\":1"), std::string::npos) << stats;

  // The metrics command carries the Prometheus exposition as a JSON string
  // (same bytes the --metrics-port scrape serves), id echoed when given.
  ASSERT_TRUE(client.SendLine(R"({"cmd":"metrics"})"));
  const std::string metrics = client.ReadLine();
  EXPECT_NE(metrics.find("\"metrics\":\""), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.find("serve_window_latency_us"), std::string::npos);

  server.PublishMetrics();
  obs::Metrics& reg = obs::Metrics::Get();
  EXPECT_GE(reg.gauge("serve.slow_requests_total")->value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("serve.window.cache_hit_rate")->value(), 0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("serve.window.slo_attainment")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("serve.queue.depth")->value(), 0.0);
  // slo_target defaults to 0.99: full attainment leaves the whole error
  // budget, so the remaining-fraction gauge reads 1.
  EXPECT_DOUBLE_EQ(reg.gauge("serve.window.error_budget_remaining")->value(),
                   1.0);
  server.Stop();
  obs::EnableMetrics(false);
  reg.ResetAll();
}

TEST(ServerTest, MetricsPortServesPrometheusScrape) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  config.metrics_port = 0;  // ephemeral; also turns collection always-on
  config.slo_us = 10'000'000;
  Server server(&registry, config);
  obs::Metrics::Get().ResetAll();
  ASSERT_TRUE(server.Start());
  ASSERT_GT(server.metrics_port(), 0);
  EXPECT_NE(server.metrics_port(), server.port());

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.SendLine(TokensRequest(1, m.corpus.sentences[6].tokens)));
  ASSERT_FALSE(client.ReadLine().empty());

  const std::string scrape = HttpGet(server.metrics_port());
  EXPECT_NE(scrape.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(scrape.find("text/plain; version=0.0.4"), std::string::npos);
  const std::size_t header_end = scrape.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos) << scrape;
  const std::string body = scrape.substr(header_end + 4);

  // Content-Length matches the body byte-for-byte (HTTP/1.0 clients rely
  // on it even though we also close the connection).
  const std::size_t cl_pos = scrape.find("Content-Length: ");
  ASSERT_NE(cl_pos, std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::atoll(scrape.c_str() + cl_pos + 16)),
            body.size());

  EXPECT_NE(body.find("# TYPE serve_window_latency_us summary"),
            std::string::npos);
  EXPECT_NE(body.find("serve_window_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(body.find("serve_window_latency_us_count 1"), std::string::npos);
  EXPECT_NE(body.find("# TYPE serve_queue_depth gauge"), std::string::npos);
  EXPECT_NE(body.find("serve_window_slo_attainment 1"), std::string::npos);
  EXPECT_NE(body.find("serve_window_batch_size"), std::string::npos);
  EXPECT_NE(body.find("serve_window_model_default_requests 1"),
            std::string::npos);

  // The listener survives repeated polls.
  EXPECT_NE(HttpGet(server.metrics_port()).find("200 OK"), std::string::npos);
  server.Stop();
  obs::Metrics::Get().ResetAll();
}

TEST(ServerTest, SampledRequestsReconstructStageSpans) {
  const Models& m = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("default", m.path1));
  ServeConfig config;
  config.trace_sample_rate = 1.0;
  Server server(&registry, config);
  obs::Tracer::Get().Clear();
  obs::EnableTracing(true);
  ASSERT_TRUE(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.ok());
  const std::vector<std::string>& tokens = m.corpus.sentences[4].tokens;
  ASSERT_TRUE(client.SendLine(TokensRequest(1, tokens)));
  const std::string first = client.ReadLine();
  ASSERT_TRUE(client.SendLine(TokensRequest(2, tokens)));  // cache hit
  const std::string second = client.ReadLine();
  server.Stop();
  obs::EnableTracing(false);

  // Tracing on must not perturb the served bytes.
  const std::vector<text::Span> spans = m.pipeline1->Tag(tokens);
  EXPECT_EQ(first, ExpectedLine(1, "default", false, tokens, spans));
  EXPECT_EQ(second, ExpectedLine(2, "default", true, tokens, spans));

  std::map<std::int64_t, std::string> requests;       // req id -> span args
  std::map<std::int64_t, std::set<std::string>> stages;
  bool saw_batch = false;
  for (const obs::SpanEvent& s : obs::Tracer::Get().Snapshot()) {
    if (s.name == "serve/batch") {
      saw_batch = true;
      EXPECT_NE(s.args.find("\"reqs\":["), std::string::npos) << s.args;
    } else if (s.name == "serve/request") {
      requests[ArgsReqId(s.args)] = s.args;
    } else if (s.name.rfind("serve/stage/", 0) == 0) {
      stages[ArgsReqId(s.args)].insert(s.name.substr(12));
    }
  }
  obs::Tracer::Get().Clear();

  EXPECT_TRUE(saw_batch);
  ASSERT_EQ(requests.size(), 2u);
  std::int64_t uncached = -1;
  std::int64_t cached = -1;
  for (const auto& [req, args] : requests) {
    EXPECT_GT(req, 0);
    if (args.find("\"cached\":false") != std::string::npos) uncached = req;
    if (args.find("\"cached\":true") != std::string::npos) cached = req;
  }
  ASSERT_GT(uncached, 0);
  ASSERT_GT(cached, 0);
  // The uncached request reconstructs as the full four-stage lifecycle, all
  // sharing its request id; the cache hit never entered the queue, so only
  // its write stage exists.
  EXPECT_EQ(stages[uncached],
            (std::set<std::string>{"queue_wait", "batch_wait", "compute",
                                   "write"}));
  EXPECT_EQ(stages[cached], (std::set<std::string>{"write"}));
}

}  // namespace
}  // namespace dlner::serve
