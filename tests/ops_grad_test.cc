// Property-based validation of every differentiable op: analytic gradients
// must match central finite differences on random inputs, across several
// seeds and shapes (parameterized sweep).
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace dlner {
namespace {

constexpr Float kTol = 1e-6;

Var RandomParam(std::vector<int> shape, Rng* rng, Float lo = -1.0,
                Float hi = 1.0) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.size(); ++i) t[i] = rng->Uniform(lo, hi);
  return Parameter(std::move(t));
}

// A named op case: builds a scalar loss from the given leaf inputs.
struct OpCase {
  std::string name;
  // Creates inputs (given rng) and a loss builder over them.
  std::function<void(Rng*, std::vector<Var>*, std::function<Var()>*)> make;
};

std::vector<OpCase> AllOpCases() {
  std::vector<OpCase> cases;
  auto add = [&cases](const std::string& name, auto fn) {
    cases.push_back({name, fn});
  };

  add("Add", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({3, 4}, rng), b = RandomParam({3, 4}, rng);
    *in = {a, b};
    *f = [a, b] { return Sum(Add(a, b)); };
  });
  add("Sub", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({5}, rng), b = RandomParam({5}, rng);
    *in = {a, b};
    *f = [a, b] { return Sum(Mul(Sub(a, b), Sub(a, b))); };
  });
  add("Mul", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({2, 3}, rng), b = RandomParam({2, 3}, rng);
    *in = {a, b};
    *f = [a, b] { return Sum(Mul(a, b)); };
  });
  add("ScaleAddScalar",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({4}, rng);
        *in = {a};
        *f = [a] { return Sum(AddScalar(Scale(a, -2.5), 0.3)); };
      });
  add("Tanh", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({3, 3}, rng);
    *in = {a};
    *f = [a] { return Sum(Tanh(a)); };
  });
  add("Sigmoid", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({6}, rng);
    *in = {a};
    *f = [a] { return Sum(Sigmoid(a)); };
  });
  add("Relu", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    // Keep values away from the kink at 0 for finite differences.
    Var a = RandomParam({8}, rng);
    for (int i = 0; i < 8; ++i) {
      if (std::fabs(a->value[i]) < 0.05) a->value[i] = 0.2;
    }
    *in = {a};
    *f = [a] { return Sum(Relu(a)); };
  });
  add("ExpLog", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({5}, rng, 0.2, 1.5);
    *in = {a};
    *f = [a] { return Sum(Log(Exp(a))); };
  });
  add("MatMul", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({3, 4}, rng), b = RandomParam({4, 2}, rng);
    *in = {a, b};
    *f = [a, b] { return Sum(MatMul(a, b)); };
  });
  add("MatMulChained",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({2, 3}, rng), b = RandomParam({3, 3}, rng);
        *in = {a, b};
        *f = [a, b] { return Sum(Tanh(MatMul(MatMul(a, b), Transpose(b)))); };
      });
  add("Transpose",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({2, 5}, rng);
        *in = {a};
        *f = [a] { return Sum(Mul(Transpose(a), Transpose(a))); };
      });
  add("Dot", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({7}, rng), b = RandomParam({7}, rng);
    *in = {a, b};
    *f = [a, b] { return Dot(a, b); };
  });
  add("AddRowBroadcast",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var m = RandomParam({3, 4}, rng), v = RandomParam({4}, rng);
        *in = {m, v};
        *f = [m, v] { return Sum(Tanh(AddRowBroadcast(m, v))); };
      });
  add("AddColBroadcast",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var m = RandomParam({3, 4}, rng), v = RandomParam({3}, rng);
        *in = {m, v};
        *f = [m, v] { return Sum(Tanh(AddColBroadcast(m, v))); };
      });
  add("Mean", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({3, 3}, rng);
    *in = {a};
    *f = [a] { return Mean(Mul(a, a)); };
  });
  add("MaxOverRows",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        // Spread values so the max is unique per column (no kink at ties).
        Var a = RandomParam({4, 3}, rng, -2.0, 2.0);
        *in = {a};
        *f = [a] { return Sum(MaxOverRows(a)); };
      });
  add("MeanOverRows",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({4, 3}, rng);
        *in = {a};
        *f = [a] { return Sum(Tanh(MeanOverRows(a))); };
      });
  add("LogSumExp",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({6}, rng, -3.0, 3.0);
        *in = {a};
        *f = [a] { return LogSumExp(a); };
      });
  add("LogSumExpOverRows",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({4, 5}, rng, -3.0, 3.0);
        *in = {a};
        *f = [a] { return Sum(LogSumExpOverRows(a)); };
      });
  add("Softmax", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({5}, rng, -2.0, 2.0);
    Var w = RandomParam({5}, rng);
    *in = {a, w};
    *f = [a, w] { return Dot(Softmax(a), w); };
  });
  add("SoftmaxRows",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({3, 4}, rng, -2.0, 2.0);
        Var w = RandomParam({3, 4}, rng);
        *in = {a, w};
        *f = [a, w] { return Sum(Mul(SoftmaxRows(a), w)); };
      });
  add("LogSoftmax",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({6}, rng, -2.0, 2.0);
        Var w = RandomParam({6}, rng);
        *in = {a, w};
        *f = [a, w] { return Dot(LogSoftmax(a), w); };
      });
  add("RowPick", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var m = RandomParam({4, 3}, rng);
    *in = {m};
    *f = [m] { return Add(Pick(Row(m, 2), 1), PickAt(m, 0, 0)); };
  });
  add("RowsGather",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var m = RandomParam({5, 3}, rng);
        *in = {m};
        // Duplicate indices exercise scatter-add.
        *f = [m] { return Sum(Tanh(Rows(m, {0, 2, 2, 4}))); };
      });
  add("StackRows",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({3}, rng), b = RandomParam({3}, rng);
        *in = {a, b};
        *f = [a, b] { return Sum(Tanh(StackRows({a, b, a}))); };
      });
  add("ConcatVecs",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({2}, rng), b = RandomParam({3}, rng);
        *in = {a, b};
        *f = [a, b] { return Sum(Tanh(ConcatVecs({a, b}))); };
      });
  add("ConcatCols",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({3, 2}, rng), b = RandomParam({3, 4}, rng);
        *in = {a, b};
        *f = [a, b] { return Sum(Tanh(ConcatCols({a, b}))); };
      });
  add("ConcatRows",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({2, 3}, rng), b = RandomParam({4, 3}, rng);
        *in = {a, b};
        *f = [a, b] { return Sum(Tanh(ConcatRows({a, b}))); };
      });
  add("AsRowAsVector",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({4}, rng);
        *in = {a};
        *f = [a] { return Sum(AsVector(AsRow(Tanh(a)))); };
      });
  add("PadRows", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({3, 2}, rng);
    *in = {a};
    *f = [a] { return Sum(Tanh(PadRows(a, 2, 1))); };
  });
  add("SliceVec", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({8}, rng);
    *in = {a};
    *f = [a] { return Sum(Mul(SliceVec(a, 2, 4), SliceVec(a, 2, 4))); };
  });
  add("Unfold", [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
    Var a = RandomParam({5, 3}, rng);
    *in = {a};
    *f = [a] { return Sum(Tanh(Unfold(a, 3, 1))); };
  });
  add("UnfoldDilated",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({7, 2}, rng);
        *in = {a};
        *f = [a] { return Sum(Tanh(Unfold(a, 3, 2))); };
      });
  add("CrossEntropyWithLogits",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({5}, rng, -2.0, 2.0);
        *in = {a};
        *f = [a] { return CrossEntropyWithLogits(a, 3); };
      });
  add("MeanSquaredError",
      [](Rng* rng, std::vector<Var>* in, std::function<Var()>* f) {
        Var a = RandomParam({4}, rng), b = RandomParam({4}, rng);
        *in = {a, b};
        *f = [a, b] { return MeanSquaredError(a, b); };
      });
  return cases;
}

class OpGradTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OpGradTest, AnalyticMatchesNumeric) {
  const int case_idx = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  OpCase c = AllOpCases()[case_idx];
  Rng rng(1000 + 77 * seed);
  std::vector<Var> inputs;
  std::function<Var()> loss;
  c.make(&rng, &inputs, &loss);
  EXPECT_LT(MaxGradError(loss, inputs), kTol) << "op " << c.name;
}

std::string CaseName(const ::testing::TestParamInfo<std::tuple<int, int>>& p) {
  return AllOpCases()[std::get<0>(p.param)].name + "_seed" +
         std::to_string(std::get<1>(p.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradTest,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(AllOpCases().size())),
        ::testing::Range(0, 3)),
    CaseName);

TEST(OpsForwardTest, MatMulKnownValues) {
  Var a = Constant(Tensor({2, 2}, {1.0, 2.0, 3.0, 4.0}));
  Var b = Constant(Tensor({2, 2}, {5.0, 6.0, 7.0, 8.0}));
  Var c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c->value.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c->value.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c->value.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c->value.at(1, 1), 50.0);
}

TEST(OpsForwardTest, SoftmaxSumsToOne) {
  Rng rng(7);
  Var a = RandomParam({9}, &rng, -5.0, 5.0);
  Var s = Softmax(a);
  Float total = 0.0;
  for (int i = 0; i < 9; ++i) {
    total += s->value[i];
    EXPECT_GT(s->value[i], 0.0);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(OpsForwardTest, LogSumExpStability) {
  Var a = Constant(Tensor::FromVector({1000.0, 1000.0}));
  Var l = LogSumExp(a);
  EXPECT_NEAR(l->value[0], 1000.0 + std::log(2.0), 1e-9);
}

TEST(OpsForwardTest, DropoutEvalIsIdentity) {
  Rng rng(3);
  Var a = RandomParam({10}, &rng);
  Var d = Dropout(a, 0.5, &rng, /*training=*/false);
  EXPECT_EQ(d.get(), a.get());
}

TEST(OpsForwardTest, DropoutTrainScalesAndMasks) {
  Rng rng(11);
  Var a = Parameter(Tensor::Full({1000}, 1.0));
  Var d = Dropout(a, 0.25, &rng, /*training=*/true);
  int zeros = 0;
  for (int i = 0; i < 1000; ++i) {
    if (d->value[i] == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(d->value[i], 1.0 / 0.75, 1e-12);
    }
  }
  EXPECT_GT(zeros, 150);
  EXPECT_LT(zeros, 350);
}

TEST(OpsForwardTest, DropoutGradientFlowsThroughMask) {
  Rng rng(5);
  Var a = Parameter(Tensor::Full({50}, 2.0));
  Var d = Dropout(a, 0.5, &rng, /*training=*/true);
  Var loss = Sum(d);
  Backward(loss);
  for (int i = 0; i < 50; ++i) {
    if (d->value[i] == 0.0) {
      EXPECT_EQ(a->grad[i], 0.0);
    } else {
      EXPECT_NEAR(a->grad[i], 2.0, 1e-12);
    }
  }
}

TEST(BackwardTest, ReusedNodeAccumulatesOnce) {
  // loss = sum(x * x): d/dx = 2x even though x appears twice.
  Var x = Parameter(Tensor::FromVector({3.0, -2.0}));
  Backward(Sum(Mul(x, x)));
  EXPECT_DOUBLE_EQ(x->grad[0], 6.0);
  EXPECT_DOUBLE_EQ(x->grad[1], -4.0);
}

TEST(BackwardTest, DiamondGraph) {
  // y = tanh(x); loss = sum(y*y + y). Both paths flow into x.
  Var x = Parameter(Tensor::FromVector({0.5}));
  Var y = Tanh(x);
  Backward(Sum(Add(Mul(y, y), y)));
  const Float t = std::tanh(0.5);
  EXPECT_NEAR(x->grad[0], (2.0 * t + 1.0) * (1.0 - t * t), 1e-12);
}

TEST(BackwardTest, SecondBackwardResetsGradients) {
  Var x = Parameter(Tensor::FromVector({2.0}));
  Backward(Sum(Mul(x, x)));
  EXPECT_DOUBLE_EQ(x->grad[0], 4.0);
  Backward(Sum(Mul(x, x)));
  // Gradients are zeroed per call, not accumulated across calls.
  EXPECT_DOUBLE_EQ(x->grad[0], 4.0);
}

TEST(BackwardTest, ConstantsReceiveNoGradient) {
  Var c = Constant(Tensor::FromVector({1.0, 2.0}));
  Var x = Parameter(Tensor::FromVector({3.0, 4.0}));
  Backward(Sum(Mul(c, x)));
  EXPECT_DOUBLE_EQ(x->grad[0], 1.0);
  EXPECT_TRUE(c->grad.empty() || c->grad.size() == 0);
}

TEST(BackwardDeathTest, NonScalarRootAborts) {
  Var x = Parameter(Tensor::FromVector({1.0, 2.0}));
  EXPECT_DEATH(Backward(Tanh(x)), "scalar");
}

}  // namespace
}  // namespace dlner
