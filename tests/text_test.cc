#include <sstream>

#include <gtest/gtest.h>

#include "text/conll.h"
#include "text/tagging.h"
#include "text/types.h"
#include "text/vocab.h"

namespace dlner::text {
namespace {

TEST(SpanTest, ValidityChecks) {
  EXPECT_TRUE(SpansAreValid({{0, 2, "PER"}, {3, 4, "LOC"}}, 4));
  EXPECT_FALSE(SpansAreValid({{0, 5, "PER"}}, 4));   // end out of range
  EXPECT_FALSE(SpansAreValid({{2, 2, "PER"}}, 4));   // empty span
  EXPECT_FALSE(SpansAreValid({{-1, 2, "PER"}}, 4));  // negative start
  EXPECT_FALSE(SpansAreValid({{0, 1, ""}}, 4));      // empty type
}

TEST(SpanTest, FlatnessChecks) {
  EXPECT_TRUE(SpansAreFlat({{0, 2, "A"}, {2, 4, "B"}}));
  EXPECT_FALSE(SpansAreFlat({{0, 3, "A"}, {2, 4, "B"}}));
  EXPECT_FALSE(SpansAreFlat({{0, 4, "A"}, {1, 2, "B"}}));  // nested
  EXPECT_TRUE(SpansAreFlat({}));
}

TEST(CorpusTest, Counts) {
  Corpus c;
  c.sentences.push_back({{"a", "b", "c"}, {{0, 1, "X"}}});
  c.sentences.push_back({{"d", "e"}, {{0, 2, "Y"}, {1, 2, "X"}}});
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.TokenCount(), 5);
  EXPECT_EQ(c.EntityCount(), 3);
}

TEST(VocabTest, UnkIsIdZero) {
  Vocabulary v;
  EXPECT_EQ(v.Id("anything"), Vocabulary::kUnkId);
  EXPECT_EQ(v.TokenOf(0), Vocabulary::kUnkToken);
}

TEST(VocabTest, AddAndLookup) {
  Vocabulary v;
  int cat = v.Add("cat");
  int dog = v.Add("dog");
  EXPECT_NE(cat, dog);
  EXPECT_EQ(v.Id("cat"), cat);
  EXPECT_EQ(v.Id("dog"), dog);
  EXPECT_EQ(v.Add("cat"), cat);  // re-adding returns the same id
  EXPECT_EQ(v.CountOf(cat), 2);
  EXPECT_EQ(v.size(), 3);
}

TEST(VocabTest, FreezeWithMinCount) {
  Vocabulary v;
  v.Add("frequent");
  v.Add("frequent");
  v.Add("frequent");
  v.Add("rare");
  v.Freeze(/*min_count=*/2);
  EXPECT_TRUE(v.Contains("frequent"));
  EXPECT_FALSE(v.Contains("rare"));
  EXPECT_EQ(v.Id("rare"), Vocabulary::kUnkId);
  EXPECT_EQ(v.size(), 2);
}

TEST(VocabTest, FromCorpusAndEncode) {
  Corpus c;
  c.sentences.push_back({{"the", "cat", "sat"}, {}});
  c.sentences.push_back({{"the", "dog", "ran"}, {}});
  Vocabulary v = Vocabulary::FromCorpus(c);
  EXPECT_TRUE(v.frozen());
  std::vector<int> ids = v.Encode({"the", "unseen", "dog"});
  EXPECT_NE(ids[0], Vocabulary::kUnkId);
  EXPECT_EQ(ids[1], Vocabulary::kUnkId);
  EXPECT_NE(ids[2], Vocabulary::kUnkId);
}

TEST(VocabTest, CharVocabulary) {
  Corpus c;
  c.sentences.push_back({{"ab", "ba"}, {}});
  Vocabulary v = Vocabulary::CharsFromCorpus(c);
  EXPECT_EQ(v.size(), 3);  // unk, a, b
  std::vector<int> ids = v.EncodeChars("abz");
  EXPECT_NE(ids[0], Vocabulary::kUnkId);
  EXPECT_NE(ids[1], Vocabulary::kUnkId);
  EXPECT_EQ(ids[2], Vocabulary::kUnkId);
}

TEST(VocabDeathTest, AddAfterFreezeAborts) {
  Vocabulary v;
  v.Add("x");
  v.Freeze();
  EXPECT_DEATH(v.Add("y"), "Freeze");
}

// --- Tagging schemes ---

TEST(TagSetTest, SizesPerScheme) {
  std::vector<std::string> types = {"PER", "LOC"};
  EXPECT_EQ(TagSet(types, TagScheme::kIo).size(), 3);
  EXPECT_EQ(TagSet(types, TagScheme::kBio).size(), 5);
  EXPECT_EQ(TagSet(types, TagScheme::kBioes).size(), 9);
}

TEST(TagSetTest, SchemeStringRoundTrip) {
  for (auto s : {TagScheme::kIo, TagScheme::kBio, TagScheme::kBioes}) {
    EXPECT_EQ(TagSchemeFromString(TagSchemeToString(s)), s);
  }
}

class SchemeRoundTripTest : public ::testing::TestWithParam<TagScheme> {};

TEST_P(SchemeRoundTripTest, SpansSurviveEncodeDecode) {
  TagSet tags({"PER", "LOC", "ORG"}, GetParam());
  std::vector<Span> spans = {{0, 3, "PER"}, {4, 5, "LOC"}, {6, 9, "ORG"}};
  std::vector<int> ids = tags.SpansToTagIds(spans, 10);
  std::vector<Span> back = tags.TagIdsToSpans(ids);
  ASSERT_EQ(back.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) EXPECT_EQ(back[i], spans[i]);
}

TEST_P(SchemeRoundTripTest, AdjacentSameTypeSpans) {
  // Two adjacent PER spans: IO cannot distinguish them (known scheme
  // limitation); BIO and BIOES must keep them separate.
  TagSet tags({"PER"}, GetParam());
  std::vector<Span> spans = {{0, 2, "PER"}, {2, 4, "PER"}};
  std::vector<int> ids = tags.SpansToTagIds(spans, 4);
  std::vector<Span> back = tags.TagIdsToSpans(ids);
  if (GetParam() == TagScheme::kIo) {
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0], (Span{0, 4, "PER"}));
  } else {
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0], spans[0]);
    EXPECT_EQ(back[1], spans[1]);
  }
}

TEST_P(SchemeRoundTripTest, EmptyAndFullCoverage) {
  TagSet tags({"X"}, GetParam());
  EXPECT_TRUE(tags.TagIdsToSpans(tags.SpansToTagIds({}, 5)).empty());
  std::vector<Span> all = {{0, 5, "X"}};
  EXPECT_EQ(tags.TagIdsToSpans(tags.SpansToTagIds(all, 5)), all);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeRoundTripTest,
                         ::testing::Values(TagScheme::kIo, TagScheme::kBio,
                                           TagScheme::kBioes),
                         [](const auto& info) {
                           return TagSchemeToString(info.param);
                         });

TEST(TagSetTest, BioesSingletonUsesS) {
  TagSet tags({"PER"}, TagScheme::kBioes);
  std::vector<int> ids = tags.SpansToTagIds({{1, 2, "PER"}}, 3);
  EXPECT_EQ(tags.TagOf(ids[1]), "S-PER");
}

TEST(TagSetTest, LenientDecodingOfInvalidSequences) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBio);
  // O I-PER I-PER O : stray I- run becomes a span.
  std::vector<int> ids = {0, tags.IdOf("I-PER"), tags.IdOf("I-PER"), 0};
  std::vector<Span> spans = tags.TagIdsToSpans(ids);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{1, 3, "PER"}));

  // B-PER I-LOC : type change splits the span.
  ids = {tags.IdOf("B-PER"), tags.IdOf("I-LOC")};
  spans = tags.TagIdsToSpans(ids);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Span{0, 1, "PER"}));
  EXPECT_EQ(spans[1], (Span{1, 2, "LOC"}));
}

TEST(TagSetTest, LenientBioesStrayEnd) {
  TagSet tags({"PER"}, TagScheme::kBioes);
  std::vector<int> ids = {0, tags.IdOf("E-PER"), 0};
  std::vector<Span> spans = tags.TagIdsToSpans(ids);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{1, 2, "PER"}));
}

TEST(TagSetTest, UnterminatedEntityClosedAtEnd) {
  TagSet tags({"PER"}, TagScheme::kBioes);
  std::vector<int> ids = {tags.IdOf("B-PER"), tags.IdOf("I-PER")};
  std::vector<Span> spans = tags.TagIdsToSpans(ids);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{0, 2, "PER"}));
}

TEST(TagSetTest, BioTransitionRules) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBio);
  const int o = tags.IdOf("O");
  const int b_per = tags.IdOf("B-PER");
  const int i_per = tags.IdOf("I-PER");
  const int i_loc = tags.IdOf("I-LOC");
  EXPECT_TRUE(tags.IsValidTransition(b_per, i_per));
  EXPECT_TRUE(tags.IsValidTransition(i_per, i_per));
  EXPECT_FALSE(tags.IsValidTransition(o, i_per));
  EXPECT_FALSE(tags.IsValidTransition(b_per, i_loc));
  EXPECT_TRUE(tags.IsValidTransition(i_per, o));
  EXPECT_FALSE(tags.IsValidStart(i_per));
  EXPECT_TRUE(tags.IsValidStart(b_per));
  EXPECT_TRUE(tags.IsValidEnd(i_per));
}

TEST(TagSetTest, BioesTransitionRules) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBioes);
  const int o = tags.IdOf("O");
  const int b = tags.IdOf("B-PER");
  const int i = tags.IdOf("I-PER");
  const int e = tags.IdOf("E-PER");
  const int s = tags.IdOf("S-PER");
  const int e_loc = tags.IdOf("E-LOC");
  EXPECT_TRUE(tags.IsValidTransition(b, i));
  EXPECT_TRUE(tags.IsValidTransition(b, e));
  EXPECT_FALSE(tags.IsValidTransition(b, o));      // open entity must continue
  EXPECT_FALSE(tags.IsValidTransition(b, b));
  EXPECT_FALSE(tags.IsValidTransition(i, e_loc));  // type mismatch
  EXPECT_TRUE(tags.IsValidTransition(e, o));
  EXPECT_TRUE(tags.IsValidTransition(e, b));
  EXPECT_TRUE(tags.IsValidTransition(s, s));
  EXPECT_FALSE(tags.IsValidTransition(o, i));
  EXPECT_FALSE(tags.IsValidEnd(b));
  EXPECT_TRUE(tags.IsValidEnd(e));
  EXPECT_TRUE(tags.IsValidEnd(s));
}

TEST(TagSetDeathTest, OverlappingSpansAbort) {
  TagSet tags({"PER"}, TagScheme::kBio);
  EXPECT_DEATH(tags.SpansToTagIds({{0, 3, "PER"}, {2, 4, "PER"}}, 5), "flat");
}

TEST(TagSetDeathTest, UnknownTagAborts) {
  TagSet tags({"PER"}, TagScheme::kBio);
  EXPECT_DEATH(tags.IdOf("B-XYZ"), "unknown tag");
}

TEST(StringTagsTest, MixedPrefixDecoding) {
  std::vector<Span> spans = SpansFromStringTags(
      {"B-PER", "E-PER", "O", "S-LOC", "I-ORG", "I-ORG"});
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0], (Span{0, 2, "PER"}));
  EXPECT_EQ(spans[1], (Span{3, 4, "LOC"}));
  EXPECT_EQ(spans[2], (Span{4, 6, "ORG"}));
}

// --- CoNLL I/O ---

TEST(ConllTest, RoundTrip) {
  Corpus c;
  c.sentences.push_back(
      {{"John", "Smith", "visited", "Paris", "."},
       {{0, 2, "PER"}, {3, 4, "LOC"}}});
  c.sentences.push_back({{"Nothing", "here", "."}, {}});
  TagSet tags({"PER", "LOC"}, TagScheme::kBioes);

  std::stringstream ss;
  WriteConll(ss, c, tags);
  Corpus back;
  ASSERT_TRUE(ReadConll(ss, &back));
  ASSERT_EQ(back.size(), 2);
  EXPECT_EQ(back.sentences[0].tokens, c.sentences[0].tokens);
  EXPECT_EQ(back.sentences[0].spans, c.sentences[0].spans);
  EXPECT_TRUE(back.sentences[1].spans.empty());
}

TEST(ConllTest, MalformedLineFails) {
  std::stringstream ss;
  ss << "token_without_tag\n";
  Corpus c;
  EXPECT_FALSE(ReadConll(ss, &c));
}

TEST(ConllTest, MissingTrailingBlankLineStillParses) {
  std::stringstream ss;
  ss << "Rome S-LOC";  // no trailing newline or blank line
  Corpus c;
  ASSERT_TRUE(ReadConll(ss, &c));
  ASSERT_EQ(c.size(), 1);
  EXPECT_EQ(c.sentences[0].spans[0], (Span{0, 1, "LOC"}));
}

TEST(ConllTest, CrlfLineEndingsParse) {
  // Windows-formatted file: "\r\n" everywhere, including the sentence
  // separator. Sentences must still flush and tags must carry no '\r'.
  std::stringstream ss;
  ss << "John B-PER\r\nSmith E-PER\r\n\r\nRome S-LOC\r\n";
  Corpus c;
  ASSERT_TRUE(ReadConll(ss, &c));
  ASSERT_EQ(c.size(), 2);
  EXPECT_EQ(c.sentences[0].tokens, (std::vector<std::string>{"John", "Smith"}));
  ASSERT_EQ(c.sentences[0].spans.size(), 1u);
  EXPECT_EQ(c.sentences[0].spans[0], (Span{0, 2, "PER"}));
  ASSERT_EQ(c.sentences[1].spans.size(), 1u);
  EXPECT_EQ(c.sentences[1].spans[0], (Span{0, 1, "LOC"}));
}

TEST(ConllTest, FourColumnRowsUseLastField) {
  // Standard CoNLL-2003 layout: token POS chunk tag. The NER tag is the
  // last column, not the second.
  std::stringstream ss;
  ss << "U.N. NNP I-NP S-ORG\n"
     << "official NN I-NP O\n"
     << "Ekeus NNP I-NP S-PER\n";
  Corpus c;
  ASSERT_TRUE(ReadConll(ss, &c));
  ASSERT_EQ(c.size(), 1);
  ASSERT_EQ(c.sentences[0].spans.size(), 2u);
  EXPECT_EQ(c.sentences[0].spans[0], (Span{0, 1, "ORG"}));
  EXPECT_EQ(c.sentences[0].spans[1], (Span{2, 3, "PER"}));
}

// CoNLL-2003 marks document boundaries with "-DOCSTART- -X- -X- O" sentinel
// rows. The sentinel is a marker, not a token: it must not appear in any
// sentence, and it must populate Corpus::doc_starts. Regression for the
// reader treating it as a one-token sentence.
TEST(ConllTest, DocstartSentinelsBecomeDocumentBoundaries) {
  std::stringstream ss;
  ss << "-DOCSTART- -X- -X- O\n"
     << "\n"
     << "EU NNP I-NP S-ORG\n"
     << "rejects VBZ I-VP O\n"
     << "\n"
     << "Peter NNP I-NP B-PER\n"
     << "Blackburn NNP I-NP E-PER\n"
     << "\n"
     << "-DOCSTART- -X- -X- O\n"
     << "\n"
     << "Rome NNP I-NP S-LOC\n";
  Corpus c;
  ASSERT_TRUE(ReadConll(ss, &c));
  ASSERT_EQ(c.size(), 3);
  for (const Sentence& s : c.sentences) {
    for (const std::string& tok : s.tokens) {
      EXPECT_NE(tok, "-DOCSTART-");
    }
  }
  EXPECT_EQ(c.sentences[0].tokens, (std::vector<std::string>{"EU", "rejects"}));
  EXPECT_EQ(c.sentences[0].spans[0], (Span{0, 1, "ORG"}));
  EXPECT_EQ(c.doc_starts, (std::vector<int>{0, 2}));
  ASSERT_EQ(c.DocCount(), 2);
  EXPECT_EQ(c.DocRange(0), (std::pair<int, int>{0, 2}));
  EXPECT_EQ(c.DocRange(1), (std::pair<int, int>{2, 3}));
}

TEST(ConllTest, DocstartHandlesSparseAndDegenerateLayouts) {
  // Bare two-column sentinel, no blank line before the next sentence (the
  // sentinel itself must flush), consecutive sentinels, and a trailing
  // sentinel with no document after it.
  std::stringstream ss;
  ss << "John S-PER\n"      // content before the first sentinel: implicit doc
     << "-DOCSTART- O\n"
     << "-DOCSTART- O\n"    // consecutive sentinels collapse to one boundary
     << "Rome S-LOC\n"
     << "-DOCSTART- O\n";   // trailing sentinel marks no document
  Corpus c;
  ASSERT_TRUE(ReadConll(ss, &c));
  ASSERT_EQ(c.size(), 2);
  EXPECT_EQ(c.sentences[0].tokens, (std::vector<std::string>{"John"}));
  EXPECT_EQ(c.sentences[1].tokens, (std::vector<std::string>{"Rome"}));
  EXPECT_EQ(c.doc_starts, (std::vector<int>{0, 1}));
  EXPECT_EQ(c.DocCount(), 2);
}

TEST(ConllTest, NoDocstartMeansSingleImplicitDocument) {
  std::stringstream ss;
  ss << "Rome S-LOC\n\nParis S-LOC\n";
  Corpus c;
  ASSERT_TRUE(ReadConll(ss, &c));
  EXPECT_TRUE(c.doc_starts.empty());
  ASSERT_EQ(c.DocCount(), 1);
  EXPECT_EQ(c.DocRange(0), (std::pair<int, int>{0, 2}));
}

}  // namespace
}  // namespace dlner::text
